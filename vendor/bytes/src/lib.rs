//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of external dependencies are vendored as minimal API-compatible
//! subsets. This crate provides exactly the [`Buf`]/[`BufMut`] surface the
//! packet parsers use: big-endian integer reads advancing a `&[u8]` cursor
//! and big-endian integer writes appending to a `Vec<u8>`.
//!
//! Semantics match the real crate for that subset: reads panic when the
//! buffer has too few bytes remaining, exactly like `bytes::Buf` does.

#![forbid(unsafe_code)]

/// Read access to a buffer of bytes with an advancing cursor.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The slice from the cursor onward.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow: get_u8");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16` and advance.
    fn get_u16(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "buffer underflow: get_u16");
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32` and advance.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow: get_u32");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64` and advance.
    fn get_u64(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "buffer underflow: get_u64");
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Copy `dst.len()` bytes into `dst` and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: copy_to_slice"
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write access to an append-only byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_reads_big_endian_and_advance() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07];
        let mut b: &[u8] = &data;
        assert_eq!(b.get_u8(), 0x01);
        assert_eq!(b.get_u16(), 0x0203);
        assert_eq!(b.get_u32(), 0x04050607);
        assert_eq!(b.remaining(), 0);
        assert!(!b.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b: &[u8] = &[0x01];
        let _ = b.get_u16();
    }

    #[test]
    fn vec_writes_big_endian() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(0xAA);
        v.put_u16(0x0102);
        v.put_u32(0x03040506);
        assert_eq!(v, [0xAA, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06]);
    }

    #[test]
    fn copy_to_slice_advances() {
        let mut b: &[u8] = &[1, 2, 3, 4];
        let mut out = [0u8; 3];
        b.copy_to_slice(&mut out);
        assert_eq!(out, [1, 2, 3]);
        assert_eq!(b.remaining(), 1);
    }
}
