//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access; this vendored crate keeps
//! the workspace's `[[bench]]` targets compiling and running with the same
//! source code. It implements the subset the benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `criterion_group!` / `criterion_main!` — as a plain
//! wall-clock harness: warm up once, time `sample_size` iterations, print
//! mean time and throughput per benchmark.
//!
//! No statistical analysis, outlier detection, or HTML reports. When
//! invoked with `--test` (as `cargo test --benches` does) each benchmark
//! body runs exactly once so test sweeps stay fast.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How many units of work one iteration performs, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (e.g. packets) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier, possibly parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    samples: u64,
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_secs: f64,
}

impl Bencher {
    /// Run the routine: one warm-up call, then `samples` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean_secs = start.elapsed().as_secs_f64() / self.samples as f64;
    }
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one(
    label: &str,
    samples: u64,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples: samples.max(1),
        mean_secs: 0.0,
    };
    f(&mut b);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if b.mean_secs > 0.0 => {
            format!("  ({:.3} Melem/s)", n as f64 / b.mean_secs / 1e6)
        }
        Some(Throughput::Bytes(n)) if b.mean_secs > 0.0 => {
            format!(
                "  ({:.3} MiB/s)",
                n as f64 / b.mean_secs / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!("{label:<48} {}{rate}", format_duration(b.mean_secs));
}

/// The harness. Construct through [`Criterion::default`] (the
/// `criterion_group!` macro does).
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Harness flags cargo passes; ignore.
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    fn effective_samples(&self, requested: u64) -> u64 {
        if self.test_mode {
            1
        } else {
            requested.max(1)
        }
    }

    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            c: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        if self.matches(&id.id) {
            let samples = self.effective_samples(10);
            run_one(&id.id, samples, None, |b| f(b));
        }
        self
    }
}

/// A group of related benchmarks sharing throughput and sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Set the measurement time budget. Accepted for API compatibility;
    /// this harness times a fixed iteration count instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        if self.c.matches(&label) {
            let samples = self.c.effective_samples(self.sample_size);
            run_one(&label, samples, self.throughput, |b| f(b));
        }
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        if self.c.matches(&label) {
            let samples = self.c.effective_samples(self.sample_size);
            run_one(&label, samples, self.throughput, |b| f(b, input));
        }
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_counts() {
        let mut total = 0u64;
        run_one("test/label", 3, Some(Throughput::Elements(10)), |b| {
            b.iter(|| {
                total += 1;
            });
        });
        // 1 warmup + 3 timed.
        assert_eq!(total, 4);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("g", 4).id, "g/4");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("s").id, "s");
    }

    #[test]
    fn duration_formatting() {
        assert!(format_duration(2.0).ends_with(" s"));
        assert!(format_duration(2e-3).ends_with(" ms"));
        assert!(format_duration(2e-6).ends_with(" µs"));
        assert!(format_duration(2e-9).ends_with(" ns"));
    }
}
