//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the subset of proptest this workspace uses: the [`proptest!`]
//! macro (typed params and `pat in strategy` params, optional
//! `#![proptest_config(...)]`), `prop_assert*` / `prop_assume!`, tuple and
//! range strategies, `any::<T>()`, `prop::collection::vec`, and
//! `Strategy::prop_map`.
//!
//! Differences from the real crate, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports its per-case seed instead of
//!   a minimized input. Every case draws from an independent RNG seeded
//!   from `(test name, case index)`, so one `u64` reproduces one case.
//! * **Regression persistence, like upstream.** A failing case's seed is
//!   appended to `proptest-regressions/<test-name>.txt` under the test
//!   binary's working directory (the crate root under `cargo test`);
//!   committed seeds are replayed before fresh random cases on every run.
//! * **Sampling only.** Strategies are plain samplers (`fn sample(&self,
//!   rng) -> Value`), not value trees.
//! * `any::<f64>()` samples the unit interval rather than the full bit
//!   space (unused in this workspace).

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with a function.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discard values failing a predicate (re-sampling, bounded).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive samples: {}",
                self.whence
            );
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.rng().gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()`: uniform sampling over a type's natural domain.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a default sampling strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.rng().gen::<u64>() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.rng().gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        /// Unit interval (divergence from upstream; unused here).
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.rng().gen::<f64>()
        }
    }

    /// The strategy behind [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing vectors whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution: config, RNG, regression persistence, and the error
    //! type `prop_assert*` macros return.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::PathBuf;

    /// Runner configuration (the subset this workspace sets).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// The RNG handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Deterministic per-test generator: the seed is derived from the
        /// test's name so runs are reproducible without a seed file.
        pub fn for_test(name: &str) -> TestRng {
            TestRng::from_seed(seed_from_name(name))
        }

        /// A generator reproducing exactly one case from its reported seed.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        /// Access the underlying generator.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.inner
        }
    }

    /// FNV-1a of the test name: the base of its case-seed sequence.
    fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// SplitMix64 over `(base, draw index)`: every case gets an
    /// independent, individually replayable seed.
    fn case_seed(base: u64, index: u64) -> u64 {
        let mut z = base.wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Seed file for one property, relative to the test binary's working
    /// directory (the crate root under `cargo test`). `::` separators in
    /// the property name become `__` so the file name stays portable.
    fn regression_path(name: &str) -> PathBuf {
        let file: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        PathBuf::from("proptest-regressions").join(format!("{file}.txt"))
    }

    /// Persisted seeds for a property: one decimal `u64` per line, `#`
    /// comments and blank lines ignored. Missing file means no seeds.
    fn load_regressions(name: &str) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(regression_path(name)) else {
            return Vec::new();
        };
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| l.parse::<u64>().ok())
            .collect()
    }

    /// Append a failing seed to the property's regression file so future
    /// runs replay it first. Returns the path written, or `None` if the
    /// filesystem refused (the failure still panics either way).
    fn persist_regression(name: &str, seed: u64) -> Option<PathBuf> {
        use std::io::Write;
        let path = regression_path(name);
        std::fs::create_dir_all(path.parent()?).ok()?;
        let fresh = !path.exists();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .ok()?;
        if fresh {
            writeln!(
                f,
                "# Seeds for failing cases of {name}.\n\
                 # Replayed before random cases on every run; commit this file."
            )
            .ok()?;
        }
        writeln!(f, "{seed}").ok()?;
        Some(path)
    }

    /// Run one property to completion: replay any persisted regression
    /// seeds, then draw inputs from `strat` until `config.cases` cases
    /// have been accepted, panicking on the first failure. A fresh
    /// failure's seed is appended to the property's regression file.
    /// Routing the case closure through this generic function pins its
    /// argument type to `S::Value`, so `proptest!`-generated closures need
    /// no parameter annotations.
    pub fn run_property<S: crate::strategy::Strategy>(
        name: &str,
        config: ProptestConfig,
        strat: S,
        mut case: impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) {
        for seed in load_regressions(name) {
            match case(strat.sample(&mut TestRng::from_seed(seed))) {
                Ok(()) | Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "property {name} failed replaying persisted seed {seed} \
                     (from {}):\n{msg}",
                    regression_path(name).display()
                ),
            }
        }
        let base = seed_from_name(name);
        let mut drawn: u64 = 0;
        let mut accepted: u32 = 0;
        let mut rejected: u32 = 0;
        while accepted < config.cases {
            let seed = case_seed(base, drawn);
            drawn += 1;
            match case(strat.sample(&mut TestRng::from_seed(seed))) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.cases.saturating_mul(20).max(1_000),
                        "prop_assume! rejected too many inputs \
                         ({accepted} accepted, {rejected} rejected)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    let note = match persist_regression(name, seed) {
                        Some(p) => format!("persisted to {}", p.display()),
                        None => "could not persist seed".to_string(),
                    };
                    panic!(
                        "property {name} failed at case {accepted} \
                         with seed {seed} ({note}):\n{msg}"
                    )
                }
            }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the input; the case is re-drawn.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject() -> TestCaseError {
            TestCaseError::Reject
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use rand::Rng;

        #[test]
        fn case_seeds_are_deterministic_and_distinct() {
            let base = seed_from_name("some::property");
            assert_eq!(case_seed(base, 3), case_seed(base, 3));
            assert_ne!(case_seed(base, 3), case_seed(base, 4));
            assert_ne!(case_seed(base, 0), seed_from_name("other::property"));
        }

        #[test]
        fn seed_replays_one_case_exactly() {
            let seed = case_seed(seed_from_name("replay::me"), 17);
            let a: u64 = TestRng::from_seed(seed).rng().gen();
            let b: u64 = TestRng::from_seed(seed).rng().gen();
            assert_eq!(a, b);
        }

        #[test]
        fn regression_file_round_trips() {
            let name = "vendor_selftest::regression_file_round_trips";
            let path = regression_path(name);
            assert_eq!(
                path.file_name().unwrap().to_str().unwrap(),
                "vendor_selftest__regression_file_round_trips.txt"
            );
            let _ = std::fs::remove_file(&path);
            assert!(load_regressions(name).is_empty());
            let written = persist_regression(name, 42).expect("persist");
            assert_eq!(written, path);
            persist_regression(name, 7).expect("persist again");
            assert_eq!(load_regressions(name), vec![42, 7]);
            std::fs::remove_file(&path).expect("cleanup");
        }
    }
}

pub mod prop {
    //! The `prop::` namespace as the prelude exposes it.

    pub use crate::collection;
}

pub mod prelude {
    //! Everything a property test file imports.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection::SizeRange;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a property; on failure the case aborts with a
/// message (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {{
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Assert two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                $($fmt)*
            )));
        }
    }};
}

/// Assert two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Reject the current inputs; the runner draws a fresh case instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {{
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    }};
}

/// Define property tests. Supports `name: Type` (shorthand for
/// `any::<Type>()`) and `pattern in strategy` parameters, plus an optional
/// leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal: expand each `fn` in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case!(($cfg), $name, $body, [], [], $($params)*);
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

/// Internal: parse one property's parameter list, then run its cases.
///
/// Patterns are accumulated as `tt`s (every supported pattern — an
/// identifier or a parenthesized tuple — is a single token tree), which
/// lets captured fragments be re-matched on each munch step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Munch `name: Type` params.
    (($cfg:expr), $name:ident, $body:block, [$($pats:tt,)*], [$($strats:expr,)*], $p:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_case!(($cfg), $name, $body,
            [$($pats,)* $p,], [$($strats,)* $crate::arbitrary::any::<$ty>(),], $($rest)*)
    };
    (($cfg:expr), $name:ident, $body:block, [$($pats:tt,)*], [$($strats:expr,)*], $p:ident : $ty:ty) => {
        $crate::__proptest_case!(($cfg), $name, $body,
            [$($pats,)* $p,], [$($strats,)* $crate::arbitrary::any::<$ty>(),],)
    };
    // Munch `pattern in strategy` params.
    (($cfg:expr), $name:ident, $body:block, [$($pats:tt,)*], [$($strats:expr,)*], $p:tt in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_case!(($cfg), $name, $body,
            [$($pats,)* $p,], [$($strats,)* $strat,], $($rest)*)
    };
    (($cfg:expr), $name:ident, $body:block, [$($pats:tt,)*], [$($strats:expr,)*], $p:tt in $strat:expr) => {
        $crate::__proptest_case!(($cfg), $name, $body,
            [$($pats,)* $p,], [$($strats,)* $strat,],)
    };
    // All params parsed: run the cases.
    (($cfg:expr), $name:ident, $body:block, [$($pats:tt,)*], [$($strats:expr,)*],) => {
        $crate::test_runner::run_property(
            concat!(module_path!(), "::", stringify!($name)),
            $cfg,
            ($($strats,)*),
            |($($pats,)*)| {
                $body
                ::std::result::Result::Ok(())
            },
        )
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = (u32, Vec<bool>)> {
        (0u32..100, prop::collection::vec(any::<bool>(), 1..10))
    }

    proptest! {
        #[test]
        fn typed_params_sample_full_domain(a: u32, b: bool) {
            let _ = b;
            prop_assert!(u64::from(a) <= u64::from(u32::MAX));
        }

        #[test]
        fn range_and_vec_strategies(x in 5u32..10, v in prop::collection::vec(0u8..3, 2..5)) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            for e in v {
                prop_assert!(e < 3);
            }
        }

        #[test]
        fn tuple_pattern_and_prop_map((n, flags) in composite().prop_map(|(n, v)| (n * 2, v))) {
            prop_assert!(n % 2 == 0);
            prop_assert!(!flags.is_empty());
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_cases_respected(_x in 0u32..10) {
            // Runs exactly 7 cases; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let s = 0u64..1_000_000;
        use crate::strategy::Strategy;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
