//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace consumes: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen::<T>()` / `gen_range(lo..hi)` / `gen_bool(p)`. The generator is
//! xoshiro256++ (Blackman & Vigna) seeded through SplitMix64 — not the real
//! crate's ChaCha12, but deterministic, `Clone`, and statistically strong
//! enough for the simulator's distribution tests.
//!
//! The numeric streams differ from upstream `rand`; everything in this
//! repository that depends on randomness is seeded and self-consistent, so
//! only determinism per seed matters, not the specific stream.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of 64 random bits.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a generator can sample a value from.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        p > 0.0 && f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed (expanded through SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0xDEAD_BEEF, 0xCAFE_BABE, 0xF00D_FACE, 0xFEED_C0DE];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    /// Alias: the small fast generator is the same engine here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        // Mean of u64 % 1000 over many draws should sit near 499.5.
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| r.gen_range(0u64..1000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 499.5).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(4);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
