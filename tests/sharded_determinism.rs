//! Property tests for the flow-sharded engine: sharding must not change
//! what Dart measures, only how the work is scheduled.
//!
//! Two contracts (see `dart_core::sharded` for why they differ):
//!
//! * With unlimited tables (no cross-flow hash interaction) the sharded
//!   engine reproduces the serial engine's samples *exactly* — same
//!   samples, same merged order — at every shard count, on arbitrarily
//!   lossy/reordered traces.
//! * With constrained (hardware-shaped) tables, one shard driven through
//!   the full threaded feeder/worker/merge path is bit-identical to the
//!   serial engine: samples, order, and every stats counter.

use dart::core::{
    run_trace, run_trace_sharded, DartConfig, RttSample, ShardedConfig, ShardedDartEngine,
};
use dart::packet::FlowKey;
use dart::sim::scenario::{campus, CampusConfig};
use proptest::prelude::*;
use std::collections::HashMap;

/// Randomized lossy/reordered campus workloads, kept small enough for a
/// property-test budget.
fn trace_params() -> impl Strategy<Value = (u64, usize, f64, f64)> {
    (
        0u64..10_000, // seed
        20usize..100, // connections
        0.0f64..0.05, // mean loss
        0.0f64..0.02, // reorder probability
    )
}

fn make_trace(
    seed: u64,
    connections: usize,
    loss: f64,
    reorder: f64,
) -> Vec<dart::packet::PacketMeta> {
    campus(CampusConfig {
        connections,
        duration: dart::packet::SECOND,
        seed,
        mean_loss: loss,
        reorder,
        ..CampusConfig::default()
    })
    .packets
}

/// Per-flow sample multiset: flow → sorted (eack, rtt, ts) triples.
fn per_flow(samples: &[RttSample]) -> HashMap<FlowKey, Vec<(u32, u64, u64)>> {
    let mut map: HashMap<FlowKey, Vec<(u32, u64, u64)>> = HashMap::new();
    for s in samples {
        map.entry(s.flow)
            .or_default()
            .push((s.eack.raw(), s.rtt, s.ts));
    }
    for v in map.values_mut() {
        v.sort_unstable();
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Unlimited tables: every shard count reproduces the serial samples
    /// exactly, in the same merged order.
    #[test]
    fn unlimited_sharded_equals_serial((seed, conns, loss, reorder) in trace_params()) {
        let pkts = make_trace(seed, conns, loss, reorder);
        let (serial, serial_stats) = run_trace(DartConfig::unlimited(), &pkts);
        for shards in [1usize, 2, 4, 8] {
            let (sharded, stats) = run_trace_sharded(DartConfig::unlimited(), shards, &pkts);
            prop_assert_eq!(&sharded, &serial, "shards = {}", shards);
            prop_assert_eq!(stats.packets, serial_stats.packets);
            prop_assert_eq!(stats.samples, serial_stats.samples);
        }
    }

    /// Unlimited tables: the per-flow RTT sample multiset is shard-count
    /// invariant (a flow's measurements never depend on which shard ran it).
    #[test]
    fn per_flow_multiset_is_shard_invariant((seed, conns, loss, reorder) in trace_params()) {
        let pkts = make_trace(seed, conns, loss, reorder);
        let (serial, _) = run_trace(DartConfig::unlimited(), &pkts);
        let reference = per_flow(&serial);
        for shards in [2usize, 4, 8] {
            let (sharded, _) = run_trace_sharded(DartConfig::unlimited(), shards, &pkts);
            prop_assert_eq!(per_flow(&sharded), reference.clone(), "shards = {}", shards);
        }
    }

    /// Constrained tables, one shard, full threaded path: bit-identical to
    /// the serial engine — the faithful-reproduction mode.
    #[test]
    fn one_shard_threaded_is_bit_identical((seed, conns, loss, reorder) in trace_params()) {
        let pkts = make_trace(seed, conns, loss, reorder);
        let cfg = DartConfig::default().with_rt(1 << 12).with_pt(1 << 8, 1);
        let (serial, serial_stats) = run_trace(cfg, &pkts);
        let out = ShardedDartEngine::new(ShardedConfig::new(cfg, 1).with_batch_size(256)).run(&pkts);
        prop_assert_eq!(out.samples, serial);
        prop_assert_eq!(out.stats, serial_stats);
    }

    /// Sharded runs are reproducible: identical output across repeated runs
    /// regardless of thread scheduling, at any batch size.
    #[test]
    fn sharded_runs_are_reproducible(
        (seed, conns, loss, reorder) in trace_params(),
        batch in 1usize..2048,
    ) {
        let pkts = make_trace(seed, conns, loss, reorder);
        let cfg = DartConfig::default().with_rt(1 << 12).with_pt(1 << 8, 1);
        let engine = ShardedDartEngine::new(ShardedConfig::new(cfg, 4).with_batch_size(batch));
        let a = engine.run(&pkts);
        let b = engine.run(&pkts);
        prop_assert_eq!(a.samples, b.samples);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.per_shard, b.per_shard);
    }
}
