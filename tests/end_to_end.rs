//! End-to-end integration: synthetic campus traffic → Dart engine →
//! analytics, checked against the offline baselines — the whole paper
//! pipeline in one process.

use dart::baselines::{run_tcptrace, TcpTraceConfig};
use dart::core::{run_trace, DartConfig, RttSample, SynPolicy};
use dart::sim::scenario::{campus, syn_flood, CampusConfig, SynFloodConfig};

fn small_campus() -> dart::sim::scenario::GeneratedTrace {
    campus(CampusConfig {
        connections: 600,
        duration: 10 * dart::packet::SECOND,
        ..CampusConfig::default()
    })
}

#[test]
fn constrained_dart_tracks_the_unlimited_baseline() {
    let trace = small_campus();
    let (baseline, _) = run_trace(DartConfig::unlimited(), &trace.packets);
    let cfg = DartConfig::default().with_rt(1 << 12).with_pt(1 << 10, 1);
    let (samples, stats) = run_trace(cfg, &trace.packets);

    assert!(!baseline.is_empty());
    let fraction = samples.len() as f64 / baseline.len() as f64;
    assert!(
        fraction > 0.9 && fraction <= 1.02,
        "constrained Dart collected {fraction:.3} of baseline samples"
    );
    // The engine's own accounting agrees with what came out.
    assert_eq!(stats.samples as usize, samples.len());
    assert_eq!(stats.pt_matched, stats.samples);
}

#[test]
fn dart_never_collects_more_than_tcptrace() {
    // Fig 9a's ordering must hold on any trace.
    let trace = small_campus();
    for syn in [SynPolicy::Include, SynPolicy::Skip] {
        let (dart, _) = run_trace(DartConfig::unlimited().with_syn(syn), &trace.packets);
        let (tt, _) = run_tcptrace(
            TcpTraceConfig {
                syn_policy: syn,
                quadrant_quirk: true,
                ..TcpTraceConfig::default()
            },
            &trace.packets,
        );
        assert!(
            dart.len() <= tt.len(),
            "dart {} > tcptrace {} under {syn:?}",
            dart.len(),
            tt.len()
        );
        // ...but it collects the vast majority.
        assert!(dart.len() as f64 >= tt.len() as f64 * 0.7);
    }
}

#[test]
fn syn_flood_cannot_inflate_the_tables() {
    let trace = syn_flood(SynFloodConfig {
        syns: 5_000,
        background: 20,
        duration: 2 * dart::packet::SECOND,
        ..SynFloodConfig::default()
    });
    let cfg = DartConfig::default().with_rt(1 << 14).with_pt(1 << 12, 1);
    let mut engine = dart::core::DartEngine::new(cfg);
    let mut samples: Vec<RttSample> = Vec::new();
    engine.process_trace(trace.packets.iter(), &mut samples);

    // Only the ~20 legitimate connections may hold RT entries.
    assert!(
        engine.rt_occupancy() <= 30,
        "RT bloated to {} entries under SYN flood",
        engine.rt_occupancy()
    );
    assert!(engine.stats().syn_skipped >= 5_000);
    // Legitimate traffic still measured.
    assert!(!samples.is_empty());
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let trace = small_campus();
        let cfg = DartConfig::default().with_rt(1 << 12).with_pt(1 << 9, 2);
        run_trace(cfg, &trace.packets).0
    };
    assert_eq!(run(), run());
}

#[test]
fn samples_respect_propagation_floors() {
    // With per-hop jitter of ±4%, no sample can be more than ~8% below its
    // path's base RTT; most sit above it (receiver delays add).
    let trace = small_campus();
    let (samples, _) = run_trace(DartConfig::unlimited(), &trace.packets);
    let mut below = 0;
    for s in &samples {
        let conn = trace
            .conns
            .iter()
            .find(|c| c.flow == s.flow)
            .expect("sample from unknown flow");
        if (s.rtt as f64) < conn.base_ext_rtt as f64 * 0.9 {
            below += 1;
        }
    }
    assert_eq!(below, 0, "{below} samples below the physical floor");
}

#[test]
fn both_legs_sum_to_end_to_end() {
    // §2.1: consecutive external + internal leg RTTs compose the full
    // client-to-server RTT. Check on a clean single connection.
    use dart::core::Leg;
    use dart::packet::FlowKey;
    use dart::sim::netsim::{simulate, ConnSpec};

    let flow = FlowKey::from_raw(0x0a08_0101, 40001, 0x5db8_d822, 443);
    let mut spec = ConnSpec::simple(flow, 0, 600, 600);
    spec.path.jitter = 0.0;
    spec.path.int_owd = 2 * dart::packet::MILLISECOND;
    spec.path.ext_owd = 10 * dart::packet::MILLISECOND;
    let out = simulate(vec![spec], 7);

    let (ext, _) = run_trace(DartConfig::unlimited(), &out.packets);
    let (int, _) = run_trace(
        DartConfig::unlimited().with_leg(Leg::Internal),
        &out.packets,
    );
    assert!(!ext.is_empty() && !int.is_empty());
    // External-leg samples ≈ 20 ms, internal ≈ 4 ms (plus receiver delays).
    let e = ext.iter().map(|s| s.rtt).min().unwrap();
    let i = int.iter().map(|s| s.rtt).min().unwrap();
    assert!((20 * dart::packet::MILLISECOND..30 * dart::packet::MILLISECOND).contains(&e));
    assert!((4 * dart::packet::MILLISECOND..10 * dart::packet::MILLISECOND).contains(&i));
    // Composition ≈ the 24 ms end-to-end floor.
    assert!(e + i >= 24 * dart::packet::MILLISECOND);
}
