//! Spin-engine soundness against the spin-edge oracle: under any seeded
//! combination of drop, duplication, and reordering, at any table
//! pressure, the engine must never emit a period the oracle classifies as
//! fabricated (`Impossible`) — the `SpinEdge` judgement contract.
//!
//! Structure of the argument these tests pin down empirically: the engine
//! and the oracle read the *same* (faulted) capture in the same order, so
//! the engine's per-flow `last_bit` always agrees with the oracle's, a
//! detected flip is an oracle edge by construction, and `last_edge` only
//! ever holds real edge timestamps — every emitted sample anchors both
//! endpoints to observed transitions, even when eviction or the rejection
//! heuristics discard state in between. At worst a sample is `Spanning`,
//! never `Impossible`.

use dart::baselines::{SpinConfig, SpinMonitor};
use dart::core::{run_monitor_slice, RttSample};
use dart::packet::{FlowKey, PacketMeta, SeqNum, MILLISECOND};
use dart::sim::adversarial::ScenarioKind;
use dart::sim::spin::SpinFlowConfig;
use dart::sim::{spin_flow_meta, TraceTransform};
use dart_testkit::{ddmin, run_spin_oracle, FaultConfig, FaultInjector, SpinClass};
use proptest::prelude::*;

/// Pinned seeds for the acceptance sweep (ISSUE 7): ten seeds, every
/// scenario kind, stress faults, zero fabricated samples. Treat these as
/// part of the suite — the numbers in EXPERIMENTS.md come from them.
const PINNED_SEEDS: [u64; 10] = [
    0x0001, 0x003A, 0x007F, 0x00B2, 0x00C4, 0x011D, 0x01E5, 0x029A, 0x033C, 0x03F7,
];

/// Run the spin engine at the given table size and score it against the
/// spin-edge oracle over the same capture; panic on any fabrication.
fn assert_spin_sound(pkts: &[PacketMeta], slots: usize, label: &str) {
    let oracle = run_spin_oracle(pkts);
    let mut eng = SpinMonitor::new(SpinConfig {
        slots,
        ..SpinConfig::default()
    });
    let (samples, stats) = run_monitor_slice(&mut eng, pkts);
    assert_eq!(stats.packets, pkts.len() as u64, "{label}: packets lost");
    let card = oracle.score(&samples);
    assert_eq!(
        card.impossible, 0,
        "{label}: fabricated periods (slots={slots}): {:?}",
        card.impossible_samples
    );
}

#[test]
fn pinned_seeds_zero_impossible_across_every_scenario() {
    for &seed in &PINNED_SEEDS {
        for kind in ScenarioKind::ALL {
            let clean = kind.generate(0.1, seed).packets;
            let faulted = FaultInjector::new(FaultConfig::stress(seed)).apply(clean);
            let label = format!("{kind} seed {seed:#x}");
            // Comfortable table, then a 64-slot one where collisions and
            // evictions are constant.
            assert_spin_sound(&faulted, 4096, &label);
            assert_spin_sound(&faulted, 64, &label);
        }
    }
}

#[test]
fn oracle_catches_fabricated_periods() {
    // The canary: a sample whose endpoints are NOT observed transitions
    // must be classified Impossible — otherwise the suite above proves
    // nothing.
    let pkts = spin_flow_meta(SpinFlowConfig {
        seed: 42,
        ..SpinFlowConfig::default()
    });
    let oracle = run_spin_oracle(&pkts);
    let flow = pkts[0].flow;
    let edges = oracle.edges_of(&flow);
    assert!(edges.len() >= 2, "generator produced too few edges");
    let (a, b) = (edges[0], edges[1]);
    // Real consecutive edges: exact.
    let good = RttSample::new(flow, SeqNum(1), b - a, b);
    assert_eq!(oracle.classify(&good), SpinClass::Exact);
    // Same end, off-by-a-nanosecond start: fabricated.
    let skewed = RttSample::new(flow, SeqNum(1), b - a + 1, b);
    assert_eq!(oracle.classify(&skewed), SpinClass::Impossible);
    // Unknown flow entirely.
    let alien = RttSample::new(FlowKey::from_raw(9, 9, 9, 9), SeqNum(1), b - a, b);
    assert_eq!(oracle.classify(&alien), SpinClass::Impossible);
}

#[test]
fn ddmin_shrinks_spin_traces_without_seq_ack_structure() {
    // Satellite: the shrinker must handle captures with no SEQ/ACK
    // packets at all. Minimize "the capture still contains >= 2 edges of
    // the first flow" down to the 3-packet witness (seed, flip, flip).
    let pkts = spin_flow_meta(SpinFlowConfig {
        seed: 7,
        loss: 0.0,
        ..SpinFlowConfig::default()
    });
    assert!(pkts.iter().all(|p| !p.is_seq() && !p.is_ack()));
    let flow = pkts[0].flow;
    let mut fails = |t: &[PacketMeta]| run_spin_oracle(t).edges_of(&flow).len() >= 2;
    let minimal = ddmin(&pkts, &mut fails);
    assert_eq!(
        minimal.len(),
        3,
        "two edges need exactly three spin packets: {minimal:?}"
    );
    assert!(minimal.iter().all(|p| p.spin().is_some()));

    // Pinned reproducer: the committed artifact must match what the
    // shrinker derives today, and replay losslessly through the native
    // trace format (QUIC marker and spin bits included).
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/shrunk");
    let path = dir.join("spin-mix-minimal.trace");
    let bytes = dart::packet::trace::to_bytes(&minimal);
    match std::fs::read(&path) {
        Ok(committed) => {
            assert_eq!(
                committed, bytes,
                "committed spin reproducer diverged from the shrinker's \
                 output; regenerate tests/shrunk/spin-mix-minimal.*"
            );
            let back = dart::sim::load_native(&committed[..]).expect("replayable artifact");
            assert_eq!(back, minimal);
            assert!(back.iter().all(|p| p.spin().is_some()), "spin bits lost");
        }
        Err(_) => {
            // Bootstrap: write the artifact pair for committing.
            std::fs::write(&path, &bytes).expect("write trace artifact");
            let listing: String = minimal.iter().map(|p| format!("{p}\n")).collect();
            std::fs::write(dir.join("spin-mix-minimal.txt"), listing).expect("write listing");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For ANY fault mix and ANY table pressure, the spin engine stays
    /// sound on generated QUIC traffic — and every emitted RTT clears the
    /// engine's own minimum-period heuristic.
    #[test]
    fn spin_engine_never_fabricates(
        seed in 0u64..1_000_000,
        drop in 0.0f64..0.10,
        duplicate in 0.0f64..0.05,
        reorder in 0.0f64..0.05,
        slots in 1usize..128,
    ) {
        let mut pkts: Vec<PacketMeta> = Vec::new();
        for i in 0..3u32 {
            pkts.extend(spin_flow_meta(SpinFlowConfig {
                flow: FlowKey::from_raw(
                    0x0a0d_0000 + i, 43_000 + i as u16, 0x5db8_d9a0 + i, 443,
                ),
                seed: seed ^ i as u64,
                ..SpinFlowConfig::default()
            }));
        }
        pkts.sort_by_key(|p| p.ts);
        let fault = FaultConfig {
            drop,
            duplicate,
            reorder,
            ..FaultConfig::stress(seed)
        };
        let faulted = FaultInjector::new(fault).apply(pkts);
        let oracle = run_spin_oracle(&faulted);
        let mut eng = SpinMonitor::new(SpinConfig { slots, ..SpinConfig::default() });
        let (samples, _) = run_monitor_slice(&mut eng, &faulted);
        let card = oracle.score(&samples);
        prop_assert_eq!(card.impossible, 0, "fabricated: {:?}", card.impossible_samples);
        for s in &samples {
            prop_assert!(s.rtt >= MILLISECOND, "rejection heuristic leaked {}", s.rtt);
        }
    }
}
