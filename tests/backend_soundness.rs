//! Oracle-judged soundness of the non-exact flow-state backends.
//!
//! The sketch and precision backends trade recall for memory; what they
//! must never trade away is soundness. Against the testkit oracle, over
//! randomized lossy campus traffic and starved tables:
//!
//! * **no fabrication** — no emitted sample the oracle classifies as
//!   impossible, and (Dart anchors exact left edges) none cross-anchored;
//! * **bounded loss** — every oracle-valid sample a backend misses is
//!   accounted for by its own counters via the testkit loss budget, with
//!   sketch overwrites surfacing as unmatched advances or flowless ACKs
//!   and admission denials as unmatched advances.
//!
//! A committed ddmin-shrunk reproducer pins the smallest known
//! sketch-divergence case (see `tests/shrunk/README.md`).

use dart::core::{
    run_monitor_slice, AdmissionMode, Backend, DartConfig, DartEngine, EngineStats, RttMonitor,
};
use dart::packet::PacketMeta;
use dart::sim::scenario::{campus, CampusConfig};
use dart_testkit::{loss_budget, run_oracle, OracleConfig};
use proptest::prelude::*;

fn trace(seed: u64, connections: usize) -> Vec<PacketMeta> {
    campus(CampusConfig {
        connections,
        duration: dart::packet::SECOND,
        seed,
        mean_loss: 0.02,
        reorder: 0.01,
        ..CampusConfig::default()
    })
    .packets
}

/// Run one backend over a capture and judge it against the oracle:
/// fabrication is a failure anywhere; every miss must fit the loss budget.
fn judge(cfg: DartConfig, pkts: &[PacketMeta]) -> Result<EngineStats, TestCaseError> {
    let mut engine = DartEngine::new(cfg);
    let (samples, stats) = run_monitor_slice(&mut engine as &mut dyn RttMonitor, pkts);
    let oracle = run_oracle(
        OracleConfig {
            syn_policy: cfg.syn_policy,
            leg: cfg.leg,
        },
        pkts,
    );
    let card = oracle.score(&samples);
    prop_assert_eq!(
        card.impossible + card.cross_anchored,
        0,
        "{:?}: fabricated/cross-anchored samples",
        cfg.backend()
    );
    prop_assert!(
        card.missed() <= loss_budget(&stats),
        "{:?}: missed {} samples but counters only admit to {}",
        cfg.backend(),
        card.missed(),
        loss_budget(&stats)
    );
    Ok(stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The sketch backend under heavy churn pressure: tiny 2-way tables
    /// force recency evictions and fingerprint overwrites, all of which
    /// must land in counters, never in fabricated samples.
    #[test]
    fn sketch_backend_is_sound_under_pressure(
        seed in 0u64..(1 << 32),
        conns in 8usize..48,
    ) {
        let pkts = trace(seed, conns);
        let mut overwrites = 0u64;
        for cfg in [
            DartConfig::default().with_backend(Backend::Sketch),
            DartConfig::default()
                .with_rt(1 << 7)
                .with_pt(64, 2)
                .with_backend(Backend::Sketch),
        ] {
            overwrites += judge(cfg, &pkts)?.sketch_overwritten;
        }
        // The starved config must actually exercise the overwrite paths —
        // a sweep that never overwrites proves nothing.
        if conns >= 24 {
            prop_assert!(overwrites > 0, "pressure config never overwrote");
        }
    }

    /// The precision backend: exact tables, but evicted records must win a
    /// coin flip (or heavy-hitter status) to recirculate. Denied records
    /// may only cost recall the counters admit to.
    #[test]
    fn precision_backend_is_sound_under_pressure(
        seed in 0u64..(1 << 32),
        conns in 8usize..48,
    ) {
        let pkts = trace(seed, conns);
        let mut gated = 0u64;
        // The default gate's heavy-hitter capacity (64) can exceed the
        // trace's whole flow population, in which case every flow is heavy
        // and nothing is ever denied — a correct but toothless run. The
        // pressure config pins a 4-entry heavy-hitter table so the coin
        // actually flips.
        for cfg in [
            DartConfig::default().with_backend(Backend::Precision),
            DartConfig::default()
                .with_rt(1 << 10)
                .with_pt(8, 1)
                .with_admission(AdmissionMode::Probabilistic {
                    sample_shift: 2,
                    hh_capacity: 4,
                    seed: 0x5EED,
                }),
        ] {
            let stats = judge(cfg, &pkts)?;
            gated += stats.recirc_admission_denied + stats.recirc_admission_hh;
            // Admission only gates the recirculation path: nothing may be
            // both denied and recirculated.
            prop_assert!(
                stats.recirc_issued + stats.recirc_admission_denied
                    <= stats.pt_displaced + stats.victim_cached,
                "admission accounting exceeds evictions"
            );
        }
        // Evictions on campus traffic skew toward elephants, which
        // legitimately bypass as heavy hitters — so per-trace denial
        // counts can be zero. Require only that the gate ruled at all;
        // `precision_gate_denies_on_pinned_trace` pins actual denial.
        if conns >= 24 {
            prop_assert!(gated > 0, "pressure config never consulted the gate");
        }
    }
}

/// A pinned trace on which the precision gate demonstrably *denies*: the
/// coin path costs recall (accounted), not just the heavy-hitter bypass.
#[test]
fn precision_gate_denies_on_pinned_trace() {
    let pkts = trace(0xABCD, 24);
    let cfg = DartConfig::default()
        .with_rt(1 << 10)
        .with_pt(8, 1)
        .with_admission(AdmissionMode::Probabilistic {
            sample_shift: 2,
            hh_capacity: 4,
            seed: 0x5EED,
        });
    let mut engine = DartEngine::new(cfg);
    let (_, stats) = run_monitor_slice(&mut engine as &mut dyn RttMonitor, &pkts);
    assert!(stats.recirc_admission_denied > 0, "{stats:?}");
    assert!(stats.recirc_admission_hh > 0, "{stats:?}");
    // Denied records never reach the recirculation port.
    assert!(stats.recirc_issued <= stats.pt_displaced - stats.recirc_admission_denied);
}

/// Replay the committed ddmin-shrunk reproducer: the smallest capture on
/// which the sketch backend loses a sample the exact backend keeps (a
/// sketch-overwrite divergence). The divergence itself is intended — the
/// assertion is that it stays *sound*: the loss is visible in
/// `sketch_overwritten`-adjacent counters and fits the loss budget, and
/// the exact backend still samples.
#[test]
fn shrunk_sketch_divergence_stays_sound() {
    let bytes = std::fs::read(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/shrunk/backend-sketch-overwrite-minimal.trace"),
    )
    .expect("committed reproducer missing");
    let pkts = dart::packet::trace::from_bytes(&bytes).expect("reproducer must parse");
    let cfg_exact = DartConfig::default().with_rt(2).with_pt(2, 2);
    let cfg_sketch = cfg_exact.with_backend(Backend::Sketch);

    let mut exact = DartEngine::new(cfg_exact);
    let (exact_samples, _) = run_monitor_slice(&mut exact as &mut dyn RttMonitor, &pkts);
    let mut sketch = DartEngine::new(cfg_sketch);
    let (sketch_samples, stats) = run_monitor_slice(&mut sketch as &mut dyn RttMonitor, &pkts);

    assert!(
        sketch_samples.len() < exact_samples.len(),
        "reproducer no longer diverges: exact {} vs sketch {} samples",
        exact_samples.len(),
        sketch_samples.len()
    );
    assert!(stats.sketch_overwritten > 0, "divergence must be counted");
    let oracle = run_oracle(
        OracleConfig {
            syn_policy: cfg_sketch.syn_policy,
            leg: cfg_sketch.leg,
        },
        &pkts,
    );
    let card = oracle.score(&sketch_samples);
    assert_eq!(card.impossible + card.cross_anchored, 0);
    assert!(card.missed() <= loss_budget(&stats));
}
