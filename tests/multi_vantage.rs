//! §7's multi-vantage-point deployment: Dart instances at several points on
//! the path decompose the end-to-end RTT into per-segment legs, localizing
//! where latency lives.

use dart::core::{run_trace, DartConfig};
use dart::packet::{FlowKey, MILLISECOND};
use dart::sim::netsim::{ConnSpec, NetSim};

fn attack_free_conn(n: u16, ext_ms: u64) -> ConnSpec {
    let mut spec = ConnSpec::simple(
        FlowKey::from_raw(0x0a08_0909, 42_000 + n, 0x2d4f_a1b2, 443),
        n as u64 * 50 * MILLISECOND,
        600,
        600,
    );
    spec.path.jitter = 0.0;
    spec.path.int_owd = MILLISECOND;
    spec.path.ext_owd = ext_ms * MILLISECOND / 2;
    spec
}

#[test]
fn downstream_vantage_points_see_shorter_external_rtts() {
    // 40 ms external RTT; VPs at 25%, 50%, 75% of the way to the server.
    let specs: Vec<ConnSpec> = (0..30).map(|i| attack_free_conn(i, 40)).collect();
    let out = NetSim::new(specs, 11)
        .with_extra_vantage_points([0.25, 0.5, 0.75])
        .run();
    assert_eq!(out.vp_traces.len(), 3);

    // Run an independent Dart at each vantage point.
    let mut mins = Vec::new();
    let (primary, _) = run_trace(DartConfig::unlimited(), &out.packets);
    assert!(!primary.is_empty());
    mins.push(primary.iter().map(|s| s.rtt).min().unwrap());
    for vp in &out.vp_traces {
        let (samples, _) = run_trace(DartConfig::unlimited(), vp);
        assert!(!samples.is_empty(), "vantage point collected nothing");
        mins.push(samples.iter().map(|s| s.rtt).min().unwrap());
    }

    // External-leg RTT shrinks monotonically toward the server:
    // ~40, ~30, ~20, ~10 ms.
    for w in mins.windows(2) {
        assert!(
            w[1] < w[0],
            "downstream VP did not see a shorter RTT: {mins:?}"
        );
    }
    let expect = [40u64, 30, 20, 10];
    for (m, e) in mins.iter().zip(expect) {
        let ms = *m as f64 / 1e6;
        assert!(
            (ms - e as f64).abs() < 3.0,
            "expected ≈{e} ms, measured {ms:.2} ms (all: {mins:?})"
        );
    }
}

#[test]
fn leg_decomposition_localizes_latency() {
    // §7's use case: "identifying which part of the network is responsible
    // for performance degradation". The segment between the 50% VP and the
    // server carries the bulk of a 100 ms path; the decomposition exposes it.
    let specs: Vec<ConnSpec> = (0..30).map(|i| attack_free_conn(i, 100)).collect();
    let out = NetSim::new(specs, 12)
        .with_extra_vantage_points([0.5])
        .run();
    let (at_monitor, _) = run_trace(DartConfig::unlimited(), &out.packets);
    let (at_mid, _) = run_trace(DartConfig::unlimited(), &out.vp_traces[0]);
    let m0 = at_monitor.iter().map(|s| s.rtt).min().unwrap();
    let m1 = at_mid.iter().map(|s| s.rtt).min().unwrap();
    // Segment RTT between the two vantage points = difference of their
    // external-leg RTTs ≈ 50 ms.
    let segment = m0 - m1;
    let ms = segment as f64 / 1e6;
    assert!((ms - 50.0).abs() < 5.0, "segment RTT {ms:.2} ms");
}

#[test]
fn vantage_traces_are_time_ordered() {
    let specs: Vec<ConnSpec> = (0..10).map(|i| attack_free_conn(i, 30)).collect();
    let out = NetSim::new(specs, 13)
        .with_extra_vantage_points([0.3, 0.9])
        .run();
    for vp in &out.vp_traces {
        assert!(vp.windows(2).all(|w| w[0].ts <= w[1].ts));
    }
}
