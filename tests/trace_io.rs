//! Trace I/O integration: a simulated workload survives the full
//! native-format and pcap round trips, and every consumer (Dart, tcptrace)
//! produces identical results from the stored copy.

use dart::baselines::{run_tcptrace, TcpTraceConfig};
use dart::core::{run_trace, DartConfig};
use dart::packet::parse::PrefixClassifier;
use dart::packet::trace;
use dart::sim::replay::{dump_pcap, load_native, load_pcap};
use dart::sim::scenario::{campus, CampusConfig};
use std::net::Ipv4Addr;

fn small_trace() -> dart::sim::scenario::GeneratedTrace {
    campus(CampusConfig {
        connections: 120,
        duration: 3 * dart::packet::SECOND,
        ..CampusConfig::default()
    })
}

#[test]
fn native_round_trip_preserves_analysis_results() {
    let t = small_trace();
    let bytes = trace::to_bytes(&t.packets);
    let restored = load_native(&bytes[..]).unwrap();
    assert_eq!(restored, t.packets);

    let (direct, _) = run_trace(DartConfig::default(), &t.packets);
    let (replayed, _) = run_trace(DartConfig::default(), &restored);
    assert_eq!(direct, replayed);
}

#[test]
fn pcap_round_trip_preserves_analysis_results() {
    let t = small_trace();
    let mut buf = Vec::new();
    dump_pcap(&t.packets, &mut buf).unwrap();

    let classifier = PrefixClassifier::new([(Ipv4Addr::new(10, 0, 0, 0), 8u8)]);
    let (restored, skipped) = load_pcap(&buf[..], &classifier).unwrap();
    assert_eq!(skipped, 0);
    assert_eq!(restored, t.packets);

    // Both Dart and tcptrace agree between the live and replayed copies.
    let (d1, _) = run_trace(DartConfig::default(), &t.packets);
    let (d2, _) = run_trace(DartConfig::default(), &restored);
    assert_eq!(d1, d2);
    let (t1, _) = run_tcptrace(TcpTraceConfig::default(), &t.packets);
    let (t2, _) = run_tcptrace(TcpTraceConfig::default(), &restored);
    assert_eq!(t1, t2);
}

#[test]
fn pcap_file_is_readable_by_format_rules() {
    // The emitted file honors the nanosecond-pcap header layout: magic,
    // version 2.4, and per-record lengths that walk the file exactly.
    let t = small_trace();
    let mut buf = Vec::new();
    dump_pcap(&t.packets, &mut buf).unwrap();
    assert_eq!(&buf[0..4], &0xa1b2_3c4du32.to_le_bytes());
    assert_eq!(u16::from_le_bytes([buf[4], buf[5]]), 2);
    assert_eq!(u16::from_le_bytes([buf[6], buf[7]]), 4);
    let mut off = 24;
    let mut records = 0;
    while off < buf.len() {
        let incl = u32::from_le_bytes(buf[off + 8..off + 12].try_into().unwrap()) as usize;
        off += 16 + incl;
        records += 1;
    }
    assert_eq!(off, buf.len());
    assert_eq!(records, t.packets.len());
}

#[test]
fn truncated_native_trace_fails_loudly() {
    let t = small_trace();
    let mut bytes = trace::to_bytes(&t.packets);
    bytes.truncate(bytes.len() - 7);
    assert!(load_native(&bytes[..]).is_err());
}
