//! Packet-accounting conservation across epoch rotations: every packet a
//! driver feeds must land in exactly one `EngineStats` bucket — processed
//! (`stats.packets`) or shed (`stats.monitor_miss`) — no matter how many
//! rotations interleave with the feed. This is the invariant the daemon's
//! `/healthz` `fed` figure and `DaemonReport::packets` both lean on: a
//! rotation may sweep table state (later ACKs then miss and re-insert),
//! but it must never create or destroy a packet's accounting.

use dart::core::sharded::{ShardedConfig, ShardedMonitor};
use dart::core::{DartConfig, DartEngine, EpochRotation, RttMonitor, RttSample};
use dart::packet::{
    CycleSource, Direction, FlowKey, Nanos, PacketBuilder, PacketMeta, PacketSource,
};

/// `flows` connections, `count` data/ACK exchanges each, time-sorted —
/// plus one trailing data packet per flow whose ACK never arrives, so
/// every pass leaves in-flight tracker state for rotations to sweep.
fn exchanges(flows: u32, count: u32) -> Vec<PacketMeta> {
    let mut pkts = Vec::new();
    for fi in 0..flows {
        let flow = FlowKey::from_raw(0x0a00_0100 + fi, 40_000 + fi as u16, 0x5db8_d822, 443);
        for e in 0..count {
            let t = (e as Nanos) * 10_000_000 + (fi as Nanos) * 1_000;
            pkts.push(
                PacketBuilder::new(flow, t)
                    .seq(e * 1460)
                    .payload(1460)
                    .dir(Direction::Outbound)
                    .build(),
            );
            pkts.push(
                PacketBuilder::new(flow.reverse(), t + 5_000_000)
                    .ack((e * 1460).wrapping_add(1460))
                    .dir(Direction::Inbound)
                    .build(),
            );
        }
        pkts.push(
            PacketBuilder::new(flow, (count as Nanos) * 10_000_000 + (fi as Nanos) * 1_000)
                .seq(count * 1460)
                .payload(1460)
                .dir(Direction::Outbound)
                .build(),
        );
    }
    pkts.sort_by_key(|p| p.ts);
    pkts
}

/// Feed a cycled trace through a monitor in blocks, rotating every
/// `rotate_every_blocks` with a cutoff trailing the newest timestamp.
/// Returns (packets fed, rotations performed, merged rotation totals).
fn drive(
    monitor: &mut dyn RttMonitor,
    passes: u64,
    rotate_every_blocks: usize,
    retain: Nanos,
) -> (u64, u64, EpochRotation) {
    let pkts = exchanges(16, 6);
    let mut source = CycleSource::with_gap(pkts, 1_000_000).with_passes(passes);
    let mut buf: Vec<PacketMeta> = Vec::new();
    let mut sink: Vec<RttSample> = Vec::new();
    let mut fed = 0u64;
    let mut max_ts: Nanos = 0;
    let mut blocks = 0usize;
    let mut rotations = 0u64;
    let mut carried = EpochRotation::default();
    loop {
        let n = source
            .next_chunk(&mut buf, 64)
            .expect("in-memory source is infallible");
        if n == 0 {
            break;
        }
        fed += n as u64;
        max_ts = max_ts.max(buf[n - 1].ts);
        monitor.on_batch(&buf[..n], &mut sink);
        blocks += 1;
        if blocks.is_multiple_of(rotate_every_blocks) {
            carried.merge(&monitor.rotate_epoch(max_ts.saturating_sub(retain)));
            rotations += 1;
        }
    }
    monitor.flush(&mut sink);
    (fed, rotations, carried)
}

#[test]
fn serial_engine_conserves_packets_across_rotations() {
    let mut engine = DartEngine::new(DartConfig::default());
    let (fed, rotations, rotation) = drive(&mut engine, 4, 3, 20_000_000);
    assert!(rotations >= 4, "rotation cadence did not fire: {rotations}");
    let stats = RttMonitor::stats(&engine);
    assert_eq!(
        fed,
        stats.packets + stats.monitor_miss,
        "fed != processed + shed: {stats:?}"
    );
    assert!(stats.samples > 0, "rotation starved the engine: {stats:?}");
    // The trailing cutoff must actually sweep between passes: flows recur
    // every pass, so each rotation sees candidates older than the window.
    assert!(
        rotation.flows_dropped + rotation.records_dropped > 0,
        "rotations never swept anything: {rotation:?}"
    );
}

#[test]
fn sharded_monitor_conserves_packets_across_rotations() {
    for shards in [1usize, 4] {
        let cfg = ShardedConfig::new(DartConfig::default(), shards).with_batch_size(32);
        let mut monitor = ShardedMonitor::new(cfg);
        let (fed, rotations, _) = drive(&mut monitor, 4, 3, 20_000_000);
        assert!(rotations >= 4);
        let run = monitor.into_run();
        assert_eq!(
            fed,
            run.stats.packets + run.stats.monitor_miss,
            "shards={shards}: fed != processed + shed: {:?}",
            run.stats
        );
        assert!(run.stats.samples > 0, "shards={shards}: no samples");
    }
}

#[test]
fn rotation_free_and_rotation_heavy_runs_account_identically() {
    // Rotations may move packets between buckets (a swept flow's ACK
    // becomes a miss-then-reinsert) but the bucket *sum* is invariant.
    let mut quiet = DartEngine::new(DartConfig::default());
    let (fed_q, _, _) = drive(&mut quiet, 3, usize::MAX, 0);
    let mut stormy = DartEngine::new(DartConfig::default());
    let (fed_s, rotations, _) = drive(&mut stormy, 3, 1, 0);
    assert_eq!(fed_q, fed_s, "same source, same feed");
    assert!(
        rotations >= 8,
        "every-block rotation expected, got {rotations}"
    );
    let (qs, ss) = (RttMonitor::stats(&quiet), RttMonitor::stats(&stormy));
    assert_eq!(qs.packets + qs.monitor_miss, fed_q);
    assert_eq!(ss.packets + ss.monitor_miss, fed_s);
    // Aggressive rotation (cutoff = newest ts) costs samples, never
    // accounting: the stormy run emits no more than the quiet one.
    assert!(
        ss.samples <= qs.samples,
        "rotation fabricated samples: {} > {}",
        ss.samples,
        qs.samples
    );
}
