//! Property tests over the simulator substrate: whatever the workload
//! parameters, the generated traces must be well-formed TCP as seen at the
//! monitor, and the endpoint state machines must conserve bytes.

use dart::packet::FlowKey;
use dart::packet::{Direction, SeqNum};
use dart::sim::netsim::{simulate, ConnSpec, Exchange, PathParams};
use dart::sim::scenario::{campus, CampusConfig};
use proptest::prelude::*;
use std::collections::HashMap;

fn conn_strategy() -> impl Strategy<Value = (u64, u64, u8, u64, u64, bool)> {
    (
        100u64..20_000,         // request bytes
        100u64..200_000,        // response bytes
        1u8..4,                 // exchanges
        200_000u64..30_000_000, // int owd (0.2–30 ms)
        500_000u64..60_000_000, // ext owd
        any::<bool>(),          // lossy?
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every connection delivers exactly its scripted bytes, end to end,
    /// under any delay/loss parameters.
    #[test]
    fn endpoints_conserve_bytes((req, resp, n, int, ext, lossy) in conn_strategy()) {
        let flow = FlowKey::from_raw(0x0a080042, 40999, 0x08080404, 443);
        let exchanges: Vec<Exchange> = (0..n)
            .map(|_| Exchange { request: req, response: resp })
            .collect();
        let mut spec = ConnSpec::simple(flow, 0, 0, 0);
        spec.exchanges = exchanges;
        spec.path = PathParams {
            int_owd: int,
            ext_owd: ext,
            jitter: 0.05,
            loss_pre: if lossy { 0.01 } else { 0.0 },
            loss_post: if lossy { 0.01 } else { 0.0 },
            ..PathParams::default()
        };
        spec.endpoint.rto_initial = (2 * (int + ext)).max(200_000_000) * 3;
        let out = simulate(vec![spec], req ^ resp);
        let r = &out.reports[0];
        prop_assert!(r.established);
        prop_assert_eq!(r.bytes_c2s, req * n as u64);
        prop_assert_eq!(r.bytes_s2c, resp * n as u64);
    }

    /// Monitor traces are well-formed: time-ordered, directions consistent
    /// with flow keys, SYN only at connection starts, and sequence numbers
    /// per (flow, eack) never decrease in time for first sightings.
    #[test]
    fn traces_are_well_formed(seed in 0u64..1000) {
        // monitor_miss = 0: with capture misses enabled the monitor can drop
        // the original SYN yet still forward it, and when the resulting
        // SYN-ACK is lost after the monitor the client's retransmitted SYN
        // becomes the first *captured* SYN — later than the SYN-ACK. The
        // strict handshake ordering below only holds for a miss-free monitor.
        let t = campus(CampusConfig {
            connections: 60,
            duration: 2 * dart::packet::SECOND,
            seed,
            monitor_miss: 0.0,
            ..CampusConfig::default()
        });
        prop_assert!(t.packets.windows(2).all(|w| w[0].ts <= w[1].ts));
        for p in &t.packets {
            // Direction must agree with the campus-side address.
            let campus_src = u32::from(p.flow.src_ip) >> 24 == 10;
            match p.dir {
                Direction::Outbound => prop_assert!(campus_src),
                Direction::Inbound => prop_assert!(!campus_src),
            }
        }
        // Handshake ordering: a SYN-ACK is only sent after its SYN was
        // delivered, and delivery happens after capture — so with a miss-free
        // monitor every SYN-ACK's capture follows some captured SYN of the
        // same connection. Verify per connection.
        let mut first_syn: HashMap<FlowKey, u64> = HashMap::new();
        for p in &t.packets {
            if p.flags.is_syn() && !p.flags.is_ack() {
                first_syn.entry(p.flow.canonical()).or_insert(p.ts);
            }
        }
        for p in &t.packets {
            if p.flags.is_syn() && p.flags.is_ack() {
                if let Some(&syn_ts) = first_syn.get(&p.flow.canonical()) {
                    prop_assert!(p.ts >= syn_ts, "SYN-ACK before SYN at monitor");
                }
            }
        }
    }

    /// Determinism: the same seed yields byte-identical traces; different
    /// seeds yield different ones.
    #[test]
    fn trace_seed_determinism(seed in 0u64..500) {
        let cfg = |s| CampusConfig {
            connections: 25,
            duration: dart::packet::SECOND,
            seed: s,
            ..CampusConfig::default()
        };
        let a = campus(cfg(seed));
        let b = campus(cfg(seed));
        prop_assert_eq!(&a.packets, &b.packets);
        let c = campus(cfg(seed + 1));
        prop_assert_ne!(&a.packets, &c.packets);
    }

    /// In a loss-free, jitter-free connection the monitor observes every
    /// payload byte exactly once (no retransmissions, no holes), and data
    /// sequence numbers are strictly increasing per direction.
    #[test]
    fn clean_connections_have_no_retransmissions(
        req in 500u64..5_000,
        resp in 500u64..150_000,
    ) {
        let flow = FlowKey::from_raw(0x0a080043, 41000, 0x08080505, 443);
        let mut spec = ConnSpec::simple(flow, 0, req, resp);
        spec.path.jitter = 0.0;
        let out = simulate(vec![spec], 5);
        prop_assert_eq!(out.reports[0].retransmissions, 0);
        let mut seen = std::collections::HashSet::new();
        for p in out.packets.iter().filter(|p| p.payload_len > 0) {
            // Every (dir, seq) appears once.
            prop_assert!(
                seen.insert((p.dir, p.seq)),
                "duplicate data segment at monitor: {:?} {:?}", p.dir, p.seq
            );
        }
        // Byte accounting at the monitor equals the scripted volume.
        let outb: u64 = out
            .packets
            .iter()
            .filter(|p| p.dir == Direction::Outbound)
            .map(|p| p.payload_len as u64)
            .sum();
        prop_assert_eq!(outb, req);
    }

    /// eACK arithmetic at the monitor: for every data packet, eack - seq
    /// equals payload (+1 for SYN/FIN), even at sequence wraparound.
    #[test]
    fn eack_arithmetic_is_consistent(seed in 0u64..200) {
        let t = campus(CampusConfig {
            connections: 30,
            duration: dart::packet::SECOND,
            wrap_frac: 0.5, // force plenty of wraparound flows
            seed,
            ..CampusConfig::default()
        });
        for p in &t.packets {
            if p.is_seq() {
                let mut len = p.payload_len;
                if p.flags.is_syn() { len += 1; }
                if p.flags.is_fin() { len += 1; }
                prop_assert_eq!(p.eack(), SeqNum(p.seq.raw().wrapping_add(len)));
            }
        }
    }
}
