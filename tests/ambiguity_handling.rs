//! Cross-tool correctness under TCP's ambiguities (paper §2.2): crafted
//! packet sequences where the strawman produces wrong samples, Dart
//! refuses, and tcptrace (Karn) agrees with Dart.

use dart::baselines::{run_tcptrace, Strawman, StrawmanConfig, TcpTraceConfig};
use dart::core::{run_monitor_slice, run_trace, DartConfig};
use dart::packet::{Direction, FlowKey, PacketBuilder, PacketMeta, MILLISECOND};

fn flow() -> FlowKey {
    FlowKey::from_raw(0x0a08_0001, 40123, 0x5db8_d822, 443)
}

/// The retransmission-ambiguity scenario: data at t=0, retransmit at t=50ms,
/// ACK at t=60ms. The true RTT is unknowable (60 or 10 ms?).
fn retransmission_trace() -> Vec<PacketMeta> {
    let f = flow();
    vec![
        PacketBuilder::new(f, 0)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build(),
        PacketBuilder::new(f, 50 * MILLISECOND)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build(),
        PacketBuilder::new(f.reverse(), 60 * MILLISECOND)
            .ack(100u32)
            .dir(Direction::Inbound)
            .build(),
    ]
}

#[test]
fn dart_and_tcptrace_refuse_ambiguous_retransmission_sample() {
    let trace = retransmission_trace();
    let (dart, _) = run_trace(DartConfig::unlimited(), &trace);
    assert!(dart.is_empty(), "dart must not guess: {dart:?}");
    let (tt, _) = run_tcptrace(TcpTraceConfig::default(), &trace);
    assert!(tt.is_empty(), "tcptrace (Karn) must not guess: {tt:?}");
}

#[test]
fn strawman_guesses_wrong_on_retransmission() {
    // The §2.1 strawman refreshes the timestamp and reports 10 ms — an
    // ambiguous, underestimated sample. This is the defect Dart exists to
    // fix; assert it so the baseline stays honest.
    let mut sm = Strawman::new(StrawmanConfig {
        slots: 64,
        timeout: None,
        ..StrawmanConfig::default()
    });
    let (out, _) = run_monitor_slice(&mut sm, &retransmission_trace());
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].rtt, 10 * MILLISECOND);
}

#[test]
fn reordering_inflation_is_suppressed() {
    // §2.2's P1..P4 scenario: P2 reordered in the network; the cumulative
    // ACK after the hole fills would inflate P4's RTT. Dart must not emit
    // it.
    let f = flow();
    let seg = |seq: u32, t| {
        PacketBuilder::new(f, t)
            .seq(seq)
            .payload(100)
            .dir(Direction::Outbound)
            .build()
    };
    let ack = |n: u32, t| {
        PacketBuilder::new(f.reverse(), t)
            .ack(n)
            .dir(Direction::Inbound)
            .build()
    };
    let trace = vec![
        seg(0, 0),
        seg(100, MILLISECOND),
        seg(200, 2 * MILLISECOND),
        seg(300, 3 * MILLISECOND),
        ack(100, 10 * MILLISECOND), // acks P1
        ack(100, 11 * MILLISECOND), // dup: P2 missing at receiver
        ack(100, 12 * MILLISECOND), // dup again
        ack(400, 80 * MILLISECOND), // P2 finally arrived: cumulative ACK
    ];
    let (dart, stats) = run_trace(DartConfig::unlimited(), &trace);
    // Only P1's honest sample; the inflated 77 ms sample for P4 is refused.
    assert_eq!(dart.len(), 1);
    assert_eq!(dart[0].rtt, 10 * MILLISECOND);
    assert!(stats.ack_duplicate >= 1);
}

#[test]
fn optimistic_acks_do_not_deflate() {
    // §7: a misbehaving receiver ACKs data before it arrives. Dart ignores
    // ACKs beyond the right edge, so no deflated sample appears.
    let f = flow();
    let trace = vec![
        PacketBuilder::new(f, 0)
            .seq(0u32)
            .payload(1000)
            .dir(Direction::Outbound)
            .build(),
        // Optimistic ACK for bytes never sent.
        PacketBuilder::new(f.reverse(), MILLISECOND)
            .ack(5000u32)
            .dir(Direction::Inbound)
            .build(),
        // Legitimate ACK afterwards.
        PacketBuilder::new(f.reverse(), 20 * MILLISECOND)
            .ack(1000u32)
            .dir(Direction::Inbound)
            .build(),
    ];
    let (dart, stats) = run_trace(DartConfig::unlimited(), &trace);
    assert_eq!(stats.ack_optimistic, 1);
    assert_eq!(dart.len(), 1);
    assert_eq!(dart[0].rtt, 20 * MILLISECOND, "only the honest sample");
}

#[test]
fn holes_keep_only_highest_range() {
    // Fig 4d: the monitor misses a middle segment; Dart tracks only the
    // contiguous range ahead of the hole, so the pre-hole segment's late
    // ACK is not matched while the post-hole segment's is.
    let f = flow();
    let trace = vec![
        PacketBuilder::new(f, 0)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build(),
        // [100, 200) never seen by the monitor; [200, 300) arrives.
        PacketBuilder::new(f, 2 * MILLISECOND)
            .seq(200u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build(),
        // Receiver saw everything: cumulative ACKs.
        PacketBuilder::new(f.reverse(), 10 * MILLISECOND)
            .ack(100u32)
            .dir(Direction::Inbound)
            .build(),
        PacketBuilder::new(f.reverse(), 12 * MILLISECOND)
            .ack(300u32)
            .dir(Direction::Inbound)
            .build(),
    ];
    let (dart, stats) = run_trace(DartConfig::unlimited(), &trace);
    assert_eq!(stats.seq_hole_reset, 1);
    // Only the post-hole segment samples (ack 100 is below the reset left
    // edge); tcptrace gets both — the Fig 9a count gap in miniature.
    assert_eq!(dart.len(), 1);
    assert_eq!(dart[0].eack.raw(), 300);
    let (tt, _) = run_tcptrace(TcpTraceConfig::default(), &trace);
    assert_eq!(tt.len(), 2);
}

#[test]
fn wraparound_costs_dart_but_not_tcptrace() {
    // §4: Dart resets at the wrap and foregoes top-of-space samples;
    // tcptrace unwraps and keeps them.
    let f = flow();
    let trace = vec![
        PacketBuilder::new(f, 0)
            .seq(u32::MAX - 199)
            .payload(100)
            .dir(Direction::Outbound)
            .build(),
        PacketBuilder::new(f, MILLISECOND)
            .seq(u32::MAX - 99)
            .payload(200) // crosses zero
            .dir(Direction::Outbound)
            .build(),
        PacketBuilder::new(f.reverse(), 15 * MILLISECOND)
            .ack(u32::MAX - 99)
            .dir(Direction::Inbound)
            .build(),
        PacketBuilder::new(f.reverse(), 16 * MILLISECOND)
            .ack(100u32)
            .dir(Direction::Inbound)
            .build(),
    ];
    let (dart, stats) = run_trace(DartConfig::unlimited(), &trace);
    assert_eq!(stats.seq_wraparound, 1);
    assert!(
        dart.is_empty(),
        "dart forgoes wrap-adjacent samples: {dart:?}"
    );
    let (tt, _) = run_tcptrace(TcpTraceConfig::default(), &trace);
    assert_eq!(tt.len(), 2, "tcptrace unwraps and keeps both");
}
