//! Every monitoring approach the paper discusses, run on the same synthetic
//! campus trace — the §8 related-work comparison as executable assertions.

use dart::analytics::{CongestionConfig, CongestionMonitor};
use dart::baselines::{
    Dapper, DapperConfig, LeanRtt, Pping, PpingConfig, Strawman, StrawmanConfig,
};
use dart::core::{
    run_monitor_slice, run_trace, DartConfig, DartEngine, EngineEvent, Leg, RttSample,
};
use dart::sim::scenario::{campus, CampusConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn trace() -> dart::sim::scenario::GeneratedTrace {
    campus(CampusConfig {
        connections: 600,
        duration: 10 * dart::packet::SECOND,
        ts_frac: 0.6,
        ..CampusConfig::default()
    })
}

#[test]
fn dart_collects_far_more_samples_than_dapper() {
    // §8: Dapper tracks one packet per window — too few samples per unit
    // time for windowed analytics.
    let t = trace();
    let (dart, _) = run_trace(DartConfig::unlimited(), &t.packets);
    let mut dapper = Dapper::new(DapperConfig::default());
    let (dapper_samples, _) = run_monitor_slice(&mut dapper, &t.packets);
    assert!(
        dart.len() as f64 > dapper_samples.len() as f64 * 1.5,
        "dart {} vs dapper {}",
        dart.len(),
        dapper_samples.len()
    );
    assert!(dapper.stats().skipped_busy > 0);
}

#[test]
fn pping_is_blind_to_optionless_flows_and_coarse_clocks() {
    // §8's critiques of timestamp-based measurement, as observable facts.
    // (pping can out-COUNT Dart on download-heavy traffic because it also
    // harvests the pure-ACK stream — the problem is coverage and precision,
    // not volume.)
    let t = trace();
    let (dart, _) = run_trace(DartConfig::unlimited(), &t.packets);
    let mut pping = Pping::new(PpingConfig::default());
    let (pping_samples, _) = run_monitor_slice(&mut pping, &t.packets);

    // (1) A large share of traffic carries no option at all — invisible.
    assert!(pping.stats().no_option > 0, "option-less traffic exists");
    // (2) Coarse clocks collapse same-tick packets into one TSval.
    assert!(pping.stats().tsval_repeats > 0, "coarse ticks exist");

    // (3) Entire flows measured by Dart yield *zero* pping samples.
    let dart_flows: std::collections::HashSet<_> =
        dart.iter().map(|s| s.flow.canonical()).collect();
    let pping_flows: std::collections::HashSet<_> =
        pping_samples.iter().map(|s| s.flow.canonical()).collect();
    let blind = dart_flows.difference(&pping_flows).count();
    assert!(
        blind * 4 >= dart_flows.len(),
        "expected >=25% of Dart-measured flows invisible to pping: {blind}/{}",
        dart_flows.len()
    );
}

#[test]
fn lean_average_is_skewed_by_ack_thinning() {
    // The sum-based estimator's per-flow averages drift from Dart's matched
    // per-flow averages on real traffic (cumulative/delayed ACKs break its
    // pairing assumption).
    let t = trace();
    let (dart, _) = run_trace(DartConfig::unlimited(), &t.packets);
    let mut lean = LeanRtt::new(Leg::External);
    for p in &t.packets {
        lean.process(p);
    }
    // Per-flow matched averages from Dart.
    let mut per_flow: std::collections::HashMap<_, (u64, u64)> = Default::default();
    for s in &dart {
        let e = per_flow.entry(s.flow).or_insert((0, 0));
        e.0 += s.rtt;
        e.1 += 1;
    }
    let mut compared = 0;
    let mut skewed = 0;
    for (flow, (sum, n)) in per_flow {
        if n < 10 {
            continue;
        }
        let dart_avg = sum / n;
        if let Some(est) = lean.estimate(&flow) {
            if let Some(lean_avg) = est.avg_rtt {
                compared += 1;
                let err = (lean_avg as f64 - dart_avg as f64).abs() / dart_avg as f64;
                if err > 0.25 {
                    skewed += 1;
                }
            }
        }
    }
    assert!(compared >= 10, "not enough comparable flows: {compared}");
    assert!(
        skewed * 2 > compared,
        "expected most lean estimates skewed >25%: {skewed}/{compared}"
    );
}

#[test]
fn strawman_emits_samples_dart_refuses() {
    // On lossy traffic the strawman reports ambiguous retransmission
    // samples; Dart refuses them by design.
    let t = trace();
    let (_, dart_stats) = run_trace(DartConfig::unlimited(), &t.packets);
    let mut sm = Strawman::new(StrawmanConfig {
        slots: 1 << 16,
        timeout: None,
        ..StrawmanConfig::default()
    });
    let _ = run_monitor_slice(&mut sm, &t.packets);
    // Dart saw retransmissions and refused to track them.
    assert!(dart_stats.seq_retransmission > 0);
    // The strawman inserted everything anyway.
    assert!(sm.stats().inserted as usize > dart_stats.seq_tracked as usize);
}

#[test]
fn engine_events_drive_the_congestion_monitor() {
    let t = trace();
    let events: Rc<RefCell<Vec<EngineEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = events.clone();
    let mut engine = DartEngine::new(DartConfig::unlimited());
    engine.set_event_sink(Box::new(move |ev| sink.borrow_mut().push(ev)));
    let mut samples: Vec<RttSample> = Vec::new();
    engine.process_trace(t.packets.iter(), &mut samples);

    let events = events.borrow();
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, EngineEvent::RangeCollapse { .. }))
            .count() as u64,
        engine.stats().range_collapses,
        "every collapse surfaced as an event"
    );

    let mut monitor = CongestionMonitor::new(CongestionConfig {
        window: dart::packet::SECOND,
        collapse_threshold: 3,
    });
    let mut alerts = 0;
    for ev in events.iter() {
        if monitor.offer(ev).is_some() {
            alerts += 1;
        }
    }
    // The lossy campus trace has at least one flow collapsing repeatedly.
    assert!(alerts > 0, "no congestion alerts on a lossy trace");
    assert_eq!(monitor.total_collapses(), engine.stats().range_collapses);
}
