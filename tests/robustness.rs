//! Robustness: parsers and loaders must never panic on arbitrary bytes —
//! a monitoring device eats whatever the network feeds it.

use dart::packet::parse::{parse_ethernet_frame, PrefixClassifier};
use dart::packet::pcap::PcapReader;
use dart::packet::tcp::TcpHeader;
use dart::packet::trace::TraceReader;
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes through the frame parser: errors allowed, panics not.
    #[test]
    fn frame_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let classifier = PrefixClassifier::new([(Ipv4Addr::new(10, 0, 0, 0), 8u8)]);
        let _ = parse_ethernet_frame(0, &bytes, &classifier);
    }

    /// Arbitrary bytes as a pcap stream: reader returns errors, not panics,
    /// and always terminates.
    #[test]
    fn pcap_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        if let Ok(reader) = PcapReader::new(&bytes[..]) {
            for rec in reader.records().take(64) {
                if rec.is_err() {
                    break;
                }
            }
        }
    }

    /// Arbitrary bytes as a native trace.
    #[test]
    fn trace_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        if let Ok(reader) = TraceReader::new(&bytes[..]) {
            for rec in reader.packets().take(64) {
                if rec.is_err() {
                    break;
                }
            }
        }
    }

    /// Arbitrary TCP option bytes through the timestamp scanner.
    #[test]
    fn tcp_option_walker_never_panics(options in prop::collection::vec(any::<u8>(), 0..40)) {
        let hdr = TcpHeader {
            options,
            ..TcpHeader::default()
        };
        let _ = hdr.timestamps();
    }

    /// A valid frame with a few corrupted bytes: parse may fail or yield a
    /// different packet, but must not panic, and a successful parse must be
    /// internally consistent.
    #[test]
    fn corrupted_valid_frames_never_panic(
        corrupt_at in prop::collection::vec((0usize..60, any::<u8>()), 1..6)
    ) {
        use dart::packet::{FlowKey, PacketBuilder};
        let meta = PacketBuilder::new(
            FlowKey::new(Ipv4Addr::new(10, 0, 0, 5), 40000, Ipv4Addr::new(1, 2, 3, 4), 443),
            7,
        )
        .seq(100u32)
        .ack(200u32)
        .payload(32)
        .tsopt(1, 2)
        .build();
        let mut frame = dart::packet::parse::synthesize_frame(&meta);
        for (pos, val) in corrupt_at {
            if pos < frame.len() {
                frame[pos] = val;
            }
        }
        let classifier = PrefixClassifier::new([(Ipv4Addr::new(10, 0, 0, 0), 8u8)]);
        if let Ok(parsed) = parse_ethernet_frame(7, &frame, &classifier) {
            // eACK arithmetic must still be self-consistent.
            let _ = parsed.eack();
            let _ = parsed.is_pure_ack();
        }
    }
}
