//! Conformance properties for the [`RttMonitor`] contract, checked for
//! every engine in the standard registry (plus the dynamically named
//! sharded variants): whatever an engine does internally, driving it
//! through the trait must be indistinguishable from its batch path.
//!
//! Four contracts from `dart_core::monitor`'s module docs:
//!
//! * **Batch/streaming equivalence** — feeding packets one at a time via
//!   `on_packet` then flushing yields byte-identical samples and stats to
//!   `run_monitor_slice` on a fresh instance.
//! * **Block-split invariance** — delivering the stream through `on_batch`
//!   over *any* split into blocks (empty and size-1 included) is
//!   indistinguishable from the per-packet path, for the default
//!   per-packet fallback and Dart's specialized SoA pipeline alike.
//! * **Flush idempotence** — a second `flush` emits nothing and leaves
//!   `stats()` unchanged, through the batch path too.
//! * **Chunked sources** — streaming through a [`PacketSource`] in bounded
//!   chunks (`run_monitor`) equals the slice path, so traces never need
//!   full materialization.

use dart::baselines::EngineRegistry;
use dart::core::{run_monitor, run_monitor_slice, DartConfig, RttSample};
use dart::packet::{FlowKey, PacketMeta, SliceSource};
use dart::sim::scenario::{campus, CampusConfig};
use dart::sim::spin::SpinFlowConfig;
use dart::sim::spin_flow_meta;
use proptest::prelude::*;

/// Randomized lossy/reordered campus workloads, kept small enough for a
/// property-test budget across ~13 engines.
fn trace_params() -> impl Strategy<Value = (u64, usize, f64, f64)> {
    (
        0u64..10_000, // seed
        15usize..60,  // connections
        0.0f64..0.05, // mean loss
        0.0f64..0.02, // reorder probability
    )
}

/// A mixed TCP + QUIC capture: every conformance contract is checked over
/// traffic both packet families see, so the spin-bit engine's edge state
/// and the SEQ/ACK engines' blindness to QUIC get the same coverage.
fn make_trace(seed: u64, connections: usize, loss: f64, reorder: f64) -> Vec<PacketMeta> {
    let mut pkts = campus(CampusConfig {
        connections,
        duration: dart::packet::SECOND,
        seed,
        mean_loss: loss,
        reorder,
        ..CampusConfig::default()
    })
    .packets;
    for i in 0..2u32 {
        pkts.extend(spin_flow_meta(SpinFlowConfig {
            flow: FlowKey::from_raw(0x0a0c_0000 + i, 42_000 + i as u16, 0x5db8_d9f0 + i, 443),
            duration: dart::packet::SECOND,
            seed: seed ^ (0x51C0 + i as u64),
            ..SpinFlowConfig::default()
        }));
    }
    pkts.sort_by_key(|p| p.ts);
    pkts
}

/// Every name the conformance suite exercises: the static registry plus a
/// dynamically resolved shard count.
fn engine_names(registry: &EngineRegistry) -> Vec<String> {
    let mut names: Vec<String> = registry.names().iter().map(|s| s.to_string()).collect();
    names.push("dart-sharded-3".to_string());
    names
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batch (`run_monitor_slice`) and per-packet streaming produce
    /// identical sample streams and identical final stats for every
    /// registered engine, and a second flush is a no-op.
    #[test]
    fn streaming_equals_batch_and_flush_is_idempotent(
        (seed, conns, loss, reorder) in trace_params()
    ) {
        let pkts = make_trace(seed, conns, loss, reorder);
        let registry = EngineRegistry::standard();
        let cfg = DartConfig::default();
        for name in engine_names(&registry) {
            let mut batch = registry.build(&name, &cfg).unwrap();
            let (expected, expected_stats) = run_monitor_slice(batch.monitor.as_mut(), &pkts);

            let mut streamed = registry.build(&name, &cfg).unwrap();
            let mut got: Vec<RttSample> = Vec::new();
            for p in &pkts {
                streamed.monitor.on_packet(p, &mut got);
            }
            streamed.monitor.flush(&mut got);
            prop_assert_eq!(&got, &expected, "samples diverge for {}", &name);
            prop_assert_eq!(streamed.monitor.stats(), expected_stats,
                "stats diverge for {}", &name);

            // Idempotence: flushing again must change nothing.
            let before = got.len();
            streamed.monitor.flush(&mut got);
            prop_assert_eq!(got.len(), before, "second flush emitted for {}", &name);
            prop_assert_eq!(streamed.monitor.stats(), expected_stats,
                "second flush changed stats for {}", &name);
        }
    }

    /// Delivering the trace through `on_batch` over a random split into
    /// blocks — empty and size-1 blocks included — produces byte-identical
    /// samples and stats to the per-packet path, for every registered
    /// engine (default fallback and Dart's specialized batch pipeline),
    /// and flushing again through the batch path is a no-op.
    #[test]
    fn batched_splits_equal_per_packet(
        (seed, conns, loss, reorder) in trace_params(),
        splits in prop::collection::vec(0usize..70, 1..40)
    ) {
        let pkts = make_trace(seed, conns, loss, reorder);
        let registry = EngineRegistry::standard();
        let cfg = DartConfig::default();
        for name in engine_names(&registry) {
            let mut per_packet = registry.build(&name, &cfg).unwrap();
            let mut expected: Vec<RttSample> = Vec::new();
            for p in &pkts {
                per_packet.monitor.on_packet(p, &mut expected);
            }
            per_packet.monitor.flush(&mut expected);
            let expected_stats = per_packet.monitor.stats();

            let mut batched = registry.build(&name, &cfg).unwrap();
            let mut got: Vec<RttSample> = Vec::new();
            let mut off = 0;
            let mut s = 0;
            while off < pkts.len() {
                // Cycle the random split list; finish with the tail so the
                // whole trace is always delivered.
                let len = if s < splits.len() {
                    splits[s].min(pkts.len() - off)
                } else {
                    pkts.len() - off
                };
                batched.monitor.on_batch(&pkts[off..off + len], &mut got);
                off += len;
                s += 1;
            }
            batched.monitor.flush(&mut got);
            prop_assert_eq!(&got, &expected, "batched samples diverge for {}", &name);
            prop_assert_eq!(batched.monitor.stats(), expected_stats,
                "batched stats diverge for {}", &name);

            // Flush idempotence through the batch path.
            let before = got.len();
            batched.monitor.flush(&mut got);
            prop_assert_eq!(got.len(), before, "second flush emitted for {}", &name);
            prop_assert_eq!(batched.monitor.stats(), expected_stats,
                "second flush changed stats for {}", &name);
        }
    }

    /// Driving a [`PacketSource`] in bounded chunks (`run_monitor`) equals
    /// the slice path for every registered engine.
    #[test]
    fn chunked_source_equals_slice(
        (seed, conns, loss, reorder) in trace_params()
    ) {
        let pkts = make_trace(seed, conns, loss, reorder);
        let registry = EngineRegistry::standard();
        let cfg = DartConfig::default();
        for name in engine_names(&registry) {
            let mut batch = registry.build(&name, &cfg).unwrap();
            let (expected, expected_stats) = run_monitor_slice(batch.monitor.as_mut(), &pkts);

            let mut sourced = registry.build(&name, &cfg).unwrap();
            let mut got: Vec<RttSample> = Vec::new();
            let stats = run_monitor(
                sourced.monitor.as_mut(),
                SliceSource::new(&pkts),
                &mut got,
            ).unwrap();
            prop_assert_eq!(&got, &expected, "samples diverge for {}", &name);
            prop_assert_eq!(stats, expected_stats, "stats diverge for {}", &name);
        }
    }
}
