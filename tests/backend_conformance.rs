//! Exact-backend conformance: the refactored backend seam must leave the
//! `exact` engine **byte-identical** to the pre-refactor engine.
//!
//! The golden digests under `tests/golden/exact_backend.txt` were generated
//! from the engine *before* the `RtBackend`/`PtBackend` seam was introduced
//! (same pinned traces, same configs, streaming and batch paths). Any
//! behavioural drift in the exact backend — a reordered table probe, a
//! changed eviction decision, a different sample or counter — changes a
//! digest and fails here. Regenerate (only when a divergence is both
//! intended and understood) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p dart --test backend_conformance
//! ```
//!
//! The digests cover only the counters that existed before the seam, so
//! adding *new* counters (admission/sketch accounting) cannot disturb
//! them; the suite also runs under `--no-default-features` (it uses no
//! telemetry hooks), which CI exercises.

use dart::core::{DartConfig, DartEngine, EngineStats, Leg, RttSample};
use dart::packet::{FlowKey, PacketMeta};
use dart::sim::scenario::{campus, CampusConfig};
use dart::sim::spin::SpinFlowConfig;
use dart::sim::spin_flow_meta;
use std::fmt::Write as _;

/// The counter set that predates the backend seam: digests are computed
/// over exactly these rows, in this order, so newly added counters cannot
/// retroactively invalidate the goldens.
const PRE_SEAM_COUNTERS: &[&str] = &[
    "packets",
    "syn_skipped",
    "seq_tracked",
    "seq_retransmission",
    "seq_hole_reset",
    "seq_wraparound",
    "seq_rt_collision",
    "ack_advanced",
    "ack_duplicate",
    "ack_stale",
    "ack_optimistic",
    "ack_no_flow",
    "range_collapses",
    "pt_stored",
    "pt_displaced",
    "pt_matched",
    "recirc_issued",
    "recirc_stale_dropped",
    "recirc_reinserted",
    "recirc_cap_dropped",
    "recirc_cycles_broken",
    "recirc_filtered",
    "dual_role_recirc",
    "no_role",
    "filtered_flows",
    "victim_cached",
    "victim_cache_hits",
    "rt_copy_reinserted",
    "rt_copy_dropped",
    "samples",
    "spin_edges",
    "spin_rejected",
    "shard_restarts",
    "flows_lost",
    "monitor_miss",
];

/// FNV-1a over the full byte-level content of a run: every sample field
/// plus every pre-seam counter.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= u64::from(x);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn sample(&mut self, s: &RttSample) {
        self.bytes(&u32::from(s.flow.src_ip).to_le_bytes());
        self.bytes(&s.flow.src_port.to_le_bytes());
        self.bytes(&u32::from(s.flow.dst_ip).to_le_bytes());
        self.bytes(&s.flow.dst_port.to_le_bytes());
        self.bytes(&s.eack.raw().to_le_bytes());
        self.u64(s.rtt);
        self.u64(s.ts);
        self.bytes(&s.weight.0.to_le_bytes());
    }

    fn stats(&mut self, stats: &EngineStats) {
        let rows = stats.metric_rows();
        for name in PRE_SEAM_COUNTERS {
            let (_, v) = rows
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("counter {name} vanished from metric_rows"));
            self.bytes(name.as_bytes());
            self.u64(*v);
        }
    }
}

/// The pinned workload: a lossy, reordered campus mix with two QUIC spin
/// flows folded in (the engine must ignore them identically).
fn trace(seed: u64, connections: usize) -> Vec<PacketMeta> {
    let mut pkts = campus(CampusConfig {
        connections,
        duration: dart::packet::SECOND,
        seed,
        mean_loss: 0.02,
        reorder: 0.01,
        ..CampusConfig::default()
    })
    .packets;
    for i in 0..2u32 {
        pkts.extend(spin_flow_meta(SpinFlowConfig {
            flow: FlowKey::from_raw(0x0a0c_0000 + i, 42_000 + i as u16, 0x5db8_d9f0 + i, 443),
            duration: dart::packet::SECOND,
            seed: seed ^ (0x51C0 + u64::from(i)),
            ..SpinFlowConfig::default()
        }));
    }
    pkts.sort_by_key(|p| p.ts);
    pkts
}

/// Every (name, config) family the goldens pin: the paper operating point,
/// tight tables under eviction pressure, multi-stage + deep recirculation,
/// the victim cache, the RT copy, both legs, and the unlimited
/// idealization.
fn config_cases() -> Vec<(&'static str, DartConfig)> {
    vec![
        ("default", DartConfig::default()),
        (
            "tiny-tables",
            DartConfig::default().with_rt(1 << 10).with_pt(256, 1),
        ),
        (
            "multi-stage-recirc",
            DartConfig::default()
                .with_rt(1 << 12)
                .with_pt(1 << 10, 4)
                .with_max_recirc(4),
        ),
        (
            "victim-cache",
            DartConfig::default()
                .with_rt(1 << 11)
                .with_pt(128, 2)
                .with_victim_cache(8),
        ),
        (
            "rt-copy",
            DartConfig::default()
                .with_rt(1 << 11)
                .with_pt(128, 1)
                .with_rt_copy(1_000_000),
        ),
        ("both-legs", DartConfig::default().with_leg(Leg::Both)),
        ("unlimited", DartConfig::unlimited()),
    ]
}

/// One streaming replay digest: per-packet `process` + flush.
fn digest_streaming(cfg: DartConfig, pkts: &[PacketMeta]) -> u64 {
    let mut engine = DartEngine::new(cfg);
    let mut samples: Vec<RttSample> = Vec::new();
    for p in pkts {
        engine.process(p, &mut samples);
    }
    engine.flush();
    let mut d = Digest::new();
    d.u64(samples.len() as u64);
    for s in &samples {
        d.sample(s);
    }
    d.stats(engine.stats());
    d.0
}

/// One batch replay digest: `process_batch` over irregular splits + flush.
fn digest_batch(cfg: DartConfig, pkts: &[PacketMeta]) -> u64 {
    let split_lens = [256usize, 1, 0, 1024, 7, 64, 3];
    let mut engine = DartEngine::new(cfg);
    let mut samples: Vec<RttSample> = Vec::new();
    let (mut off, mut s) = (0usize, 0usize);
    while off < pkts.len() {
        let len = split_lens[s % split_lens.len()].min(pkts.len() - off);
        engine.process_batch(&pkts[off..off + len], &mut samples);
        off += len;
        s += 1;
    }
    engine.flush();
    let mut d = Digest::new();
    d.u64(samples.len() as u64);
    for s in &samples {
        d.sample(s);
    }
    d.stats(engine.stats());
    d.0
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/exact_backend.txt")
}

fn compute_goldens() -> String {
    let traces = [(0xDA27u64, 160usize), (0x1234, 90), (0xBEEF, 40)];
    let mut out = String::new();
    for (seed, conns) in traces {
        let pkts = trace(seed, conns);
        for (name, cfg) in config_cases() {
            let s = digest_streaming(cfg, &pkts);
            let b = digest_batch(cfg, &pkts);
            writeln!(
                out,
                "{seed:#x}/{conns} {name} streaming={s:016x} batch={b:016x}"
            )
            .unwrap();
        }
    }
    out
}

/// Split-invariance across *every* backend: streaming and batch replays of
/// the same capture must be byte-identical — samples, order, and the full
/// counter set — for any block split. The exact backend inherits this from
/// the goldens; the sketch and precision backends must honour the same
/// contract (pure resolution + deterministic table transitions), which is
/// exactly what lets the frontier benchmarks use the batch path.
mod split_invariance {
    use super::*;
    use dart::core::Backend;
    use proptest::prelude::*;

    fn digest_full(samples: &[RttSample], stats: &EngineStats) -> u64 {
        let mut d = Digest::new();
        d.u64(samples.len() as u64);
        for s in samples {
            d.sample(s);
        }
        // All rows, not just the pre-seam set: admission/sketch counters
        // must agree across paths too.
        for (name, v) in stats.metric_rows() {
            d.bytes(name.as_bytes());
            d.u64(v);
        }
        d.0
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn every_backend_is_split_invariant(
            seed in 0u64..(1 << 32),
            conns in 8usize..40,
            splits in proptest::collection::vec(0usize..200, 1..8),
        ) {
            let pkts = trace(seed, conns);
            // Zero-length blocks are legal, but an all-zero cycle would
            // never advance the replay.
            let mut splits = splits;
            if splits.iter().all(|&l| l == 0) {
                splits.push(17);
            }
            for backend in [Backend::Exact, Backend::Sketch, Backend::Precision] {
                let cfg = DartConfig::default()
                    .with_rt(1 << 10)
                    .with_pt(256, 2)
                    .with_backend(backend);

                let mut streaming = DartEngine::new(cfg);
                let mut s_samples: Vec<RttSample> = Vec::new();
                for p in &pkts {
                    streaming.process(p, &mut s_samples);
                }
                streaming.flush();

                let mut batch = DartEngine::new(cfg);
                let mut b_samples: Vec<RttSample> = Vec::new();
                let (mut off, mut s) = (0usize, 0usize);
                while off < pkts.len() {
                    let len = splits[s % splits.len()].min(pkts.len() - off);
                    batch.process_batch(&pkts[off..off + len], &mut b_samples);
                    off += len;
                    s += 1;
                }
                batch.flush();

                prop_assert_eq!(
                    digest_full(&s_samples, streaming.stats()),
                    digest_full(&b_samples, batch.stats()),
                    "{:?} backend diverged between streaming and batch", backend
                );
            }
        }
    }
}

/// The seam-parity gate: recompute every digest with the current engine
/// and compare against the committed pre-refactor goldens.
#[test]
fn exact_backend_matches_pre_refactor_goldens() {
    let got = compute_goldens();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
        std::fs::write(golden_path(), &got).unwrap();
        eprintln!("wrote {}", golden_path().display());
        return;
    }
    let expected = std::fs::read_to_string(golden_path())
        .expect("tests/golden/exact_backend.txt missing: run with UPDATE_GOLDEN=1 to create");
    for (g, e) in got.lines().zip(expected.lines()) {
        assert_eq!(
            g, e,
            "exact-backend digest diverged from pre-refactor golden"
        );
    }
    assert_eq!(
        got.lines().count(),
        expected.lines().count(),
        "golden case count changed"
    );
}
