//! Histogram-engine accuracy: across the adversarial scenario matrix, the
//! `dart-hist` engine's exported log2 buckets must put p50 and p99 within
//! ±1 bucket of the oracle's exact-RTT histogram — the `Histogram`
//! judgement contract (DESIGN.md §5g), checked here directly against the
//! testkit helpers so a regression names the drifted quantile.

use dart::baselines::HistMonitor;
use dart::core::{run_monitor_slice, DartConfig};
use dart::packet::PacketMeta;
use dart::sim::adversarial::ScenarioKind;
use dart::sim::scenario::{campus, CampusConfig};
use dart::sim::TraceTransform;
use dart_testkit::{
    hist_within_tolerance, oracle_histogram, run_oracle, snapshot_from_rows, FaultConfig,
    FaultInjector, OracleConfig,
};
use proptest::prelude::*;

/// Pinned seeds shared with `tests/spin_oracle.rs`; the EXPERIMENTS.md
/// scorecard quotes these runs.
const PINNED_SEEDS: [u64; 10] = [
    0x0001, 0x003A, 0x007F, 0x00B2, 0x00C4, 0x011D, 0x01E5, 0x029A, 0x033C, 0x03F7,
];

/// Bin the capture through `dart-hist` and assert p50/p99 within ±1 log2
/// bucket of the oracle's valid-sample histogram.
fn assert_hist_tracks(pkts: &[PacketMeta], label: &str) {
    let oracle = run_oracle(OracleConfig::default(), pkts);
    let oracle_snap = oracle_histogram(&oracle);
    let mut eng = HistMonitor::new(DartConfig::default());
    let (rows, _) = run_monitor_slice(&mut eng, pkts);
    let (engine_snap, malformed) = snapshot_from_rows(&rows);
    assert!(malformed.is_empty(), "{label}: out-of-range buckets");
    if oracle_snap.count() == 0 {
        // Nothing measurable in the capture (all-QUIC or fully churned):
        // the engine must not invent a distribution either.
        assert_eq!(engine_snap.count(), 0, "{label}: binned phantom RTTs");
        return;
    }
    assert!(
        hist_within_tolerance(&engine_snap, &oracle_snap, 1),
        "{label}: p50 {:?} vs {:?}, p99 {:?} vs {:?} (engine vs oracle buckets)",
        engine_snap.quantile_bucket(0.5),
        oracle_snap.quantile_bucket(0.5),
        engine_snap.quantile_bucket(0.99),
        oracle_snap.quantile_bucket(0.99),
    );
}

#[test]
fn pinned_matrix_within_one_bucket_clean() {
    for &seed in &PINNED_SEEDS {
        for kind in ScenarioKind::ALL {
            let pkts = kind.generate(0.1, seed).packets;
            assert_hist_tracks(&pkts, &format!("{kind} seed {seed:#x}"));
        }
    }
}

#[test]
fn pinned_matrix_within_one_bucket_stressed() {
    for &seed in &PINNED_SEEDS {
        for kind in ScenarioKind::ALL {
            let clean = kind.generate(0.1, seed).packets;
            let faulted = FaultInjector::new(FaultConfig::stress(seed)).apply(clean);
            assert_hist_tracks(&faulted, &format!("{kind} seed {seed:#x} stressed"));
        }
    }
}

#[test]
fn empty_capture_yields_empty_histogram() {
    assert_hist_tracks(&[], "empty capture");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The ±1-bucket contract holds for ANY campus workload, not just the
    /// adversarial generators.
    #[test]
    fn campus_workloads_stay_within_one_bucket(
        seed in 0u64..1_000_000,
        connections in 20usize..80,
        loss in 0.0f64..0.05,
    ) {
        let pkts = campus(CampusConfig {
            connections,
            duration: dart::packet::SECOND,
            seed,
            mean_loss: loss,
            ..CampusConfig::default()
        })
        .packets;
        let oracle = run_oracle(OracleConfig::default(), &pkts);
        let oracle_snap = oracle_histogram(&oracle);
        let mut eng = HistMonitor::new(DartConfig::default());
        let (rows, _) = run_monitor_slice(&mut eng, &pkts);
        let (engine_snap, malformed) = snapshot_from_rows(&rows);
        prop_assert!(malformed.is_empty());
        if oracle_snap.count() > 0 {
            prop_assert!(
                hist_within_tolerance(&engine_snap, &oracle_snap, 1),
                "p50 {:?} vs {:?}, p99 {:?} vs {:?}",
                engine_snap.quantile_bucket(0.5),
                oracle_snap.quantile_bucket(0.5),
                engine_snap.quantile_bucket(0.99),
                oracle_snap.quantile_bucket(0.99),
            );
        }
    }
}
