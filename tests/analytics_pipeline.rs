//! Engine → analytics integration: min-filtering, per-prefix aggregation,
//! the preemptive-discard hook, and bufferbloat detection riding on real
//! engine output.

use dart::analytics::{
    min_discard_pair, BufferbloatConfig, BufferbloatDetector, MinFilter, PrefixAggregator, Window,
};
use dart::core::{run_trace, DartConfig, DartEngine, RttSample};
use dart::packet::{FlowKey, MILLISECOND, SECOND};
use dart::sim::netsim::{simulate, ConnSpec};
use dart::sim::scenario::{campus, CampusConfig};

#[test]
fn preemptive_discard_saves_recirculations_without_hurting_the_min() {
    let trace = campus(CampusConfig {
        connections: 400,
        duration: 8 * SECOND,
        ..CampusConfig::default()
    });
    // Tight PT to force evictions.
    let cfg = DartConfig::default()
        .with_rt(1 << 12)
        .with_pt(1 << 6, 1)
        .with_max_recirc(4);

    // Plain run.
    let (plain_samples, plain_stats) = run_trace(cfg, &trace.packets);

    // Discard-filter run.
    let (sink, filter) = min_discard_pair(SECOND, Vec::new());
    let mut engine = DartEngine::with_filter(cfg, Box::new(filter));
    let mut sink = sink;
    for p in &trace.packets {
        engine.process(p, &mut sink);
    }
    engine.flush();
    let filtered_stats = *engine.stats();
    let filtered_samples = sink.into_inner();

    assert!(
        filtered_stats.recirc_filtered > 0,
        "filter never fired — PT not under pressure?"
    );
    assert!(filtered_stats.recirc_issued < plain_stats.recirc_issued);

    // The quantity the analytics cares about — the windowed minimum — is
    // unaffected: discarded records could never have beaten it.
    let window_mins = |samples: &[RttSample]| {
        let mut f = MinFilter::new(Window::Time(SECOND));
        let mut mins = Vec::new();
        for s in samples {
            if let Some(w) = f.offer(s.rtt, s.ts) {
                mins.push(w.min_rtt);
            }
        }
        mins
    };
    let plain_mins = window_mins(&plain_samples);
    let filtered_mins = window_mins(&filtered_samples);
    assert_eq!(plain_mins.len(), filtered_mins.len());
    for (a, b) in plain_mins.iter().zip(&filtered_mins) {
        // Identical or better-than within jitter of sampling differences.
        let diff = (*a as i64 - *b as i64).abs() as f64 / (*a).max(1) as f64;
        assert!(diff < 0.25, "window min diverged: {a} vs {b}");
    }
}

#[test]
fn prefix_aggregation_sees_every_sampled_prefix() {
    let trace = campus(CampusConfig {
        connections: 300,
        duration: 5 * SECOND,
        ..CampusConfig::default()
    });
    let (samples, _) = run_trace(DartConfig::unlimited(), &trace.packets);
    let mut agg = PrefixAggregator::new(24, Window::Count(4));
    let mut total = 0u64;
    for s in &samples {
        agg.offer(s);
        total += 1;
    }
    assert!(agg.prefixes() > 5, "expected many destination /24s");
    let counted: u64 = agg.snapshot().iter().map(|(p, _)| agg.count(p)).sum();
    assert_eq!(counted, total);
}

#[test]
fn bufferbloat_detector_fires_on_inflating_connection() {
    // A path whose external delay steps up 8x mid-trace, with continuous
    // short transfers: the detector should flag a sustained episode.
    let flow = FlowKey::from_raw(0x0a08_0303, 41001, 0x08080808, 443);
    let mut specs = Vec::new();
    for i in 0..120u64 {
        let mut spec = ConnSpec::simple(
            FlowKey::from_raw(0x0a08_0303, 41001 + i as u16, 0x08080808, 443),
            i * 100 * MILLISECOND,
            400,
            800,
        );
        spec.path.jitter = 0.02;
        spec.path.ext_owd = 5 * MILLISECOND;
        // Bloat starts at t = 6 s.
        spec.path.ext_owd_step = Some((6 * SECOND, 40 * MILLISECOND));
        specs.push(spec);
    }
    let out = simulate(specs, 99);
    let (samples, _) = run_trace(DartConfig::unlimited(), &out.packets);
    assert!(!samples.is_empty());

    let mut det = BufferbloatDetector::new(BufferbloatConfig {
        window: Window::Count(6),
        inflation: 4.0,
        sustain: 2,
    });
    let mut events = 0;
    for s in &samples {
        if det.offer(s.rtt, s.ts).is_some() {
            events += 1;
        }
    }
    assert!(events >= 1, "bufferbloat never detected");
    let _ = flow;
}
