//! Property-based tests over the core data structures and the engine:
//! invariants that must hold for *any* packet stream, not just the crafted
//! ones.

use dart::core::{
    run_trace, AckVerdict, DartConfig, EngineStats, MeasurementRange, PacketTracker, PtInsert,
    PtMode, SaluRangeTracker, SeqVerdict,
};
use dart::packet::{
    Direction, FlowKey, PacketBuilder, PacketMeta, SeqNum, SignatureWidth, TcpFlags,
};
use proptest::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------- SeqNum --

proptest! {
    #[test]
    fn seqnum_ordering_is_antisymmetric(a: u32, b: u32) {
        let (x, y) = (SeqNum(a), SeqNum(b));
        if x != y {
            // Exactly one of lt/gt unless they're 2^31 apart (distance
            // saturates at i32::MIN, where both lt hold asymmetrically).
            if x.distance(y) != i32::MIN {
                prop_assert_ne!(x.lt(y), y.lt(x));
            }
        } else {
            prop_assert!(!x.lt(y) && !x.gt(y));
        }
    }

    #[test]
    fn seqnum_add_then_sub_roundtrips(a: u32, n: u32) {
        prop_assert_eq!(SeqNum(a).add(n).sub(n), SeqNum(a));
    }

    #[test]
    fn seqnum_in_range_matches_distances(x: u32, lo: u32, len in 0u32..i32::MAX as u32) {
        let (x, lo) = (SeqNum(x), SeqNum(lo));
        let hi = lo.add(len);
        let expected = {
            let dx = x.raw().wrapping_sub(lo.raw());
            dx > 0 && dx <= len
        };
        prop_assert_eq!(x.in_range(lo, hi), expected);
    }
}

// --------------------------------------------- FlowKey::symmetric_hash --

proptest! {
    /// Both directions of a connection hash identically, for ANY 4-tuple —
    /// the property that lets the RT/PT index a connection from either leg
    /// and the sharded engine keep a flow's two legs on one shard.
    #[test]
    fn symmetric_hash_is_direction_independent(
        src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16,
    ) {
        let k = FlowKey::from_raw(src_ip, src_port, dst_ip, dst_port);
        prop_assert_eq!(k.symmetric_hash(), k.reverse().symmetric_hash());
        // reverse() is an involution, so the canonical form is well-defined.
        prop_assert_eq!(k.reverse().reverse(), k);
    }

    /// Shard balance under *correlated* tuples: sequential client hosts in
    /// one subnet opening sequential ephemeral ports to one server — the
    /// address-plan shape the campus generator emits, and exactly the input
    /// that collapsed low-bit-degenerate hashes onto a few shards before
    /// the SplitMix64 finalizer. A chi-squared statistic over `hash % m`
    /// must stay far below the degenerate regime for every shard count the
    /// sharded engine is run with.
    #[test]
    fn symmetric_hash_low_bits_balance_correlated_tuples(
        subnet in 0u32..(1 << 24),
        port_base in 1024u16..40_000,
    ) {
        const FLOWS: usize = 2_048;
        const SERVER: u32 = 0x5db8_d822;
        let hashes: Vec<u64> = (0..FLOWS)
            .map(|i| {
                // 16 ephemeral ports per host, hosts sequential in a /24-ish
                // block — both fields stride by 1.
                let host = (subnet << 8) | (i as u32 / 16);
                let port = port_base.wrapping_add(i as u16);
                FlowKey::from_raw(host, port, SERVER, 443).symmetric_hash()
            })
            .collect();
        for m in [2usize, 4, 8] {
            let mut buckets = vec![0u64; m];
            for h in &hashes {
                buckets[(*h % m as u64) as usize] += 1;
            }
            let expected = FLOWS as f64 / m as f64;
            let chi2: f64 = buckets
                .iter()
                .map(|&o| {
                    let d = o as f64 - expected;
                    d * d / expected
                })
                .sum();
            // 99.99th percentile of chi^2 with df=7 is ~29; a degenerate
            // hash scores in the thousands (~FLOWS * (m-1)). 100 separates
            // the regimes with no flake risk.
            prop_assert!(
                chi2 < 100.0,
                "hash % {} unbalanced: buckets {:?} (chi2 {:.1})",
                m, buckets, chi2
            );
        }
    }
}

// --------------------------------------------------- EngineStats::merge --

/// Fully randomized counters. The exhaustive struct literal (no `..`)
/// breaks the build if a counter is added without extending this strategy,
/// mirroring the `merge_counters!` guarantee.
fn engine_stats() -> impl Strategy<Value = EngineStats> {
    // Bounded well under u64::MAX / 4 so sums of a few stats cannot wrap.
    prop::collection::vec(0u64..(1 << 40), 38).prop_map(|v| {
        let mut it = v.into_iter();
        let mut n = move || it.next().unwrap();
        EngineStats {
            packets: n(),
            syn_skipped: n(),
            seq_tracked: n(),
            seq_retransmission: n(),
            seq_hole_reset: n(),
            seq_wraparound: n(),
            seq_rt_collision: n(),
            ack_advanced: n(),
            ack_duplicate: n(),
            ack_stale: n(),
            ack_optimistic: n(),
            ack_no_flow: n(),
            range_collapses: n(),
            pt_stored: n(),
            pt_displaced: n(),
            pt_matched: n(),
            recirc_issued: n(),
            recirc_stale_dropped: n(),
            recirc_reinserted: n(),
            recirc_cap_dropped: n(),
            recirc_cycles_broken: n(),
            recirc_filtered: n(),
            dual_role_recirc: n(),
            no_role: n(),
            filtered_flows: n(),
            victim_cached: n(),
            victim_cache_hits: n(),
            rt_copy_reinserted: n(),
            rt_copy_dropped: n(),
            sketch_overwritten: n(),
            recirc_admission_denied: n(),
            recirc_admission_hh: n(),
            samples: n(),
            spin_edges: n(),
            spin_rejected: n(),
            shard_restarts: n(),
            flows_lost: n(),
            monitor_miss: n(),
        }
    })
}

proptest! {
    /// `default` is the identity of `merge`, on both sides.
    #[test]
    fn stats_merge_identity(s in engine_stats()) {
        let mut left = s;
        left.merge(&EngineStats::default());
        prop_assert_eq!(left, s);
        let mut right = EngineStats::default();
        right.merge(&s);
        prop_assert_eq!(right, s);
    }

    /// Shard merge order cannot matter: commutative and associative, so
    /// the sharded engine's fold is well-defined for any shard ordering.
    #[test]
    fn stats_merge_commutes_and_associates(
        a in engine_stats(), b in engine_stats(), c in engine_stats(),
    ) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    /// `Sum`, `Add`, `AddAssign`, and `merge` agree on randomized stats.
    #[test]
    fn stats_sum_agrees_with_merge(
        a in engine_stats(), b in engine_stats(), c in engine_stats(),
    ) {
        let summed: EngineStats = [a, b, c].into_iter().sum();
        prop_assert_eq!(summed, a + b + c);
        let mut merged = a;
        merged.merge(&b);
        merged.merge(&c);
        prop_assert_eq!(summed, merged);
        let mut assigned = a;
        assigned += b;
        assigned += c;
        prop_assert_eq!(summed, assigned);
    }
}

// ------------------------------------------------------ MeasurementRange --

/// A random stream of small SEQ/ACK operations near a base point.
fn range_ops() -> impl Strategy<Value = (u32, Vec<(bool, u32, u32)>)> {
    (
        any::<u32>(),
        prop::collection::vec((any::<bool>(), 0u32..5_000, 1u32..1_500), 1..60),
    )
}

proptest! {
    /// After any op sequence, the range stays well-formed: left is never
    /// circularly ahead of right by more than the window we operated in.
    #[test]
    fn measurement_range_left_never_passes_right((base, ops) in range_ops()) {
        let start = SeqNum(base);
        let mut mr = MeasurementRange::open(start, start.add(100));
        for (is_seq, off, len) in ops {
            if is_seq {
                let s = start.add(off);
                mr.on_seq(s, s.add(len));
            } else {
                mr.on_ack(start.add(off), true);
            }
            prop_assert!(
                mr.left.leq(mr.right),
                "left {} passed right {}", mr.left, mr.right
            );
        }
    }

    /// A retransmission verdict always collapses; Extend always moves the
    /// right edge to the packet's eACK.
    #[test]
    fn measurement_range_verdict_postconditions((base, ops) in range_ops()) {
        let start = SeqNum(base);
        let mut mr = MeasurementRange::open(start, start.add(1));
        for (is_seq, off, len) in ops {
            if is_seq {
                let s = start.add(off);
                let e = s.add(len);
                match mr.on_seq(s, e) {
                    SeqVerdict::Retransmission => prop_assert!(mr.is_collapsed()),
                    SeqVerdict::Extend | SeqVerdict::HoleReset => {
                        prop_assert_eq!(mr.right, e)
                    }
                    SeqVerdict::Wraparound => prop_assert_eq!(mr.left, SeqNum::ZERO),
                }
            } else {
                let a = start.add(off);
                if mr.on_ack(a, true) == AckVerdict::Advance {
                    prop_assert_eq!(mr.left, a);
                }
            }
        }
    }
}

proptest! {
    /// The stateful-ALU decomposition of the Range Tracker is bit-equivalent
    /// to the behavioural Fig. 4 state machine on ANY operation sequence —
    /// the §4 implementability claim, property-tested.
    #[test]
    fn salu_range_tracker_equals_behavioural_model(
        base: u32,
        ops in prop::collection::vec(
            (any::<bool>(), 0u32..10_000, 1u32..1_500, any::<bool>()),
            1..80,
        )
    ) {
        let mut salu = SaluRangeTracker::new();
        let mut model: Option<MeasurementRange> = None;
        for (is_seq, off, len, pure) in ops {
            if is_seq {
                let seq = base.wrapping_add(off);
                let eack = seq.wrapping_add(len);
                let sv = salu.on_seq(seq, eack);
                let mv = match &mut model {
                    None => {
                        model = Some(MeasurementRange::open(SeqNum(seq), SeqNum(eack)));
                        SeqVerdict::Extend
                    }
                    Some(m) => m.on_seq(SeqNum(seq), SeqNum(eack)),
                };
                prop_assert_eq!(sv, mv);
            } else if let Some(m) = &mut model {
                let ack = base.wrapping_add(off);
                let sv = salu.on_ack(ack, pure).expect("occupied");
                let mv = m.on_ack(SeqNum(ack), pure);
                prop_assert_eq!(sv, mv);
            }
            if let Some(m) = &model {
                prop_assert_eq!(salu.edges(), Some((m.left.raw(), m.right.raw())));
            }
        }
    }
}

// --------------------------------------------------------- PacketTracker --

proptest! {
    /// Whatever the insertion order, a constrained PT never exceeds its
    /// capacity and every successful match returns a timestamp that was
    /// actually inserted for that identity.
    #[test]
    fn packet_tracker_occupancy_and_match_fidelity(
        slots_log in 2u32..7,
        stages in 1usize..5,
        inserts in prop::collection::vec((0u32..64, 1u32..100_000, 0u64..1_000_000), 1..200)
    ) {
        let slots = 1usize << slots_log;
        prop_assume!(slots >= stages);
        let mut pt = PacketTracker::new(PtMode::Constrained { slots, stages });
        let mut inserted: HashMap<(u32, u32), Vec<u64>> = HashMap::new();
        for (fl, eack, ts) in &inserts {
            let f = FlowKey::from_raw(0x0a00_0000 + fl, 40000, 0x01020304, 443);
            let sig = f.signature(SignatureWidth::W32);
            pt.insert_new(&f, sig, SeqNum(*eack), *ts);
            inserted.entry((*fl, *eack)).or_default().push(*ts);
            prop_assert!(pt.occupancy() <= pt.capacity());
        }
        for (fl, eack, _) in &inserts {
            let f = FlowKey::from_raw(0x0a00_0000 + fl, 40000, 0x01020304, 443);
            let sig = f.signature(SignatureWidth::W32);
            if let Some(ts) = pt.match_ack(&f, sig, SeqNum(*eack)) {
                prop_assert!(
                    inserted[&(*fl, *eack)].contains(&ts),
                    "match returned a timestamp never inserted"
                );
                // Consumed: an immediate re-match cannot return it again.
                let again = pt.match_ack(&f, sig, SeqNum(*eack));
                prop_assert!(again.is_none() || again != Some(ts));
            }
        }
    }

    /// Eviction conservation: every insert outcome accounts for records —
    /// nothing is silently duplicated.
    #[test]
    fn packet_tracker_conserves_records(
        inserts in prop::collection::vec((0u32..32, 1u32..50), 1..100)
    ) {
        let mut pt = PacketTracker::new(PtMode::Constrained { slots: 8, stages: 2 });
        let mut live: i64 = 0;
        for (i, (fl, eack)) in inserts.iter().enumerate() {
            let f = FlowKey::from_raw(0x0a00_0000 + fl, 40000, 0x01020304, 443);
            let sig = f.signature(SignatureWidth::W32);
            match pt.insert_new(&f, sig, SeqNum(*eack), i as u64) {
                PtInsert::Stored => live += 1,
                PtInsert::StoredOverwriting => {} // sketch only: +1 in, -1 out
                PtInsert::StoredEvicting(_) => {} // +1 in, -1 out
                PtInsert::CycleBroken { .. } => {}
            }
            // `Stored` may also be a same-identity refresh, so occupancy is
            // at most `live`, never more.
            prop_assert!(pt.occupancy() as i64 <= live);
        }
    }
}

// ------------------------------------------------------------ The engine --

/// Random single-flow packet streams: data packets with increasing-ish
/// sequence numbers, ACKs somewhere nearby, occasional SYN/FIN noise.
fn packet_stream() -> impl Strategy<Value = Vec<PacketMeta>> {
    let flow = FlowKey::from_raw(0x0a080001, 40777, 0x5db8d822, 443);
    prop::collection::vec((any::<bool>(), 0u32..20_000, 1u32..1_460, 0u8..4), 1..120).prop_map(
        move |ops| {
            let mut t = 0u64;
            ops.into_iter()
                .map(|(is_data, off, len, flag)| {
                    t += 1_000_000;
                    if is_data {
                        let mut b = PacketBuilder::new(flow, t)
                            .seq(1000 + off)
                            .payload(len)
                            .dir(Direction::Outbound);
                        if flag == 3 {
                            b = b.flags(TcpFlags::PSH);
                        }
                        b.build()
                    } else {
                        PacketBuilder::new(flow.reverse(), t)
                            .ack(1000 + off)
                            .dir(Direction::Inbound)
                            .build()
                    }
                })
                .collect()
        },
    )
}

proptest! {
    /// For ANY packet stream: every sample the engine emits corresponds to
    /// a previously seen data packet with exactly that eACK, and the RTT
    /// equals the gap between that data packet's capture and the ACK's.
    #[test]
    fn every_sample_is_justified_by_the_trace(pkts in packet_stream()) {
        let (samples, _) = run_trace(DartConfig::unlimited(), &pkts);
        // Oracle: all (eack -> ts) sightings of data packets.
        let mut sightings: HashMap<u32, Vec<u64>> = HashMap::new();
        let mut justified = vec![];
        for p in &pkts {
            if p.is_seq() && p.dir == Direction::Outbound {
                sightings.entry(p.eack().raw()).or_default().push(p.ts);
            }
            if p.is_ack() && p.dir == Direction::Inbound {
                justified.push(p.ts);
            }
        }
        for s in &samples {
            let ts_list = sightings.get(&s.eack.raw());
            prop_assert!(ts_list.is_some(), "sample for never-seen eACK {}", s.eack);
            let ok = ts_list
                .unwrap()
                .iter()
                .any(|&dt| s.ts.saturating_sub(dt) == s.rtt);
            prop_assert!(ok, "sample rtt {} not derivable from trace", s.rtt);
        }
    }

    /// Constrained Dart is a strict subset of unlimited Dart in sample
    /// count, for any stream and any table geometry.
    #[test]
    fn constrained_never_beats_unlimited(
        pkts in packet_stream(),
        pt_log in 1u32..8,
        stages in 1usize..3,
    ) {
        let (unlimited, _) = run_trace(DartConfig::unlimited(), &pkts);
        let slots = 1usize << pt_log;
        prop_assume!(slots >= stages);
        let cfg = DartConfig::default().with_rt(1 << 10).with_pt(slots, stages);
        let (constrained, _) = run_trace(cfg, &pkts);
        prop_assert!(constrained.len() <= unlimited.len());
    }

    /// The engine never panics and its counters stay consistent on any
    /// stream.
    #[test]
    fn engine_counter_consistency(pkts in packet_stream()) {
        let cfg = DartConfig::default().with_rt(1 << 8).with_pt(1 << 6, 2).with_max_recirc(3);
        let (samples, stats) = run_trace(cfg, &pkts);
        prop_assert_eq!(stats.packets as usize, pkts.len());
        prop_assert_eq!(stats.samples as usize, samples.len());
        prop_assert_eq!(stats.samples, stats.pt_matched);
        // Every recirculation is resolved exactly once.
        prop_assert_eq!(
            stats.recirc_issued,
            stats.recirc_stale_dropped + stats.recirc_reinserted + stats.recirc_cycles_broken
        );
    }
}
