//! A "lean-algorithms"-style average-RTT estimator (Liu et al., APoCS 2020
//! — paper §8): instead of matching packets, sum the timestamps of all
//! ACK-direction packets, subtract the sum of all data-direction packet
//! timestamps, and divide by the count.
//!
//! Memory is O(1) per flow (three counters) — sublinear as the paper of
//! origin advertises — but the estimate assumes **no missing or duplicate
//! SEQ or ACK packets**: loss, retransmission, or ACK thinning skews it,
//! which is exactly the §8 critique this implementation lets the benches
//! demonstrate.

use dart_core::{EngineStats, Leg, RttMonitor, RttSample, SampleSink};
use dart_packet::{FlowKey, Nanos, PacketMeta, SeqNum};
use std::collections::HashMap;

/// Per-flow running sums.
#[derive(Clone, Copy, Debug, Default)]
struct Sums {
    data_ts_sum: u128,
    data_count: u64,
    ack_ts_sum: u128,
    ack_count: u64,
}

/// The sum-based estimator.
pub struct LeanRtt {
    leg: Leg,
    flows: HashMap<FlowKey, Sums>,
    packets: u64,
    last_ts: Nanos,
    flushed: bool,
}

/// A flow's average-RTT estimate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeanEstimate {
    /// Flow key (data direction).
    pub flow: FlowKey,
    /// Estimated average RTT; `None` when counts are unusable (no pairs, or
    /// mismatched counts make the math meaningless).
    pub avg_rtt: Option<Nanos>,
    /// Data packets summed.
    pub data_count: u64,
    /// ACK packets summed.
    pub ack_count: u64,
}

impl LeanRtt {
    /// Build an estimator for the given leg.
    pub fn new(leg: Leg) -> LeanRtt {
        LeanRtt {
            leg,
            flows: HashMap::new(),
            packets: 0,
            last_ts: 0,
            flushed: false,
        }
    }

    /// Process one packet (no per-packet output — this estimator only has
    /// aggregates).
    pub fn process(&mut self, pkt: &PacketMeta) {
        use dart_packet::Direction::*;
        self.packets += 1;
        self.last_ts = self.last_ts.max(pkt.ts);
        let (seq_dir, ack_dir) = match self.leg {
            Leg::External => (Outbound, Inbound),
            Leg::Internal => (Inbound, Outbound),
            Leg::Both => (pkt.dir, pkt.dir), // both roles active
        };
        if pkt.dir == seq_dir && pkt.is_seq() && !pkt.is_syn() {
            let s = self.flows.entry(pkt.flow).or_default();
            s.data_ts_sum += pkt.ts as u128;
            s.data_count += 1;
        }
        if pkt.dir == ack_dir && pkt.is_pure_ack() {
            let s = self.flows.entry(pkt.flow.reverse()).or_default();
            s.ack_ts_sum += pkt.ts as u128;
            s.ack_count += 1;
        }
    }

    /// Current estimate for one flow.
    pub fn estimate(&self, flow: &FlowKey) -> Option<LeanEstimate> {
        self.flows.get(flow).map(|s| LeanEstimate {
            flow: *flow,
            avg_rtt: Self::compute(s),
            data_count: s.data_count,
            ack_count: s.ack_count,
        })
    }

    /// Estimates for every flow.
    pub fn estimates(&self) -> Vec<LeanEstimate> {
        self.flows
            .iter()
            .map(|(f, s)| LeanEstimate {
                flow: *f,
                avg_rtt: Self::compute(s),
                data_count: s.data_count,
                ack_count: s.ack_count,
            })
            .collect()
    }

    fn compute(s: &Sums) -> Option<Nanos> {
        // The scheme is only sound when every data packet has exactly one
        // ACK; with mismatched counts, pair up the minimum count (the
        // published algorithm's silent assumption).
        let n = s.data_count.min(s.ack_count);
        if n == 0 {
            return None;
        }
        // avg = (Σ ack_ts)/n_ack - (Σ data_ts)/n_data : means of each side.
        let ack_mean = s.ack_ts_sum / s.ack_count as u128;
        let data_mean = s.data_ts_sum / s.data_count as u128;
        ack_mean.checked_sub(data_mean).map(|d| d as Nanos)
    }
}

/// Streamed through the common trait, lean has no per-packet output: its
/// sketch only yields aggregates, so the sink sees one sample per flow —
/// the average-RTT estimate — at [`RttMonitor::flush`], ordered by flow
/// key for reproducibility (its `eack` is meaningless and set to zero).
impl RttMonitor for LeanRtt {
    fn name(&self) -> &str {
        "lean"
    }

    fn describe(&self) -> String {
        "Lean: O(1)-per-flow timestamp sums, per-flow average-RTT estimates at flush (APoCS '20)"
            .to_string()
    }

    fn on_packet(&mut self, pkt: &PacketMeta, _sink: &mut dyn SampleSink) {
        self.process(pkt);
    }

    fn flush(&mut self, sink: &mut dyn SampleSink) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        let mut estimates = self.estimates();
        estimates.sort_unstable_by_key(|e| e.flow);
        for e in estimates {
            if let Some(avg) = e.avg_rtt {
                sink.on_sample(RttSample::new(e.flow, SeqNum(0), avg, self.last_ts));
            }
        }
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            packets: self.packets,
            samples: if self.flushed {
                self.flows
                    .values()
                    .filter(|s| Self::compute(s).is_some())
                    .count() as u64
            } else {
                0
            },
            ..EngineStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{Direction, PacketBuilder, MILLISECOND};

    fn flow() -> FlowKey {
        FlowKey::from_raw(0x0a08_0001, 40200, 0x5db8_d822, 443)
    }

    #[test]
    fn clean_pairing_recovers_exact_average() {
        let f = flow();
        let mut lean = LeanRtt::new(Leg::External);
        for i in 0..10u32 {
            let t = i as u64 * 100 * MILLISECOND;
            lean.process(
                &PacketBuilder::new(f, t)
                    .seq(i * 100)
                    .payload(100)
                    .dir(Direction::Outbound)
                    .build(),
            );
            lean.process(
                &PacketBuilder::new(f.reverse(), t + 20 * MILLISECOND)
                    .ack(i * 100 + 100)
                    .dir(Direction::Inbound)
                    .build(),
            );
        }
        let est = lean.estimate(&f).unwrap();
        assert_eq!(est.avg_rtt, Some(20 * MILLISECOND));
        assert_eq!(est.data_count, 10);
        assert_eq!(est.ack_count, 10);
    }

    #[test]
    fn ack_thinning_skews_the_estimate() {
        // Cumulative ACKs (one per two segments) break the pairing
        // assumption: the estimate no longer equals the true 20 ms.
        let f = flow();
        let mut lean = LeanRtt::new(Leg::External);
        for i in 0..10u32 {
            let t = i as u64 * 100 * MILLISECOND;
            lean.process(
                &PacketBuilder::new(f, t)
                    .seq(i * 100)
                    .payload(100)
                    .dir(Direction::Outbound)
                    .build(),
            );
            if i % 2 == 1 {
                lean.process(
                    &PacketBuilder::new(f.reverse(), t + 20 * MILLISECOND)
                        .ack(i * 100 + 100)
                        .dir(Direction::Inbound)
                        .build(),
                );
            }
        }
        let est = lean.estimate(&f).unwrap().avg_rtt.unwrap();
        assert_ne!(est, 20 * MILLISECOND);
        // The skew is systematic: ACK mean shifts by ~half the inter-pair
        // gap (50 ms here).
        assert!(est > 40 * MILLISECOND, "estimate {est}");
    }

    #[test]
    fn no_acks_means_no_estimate() {
        let f = flow();
        let mut lean = LeanRtt::new(Leg::External);
        lean.process(
            &PacketBuilder::new(f, 0)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
        );
        assert_eq!(lean.estimate(&f).unwrap().avg_rtt, None);
    }

    #[test]
    fn syn_packets_are_ignored() {
        let f = flow();
        let mut lean = LeanRtt::new(Leg::External);
        lean.process(
            &PacketBuilder::new(f, 0)
                .seq(0u32)
                .syn()
                .dir(Direction::Outbound)
                .build(),
        );
        assert!(lean.estimate(&f).is_none());
    }
}
