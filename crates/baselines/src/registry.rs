//! The engine registry: every [`RttMonitor`] implementation reachable by
//! name, with the metadata the drivers need to run and judge it.
//!
//! Registering an engine here is all it takes to appear in the benchmark
//! harness, the differential runner's scorecard, and the `dartmon`
//! `--engine` flags — "add an engine, get every comparison for free".
//!
//! Entries are constructed from a shared [`DartConfig`]: each engine maps
//! the fields that mean something to it (`syn_policy`, `leg`) onto its own
//! configuration and leaves the rest to its defaults, so one CLI/testkit
//! configuration drives heterogeneous engines coherently.

use crate::dapper::{Dapper, DapperConfig};
use crate::fridge::{Fridge, FridgeConfig};
use crate::histo::HistMonitor;
use crate::lean::LeanRtt;
use crate::pping::{Pping, PpingConfig};
use crate::seglist::SegListMonitor;
use crate::spin::{SpinConfig, SpinMonitor};
use crate::strawman::{Strawman, StrawmanConfig};
use crate::tcptrace::{TcpTrace, TcpTraceConfig};
use dart_core::{Backend, DartConfig, DartEngine, RttMonitor, ShardedConfig, ShardedMonitor};
#[cfg(feature = "telemetry")]
use dart_telemetry::MetricRegistry;

/// How strictly the differential runner may judge an engine's output
/// against the oracle (see `dart-testkit`'s `diff` module).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Judgement {
    /// Matches exact left edges and accounts for every miss: impossible
    /// *and* cross-anchored samples are bugs (within an explicit aliasing
    /// budget), and missed samples must fit the engine's own loss counters.
    ExactAnchored,
    /// Stores real transmission times, so fabricated samples are bugs, but
    /// keeps no loss accounting and may legitimately cross-anchor
    /// (cumulative ACK semantics).
    Anchored,
    /// Aliases flows or measures a different clock by design: scored for
    /// the record, never asserted.
    Reported,
    /// Judged against QUIC spin-bit edge ground truth: every emitted
    /// sample must anchor both of its endpoints to observed spin
    /// transitions of its flow direction (a sample that does not is
    /// fabricated — Impossible). Non-consecutive edge pairs are reported
    /// as spanning, like `Ambiguous`; loss accounting is not asserted.
    SpinEdge,
    /// Judged at distribution level: the engine exports weighted log2
    /// bucket rows instead of per-match samples, and its p50/p99 bucket
    /// indices must land within ±1 of the oracle valid-sample histogram.
    Histogram,
}

/// One registered engine: identity, judgement contract, and constructor.
pub struct EngineEntry {
    /// Registry key and report row label.
    pub name: &'static str,
    /// One-line description for CLI listings.
    pub description: &'static str,
    /// How the testkit judges this engine.
    pub judgement: Judgement,
    build: fn(&DartConfig) -> Box<dyn RttMonitor>,
}

impl EngineEntry {
    /// Construct a fresh monitor from the shared configuration.
    pub fn build(&self, cfg: &DartConfig) -> Box<dyn RttMonitor> {
        (self.build)(cfg)
    }
}

/// A monitor resolved by name, paired with its judgement contract.
pub struct BuiltEngine {
    /// The constructed monitor.
    pub monitor: Box<dyn RttMonitor>,
    /// The judgement promised by its registry entry.
    pub judgement: Judgement,
}

/// The name → engine table.
pub struct EngineRegistry {
    entries: Vec<EngineEntry>,
}

/// Shard count encoded in a `dart-sharded-N` name, if it is one.
fn sharded_shards(name: &str) -> Option<usize> {
    let n = name.strip_prefix("dart-sharded-")?.parse().ok()?;
    (n >= 1).then_some(n)
}

impl EngineRegistry {
    /// The standard registry: the engines of the comparison suite
    /// (`dart`, `dart-sharded-4`, `tcptrace`, `fridge`, `pping`, `dapper`,
    /// `strawman`, `seglist`, `lean`), plus `tcptrace-quirk` (the Fig. 9
    /// ground-truth variant with tcptrace's quadrant double-sample bug),
    /// the encrypted-transport family — `spin` (QUIC spin-bit edges) and
    /// `dart-hist` (snapshot-only log2 histogram export) — and the
    /// alternative flow-state backends `dart@sketch` (recency-aged sketch
    /// tables) and `dart@precision` (probabilistic recirculation
    /// admission).
    pub fn standard() -> EngineRegistry {
        EngineRegistry {
            entries: vec![
                EngineEntry {
                    name: "dart",
                    description: "Dart: RT/PT pipeline with lazy eviction and recirculation",
                    judgement: Judgement::ExactAnchored,
                    build: |cfg| Box::new(DartEngine::new(*cfg)),
                },
                EngineEntry {
                    name: "dart@sketch",
                    description: "Dart on recency-aged sketch RT/PT tables (DUNE-style)",
                    // Sketch tables *lose* state (recency eviction, oldest-
                    // cell overwrite) but never fabricate: every match
                    // verifies a (sig, eACK) fingerprint and the RT rules
                    // ACKs exactly, so samples stay exactly anchored and
                    // losses land in counters the loss budget reads.
                    judgement: Judgement::ExactAnchored,
                    build: |cfg| Box::new(DartEngine::new(cfg.with_backend(Backend::Sketch))),
                },
                EngineEntry {
                    name: "dart@precision",
                    description:
                        "Dart with probabilistic recirculation admission (heavy hitters bypass)",
                    // Exact tables; the admission gate only *drops* evicted
                    // records before recirculation, which the loss budget
                    // already accounts as unmatched advances.
                    judgement: Judgement::ExactAnchored,
                    build: |cfg| Box::new(DartEngine::new(cfg.with_backend(Backend::Precision))),
                },
                EngineEntry {
                    name: "dart-sharded-4",
                    description: "Dart over 4 symmetric-hash flow shards, deterministic merge",
                    judgement: Judgement::ExactAnchored,
                    build: |cfg| Box::new(ShardedMonitor::new(ShardedConfig::new(*cfg, 4))),
                },
                EngineEntry {
                    name: "tcptrace",
                    description: "tcptrace: unlimited segment lists, Karn exclusion",
                    judgement: Judgement::Anchored,
                    build: |cfg| {
                        Box::new(TcpTrace::new(TcpTraceConfig {
                            syn_policy: cfg.syn_policy,
                            leg: cfg.leg,
                            quadrant_quirk: false,
                        }))
                    },
                },
                EngineEntry {
                    name: "tcptrace-quirk",
                    description: "tcptrace with the quadrant double-sample bug (Fig. 9)",
                    judgement: Judgement::Anchored,
                    build: |cfg| {
                        Box::new(TcpTrace::new(TcpTraceConfig {
                            syn_policy: cfg.syn_policy,
                            leg: cfg.leg,
                            quadrant_quirk: true,
                        }))
                    },
                },
                EngineEntry {
                    name: "fridge",
                    description: "Fridge: evict-on-collision sampler, survival-corrected weights",
                    judgement: Judgement::Reported,
                    build: |cfg| {
                        Box::new(Fridge::new(FridgeConfig {
                            syn_policy: cfg.syn_policy,
                            leg: cfg.leg,
                            ..FridgeConfig::default()
                        }))
                    },
                },
                EngineEntry {
                    name: "pping",
                    description: "pping: TSval/TSecr echo matching",
                    judgement: Judgement::Reported,
                    build: |cfg| {
                        Box::new(Pping::new(PpingConfig {
                            leg: cfg.leg,
                            ..PpingConfig::default()
                        }))
                    },
                },
                EngineEntry {
                    name: "dapper",
                    description: "Dapper: one outstanding packet per flow",
                    judgement: Judgement::Reported,
                    build: |cfg| {
                        Box::new(Dapper::new(DapperConfig {
                            syn_policy: cfg.syn_policy,
                            leg: cfg.leg,
                        }))
                    },
                },
                EngineEntry {
                    name: "strawman",
                    description: "Strawman: single (flow, eACK) table, biased eviction",
                    judgement: Judgement::Reported,
                    build: |cfg| {
                        Box::new(Strawman::new(StrawmanConfig {
                            syn_policy: cfg.syn_policy,
                            leg: cfg.leg,
                            ..StrawmanConfig::default()
                        }))
                    },
                },
                EngineEntry {
                    name: "seglist",
                    description: "SegList: bare outstanding-segment matching",
                    judgement: Judgement::Anchored,
                    build: |cfg| Box::new(SegListMonitor::new(cfg.leg).with_syn(cfg.syn_policy)),
                },
                EngineEntry {
                    name: "lean",
                    description: "Lean: timestamp sums, per-flow averages at flush",
                    judgement: Judgement::Reported,
                    build: |cfg| Box::new(LeanRtt::new(cfg.leg)),
                },
                EngineEntry {
                    name: "spin",
                    description: "QUIC spin-bit edge tracker with reorder/loss rejection",
                    judgement: Judgement::SpinEdge,
                    build: |_cfg| Box::new(SpinMonitor::new(SpinConfig::default())),
                },
                EngineEntry {
                    name: "dart-hist",
                    description: "Dart matches binned into log2 registers, snapshot-only export",
                    judgement: Judgement::Histogram,
                    build: |cfg| Box::new(HistMonitor::new(*cfg)),
                },
            ],
        }
    }

    /// All registered entries, in registration order.
    pub fn entries(&self) -> &[EngineEntry] {
        &self.entries
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// Look up a statically registered entry.
    pub fn get(&self, name: &str) -> Option<&EngineEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Validate `name` without constructing anything, returning the
    /// judgement a [`build`](EngineRegistry::build) of it would carry.
    /// Useful for checking CLI input before allocating tables or spawning
    /// shard workers.
    pub fn judgement(&self, name: &str) -> Result<Judgement, String> {
        if let Some(entry) = self.get(name) {
            return Ok(entry.judgement);
        }
        if sharded_shards(name).is_some() {
            return Ok(Judgement::ExactAnchored);
        }
        Err(format!(
            "unknown engine {name:?} (registered: {})",
            self.names().join(", ")
        ))
    }

    /// Construct the engine registered under `name` from `cfg`. Beyond the
    /// static entries, any `dart-sharded-N` (N ≥ 1) resolves to an N-shard
    /// Dart with the `dart` judgement contract.
    pub fn build(&self, name: &str, cfg: &DartConfig) -> Result<BuiltEngine, String> {
        let judgement = self.judgement(name)?;
        let monitor: Box<dyn RttMonitor> = if let Some(entry) = self.get(name) {
            entry.build(cfg)
        } else {
            let shards = sharded_shards(name).expect("judgement() validated the name");
            Box::new(ShardedMonitor::new(ShardedConfig::new(*cfg, shards)))
        };
        Ok(BuiltEngine { monitor, judgement })
    }

    /// [`build`](EngineRegistry::build) with instrumentation attached to
    /// `metrics`: Dart engines get in-engine per-shard series
    /// (`dart_shard_*`, `dart_rtt_ns{shard}`, recirculation gauges);
    /// every other engine is wrapped in a
    /// [`MeteredMonitor`](dart_core::MeteredMonitor), which mirrors its
    /// run-level counters without touching baseline code.
    #[cfg(feature = "telemetry")]
    pub fn build_instrumented(
        &self,
        name: &str,
        cfg: &DartConfig,
        metrics: &MetricRegistry,
    ) -> Result<BuiltEngine, String> {
        use dart_core::{EngineTelemetry, MeteredMonitor};
        let judgement = self.judgement(name)?;
        let monitor: Box<dyn RttMonitor> = if name == "dart" {
            let mut engine = DartEngine::new(*cfg);
            engine.attach_telemetry(EngineTelemetry::register(metrics, 0));
            Box::new(engine)
        } else if let Some(shards) = sharded_shards(name) {
            Box::new(ShardedMonitor::with_telemetry(
                ShardedConfig::new(*cfg, shards),
                metrics,
            ))
        } else {
            let entry = self.get(name).expect("judgement() validated the name");
            Box::new(MeteredMonitor::new(entry.build(cfg), metrics))
        };
        Ok(BuiltEngine { monitor, judgement })
    }
}

impl Default for EngineRegistry {
    fn default() -> Self {
        EngineRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_core::run_monitor_slice;
    use dart_packet::{Direction, FlowKey, PacketBuilder, PacketMeta};

    fn exchange() -> Vec<PacketMeta> {
        let f = FlowKey::from_raw(0x0a00_0001, 40123, 0x5db8_d822, 443);
        vec![
            PacketBuilder::new(f, 0)
                .seq(0u32)
                .payload(1460)
                .dir(Direction::Outbound)
                .build(),
            PacketBuilder::new(f.reverse(), 20_000_000)
                .ack(1460u32)
                .dir(Direction::Inbound)
                .build(),
        ]
    }

    #[test]
    fn standard_registry_contains_the_comparison_engines() {
        let reg = EngineRegistry::standard();
        for name in [
            "dart",
            "dart@sketch",
            "dart@precision",
            "dart-sharded-4",
            "tcptrace",
            "fridge",
            "pping",
            "dapper",
            "strawman",
            "seglist",
            "lean",
            "spin",
            "dart-hist",
        ] {
            assert!(reg.get(name).is_some(), "missing registry entry {name}");
        }
        assert_eq!(reg.judgement("spin"), Ok(Judgement::SpinEdge));
        assert_eq!(reg.judgement("dart-hist"), Ok(Judgement::Histogram));
    }

    #[test]
    fn every_entry_builds_and_runs() {
        let reg = EngineRegistry::standard();
        let packets = exchange();
        for entry in reg.entries() {
            let mut built = reg.build(entry.name, &DartConfig::default()).unwrap();
            assert_eq!(built.monitor.name(), entry.name, "name mismatch");
            assert!(!built.monitor.describe().is_empty());
            let (_, stats) = run_monitor_slice(built.monitor.as_mut(), &packets);
            assert_eq!(
                stats.packets,
                packets.len() as u64,
                "{} dropped packets",
                entry.name
            );
        }
    }

    #[test]
    fn sharded_names_resolve_dynamically() {
        let reg = EngineRegistry::standard();
        let built = reg.build("dart-sharded-7", &DartConfig::default()).unwrap();
        assert_eq!(built.monitor.name(), "dart-sharded-7");
        assert_eq!(built.judgement, Judgement::ExactAnchored);
        assert!(reg.build("dart-sharded-0", &DartConfig::default()).is_err());
        assert!(reg.build("dart-sharded-x", &DartConfig::default()).is_err());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn build_instrumented_registers_series_for_every_engine() {
        use dart_telemetry::MetricRegistry;
        let reg = EngineRegistry::standard();
        let packets = exchange();
        for name in ["dart", "dart-sharded-2", "tcptrace"] {
            let metrics = MetricRegistry::new();
            let mut built = reg
                .build_instrumented(name, &DartConfig::default(), &metrics)
                .unwrap();
            assert_eq!(built.monitor.name(), name);
            let (_, stats) = run_monitor_slice(built.monitor.as_mut(), &packets);
            assert_eq!(stats.packets, packets.len() as u64);
            // Both packets of the one flow land on a single shard, so sum
            // the packet counter across every registered series.
            let family = if name == "tcptrace" {
                "dart_run_packets_total"
            } else {
                "dart_shard_packets_total"
            };
            let snap = metrics.scrape();
            let total: u64 = snap
                .samples
                .iter()
                .filter(|s| s.name == family)
                .map(|s| match &s.value {
                    dart_telemetry::MetricValue::Counter { total, .. } => *total,
                    other => panic!("expected counter, got {other:?}"),
                })
                .sum();
            assert_eq!(total, stats.packets, "{name}: {family} never synced");
        }
    }

    #[test]
    fn unknown_names_list_the_registry() {
        let err = EngineRegistry::standard()
            .build("nonsense", &DartConfig::default())
            .err()
            .expect("unknown name must be rejected");
        assert!(
            err.contains("nonsense") && err.contains("tcptrace"),
            "{err}"
        );
    }
}
