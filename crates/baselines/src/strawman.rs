//! The strawman data-plane tracker (paper §2.1, after Chen et al. \[12\]):
//! a single hash table keyed by (flow, eACK) holding a timestamp, with no
//! Range Tracker in front of it.
//!
//! It tracks *every* data packet — including retransmissions — so it emits
//! ambiguous samples (§2.2), and it manages memory with the biased policies
//! §2.3 warns about: a fixed timeout and/or evict-on-collision, both of
//! which under-sample long RTTs. The ablation benches quantify exactly that
//! bias against Dart.

use dart_core::{EngineStats, Leg, RttMonitor, RttSample, SampleSink, SynPolicy};
use dart_packet::{FlowKey, Nanos, PacketMeta, SeqNum, SignatureWidth};
use dart_switch::HashUnit;

/// Eviction policy knobs for the strawman.
#[derive(Clone, Copy, Debug)]
pub struct StrawmanConfig {
    /// Table slots.
    pub slots: usize,
    /// Entries older than this are treated as vacant (`None` disables the
    /// timeout).
    pub timeout: Option<Nanos>,
    /// On a hash collision, overwrite the incumbent with the newcomer
    /// (otherwise the newcomer is dropped).
    pub evict_on_collision: bool,
    /// Handshake policy.
    pub syn_policy: SynPolicy,
    /// Measured leg.
    pub leg: Leg,
}

impl Default for StrawmanConfig {
    fn default() -> Self {
        StrawmanConfig {
            slots: 1 << 17,
            timeout: Some(500 * dart_packet::MILLISECOND),
            evict_on_collision: true,
            syn_policy: SynPolicy::Skip,
            leg: Leg::External,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    sig: u64,
    eack: SeqNum,
    ts: Nanos,
}

/// Counters for a strawman run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StrawmanStats {
    /// Packets offered.
    pub packets: u64,
    /// Data packets inserted.
    pub inserted: u64,
    /// Insertions refused (collision, `evict_on_collision = false`).
    pub dropped_on_collision: u64,
    /// Incumbents overwritten on collision.
    pub evicted_on_collision: u64,
    /// Entries reclaimed by timeout.
    pub timed_out: u64,
    /// Samples emitted.
    pub samples: u64,
}

/// The strawman tracker.
pub struct Strawman {
    cfg: StrawmanConfig,
    table: Vec<Option<Entry>>,
    hasher: HashUnit,
    stats: StrawmanStats,
}

impl Strawman {
    /// Build a tracker.
    pub fn new(cfg: StrawmanConfig) -> Strawman {
        assert!(cfg.slots > 0);
        Strawman {
            table: vec![None; cfg.slots],
            hasher: HashUnit::new(0xC0, 32),
            cfg,
            stats: StrawmanStats::default(),
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &StrawmanStats {
        &self.stats
    }

    fn key(&self, flow: &FlowKey, eack: SeqNum) -> (u64, usize) {
        let sig = flow.signature(SignatureWidth::W64).raw();
        let mut bytes = [0u8; 12];
        bytes[0..8].copy_from_slice(&sig.to_le_bytes());
        bytes[8..12].copy_from_slice(&eack.raw().to_le_bytes());
        (sig, self.hasher.index(&bytes, self.table.len()))
    }

    fn expired(&self, e: &Entry, now: Nanos) -> bool {
        self.cfg
            .timeout
            .is_some_and(|t| now.saturating_sub(e.ts) > t)
    }

    /// Process one packet.
    pub fn process(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        self.stats.packets += 1;
        if self.cfg.syn_policy == SynPolicy::Skip && pkt.is_syn() {
            return;
        }
        if ack_role(self.cfg.leg, pkt.dir) && pkt.is_ack() {
            let data_flow = pkt.flow.reverse();
            let (sig, idx) = self.key(&data_flow, pkt.ack);
            if let Some(e) = self.table[idx] {
                if e.sig == sig && e.eack == pkt.ack && !self.expired(&e, pkt.ts) {
                    self.table[idx] = None;
                    self.stats.samples += 1;
                    sink.on_sample(RttSample::new(
                        data_flow,
                        pkt.ack,
                        pkt.ts.saturating_sub(e.ts),
                        pkt.ts,
                    ));
                }
            }
        }
        if seq_role(self.cfg.leg, pkt.dir) && pkt.is_seq() {
            let eack = pkt.eack();
            let (sig, idx) = self.key(&pkt.flow, eack);
            let entry = Entry {
                sig,
                eack,
                ts: pkt.ts,
            };
            match self.table[idx] {
                None => {
                    self.table[idx] = Some(entry);
                    self.stats.inserted += 1;
                }
                Some(old) if self.expired(&old, pkt.ts) => {
                    self.stats.timed_out += 1;
                    self.table[idx] = Some(entry);
                    self.stats.inserted += 1;
                }
                Some(old) if old.sig == sig && old.eack == eack => {
                    // Retransmission replica: the strawman blindly refreshes
                    // the timestamp — the ambiguity §2.2 describes.
                    self.table[idx] = Some(entry);
                    self.stats.inserted += 1;
                }
                Some(_) if self.cfg.evict_on_collision => {
                    self.stats.evicted_on_collision += 1;
                    self.table[idx] = Some(entry);
                    self.stats.inserted += 1;
                }
                Some(_) => {
                    self.stats.dropped_on_collision += 1;
                }
            }
        }
    }
}

impl RttMonitor for Strawman {
    fn name(&self) -> &str {
        "strawman"
    }

    fn describe(&self) -> String {
        "Strawman: one (flow, eACK) hash table, timeout/evict policies, no ambiguity handling"
            .to_string()
    }

    fn on_packet(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        self.process(pkt, sink);
    }

    fn flush(&mut self, _sink: &mut dyn SampleSink) {}

    fn stats(&self) -> EngineStats {
        EngineStats {
            packets: self.stats.packets,
            samples: self.stats.samples,
            ..EngineStats::default()
        }
    }
}

fn seq_role(leg: Leg, dir: dart_packet::Direction) -> bool {
    use dart_packet::Direction::*;
    match leg {
        Leg::External => dir == Outbound,
        Leg::Internal => dir == Inbound,
        Leg::Both => true,
    }
}

fn ack_role(leg: Leg, dir: dart_packet::Direction) -> bool {
    use dart_packet::Direction::*;
    match leg {
        Leg::External => dir == Inbound,
        Leg::Internal => dir == Outbound,
        Leg::Both => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{Direction, PacketBuilder};

    fn flow(n: u32) -> FlowKey {
        FlowKey::from_raw(0x0a00_0000 + n, 40000, 0x5db8_d822, 443)
    }

    fn cfg(slots: usize) -> StrawmanConfig {
        StrawmanConfig {
            slots,
            ..StrawmanConfig::default()
        }
    }

    #[test]
    fn clean_exchange_samples() {
        let f = flow(1);
        let mut s = Strawman::new(cfg(64));
        let mut out: Vec<RttSample> = Vec::new();
        s.process(
            &PacketBuilder::new(f, 0)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            &mut out,
        );
        s.process(
            &PacketBuilder::new(f.reverse(), 7_000)
                .ack(100u32)
                .dir(Direction::Inbound)
                .build(),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rtt, 7_000);
    }

    #[test]
    fn retransmission_produces_wrong_sample() {
        // The defining flaw: the strawman refreshes the timestamp on a
        // retransmission, so a delayed ACK of the ORIGINAL transmission is
        // measured against the RETRANSMIT time — an underestimated sample
        // Dart would have refused to produce.
        let f = flow(2);
        let mut s = Strawman::new(cfg(64));
        let mut out: Vec<RttSample> = Vec::new();
        s.process(
            &PacketBuilder::new(f, 0)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            &mut out,
        );
        s.process(
            &PacketBuilder::new(f, 50_000)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            &mut out,
        );
        s.process(
            &PacketBuilder::new(f.reverse(), 60_000)
                .ack(100u32)
                .dir(Direction::Inbound)
                .build(),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rtt, 10_000, "ambiguous sample, biased low");
    }

    #[test]
    fn timeout_discards_slow_entries() {
        let f = flow(3);
        let mut c = cfg(64);
        c.timeout = Some(1_000);
        let mut s = Strawman::new(c);
        let mut out: Vec<RttSample> = Vec::new();
        s.process(
            &PacketBuilder::new(f, 0)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            &mut out,
        );
        // ACK arrives after the timeout: the long-RTT sample is lost — the
        // bias against long RTTs §2.3 describes.
        s.process(
            &PacketBuilder::new(f.reverse(), 5_000)
                .ack(100u32)
                .dir(Direction::Inbound)
                .build(),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn collision_policy_evict_vs_drop() {
        // With one slot, two distinct packets always collide.
        let fa = flow(4);
        let fb = flow(5);
        for (evict, expect_evicted, expect_dropped) in [(true, 1, 0), (false, 0, 1)] {
            let mut c = cfg(1);
            c.evict_on_collision = evict;
            c.timeout = None;
            let mut s = Strawman::new(c);
            let mut out: Vec<RttSample> = Vec::new();
            s.process(
                &PacketBuilder::new(fa, 0)
                    .seq(0u32)
                    .payload(100)
                    .dir(Direction::Outbound)
                    .build(),
                &mut out,
            );
            s.process(
                &PacketBuilder::new(fb, 10)
                    .seq(0u32)
                    .payload(100)
                    .dir(Direction::Outbound)
                    .build(),
                &mut out,
            );
            assert_eq!(s.stats().evicted_on_collision, expect_evicted);
            assert_eq!(s.stats().dropped_on_collision, expect_dropped);
        }
    }

    #[test]
    fn syn_skip_ignores_handshake() {
        let f = flow(6);
        let mut s = Strawman::new(cfg(64));
        let mut out: Vec<RttSample> = Vec::new();
        s.process(
            &PacketBuilder::new(f, 0)
                .seq(0u32)
                .syn()
                .dir(Direction::Outbound)
                .build(),
            &mut out,
        );
        assert_eq!(s.stats().inserted, 0);
    }
}
