//! A P4TG-style in-dataplane histogram engine: Dart's RT/PT matching in
//! front, but *no per-sample export stream*. Every matched RTT is binned
//! on the spot into log2 registers ([`dart_telemetry::Histogram`] — the
//! same power-of-two bucketing a Tofino register array implements with a
//! priority TCAM range match), and only the histogram snapshot leaves the
//! data plane at flush time.
//!
//! This is the line-rate answer to the paper's daemon bottleneck (§6.3):
//! the export cost is O(buckets), independent of traffic volume. The price
//! is resolution — per-flow identity and exact values are gone; only the
//! distribution shape survives, at factor-of-two granularity.
//!
//! **Export encoding.** So the differential runner (and anything else
//! speaking [`RttSample`]) can consume the snapshot without a second
//! sample type, `flush` emits one *weighted* sample per non-empty bucket,
//! bridging through the same fixed-point weight the Fridge engine's
//! [`WeightedSample`](crate::fridge::WeightedSample) uses:
//!
//! * `flow` — the all-zero [`FlowKey`] ([`HistMonitor::bucket_flow`]): no
//!   per-flow identity survives binning;
//! * `eack` — the bucket index;
//! * `rtt` — the bucket's inclusive upper bound (`2^i − 1`), which
//!   [`dart_telemetry::histogram::bucket_index`] maps back to bucket `i`;
//! * `weight` — the bucket count (clamped at ≈4.29 M per bucket by the
//!   fixed-point encoding; beyond any trace the testkit runs).
//!
//! The testkit reconstructs the snapshot from these rows and judges it at
//! distribution level: engine p50/p99 bucket indices within ±1 of the
//! oracle's exact-RTT histogram (the `Histogram` judgement contract,
//! DESIGN.md §5g).

use dart_core::{
    DartConfig, DartEngine, EngineStats, RttMonitor, RttSample, SampleSink, SampleWeight,
};
use dart_packet::{FlowKey, Nanos, PacketMeta, SeqNum};
use dart_telemetry::histogram::{bucket_le, Histogram, HistogramSnapshot};

/// The histogram monitor: registry name `dart-hist`.
pub struct HistMonitor {
    engine: DartEngine,
    hist: Histogram,
    last_ts: Nanos,
    flushed: bool,
}

impl HistMonitor {
    /// Build around a Dart engine configured by `cfg`.
    pub fn new(cfg: DartConfig) -> HistMonitor {
        HistMonitor {
            engine: DartEngine::new(cfg),
            hist: Histogram::new(),
            last_ts: 0,
            flushed: false,
        }
    }

    /// The sentinel flow key carried by exported bucket rows.
    pub fn bucket_flow() -> FlowKey {
        FlowKey::from_raw(0, 0, 0, 0)
    }

    /// The live histogram (non-consuming; flush still exports normally).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.hist.snapshot()
    }
}

impl RttMonitor for HistMonitor {
    fn name(&self) -> &str {
        "dart-hist"
    }

    fn describe(&self) -> String {
        "P4TG-style data-plane histogram: Dart matching binned into log2 \
         registers, snapshot-only export"
            .to_string()
    }

    fn on_packet(&mut self, pkt: &PacketMeta, _sink: &mut dyn SampleSink) {
        self.last_ts = self.last_ts.max(pkt.ts);
        let hist = &self.hist;
        let mut bin = |s: RttSample| hist.observe(s.rtt);
        self.engine.on_packet(pkt, &mut bin);
    }

    fn on_batch(&mut self, pkts: &[PacketMeta], _sink: &mut dyn SampleSink) {
        if let Some(last) = pkts.last() {
            self.last_ts = self.last_ts.max(last.ts);
        }
        let hist = &self.hist;
        let mut bin = |s: RttSample| hist.observe(s.rtt);
        self.engine.on_batch(pkts, &mut bin);
    }

    fn flush(&mut self, sink: &mut dyn SampleSink) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        let hist = &self.hist;
        let mut bin = |s: RttSample| hist.observe(s.rtt);
        RttMonitor::flush(&mut self.engine, &mut bin);
        // Export: one weighted row per non-empty bucket, bucket index
        // recoverable from either `eack` or `bucket_index(rtt)`.
        let snap = self.hist.snapshot();
        for (i, &count) in snap.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let upper = bucket_le(i).unwrap_or(u64::MAX);
            sink.on_sample(
                RttSample::new(Self::bucket_flow(), SeqNum(i as u32), upper, self.last_ts)
                    .with_weight(SampleWeight::from_f64(count as f64)),
            );
        }
    }

    fn stats(&self) -> EngineStats {
        RttMonitor::stats(&self.engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_core::run_monitor_slice;
    use dart_packet::{Direction, PacketBuilder};
    use dart_telemetry::histogram::bucket_index;

    fn exchange(rtt: Nanos, port: u16, ts: Nanos) -> Vec<PacketMeta> {
        let f = FlowKey::from_raw(0x0a00_0001, port, 0x5db8_d822, 443);
        vec![
            PacketBuilder::new(f, ts)
                .seq(0u32)
                .payload(1000)
                .dir(Direction::Outbound)
                .build(),
            PacketBuilder::new(f.reverse(), ts + rtt)
                .ack(1000u32)
                .dir(Direction::Inbound)
                .build(),
        ]
    }

    #[test]
    fn bins_matches_and_exports_bucket_rows() {
        let mut pkts = Vec::new();
        pkts.extend(exchange(20_000_000, 40_001, 0)); // ~20 ms
        pkts.extend(exchange(21_000_000, 40_002, 1_000)); // same bucket
        pkts.extend(exchange(200_000_000, 40_003, 2_000)); // ~200 ms
        pkts.sort_by_key(|p| p.ts);
        let mut eng = HistMonitor::new(DartConfig::default());
        let (rows, stats) = run_monitor_slice(&mut eng, &pkts);
        assert_eq!(stats.packets, pkts.len() as u64);
        assert_eq!(stats.samples, 3, "Dart matched all three exchanges");
        // Two distinct buckets, counts 2 and 1.
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.flow, HistMonitor::bucket_flow());
            assert_eq!(bucket_index(row.rtt) as u32, row.eack.raw());
        }
        let counts: Vec<u64> = rows
            .iter()
            .map(|r| r.weight.as_f64().round() as u64)
            .collect();
        assert_eq!(counts.iter().sum::<u64>(), 3);
        assert!(counts.contains(&2));
    }

    #[test]
    fn flush_is_idempotent_and_export_is_flush_only() {
        let pkts = exchange(10_000_000, 40_009, 0);
        let mut eng = HistMonitor::new(DartConfig::default());
        let mut rows: Vec<RttSample> = Vec::new();
        for p in &pkts {
            eng.on_packet(p, &mut rows);
        }
        assert!(rows.is_empty(), "no per-sample stream before flush");
        eng.flush(&mut rows);
        let after_first = rows.len();
        assert!(after_first > 0);
        let stats = eng.stats();
        eng.flush(&mut rows);
        assert_eq!(rows.len(), after_first, "second flush emitted");
        assert_eq!(eng.stats(), stats);
    }
}
