//! Per-flow outstanding-segment bookkeeping with 64-bit sequence unwrapping
//! — the unlimited-memory state `tcptrace` keeps and Dart cannot afford.

use dart_core::{EngineStats, Leg, RttMonitor, RttSample, SampleSink, SynPolicy};
use dart_packet::{FlowKey, Nanos, PacketMeta, SeqNum};
use std::collections::{BTreeMap, HashMap};

/// Unwraps 32-bit wire sequence numbers into a monotone 64-bit space, so a
/// long flow's wraparounds are transparent (unlike Dart, which must forego
/// samples at the top of the space — paper §4).
#[derive(Clone, Debug, Default)]
pub struct SeqUnwrapper {
    /// Last unwrapped value observed.
    last: Option<u64>,
}

impl SeqUnwrapper {
    /// Unwrap `raw` to the 64-bit value closest to the previous observation.
    pub fn unwrap(&mut self, raw: SeqNum) -> u64 {
        let v = match self.last {
            None => raw.raw() as u64,
            Some(prev) => {
                let base = prev & !0xFFFF_FFFF;
                // Candidate epochs: previous, next, and (guarding reordering
                // just below an epoch boundary) the one before.
                let mut best = u64::MAX;
                let mut best_dist = u64::MAX;
                for epoch in [base.wrapping_sub(1 << 32), base, base + (1 << 32)] {
                    let cand = epoch.wrapping_add(raw.raw() as u64);
                    let dist = cand.abs_diff(prev);
                    if dist < best_dist {
                        best = cand;
                        best_dist = dist;
                    }
                }
                best
            }
        };
        self.last = Some(self.last.map_or(v, |p| p.max(v)));
        v
    }
}

/// One outstanding (sent, not yet acknowledged) segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Unwrapped first byte.
    pub seq: u64,
    /// Unwrapped expected ACK (one past the last byte).
    pub eack: u64,
    /// Transmit timestamp as seen at the monitor.
    pub ts: Nanos,
    /// True once the segment has been retransmitted: per Karn's algorithm
    /// its ACK is ambiguous and produces no sample.
    pub ambiguous: bool,
}

/// The per-flow outstanding-segment list: every contiguous byte range in
/// flight, keyed by unwrapped eACK.
#[derive(Clone, Debug, Default)]
pub struct SegmentList {
    segs: BTreeMap<u64, Segment>,
    /// Highest unwrapped byte transmitted.
    highest_sent: u64,
    /// Highest unwrapped byte acknowledged.
    highest_acked: u64,
}

/// Result of offering a data segment to the list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegOutcome {
    /// Fresh data recorded.
    New,
    /// A retransmission: overlapping outstanding segments were poisoned.
    Retransmission,
    /// Entirely old bytes already acknowledged; nothing recorded.
    OldData,
}

/// Result of offering an ACK.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckResult {
    /// The sample-producing segment, if any: the newest fully-covered,
    /// unambiguous segment that this ACK acknowledges at its exact edge.
    pub matched: Option<Segment>,
    /// Number of segments retired by this ACK.
    pub retired: usize,
    /// True when this was a duplicate ACK (no new data acknowledged).
    pub duplicate: bool,
}

impl SegmentList {
    /// Create an empty list.
    pub fn new() -> SegmentList {
        SegmentList::default()
    }

    /// Outstanding segment count.
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// True when no segments are outstanding.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Record a data segment `[seq, eack)` (unwrapped) sent at `ts`.
    pub fn on_data(&mut self, seq: u64, eack: u64, ts: Nanos) -> SegOutcome {
        debug_assert!(seq < eack, "empty segments are not data");
        if eack <= self.highest_acked {
            return SegOutcome::OldData;
        }
        if seq < self.highest_sent {
            // Some bytes were sent before: a retransmission (possibly with
            // new data appended). Poison every overlapping segment.
            for (_, s) in self.segs.range_mut(seq + 1..) {
                if s.seq < eack {
                    s.ambiguous = true;
                }
            }
            // Refresh/insert the exact-edge segment so a future exact ACK
            // finds it — ambiguous, so it never samples.
            self.segs.insert(
                eack,
                Segment {
                    seq,
                    eack,
                    ts,
                    ambiguous: true,
                },
            );
            self.highest_sent = self.highest_sent.max(eack);
            return SegOutcome::Retransmission;
        }
        self.segs.insert(
            eack,
            Segment {
                seq,
                eack,
                ts,
                ambiguous: false,
            },
        );
        self.highest_sent = self.highest_sent.max(eack);
        SegOutcome::New
    }

    /// Process a cumulative ACK for unwrapped byte `ack` at `ts`.
    pub fn on_ack(&mut self, ack: u64, _ts: Nanos) -> AckResult {
        if ack <= self.highest_acked {
            return AckResult {
                matched: None,
                retired: 0,
                duplicate: true,
            };
        }
        self.highest_acked = ack;
        // Retire everything covered.
        let covered: Vec<u64> = self.segs.range(..=ack).map(|(k, _)| *k).collect();
        let mut matched = None;
        let retired = covered.len();
        for k in covered {
            let seg = self.segs.remove(&k).expect("key just enumerated");
            // tcptrace samples the segment this ACK acknowledges at its
            // exact edge; cumulative ACKs sample the newest covered segment.
            if !seg.ambiguous {
                matched = Some(seg);
            }
        }
        AckResult {
            matched,
            retired,
            duplicate: false,
        }
    }

    /// Highest unwrapped byte transmitted so far.
    pub fn highest_sent(&self) -> u64 {
        self.highest_sent
    }

    /// Highest unwrapped byte acknowledged so far.
    pub fn highest_acked(&self) -> u64 {
        self.highest_acked
    }
}

/// The raw segment-list matcher as an engine of its own: per-flow
/// [`SegmentList`] + [`SeqUnwrapper`] with almost none of tcptrace's
/// policy knobs — no quadrant quirk, handshake packets included by default
/// ([`with_syn`](SegListMonitor::with_syn) opts into `-SYN` so the shared
/// registry configuration applies). The minimal unlimited-memory
/// comparator: what you get from just keeping every in-flight byte range.
pub struct SegListMonitor {
    leg: Leg,
    syn_policy: SynPolicy,
    flows: HashMap<FlowKey, (SegmentList, SeqUnwrapper)>,
    packets: u64,
    syn_skipped: u64,
    samples: u64,
}

impl SegListMonitor {
    /// Build a matcher measuring `leg` (handshake packets included).
    pub fn new(leg: Leg) -> SegListMonitor {
        SegListMonitor {
            leg,
            syn_policy: SynPolicy::Include,
            flows: HashMap::new(),
            packets: 0,
            syn_skipped: 0,
            samples: 0,
        }
    }

    /// Builder-style: set the handshake policy.
    pub fn with_syn(mut self, syn_policy: SynPolicy) -> SegListMonitor {
        self.syn_policy = syn_policy;
        self
    }

    /// Number of flows with live state.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    fn seq_role(&self, dir: dart_packet::Direction) -> bool {
        use dart_packet::Direction::*;
        match self.leg {
            Leg::External => dir == Outbound,
            Leg::Internal => dir == Inbound,
            Leg::Both => true,
        }
    }

    fn ack_role(&self, dir: dart_packet::Direction) -> bool {
        use dart_packet::Direction::*;
        match self.leg {
            Leg::External => dir == Inbound,
            Leg::Internal => dir == Outbound,
            Leg::Both => true,
        }
    }
}

impl RttMonitor for SegListMonitor {
    fn name(&self) -> &str {
        "seglist"
    }

    fn describe(&self) -> String {
        "SegList: bare per-flow outstanding-segment matching, no policy knobs".to_string()
    }

    fn on_packet(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        self.packets += 1;
        if self.syn_policy == SynPolicy::Skip && pkt.is_syn() {
            self.syn_skipped += 1;
            return;
        }
        if self.ack_role(pkt.dir) && pkt.is_ack() {
            let data_flow = pkt.flow.reverse();
            if let Some((segs, unwrap)) = self.flows.get_mut(&data_flow) {
                let ack_u = unwrap.unwrap(pkt.ack);
                if let Some(seg) = segs.on_ack(ack_u, pkt.ts).matched {
                    self.samples += 1;
                    sink.on_sample(RttSample::new(
                        data_flow,
                        pkt.ack,
                        pkt.ts.saturating_sub(seg.ts),
                        pkt.ts,
                    ));
                }
            }
        }
        if self.seq_role(pkt.dir) && pkt.is_seq() {
            let (segs, unwrap) = self.flows.entry(pkt.flow).or_default();
            let seq_u = unwrap.unwrap(pkt.seq);
            let len = (pkt.eack().raw().wrapping_sub(pkt.seq.raw())) as u64;
            segs.on_data(seq_u, seq_u + len, pkt.ts);
        }
    }

    fn flush(&mut self, _sink: &mut dyn SampleSink) {}

    fn stats(&self) -> EngineStats {
        EngineStats {
            packets: self.packets,
            syn_skipped: self.syn_skipped,
            samples: self.samples,
            ..EngineStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrapper_monotone_without_wrap() {
        let mut u = SeqUnwrapper::default();
        assert_eq!(u.unwrap(SeqNum(100)), 100);
        assert_eq!(u.unwrap(SeqNum(5000)), 5000);
        assert_eq!(u.unwrap(SeqNum(4000)), 4000); // slight reordering
    }

    #[test]
    fn unwrapper_crosses_epochs() {
        let mut u = SeqUnwrapper::default();
        assert_eq!(u.unwrap(SeqNum(u32::MAX - 10)), (u32::MAX - 10) as u64);
        // Wraps: should continue in the next epoch.
        assert_eq!(u.unwrap(SeqNum(20)), (1u64 << 32) + 20);
        // Late packet from just before the wrap resolves backwards.
        assert_eq!(u.unwrap(SeqNum(u32::MAX - 5)), (u32::MAX - 5) as u64);
    }

    #[test]
    fn data_then_exact_ack_samples() {
        let mut sl = SegmentList::new();
        assert_eq!(sl.on_data(0, 100, 10), SegOutcome::New);
        let r = sl.on_ack(100, 50);
        assert_eq!(r.matched.unwrap().ts, 10);
        assert_eq!(r.retired, 1);
        assert!(!r.duplicate);
        assert!(sl.is_empty());
    }

    #[test]
    fn cumulative_ack_samples_newest_covered() {
        let mut sl = SegmentList::new();
        sl.on_data(0, 100, 10);
        sl.on_data(100, 200, 20);
        sl.on_data(200, 300, 30);
        let r = sl.on_ack(300, 99);
        assert_eq!(r.retired, 3);
        assert_eq!(r.matched.unwrap().ts, 30);
    }

    #[test]
    fn retransmission_poisons_overlap() {
        let mut sl = SegmentList::new();
        sl.on_data(0, 100, 10);
        sl.on_data(100, 200, 20);
        assert_eq!(sl.on_data(0, 100, 60), SegOutcome::Retransmission);
        // ACK of the poisoned first segment: retired but no sample.
        let r1 = sl.on_ack(100, 100);
        assert_eq!(r1.retired, 1);
        assert!(r1.matched.is_none());
        // The second segment was not overlapped: still samples.
        let r2 = sl.on_ack(200, 120);
        assert_eq!(r2.matched.unwrap().ts, 20);
    }

    #[test]
    fn retransmission_with_new_data_poisons_only_overlap() {
        let mut sl = SegmentList::new();
        sl.on_data(0, 100, 10);
        sl.on_data(100, 200, 20);
        // Retransmit [50, 150): poisons both outstanding segments (both
        // overlap the retransmitted byte range).
        sl.on_data(50, 150, 70);
        let r = sl.on_ack(200, 150);
        assert!(r.matched.is_none());
    }

    #[test]
    fn old_data_ignored() {
        let mut sl = SegmentList::new();
        sl.on_data(0, 100, 10);
        sl.on_ack(100, 50);
        assert_eq!(sl.on_data(0, 100, 60), SegOutcome::OldData);
    }

    #[test]
    fn duplicate_acks_flagged() {
        let mut sl = SegmentList::new();
        sl.on_data(0, 100, 10);
        sl.on_ack(100, 50);
        let r = sl.on_ack(100, 60);
        assert!(r.duplicate);
        assert!(r.matched.is_none());
    }

    #[test]
    fn partial_ack_leaves_remaining_segments() {
        let mut sl = SegmentList::new();
        sl.on_data(0, 100, 10);
        sl.on_data(100, 200, 20);
        let r = sl.on_ack(100, 50);
        assert_eq!(r.retired, 1);
        assert_eq!(sl.len(), 1);
        assert_eq!(sl.highest_acked(), 100);
    }
}
