//! A QUIC spin-bit RTT engine (RFC 9000 §17.4), modeled on the Tofino
//! spin-bit trackers the paper cites as the encrypted-transport extension
//! path (§7): SEQ/ACK matching is blind to QUIC, but the spin bit still
//! flips once per round trip, so a direct-mapped per-flow register — the
//! data-plane-friendly shape — can clock RTTs from edge to edge.
//!
//! State per slot: the flow key, the last spin bit seen, the timestamp of
//! the last observed *edge* (bit transition), and the timestamp of the
//! last packet. A new edge closes a measurement: `rtt = edge_ts -
//! prev_edge_ts`. Because the spin signal carries no sequence numbers,
//! reordering and loss silently corrupt periods (§7: "inferring
//! retransmissions or reordering is not possible using only the spin
//! bit"); the engine therefore *rejects* rather than emits when a period
//! looks corrupted:
//!
//! * **too short** (`< min_period`): a reordered packet carrying a stale
//!   bit fabricates a pair of edges nanoseconds apart;
//! * **too long** (`> max_period`): the flow went idle or every edge
//!   packet in between was lost;
//! * **gap-dominated**: the silence since the previous packet of the flow
//!   is a large fraction of the candidate period (`silence · gap_factor >
//!   period`), meaning the *real* edge likely happened unobserved inside
//!   the gap and this period is stretched.
//!
//! Rejected edges still update the edge state — they are real transitions,
//! just unusable endpoints — so the next period measures from the true
//! latest edge. This is what makes the engine *sound* under the testkit's
//! spin-edge oracle: every emitted sample's endpoints are observed
//! transitions of that flow direction, never fabrications (the
//! `SpinEdge` judgement contract, DESIGN.md §5g).
//!
//! TCP packets count as `no_role`: the engine shares mixed traces with the
//! SEQ/ACK engines, each family blind to the other's traffic.

use dart_core::{EngineStats, RttMonitor, RttSample, SampleSink};
use dart_packet::{flow::fnv1a_64, FlowKey, Nanos, PacketMeta, SeqNum, MILLISECOND, SECOND};

/// Spin engine parameters.
#[derive(Clone, Copy, Debug)]
pub struct SpinConfig {
    /// Direct-mapped table slots (each direction of a flow is its own
    /// entry). Rounded up to a power of two.
    pub slots: usize,
    /// Reject periods shorter than this (reordering glitches).
    pub min_period: Nanos,
    /// Reject periods longer than this (idle flows, eclipsed edges).
    pub max_period: Nanos,
    /// Reject a period when `silence · gap_factor > period`, where
    /// `silence` is the time since the flow's previous packet: the true
    /// edge probably fell inside the unobserved gap.
    pub gap_factor: u64,
}

impl Default for SpinConfig {
    fn default() -> Self {
        SpinConfig {
            slots: 4096,
            min_period: MILLISECOND,
            max_period: 4 * SECOND,
            gap_factor: 2,
        }
    }
}

#[derive(Clone, Copy)]
struct SpinSlot {
    flow: FlowKey,
    last_bit: bool,
    last_edge: Option<Nanos>,
    last_pkt: Nanos,
    edges: u32,
}

/// The spin-bit monitor: registry name `spin`.
pub struct SpinMonitor {
    cfg: SpinConfig,
    mask: usize,
    table: Vec<Option<SpinSlot>>,
    stats: EngineStats,
}

impl SpinMonitor {
    /// Build with the given parameters.
    pub fn new(cfg: SpinConfig) -> SpinMonitor {
        let slots = cfg.slots.next_power_of_two().max(1);
        SpinMonitor {
            cfg,
            mask: slots - 1,
            table: vec![None; slots],
            stats: EngineStats::default(),
        }
    }
}

impl RttMonitor for SpinMonitor {
    fn name(&self) -> &str {
        "spin"
    }

    fn describe(&self) -> String {
        "QUIC spin-bit edge tracker: direct-mapped per-flow state, \
         reorder/loss rejection heuristics"
            .to_string()
    }

    fn on_packet(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        self.stats.packets += 1;
        let Some(bit) = pkt.spin() else {
            // TCP (or anything without the QUIC marker): not ours.
            self.stats.no_role += 1;
            return;
        };
        let idx = fnv1a_64(&pkt.flow.to_bytes()) as usize & self.mask;
        match &mut self.table[idx] {
            Some(slot) if slot.flow == pkt.flow => {
                if bit != slot.last_bit {
                    // A spin edge. Close a period if we have a previous
                    // edge and the heuristics trust it.
                    self.stats.spin_edges += 1;
                    slot.edges = slot.edges.wrapping_add(1);
                    if let Some(prev_edge) = slot.last_edge {
                        let period = pkt.ts.saturating_sub(prev_edge);
                        let silence = pkt.ts.saturating_sub(slot.last_pkt);
                        let trusted = period >= self.cfg.min_period
                            && period <= self.cfg.max_period
                            && silence.saturating_mul(self.cfg.gap_factor) <= period;
                        if trusted {
                            self.stats.samples += 1;
                            // No ACK number exists; the eack field carries
                            // the per-flow edge ordinal instead.
                            sink.on_sample(RttSample::new(
                                pkt.flow,
                                SeqNum(slot.edges),
                                period,
                                pkt.ts,
                            ));
                        } else {
                            self.stats.spin_rejected += 1;
                        }
                    }
                    // Real transition either way: it becomes the new
                    // measurement baseline.
                    slot.last_edge = Some(pkt.ts);
                    slot.last_bit = bit;
                }
                slot.last_pkt = pkt.ts;
            }
            occupant => {
                // Empty slot, or a collision: newest flow wins (the
                // data-plane register has no chaining). A displaced flow
                // restarts edge detection from scratch when it returns.
                *occupant = Some(SpinSlot {
                    flow: pkt.flow,
                    last_bit: bit,
                    last_edge: None,
                    last_pkt: pkt.ts,
                    edges: 0,
                });
            }
        }
    }

    fn flush(&mut self, _sink: &mut dyn SampleSink) {
        // Purely per-packet: nothing buffered.
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_core::run_monitor_slice;
    use dart_packet::{Direction, PacketBuilder};

    fn flow() -> FlowKey {
        FlowKey::from_raw(0x0a0b_0001, 40_001, 0x5db8_d901, 443)
    }

    fn spin_pkt(ts: Nanos, f: FlowKey, bit: bool) -> PacketMeta {
        PacketBuilder::new(f, ts)
            .dir(Direction::Outbound)
            .quic_spin(bit)
            .build()
    }

    #[test]
    fn clean_edges_produce_period_samples() {
        // Bit flips every 20 ms, packets every 5 ms.
        let mut pkts = Vec::new();
        for i in 0..40u64 {
            let ts = i * 5 * MILLISECOND;
            pkts.push(spin_pkt(ts, flow(), (ts / (20 * MILLISECOND)) % 2 == 1));
        }
        let mut eng = SpinMonitor::new(SpinConfig::default());
        let (samples, stats) = run_monitor_slice(&mut eng, &pkts);
        assert!(!samples.is_empty());
        for s in &samples {
            assert_eq!(s.rtt, 20 * MILLISECOND);
            assert_eq!(s.flow, flow());
        }
        assert_eq!(stats.packets, 40);
        assert_eq!(stats.samples, samples.len() as u64);
        assert_eq!(stats.spin_rejected, 0);
    }

    #[test]
    fn reorder_glitch_is_rejected_not_emitted() {
        let f = flow();
        // Steady 20 ms period, but one stale-bit packet lands mid-epoch,
        // fabricating two edges 1 ms apart.
        let pkts = vec![
            spin_pkt(0, f, false),
            spin_pkt(20 * MILLISECOND, f, true),
            spin_pkt(29 * MILLISECOND, f, false), // reordered stale bit
            spin_pkt(30 * MILLISECOND, f, true),  // back to the epoch bit
            spin_pkt(40 * MILLISECOND, f, false),
        ];
        let mut eng = SpinMonitor::new(SpinConfig::default());
        let (samples, stats) = run_monitor_slice(&mut eng, &pkts);
        // The 1 ms glitch period (29→30) must not be emitted as an RTT.
        assert!(
            samples.iter().all(|s| s.rtt >= MILLISECOND),
            "glitch emitted: {samples:?}"
        );
        assert!(stats.spin_rejected > 0, "heuristics never fired");
    }

    #[test]
    fn gap_dominated_period_is_rejected() {
        let f = flow();
        // Edge, then silence much longer than the period, then an edge:
        // the true transition happened inside the gap.
        let pkts = vec![
            spin_pkt(0, f, false),
            spin_pkt(10 * MILLISECOND, f, true),
            spin_pkt(12 * MILLISECOND, f, true),
            // 60 ms of silence, then the opposite bit.
            spin_pkt(72 * MILLISECOND, f, false),
        ];
        let mut eng = SpinMonitor::new(SpinConfig::default());
        let (samples, stats) = run_monitor_slice(&mut eng, &pkts);
        assert!(samples.is_empty(), "gap period emitted: {samples:?}");
        assert_eq!(stats.spin_rejected, 1);
        assert_eq!(stats.spin_edges, 2);
    }

    #[test]
    fn tcp_packets_are_no_role() {
        let pkts = vec![
            PacketBuilder::new(flow(), 0).seq(0u32).payload(100).build(),
            spin_pkt(MILLISECOND, flow(), false),
        ];
        let mut eng = SpinMonitor::new(SpinConfig::default());
        let (_, stats) = run_monitor_slice(&mut eng, &pkts);
        assert_eq!(stats.packets, 2);
        assert_eq!(stats.no_role, 1);
    }

    #[test]
    fn collision_evicts_and_recovers() {
        // Two flows forced into the same slot of a 1-slot table.
        let f1 = flow();
        let f2 = FlowKey::from_raw(0x0a0b_0002, 40_002, 0x5db8_d902, 443);
        let mut pkts = Vec::new();
        for i in 0..20u64 {
            let ts = i * 10 * MILLISECOND;
            pkts.push(spin_pkt(ts, f1, (i / 2) % 2 == 1));
            pkts.push(spin_pkt(ts + MILLISECOND, f2, (i / 3) % 2 == 1));
        }
        let mut eng = SpinMonitor::new(SpinConfig {
            slots: 1,
            ..SpinConfig::default()
        });
        let (samples, stats) = run_monitor_slice(&mut eng, &pkts);
        // Constant eviction ⇒ few or no samples, but never a panic and
        // full packet accounting.
        assert_eq!(stats.packets, 40);
        assert!(samples.len() < 10);
    }
}
