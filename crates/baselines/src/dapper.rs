//! A Dapper-style RTT monitor (Ghasemi et al., SOSR 2017 — paper §8):
//! tracks **one** outstanding data packet per flow at a time, waiting for
//! its ACK before arming the next.
//!
//! The paper's critique, reproduced here: at most one sample per congestion
//! window, so long-RTT or windowed analytics see far too few samples per
//! unit time compared to Dart's per-packet tracking.

use dart_core::{EngineStats, Leg, RttMonitor, RttSample, SampleSink, SynPolicy};
use dart_packet::{FlowKey, Nanos, PacketMeta, SeqNum};
use std::collections::HashMap;

/// Dapper configuration.
#[derive(Clone, Copy, Debug)]
pub struct DapperConfig {
    /// Handshake policy.
    pub syn_policy: SynPolicy,
    /// Measured leg.
    pub leg: Leg,
}

impl Default for DapperConfig {
    fn default() -> Self {
        DapperConfig {
            syn_policy: SynPolicy::Skip,
            leg: Leg::External,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Armed {
    eack: SeqNum,
    ts: Nanos,
}

/// Counters for a Dapper run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DapperStats {
    /// Packets offered.
    pub packets: u64,
    /// Data packets that armed the per-flow tracker.
    pub armed: u64,
    /// Data packets skipped because a packet was already armed — the
    /// mechanism's fundamental sample ceiling.
    pub skipped_busy: u64,
    /// Samples emitted.
    pub samples: u64,
}

/// The single-outstanding-packet tracker.
pub struct Dapper {
    cfg: DapperConfig,
    armed: HashMap<FlowKey, Armed>,
    stats: DapperStats,
}

impl Dapper {
    /// Build a tracker.
    pub fn new(cfg: DapperConfig) -> Dapper {
        Dapper {
            cfg,
            armed: HashMap::new(),
            stats: DapperStats::default(),
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &DapperStats {
        &self.stats
    }

    /// Process one packet.
    pub fn process(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        self.stats.packets += 1;
        if self.cfg.syn_policy == SynPolicy::Skip && pkt.is_syn() {
            return;
        }
        if ack_role(self.cfg.leg, pkt.dir) && pkt.is_ack() {
            let data_flow = pkt.flow.reverse();
            if let Some(armed) = self.armed.get(&data_flow).copied() {
                // Any ACK covering the armed packet closes the sample.
                if pkt.ack.geq(armed.eack) {
                    self.armed.remove(&data_flow);
                    self.stats.samples += 1;
                    sink.on_sample(RttSample::new(
                        data_flow,
                        armed.eack,
                        pkt.ts.saturating_sub(armed.ts),
                        pkt.ts,
                    ));
                }
            }
        }
        if seq_role(self.cfg.leg, pkt.dir) && pkt.is_seq() {
            match self.armed.get(&pkt.flow) {
                Some(_) => self.stats.skipped_busy += 1,
                None => {
                    self.armed.insert(
                        pkt.flow,
                        Armed {
                            eack: pkt.eack(),
                            ts: pkt.ts,
                        },
                    );
                    self.stats.armed += 1;
                }
            }
        }
    }
}

impl RttMonitor for Dapper {
    fn name(&self) -> &str {
        "dapper"
    }

    fn describe(&self) -> String {
        "Dapper: one outstanding data packet per flow, one sample per window (SOSR '17)".to_string()
    }

    fn on_packet(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        self.process(pkt, sink);
    }

    fn flush(&mut self, _sink: &mut dyn SampleSink) {}

    fn stats(&self) -> EngineStats {
        EngineStats {
            packets: self.stats.packets,
            samples: self.stats.samples,
            ..EngineStats::default()
        }
    }
}

fn seq_role(leg: Leg, dir: dart_packet::Direction) -> bool {
    use dart_packet::Direction::*;
    match leg {
        Leg::External => dir == Outbound,
        Leg::Internal => dir == Inbound,
        Leg::Both => true,
    }
}

fn ack_role(leg: Leg, dir: dart_packet::Direction) -> bool {
    use dart_packet::Direction::*;
    match leg {
        Leg::External => dir == Inbound,
        Leg::Internal => dir == Outbound,
        Leg::Both => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{Direction, PacketBuilder, MILLISECOND};

    fn flow() -> FlowKey {
        FlowKey::from_raw(0x0a08_0001, 40100, 0x5db8_d822, 443)
    }

    #[test]
    fn one_sample_per_window() {
        // A burst of 5 segments followed by one cumulative ACK: Dapper
        // samples exactly once (Dart would have tracked all five).
        let f = flow();
        let mut d = Dapper::new(DapperConfig::default());
        let mut out: Vec<RttSample> = Vec::new();
        for i in 0..5u32 {
            d.process(
                &PacketBuilder::new(f, i as u64 * 100_000)
                    .seq(i * 1000)
                    .payload(1000)
                    .dir(Direction::Outbound)
                    .build(),
                &mut out,
            );
        }
        d.process(
            &PacketBuilder::new(f.reverse(), 20 * MILLISECOND)
                .ack(5000u32)
                .dir(Direction::Inbound)
                .build(),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rtt, 20 * MILLISECOND);
        assert_eq!(d.stats().skipped_busy, 4);
    }

    #[test]
    fn rearms_after_each_sample() {
        let f = flow();
        let mut d = Dapper::new(DapperConfig::default());
        let mut out: Vec<RttSample> = Vec::new();
        for round in 0..3u32 {
            let t = round as u64 * 50 * MILLISECOND;
            d.process(
                &PacketBuilder::new(f, t)
                    .seq(round * 100)
                    .payload(100)
                    .dir(Direction::Outbound)
                    .build(),
                &mut out,
            );
            d.process(
                &PacketBuilder::new(f.reverse(), t + 10 * MILLISECOND)
                    .ack(round * 100 + 100)
                    .dir(Direction::Inbound)
                    .build(),
                &mut out,
            );
        }
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|s| s.rtt == 10 * MILLISECOND));
    }

    #[test]
    fn covering_ack_closes_armed_packet() {
        // The ACK may cumulatively cover the armed packet without matching
        // its eACK exactly.
        let f = flow();
        let mut d = Dapper::new(DapperConfig::default());
        let mut out: Vec<RttSample> = Vec::new();
        d.process(
            &PacketBuilder::new(f, 0)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            &mut out,
        );
        d.process(
            &PacketBuilder::new(f.reverse(), MILLISECOND)
                .ack(900u32)
                .dir(Direction::Inbound)
                .build(),
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }
}
