//! A `pping`-style passive RTT monitor (Nichols — paper §8): matches RFC
//! 7323 timestamp options instead of sequence/ACK numbers.
//!
//! For each observed `TSval` in one direction, remember its first capture
//! time; when the reverse direction echoes it as `TSecr`, the gap is an RTT
//! sample. The §8 critiques reproduced here:
//!
//! * packets without the option (many stacks/services) are invisible;
//! * precision is bounded by the *sender's* timestamp clock — a 10 Hz clock
//!   yields one distinct TSval per 100 ms, collapsing many packets into one
//!   sample and quantizing away sub-tick latency structure;
//! * the monitor cannot know the clock rate, so it cannot convert TSval
//!   deltas to absolute time — only capture-time deltas are usable.

use dart_core::{EngineStats, Leg, RttMonitor, RttSample, SampleSink};
use dart_packet::{FlowKey, Nanos, PacketMeta, SeqNum};
use std::collections::HashMap;

/// pping configuration.
#[derive(Clone, Copy, Debug)]
pub struct PpingConfig {
    /// Measured leg (same semantics as Dart's: the "data" direction whose
    /// TSvals we track).
    pub leg: Leg,
    /// Maximum outstanding TSvals remembered per flow (pping's practical
    /// memory bound).
    pub per_flow_capacity: usize,
}

impl Default for PpingConfig {
    fn default() -> Self {
        PpingConfig {
            leg: Leg::External,
            per_flow_capacity: 64,
        }
    }
}

#[derive(Default)]
struct FlowState {
    /// TSval → first capture time. Insertion-ordered eviction via the ring.
    pending: HashMap<u32, Nanos>,
    order: std::collections::VecDeque<u32>,
    last_tsval_seen: Option<u32>,
}

/// Counters for a pping run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PpingStats {
    /// Packets offered.
    pub packets: u64,
    /// Packets without a timestamp option (invisible to pping).
    pub no_option: u64,
    /// Distinct TSvals recorded.
    pub tsvals_recorded: u64,
    /// Packets whose TSval repeated a pending one (clock coarser than the
    /// packet rate — the quantization §8 describes).
    pub tsval_repeats: u64,
    /// Samples emitted.
    pub samples: u64,
}

/// The timestamp-matching monitor.
pub struct Pping {
    cfg: PpingConfig,
    flows: HashMap<FlowKey, FlowState>,
    stats: PpingStats,
}

impl Pping {
    /// Build a monitor.
    pub fn new(cfg: PpingConfig) -> Pping {
        Pping {
            cfg,
            flows: HashMap::new(),
            stats: PpingStats::default(),
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &PpingStats {
        &self.stats
    }

    /// Process one packet.
    pub fn process(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        self.stats.packets += 1;
        let Some((tsval, tsecr)) = pkt.tsopt else {
            self.stats.no_option += 1;
            return;
        };
        // Reverse direction: an echo closes a pending TSval.
        if ack_role(self.cfg.leg, pkt.dir) {
            let data_flow = pkt.flow.reverse();
            if let Some(st) = self.flows.get_mut(&data_flow) {
                if let Some(t0) = st.pending.remove(&tsecr) {
                    st.order.retain(|v| *v != tsecr);
                    self.stats.samples += 1;
                    sink.on_sample(RttSample::new(
                        data_flow,
                        SeqNum(tsecr), // the echoed tick, not a byte
                        pkt.ts.saturating_sub(t0),
                        pkt.ts,
                    ));
                }
            }
        }
        // Data direction: record first sighting of each TSval.
        if seq_role(self.cfg.leg, pkt.dir) {
            let st = self.flows.entry(pkt.flow).or_default();
            if st.last_tsval_seen == Some(tsval) || st.pending.contains_key(&tsval) {
                self.stats.tsval_repeats += 1;
                return;
            }
            st.last_tsval_seen = Some(tsval);
            st.pending.insert(tsval, pkt.ts);
            st.order.push_back(tsval);
            self.stats.tsvals_recorded += 1;
            while st.order.len() > self.cfg.per_flow_capacity {
                let evict = st.order.pop_front().expect("nonempty");
                st.pending.remove(&evict);
            }
        }
    }
}

impl RttMonitor for Pping {
    fn name(&self) -> &str {
        "pping"
    }

    fn describe(&self) -> String {
        "pping: RFC 7323 TSval/TSecr matching, quantized by the sender's timestamp clock"
            .to_string()
    }

    fn on_packet(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        self.process(pkt, sink);
    }

    fn flush(&mut self, _sink: &mut dyn SampleSink) {}

    fn stats(&self) -> EngineStats {
        EngineStats {
            packets: self.stats.packets,
            samples: self.stats.samples,
            ..EngineStats::default()
        }
    }
}

fn seq_role(leg: Leg, dir: dart_packet::Direction) -> bool {
    use dart_packet::Direction::*;
    match leg {
        Leg::External => dir == Outbound,
        Leg::Internal => dir == Inbound,
        Leg::Both => true,
    }
}

fn ack_role(leg: Leg, dir: dart_packet::Direction) -> bool {
    use dart_packet::Direction::*;
    match leg {
        Leg::External => dir == Inbound,
        Leg::Internal => dir == Outbound,
        Leg::Both => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{Direction, PacketBuilder, MILLISECOND};

    fn flow() -> FlowKey {
        FlowKey::from_raw(0x0a08_0001, 40300, 0x5db8_d822, 443)
    }

    #[test]
    fn echo_produces_sample() {
        let f = flow();
        let mut pp = Pping::new(PpingConfig::default());
        let mut out: Vec<RttSample> = Vec::new();
        pp.process(
            &PacketBuilder::new(f, 0)
                .seq(0u32)
                .payload(100)
                .tsopt(500, 0)
                .dir(Direction::Outbound)
                .build(),
            &mut out,
        );
        pp.process(
            &PacketBuilder::new(f.reverse(), 18 * MILLISECOND)
                .ack(100u32)
                .tsopt(9_000, 500)
                .dir(Direction::Inbound)
                .build(),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rtt, 18 * MILLISECOND);
    }

    #[test]
    fn packets_without_option_are_invisible() {
        let f = flow();
        let mut pp = Pping::new(PpingConfig::default());
        let mut out: Vec<RttSample> = Vec::new();
        pp.process(
            &PacketBuilder::new(f, 0)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            &mut out,
        );
        pp.process(
            &PacketBuilder::new(f.reverse(), MILLISECOND)
                .ack(100u32)
                .dir(Direction::Inbound)
                .build(),
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(pp.stats().no_option, 2);
    }

    #[test]
    fn coarse_clock_collapses_packets_into_one_sample() {
        // Five packets within one 100 ms clock tick share a TSval: pping
        // gets at most one sample where Dart would get five.
        let f = flow();
        let mut pp = Pping::new(PpingConfig::default());
        let mut out: Vec<RttSample> = Vec::new();
        for i in 0..5u32 {
            pp.process(
                &PacketBuilder::new(f, i as u64 * MILLISECOND)
                    .seq(i * 100)
                    .payload(100)
                    .tsopt(42, 0) // same tick
                    .dir(Direction::Outbound)
                    .build(),
                &mut out,
            );
        }
        assert_eq!(pp.stats().tsval_repeats, 4);
        pp.process(
            &PacketBuilder::new(f.reverse(), 20 * MILLISECOND)
                .ack(500u32)
                .tsopt(7, 42)
                .dir(Direction::Inbound)
                .build(),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        // The sample is measured from the FIRST packet of the tick: any
        // later packet in the tick is over-measured by up to a full tick.
        assert_eq!(out[0].rtt, 20 * MILLISECOND);
    }

    #[test]
    fn capacity_bounds_per_flow_state() {
        let f = flow();
        let mut pp = Pping::new(PpingConfig {
            per_flow_capacity: 4,
            ..PpingConfig::default()
        });
        let mut out: Vec<RttSample> = Vec::new();
        for i in 0..10u32 {
            pp.process(
                &PacketBuilder::new(f, i as u64)
                    .seq(i)
                    .payload(1)
                    .tsopt(i, 0)
                    .dir(Direction::Outbound)
                    .build(),
                &mut out,
            );
        }
        // Echo of an evicted (old) TSval: no sample.
        pp.process(
            &PacketBuilder::new(f.reverse(), 100)
                .ack(1u32)
                .tsopt(0, 0)
                .dir(Direction::Inbound)
                .build(),
            &mut out,
        );
        assert!(out.is_empty());
        // Echo of a recent one: sample.
        pp.process(
            &PacketBuilder::new(f.reverse(), 101)
                .ack(1u32)
                .tsopt(0, 9)
                .dir(Direction::Inbound)
                .build(),
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }
}
