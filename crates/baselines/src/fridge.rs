//! A "fridge"-style unbiased delay sampler (Zheng et al., APoCS 2022 —
//! the paper's §8 related work).
//!
//! The fridge stores (flow, eACK) → timestamp entries in a hash table where
//! collisions always evict the incumbent. Because an entry's survival
//! probability decays with every insertion that could land on its slot, a
//! matched sample is emitted with a *correction weight* equal to the inverse
//! of its survival probability: `w = (1 - 1/m)^(-k)` for `k` intervening
//! insertions into a table of `m` slots. Weighted aggregates are then
//! unbiased even though long-RTT entries are evicted more often.
//!
//! Unlike Dart, the fridge neither validates against TCP ambiguities nor
//! avoids tracking useless packets — the ablation benches contrast the two.

use dart_core::{EngineStats, Leg, RttMonitor, RttSample, SampleSink, SampleWeight, SynPolicy};
use dart_packet::{FlowKey, Nanos, PacketMeta, SeqNum, SignatureWidth};
use dart_switch::HashUnit;

/// A weighted RTT sample from the fridge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightedSample {
    /// Flow key in the data direction.
    pub flow: FlowKey,
    /// Acknowledgment number that closed the sample.
    pub eack: SeqNum,
    /// Measured round-trip time.
    pub rtt: Nanos,
    /// Arrival time of the closing ACK.
    pub ts: Nanos,
    /// Inverse-survival-probability correction weight (≥ 1).
    pub weight: f64,
}

/// The weight rides along as quantized [`SampleWeight`] metadata, so
/// fridge output fits the common [`SampleSink`] contract without losing
/// its corrections.
impl From<WeightedSample> for RttSample {
    fn from(w: WeightedSample) -> RttSample {
        RttSample::new(w.flow, w.eack, w.rtt, w.ts).with_weight(SampleWeight::from_f64(w.weight))
    }
}

/// Fridge configuration.
#[derive(Clone, Copy, Debug)]
pub struct FridgeConfig {
    /// Table slots (`m`).
    pub slots: usize,
    /// Handshake policy.
    pub syn_policy: SynPolicy,
    /// Measured leg.
    pub leg: Leg,
}

impl Default for FridgeConfig {
    fn default() -> Self {
        FridgeConfig {
            slots: 1 << 17,
            syn_policy: SynPolicy::Skip,
            leg: Leg::External,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    sig: u64,
    eack: SeqNum,
    ts: Nanos,
    /// Global insertion counter value when this entry was stored.
    birth: u64,
}

/// Counters for a fridge run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FridgeStats {
    /// Packets offered.
    pub packets: u64,
    /// Entries inserted.
    pub inserted: u64,
    /// Incumbents evicted by collisions.
    pub evicted: u64,
    /// Samples emitted.
    pub samples: u64,
}

/// The fridge sampler.
pub struct Fridge {
    cfg: FridgeConfig,
    table: Vec<Option<Entry>>,
    hasher: HashUnit,
    insertions: u64,
    stats: FridgeStats,
}

impl Fridge {
    /// Build a fridge.
    pub fn new(cfg: FridgeConfig) -> Fridge {
        assert!(cfg.slots > 1);
        Fridge {
            table: vec![None; cfg.slots],
            hasher: HashUnit::new(0xD0, 32),
            insertions: 0,
            cfg,
            stats: FridgeStats::default(),
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &FridgeStats {
        &self.stats
    }

    fn key(&self, flow: &FlowKey, eack: SeqNum) -> (u64, usize) {
        let sig = flow.signature(SignatureWidth::W64).raw();
        let mut bytes = [0u8; 12];
        bytes[0..8].copy_from_slice(&sig.to_le_bytes());
        bytes[8..12].copy_from_slice(&eack.raw().to_le_bytes());
        (sig, self.hasher.index(&bytes, self.table.len()))
    }

    /// Correction weight after `k` intervening insertions in `m` slots.
    fn weight(&self, k: u64) -> f64 {
        let m = self.table.len() as f64;
        // (1 - 1/m)^(-k) computed in log space for stability.
        (-(k as f64) * (1.0 - 1.0 / m).ln()).exp()
    }

    /// Process one packet, emitting weight-carrying [`RttSample`]s through
    /// the common sink.
    pub fn process(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        self.stats.packets += 1;
        if self.cfg.syn_policy == SynPolicy::Skip && pkt.is_syn() {
            return;
        }
        if ack_role(self.cfg.leg, pkt.dir) && pkt.is_ack() {
            let data_flow = pkt.flow.reverse();
            let (sig, idx) = self.key(&data_flow, pkt.ack);
            if let Some(e) = self.table[idx] {
                if e.sig == sig && e.eack == pkt.ack {
                    self.table[idx] = None;
                    self.stats.samples += 1;
                    sink.on_sample(
                        WeightedSample {
                            flow: data_flow,
                            eack: pkt.ack,
                            rtt: pkt.ts.saturating_sub(e.ts),
                            ts: pkt.ts,
                            weight: self.weight(self.insertions - e.birth),
                        }
                        .into(),
                    );
                }
            }
        }
        if seq_role(self.cfg.leg, pkt.dir) && pkt.is_seq() {
            let eack = pkt.eack();
            let (sig, idx) = self.key(&pkt.flow, eack);
            if self.table[idx].is_some() {
                self.stats.evicted += 1;
            }
            self.insertions += 1;
            self.table[idx] = Some(Entry {
                sig,
                eack,
                ts: pkt.ts,
                birth: self.insertions,
            });
            self.stats.inserted += 1;
        }
    }
}

impl RttMonitor for Fridge {
    fn name(&self) -> &str {
        "fridge"
    }

    fn describe(&self) -> String {
        "Fridge: evict-on-collision sampler with inverse-survival correction weights (APoCS '22)"
            .to_string()
    }

    fn on_packet(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        self.process(pkt, sink);
    }

    fn flush(&mut self, _sink: &mut dyn SampleSink) {}

    fn stats(&self) -> EngineStats {
        EngineStats {
            packets: self.stats.packets,
            samples: self.stats.samples,
            ..EngineStats::default()
        }
    }
}

fn seq_role(leg: Leg, dir: dart_packet::Direction) -> bool {
    use dart_packet::Direction::*;
    match leg {
        Leg::External => dir == Outbound,
        Leg::Internal => dir == Inbound,
        Leg::Both => true,
    }
}

fn ack_role(leg: Leg, dir: dart_packet::Direction) -> bool {
    use dart_packet::Direction::*;
    match leg {
        Leg::External => dir == Inbound,
        Leg::Internal => dir == Outbound,
        Leg::Both => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{Direction, PacketBuilder};

    fn flow(n: u32) -> FlowKey {
        FlowKey::from_raw(0x0a00_0000 + n, 40000, 0x5db8_d822, 443)
    }

    #[test]
    fn immediate_match_has_unit_weight() {
        let f = flow(1);
        let mut fr = Fridge::new(FridgeConfig {
            slots: 64,
            ..FridgeConfig::default()
        });
        let mut out: Vec<RttSample> = Vec::new();
        fr.process(
            &PacketBuilder::new(f, 0)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            &mut out,
        );
        fr.process(
            &PacketBuilder::new(f.reverse(), 9_000)
                .ack(100u32)
                .dir(Direction::Inbound)
                .build(),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rtt, 9_000);
        assert_eq!(out[0].ts, 9_000);
        assert!(out[0].weight.is_unit());
    }

    #[test]
    fn weight_grows_with_intervening_insertions() {
        let f = flow(1);
        let mut fr = Fridge::new(FridgeConfig {
            slots: 64,
            ..FridgeConfig::default()
        });
        let mut out: Vec<RttSample> = Vec::new();
        fr.process(
            &PacketBuilder::new(f, 0)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            &mut out,
        );
        // 50 intervening insertions from other flows.
        for n in 2..52 {
            fr.process(
                &PacketBuilder::new(flow(n), 10)
                    .seq(0u32)
                    .payload(100)
                    .dir(Direction::Outbound)
                    .build(),
                &mut out,
            );
        }
        fr.process(
            &PacketBuilder::new(f.reverse(), 100_000)
                .ack(100u32)
                .dir(Direction::Inbound)
                .build(),
            &mut out,
        );
        if let Some(s) = out.last() {
            // Survived ≥ some insertions: weight strictly above 1 unless it
            // was never threatened... it must be > 1 when k > 0.
            assert!(s.weight.as_f64() >= 1.0);
        }
        // The entry may have been evicted (then no sample) — either way the
        // stats add up.
        assert_eq!(fr.stats().inserted, 51);
    }

    #[test]
    fn weighted_sample_converts_without_losing_the_weight() {
        let w = WeightedSample {
            flow: flow(9),
            eack: SeqNum(1460),
            rtt: 12_000,
            ts: 13_000,
            weight: 2.5,
        };
        let s = RttSample::from(w);
        assert_eq!(s.flow, w.flow);
        assert_eq!(s.eack, w.eack);
        assert_eq!(s.rtt, w.rtt);
        assert_eq!(s.ts, w.ts);
        assert!((s.weight.as_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn eviction_always_replaces() {
        // One-effective-slot behaviour: hammer one slot via identical keys.
        let f = flow(1);
        let mut fr = Fridge::new(FridgeConfig {
            slots: 2,
            ..FridgeConfig::default()
        });
        let mut evictions_seen = false;
        let mut out: Vec<RttSample> = Vec::new();
        for t in 0..100u64 {
            fr.process(
                &PacketBuilder::new(flow(t as u32), t)
                    .seq(0u32)
                    .payload(100)
                    .dir(Direction::Outbound)
                    .build(),
                &mut out,
            );
        }
        if fr.stats().evicted > 0 {
            evictions_seen = true;
        }
        assert!(evictions_seen, "collisions must evict");
        let _ = f;
    }

    #[test]
    fn weight_formula_matches_closed_form() {
        let fr = Fridge::new(FridgeConfig {
            slots: 100,
            ..FridgeConfig::default()
        });
        let w = fr.weight(10);
        let expected = (1.0f64 - 0.01).powi(-10);
        assert!((w - expected).abs() < 1e-9);
    }
}
