//! # dart-baselines
//!
//! The comparators the paper evaluates Dart against:
//!
//! * [`tcptrace::TcpTrace`] — the offline software ground truth (§6.1):
//!   unlimited memory, full per-flow segment lists, sequence unwrapping,
//!   Karn-style retransmission exclusion, and an optional emulation of real
//!   tcptrace's quadrant double-sample quirk.
//! * [`strawman::Strawman`] — the §2.1 strawman (after Chen et al. \[12\]):
//!   one hash table, no ambiguity handling, timeout/evict-on-collision
//!   memory management with its documented bias against long RTTs.
//! * [`fridge::Fridge`] — a Zheng-et-al-style unbiased delay sampler (§8),
//!   emitting correction-weighted samples.
//! * [`dapper::Dapper`] — a Dapper-style one-packet-per-window tracker (§8).
//! * [`lean::LeanRtt`] — a Liu-et-al-style sum-based average-RTT estimator
//!   (§8), O(1) state but fragile to loss and ACK thinning.
//! * [`pping::Pping`] — a pping-style TCP-timestamp matcher (§8), blind to
//!   option-less traffic and quantized by the sender's timestamp clock.
//!
//! Plus the encrypted-transport engine family (§7's extension path):
//!
//! * [`spin::SpinMonitor`] — a QUIC spin-bit edge tracker with
//!   reorder/loss rejection heuristics; measures traffic the SEQ/ACK
//!   engines cannot see at all.
//! * [`histo::HistMonitor`] — P4TG-style in-dataplane histogram: Dart
//!   matching binned into log2 registers, exporting only the snapshot
//!   (no per-sample stream).
//!
//! `tcptrace_const` — the constant-per-flow-state variant the paper actually
//! sweeps against in §6.2 — is Dart itself with unlimited tables:
//! `dart_core::DartConfig::unlimited()`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dapper;
pub mod fridge;
pub mod histo;
pub mod lean;
pub mod pping;
pub mod registry;
pub mod seglist;
pub mod spin;
pub mod strawman;
pub mod tcptrace;

pub use dapper::{Dapper, DapperConfig, DapperStats};
pub use fridge::{Fridge, FridgeConfig, FridgeStats, WeightedSample};
pub use histo::HistMonitor;
pub use lean::{LeanEstimate, LeanRtt};
pub use pping::{Pping, PpingConfig, PpingStats};
pub use registry::{BuiltEngine, EngineEntry, EngineRegistry, Judgement};
pub use seglist::{SegListMonitor, SegOutcome, Segment, SegmentList, SeqUnwrapper};
pub use spin::{SpinConfig, SpinMonitor};
pub use strawman::{Strawman, StrawmanConfig, StrawmanStats};
pub use tcptrace::{run_trace as run_tcptrace, TcpTrace, TcpTraceConfig, TcpTraceStats};
