//! A `tcptrace`-style offline RTT extractor: the paper's software ground
//! truth (§6.1).
//!
//! Unlimited, fully-associative per-flow state: every contiguous byte range
//! in flight is remembered ([`SegmentList`]), sequence numbers are unwrapped
//! across wraparounds, and retransmitted segments are excluded from sampling
//! per Karn's algorithm. Optionally emulates the quadrant double-sample
//! quirk the paper found in real tcptrace (footnote 3): a sample whose
//! segment spans two consecutive quadrants of the sequence space generates
//! a spurious extra sample.

use crate::seglist::{SegOutcome, SegmentList, SeqUnwrapper};
use dart_core::{EngineStats, Leg, RttMonitor, RttSample, SampleSink, SynPolicy};
use dart_packet::{FlowKey, PacketMeta};
use std::collections::HashMap;

/// Configuration for the tcptrace baseline.
#[derive(Clone, Copy, Debug)]
pub struct TcpTraceConfig {
    /// Handshake policy (`+SYN` / `-SYN` in Fig. 9).
    pub syn_policy: SynPolicy,
    /// Measured leg (same semantics as Dart's).
    pub leg: Leg,
    /// Emulate tcptrace's quadrant double-sample bug (paper footnote 3).
    pub quadrant_quirk: bool,
}

impl Default for TcpTraceConfig {
    fn default() -> Self {
        TcpTraceConfig {
            syn_policy: SynPolicy::Include,
            leg: Leg::External,
            quadrant_quirk: false,
        }
    }
}

#[derive(Default)]
struct FlowState {
    segs: SegmentList,
    // One unwrapper per flow: data SEQs and the reverse direction's ACKs
    // reference the same sequence space.
    seq_unwrap: SeqUnwrapper,
}

/// Counters for the baseline run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpTraceStats {
    /// Packets offered.
    pub packets: u64,
    /// SYN-flagged packets skipped under `-SYN`.
    pub syn_skipped: u64,
    /// Data segments recorded.
    pub segments: u64,
    /// Retransmissions detected.
    pub retransmissions: u64,
    /// Samples emitted (including quirk duplicates).
    pub samples: u64,
    /// Extra samples produced by the quadrant quirk.
    pub quirk_samples: u64,
    /// Flows tracked.
    pub flows: u64,
}

/// The tcptrace-style baseline analyzer.
pub struct TcpTrace {
    cfg: TcpTraceConfig,
    flows: HashMap<FlowKey, FlowState>,
    stats: TcpTraceStats,
}

/// Sequence-space quadrant of an unwrapped byte number (tcptrace divides the
/// 32-bit space into four quadrants).
fn quadrant(unwrapped: u64) -> u64 {
    (unwrapped % (1u64 << 32)) >> 30
}

impl TcpTrace {
    /// Build an analyzer.
    pub fn new(cfg: TcpTraceConfig) -> TcpTrace {
        TcpTrace {
            cfg,
            flows: HashMap::new(),
            stats: TcpTraceStats::default(),
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &TcpTraceStats {
        &self.stats
    }

    /// Number of flows with live state.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Process one packet in capture order.
    pub fn process(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        self.stats.packets += 1;
        if self.cfg.syn_policy == SynPolicy::Skip && pkt.is_syn() {
            self.stats.syn_skipped += 1;
            return;
        }
        // ACK role.
        if ack_role(self.cfg.leg, pkt.dir) && pkt.is_ack() {
            let data_flow = pkt.flow.reverse();
            if let Some(st) = self.flows.get_mut(&data_flow) {
                let ack_u = st.seq_unwrap.unwrap(pkt.ack);
                let res = st.segs.on_ack(ack_u, pkt.ts);
                if let Some(seg) = res.matched {
                    self.stats.samples += 1;
                    let sample =
                        RttSample::new(data_flow, pkt.ack, pkt.ts.saturating_sub(seg.ts), pkt.ts);
                    sink.on_sample(sample);
                    if self.cfg.quadrant_quirk && quadrant(seg.seq) != quadrant(seg.eack - 1) {
                        // Real tcptrace wrongly splits a quadrant-spanning
                        // packet's sample in two (paper footnote 3).
                        self.stats.samples += 1;
                        self.stats.quirk_samples += 1;
                        sink.on_sample(sample);
                    }
                }
            }
        }
        // SEQ role.
        if seq_role(self.cfg.leg, pkt.dir) && pkt.is_seq() {
            let st = self.flows.entry(pkt.flow).or_insert_with(|| {
                self.stats.flows += 1;
                FlowState::default()
            });
            let seq_u = st.seq_unwrap.unwrap(pkt.seq);
            let len = (pkt.eack().raw().wrapping_sub(pkt.seq.raw())) as u64;
            match st.segs.on_data(seq_u, seq_u + len, pkt.ts) {
                SegOutcome::New => self.stats.segments += 1,
                SegOutcome::Retransmission => {
                    self.stats.segments += 1;
                    self.stats.retransmissions += 1;
                }
                SegOutcome::OldData => {}
            }
        }
    }
}

impl RttMonitor for TcpTrace {
    fn name(&self) -> &str {
        if self.cfg.quadrant_quirk {
            "tcptrace-quirk"
        } else {
            "tcptrace"
        }
    }

    fn describe(&self) -> String {
        format!(
            "tcptrace: unlimited per-flow segment lists with Karn exclusion{}",
            if self.cfg.quadrant_quirk {
                " (+quadrant double-sample quirk)"
            } else {
                ""
            }
        )
    }

    fn on_packet(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        self.process(pkt, sink);
    }

    fn flush(&mut self, _sink: &mut dyn SampleSink) {}

    fn stats(&self) -> EngineStats {
        EngineStats {
            packets: self.stats.packets,
            syn_skipped: self.stats.syn_skipped,
            samples: self.stats.samples,
            ..EngineStats::default()
        }
    }
}

fn seq_role(leg: Leg, dir: dart_packet::Direction) -> bool {
    use dart_packet::Direction::*;
    match leg {
        Leg::External => dir == Outbound,
        Leg::Internal => dir == Inbound,
        Leg::Both => true,
    }
}

fn ack_role(leg: Leg, dir: dart_packet::Direction) -> bool {
    use dart_packet::Direction::*;
    match leg {
        Leg::External => dir == Inbound,
        Leg::Internal => dir == Outbound,
        Leg::Both => true,
    }
}

/// Run a full trace through a fresh analyzer.
pub fn run_trace(cfg: TcpTraceConfig, packets: &[PacketMeta]) -> (Vec<RttSample>, TcpTraceStats) {
    let mut tt = TcpTrace::new(cfg);
    let mut samples = Vec::new();
    for p in packets {
        tt.process(p, &mut samples);
    }
    (samples, *tt.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{Direction, PacketBuilder};

    fn flow(n: u32) -> FlowKey {
        FlowKey::from_raw(0x0a00_0000 + n, 40000, 0x5db8_d822, 443)
    }

    #[test]
    fn clean_exchange_samples_exactly() {
        let f = flow(1);
        let d = PacketBuilder::new(f, 1_000)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build();
        let a = PacketBuilder::new(f.reverse(), 26_000)
            .ack(100u32)
            .dir(Direction::Inbound)
            .build();
        let (samples, stats) = run_trace(TcpTraceConfig::default(), &[d, a]);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].rtt, 25_000);
        assert_eq!(stats.flows, 1);
    }

    #[test]
    fn syn_skip_matches_dart_policy() {
        let f = flow(2);
        let syn = PacketBuilder::new(f, 0)
            .seq(0u32)
            .syn()
            .dir(Direction::Outbound)
            .build();
        let cfg = TcpTraceConfig {
            syn_policy: SynPolicy::Skip,
            ..TcpTraceConfig::default()
        };
        let (samples, stats) = run_trace(cfg, &[syn]);
        assert!(samples.is_empty());
        assert_eq!(stats.syn_skipped, 1);
        assert_eq!(stats.flows, 0);
    }

    #[test]
    fn plus_syn_collects_handshake_rtt() {
        let f = flow(3);
        let syn = PacketBuilder::new(f, 0)
            .seq(9u32)
            .syn()
            .dir(Direction::Outbound)
            .build();
        let syn_ack = PacketBuilder::new(f.reverse(), 30_000)
            .seq(99u32)
            .ack(10u32)
            .syn()
            .dir(Direction::Inbound)
            .build();
        let (samples, _) = run_trace(TcpTraceConfig::default(), &[syn, syn_ack]);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].rtt, 30_000);
    }

    #[test]
    fn retransmitted_segment_never_samples() {
        let f = flow(4);
        let d1 = PacketBuilder::new(f, 0)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build();
        let d2 = PacketBuilder::new(f, 5_000)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build();
        let a = PacketBuilder::new(f.reverse(), 9_000)
            .ack(100u32)
            .dir(Direction::Inbound)
            .build();
        let (samples, stats) = run_trace(TcpTraceConfig::default(), &[d1, d2, a]);
        assert!(samples.is_empty());
        assert_eq!(stats.retransmissions, 1);
    }

    #[test]
    fn collects_across_wraparound_unlike_dart() {
        // tcptrace keeps sampling across a sequence wraparound.
        let f = flow(5);
        let d1 = PacketBuilder::new(f, 0)
            .seq(u32::MAX - 99)
            .payload(200) // wraps: [MAX-99, 100)
            .dir(Direction::Outbound)
            .build();
        let a1 = PacketBuilder::new(f.reverse(), 40_000)
            .ack(100u32)
            .dir(Direction::Inbound)
            .build();
        let (samples, _) = run_trace(TcpTraceConfig::default(), &[d1, a1]);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].rtt, 40_000);
    }

    #[test]
    fn quadrant_quirk_duplicates_spanning_samples() {
        let f = flow(6);
        // Segment spanning the 1 GiB quadrant boundary (1<<30).
        let d = PacketBuilder::new(f, 0)
            .seq((1u32 << 30) - 50)
            .payload(100)
            .dir(Direction::Outbound)
            .build();
        let a = PacketBuilder::new(f.reverse(), 10_000)
            .ack((1u32 << 30) + 50)
            .dir(Direction::Inbound)
            .build();
        let cfg = TcpTraceConfig {
            quadrant_quirk: true,
            ..TcpTraceConfig::default()
        };
        let (samples, stats) = run_trace(cfg, &[d, a]);
        assert_eq!(samples.len(), 2, "quirk duplicates the sample");
        assert_eq!(stats.quirk_samples, 1);
        // Without the quirk: exactly one sample.
        let (samples2, _) = run_trace(TcpTraceConfig::default(), &[d, a]);
        assert_eq!(samples2.len(), 1);
    }

    #[test]
    fn tracks_all_byte_ranges_across_holes() {
        // Unlike Dart, tcptrace samples segments on BOTH sides of a hole.
        let f = flow(7);
        let pkts = [
            PacketBuilder::new(f, 0)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            // Hole: [100,200) missing at the monitor; [200,300) seen.
            PacketBuilder::new(f, 2_000)
                .seq(200u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            // Receiver got everything (the hole was only at our vantage
            // point): cumulative ACKs for each.
            PacketBuilder::new(f.reverse(), 20_000)
                .ack(100u32)
                .dir(Direction::Inbound)
                .build(),
            PacketBuilder::new(f.reverse(), 22_000)
                .ack(300u32)
                .dir(Direction::Inbound)
                .build(),
        ];
        let (samples, _) = run_trace(TcpTraceConfig::default(), &pkts);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].rtt, 20_000);
        assert_eq!(samples[1].rtt, 20_000);
    }
}
