//! Flow-sharded parallel Dart engine.
//!
//! A hardware Dart instance is a single pipeline; a software replay of a
//! multi-gigabit trace need not be. This module partitions a capture across
//! `N` independent [`DartEngine`]s ("shards") keyed by the
//! direction-independent flow hash ([`FlowKey::symmetric_hash`]), so a data
//! packet and its ACK — which arrive under reversed 4-tuples — always land
//! on the same shard. Each shard owns its own Range Tracker, Packet
//! Tracker, victim cache, and recirculation loop, and is driven by a worker
//! thread fed over a bounded channel in batches of
//! [`ShardedConfig::batch_size`] packets.
//!
//! ## Fidelity
//!
//! Per-flow processing is *identical* to the serial engine: a shard sees
//! exactly the packets of its flows, in capture order, with their original
//! timestamps. What changes with the shard count is the **cross-flow**
//! interaction — hash collisions in the RT/PT and eviction pressure now
//! happen among the flows of one shard instead of among all flows, so a
//! constrained configuration produces (slightly) different collision and
//! eviction counters at different shard counts. Consequences:
//!
//! * `shards == 1` is the faithful reproduction of the paper's single
//!   pipeline: the output is **bit-identical** to [`run_trace`] — same
//!   samples, same order, same stats.
//! * Under [`DartConfig::unlimited`] (no collisions, no evictions) every
//!   shard count yields exactly the serial per-flow samples.
//! * Under constrained configs, per-flow sample *sets* remain equal except
//!   where serial cross-flow collisions differ from sharded ones — the
//!   same caveat any hash-partitioned scale-out of Dart would carry.
//!
//! Samples and events come back over per-shard queues tagged with the
//! global packet index and are merged deterministically — ordered by
//! (packet index, shard id) — so a sharded run is reproducible regardless
//! of thread scheduling, and at `shards == 1` the merge is exactly serial
//! emission order.

use crate::config::DartConfig;
use crate::engine::{run_trace, DartEngine, EngineEvent};
use crate::monitor::RttMonitor;
use crate::sample::{RttSample, SampleSink};
use crate::stats::EngineStats;
#[cfg(feature = "telemetry")]
use crate::telemetry::EngineTelemetry;
use dart_packet::{FlowKey, PacketMeta};
#[cfg(feature = "telemetry")]
use dart_telemetry::{Gauge, MetricRegistry};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::{self, JoinHandle};

/// Configuration of a sharded replay: the per-shard engine config plus the
/// partitioning and hand-off parameters.
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Engine configuration applied to every shard.
    pub engine: DartConfig,
    /// Number of independent engine shards (≥ 1).
    pub shards: usize,
    /// Packets per hand-off batch. Larger batches amortize channel
    /// synchronization; smaller ones reduce feeder-to-worker latency.
    pub batch_size: usize,
    /// Bounded channel capacity, in batches, per shard. Bounds feeder
    /// run-ahead so memory stays proportional to
    /// `shards × queue_depth × batch_size`.
    pub queue_depth: usize,
}

impl ShardedConfig {
    /// Default hand-off parameters for `shards` shards over `engine`.
    pub fn new(engine: DartConfig, shards: usize) -> ShardedConfig {
        ShardedConfig {
            engine,
            shards,
            batch_size: 1024,
            queue_depth: 8,
        }
    }

    /// Override the hand-off batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Override the per-shard queue depth (in batches).
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }
}

/// Output of a sharded run: merged samples, combined counters, and merged
/// engine events, all in the deterministic (packet index, shard) order.
#[derive(Clone, Debug, Default)]
pub struct ShardedRun {
    /// RTT samples from every shard, merged into serial emission order.
    pub samples: Vec<RttSample>,
    /// Sum of all per-shard counters (see [`EngineStats::merge`]).
    pub stats: EngineStats,
    /// Per-flow events (range collapses, optimistic ACKs) from every shard,
    /// merged into the same deterministic order as the samples.
    pub events: Vec<EngineEvent>,
    /// Final counters of each individual shard, in shard order.
    pub per_shard: Vec<EngineStats>,
}

/// Which shard a flow belongs to: both directions of a connection map to
/// the same shard.
#[inline]
pub fn shard_of(flow: &FlowKey, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (flow.symmetric_hash() % shards as u64) as usize
}

/// One unit of hand-off: packets tagged with their global trace index.
type Batch = Vec<(u64, PacketMeta)>;

/// What a worker sends back: index-tagged samples and events, plus the
/// shard's final counters.
struct ShardResult {
    samples: Vec<(u64, RttSample)>,
    events: Vec<(u64, EngineEvent)>,
    stats: EngineStats,
}

/// Per-shard instrumentation handles, cloned into the worker thread.
/// Zero-sized (and all code paths compiled out) without the `telemetry`
/// feature.
#[derive(Clone, Default)]
struct ShardHooks {
    /// In-engine metric handles for this shard.
    #[cfg(feature = "telemetry")]
    tel: Option<EngineTelemetry>,
    /// Hand-off batches queued or being processed: the feeder adds one per
    /// send, the worker subtracts one per batch completed, so the gauge is
    /// the live channel depth.
    #[cfg(feature = "telemetry")]
    channel: Option<Gauge>,
}

/// A flow-sharded Dart engine: `shards` independent [`DartEngine`]s, each
/// on its own worker thread, partitioned by symmetric flow hash.
pub struct ShardedDartEngine {
    cfg: ShardedConfig,
}

impl ShardedDartEngine {
    /// Build a sharded engine. Panics when `shards` or `batch_size` is 0.
    pub fn new(cfg: ShardedConfig) -> ShardedDartEngine {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.batch_size >= 1, "batch size must be positive");
        assert!(cfg.queue_depth >= 1, "queue depth must be positive");
        ShardedDartEngine { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.cfg
    }

    /// Replay a trace across the shards and merge the results.
    ///
    /// The calling thread acts as the feeder: it partitions packets by
    /// [`shard_of`], accumulates per-shard batches, and pushes them over
    /// bounded channels while the workers drain. Equivalent to driving a
    /// [`ShardedMonitor`] over the slice; no worker outlives this call.
    pub fn run(&self, packets: &[PacketMeta]) -> ShardedRun {
        let mut monitor = ShardedMonitor::new(self.cfg);
        for pkt in packets {
            monitor.feed(pkt);
        }
        monitor.into_run()
    }
}

/// The streaming face of the flow-sharded engine: an [`RttMonitor`] whose
/// `on_packet` partitions packets to worker threads as they arrive, so a
/// sharded replay can consume any [`PacketSource`](dart_packet::PacketSource)
/// without materializing the trace.
///
/// Samples cannot be emitted in deterministic merge order until every
/// worker has finished, so this monitor buffers: `on_packet` emits nothing
/// and the whole merged stream — ordered by (global packet index, shard
/// id), byte-identical to [`ShardedDartEngine::run`] — is delivered on
/// [`RttMonitor::flush`]. Memory for results is proportional to the sample
/// count, not the trace length; in-flight packets stay bounded by
/// `shards × queue_depth × batch_size`.
pub struct ShardedMonitor {
    cfg: ShardedConfig,
    name: String,
    txs: Vec<SyncSender<Batch>>,
    handles: Vec<JoinHandle<ShardResult>>,
    bufs: Vec<Batch>,
    /// Per-shard instrumentation handles (empty structs when the
    /// `telemetry` feature is off).
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    hooks: Vec<ShardHooks>,
    fed: u64,
    done: Option<ShardedRun>,
}

impl ShardedMonitor {
    /// Spawn the shard workers and stand ready to feed them.
    pub fn new(cfg: ShardedConfig) -> ShardedMonitor {
        Self::spawn(cfg, |_| ShardHooks::default())
    }

    /// Spawn with per-shard telemetry: each worker's engine publishes
    /// `shard`-labelled counters, RTT and batch-latency histograms, and
    /// recirculation queue-depth gauges to `registry`, live while the
    /// replay runs. A `dart_shard_channel_batches` gauge per shard tracks
    /// the hand-off channel depth.
    #[cfg(feature = "telemetry")]
    pub fn with_telemetry(cfg: ShardedConfig, registry: &MetricRegistry) -> ShardedMonitor {
        let registry = registry.clone();
        Self::spawn(cfg, move |shard| {
            let shard_label = shard.to_string();
            ShardHooks {
                tel: Some(EngineTelemetry::register(&registry, shard)),
                channel: Some(registry.gauge(
                    "dart_shard_channel_batches",
                    &[("shard", &shard_label)],
                    "hand-off batches queued or being processed by this shard worker",
                )),
            }
        })
    }

    fn spawn(cfg: ShardedConfig, make_hooks: impl Fn(usize) -> ShardHooks) -> ShardedMonitor {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.batch_size >= 1, "batch size must be positive");
        assert!(cfg.queue_depth >= 1, "queue depth must be positive");
        let mut txs = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        let mut hooks = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = sync_channel::<Batch>(cfg.queue_depth);
            let engine_cfg = cfg.engine;
            let shard_hooks = make_hooks(shard);
            let worker_hooks = shard_hooks.clone();
            hooks.push(shard_hooks);
            txs.push(tx);
            handles.push(thread::spawn(move || {
                run_shard(engine_cfg, rx, worker_hooks)
            }));
        }
        ShardedMonitor {
            name: format!("dart-sharded-{}", cfg.shards),
            bufs: (0..cfg.shards)
                .map(|_| Vec::with_capacity(cfg.batch_size))
                .collect(),
            cfg,
            txs,
            handles,
            hooks,
            fed: 0,
            done: None,
        }
    }

    /// Account one batch handed to `shard`'s channel.
    fn note_batch_sent(&self, shard: usize) {
        #[cfg(feature = "telemetry")]
        if let Some(g) = &self.hooks[shard].channel {
            g.add(1);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = shard;
    }

    /// Hand one packet to its shard (buffered into hand-off batches).
    pub fn feed(&mut self, pkt: &PacketMeta) {
        assert!(
            self.done.is_none(),
            "packet fed to a flushed ShardedMonitor"
        );
        let shard = shard_of(&pkt.flow, self.cfg.shards);
        self.bufs[shard].push((self.fed, *pkt));
        self.fed += 1;
        if self.bufs[shard].len() >= self.cfg.batch_size {
            let full = std::mem::replace(
                &mut self.bufs[shard],
                Vec::with_capacity(self.cfg.batch_size),
            );
            self.note_batch_sent(shard);
            self.txs[shard].send(full).expect("shard worker hung up");
        }
    }

    /// Close the channels, join the workers, and cache the merged result.
    fn finish(&mut self) -> &ShardedRun {
        if self.done.is_none() {
            let txs = std::mem::take(&mut self.txs);
            for (shard, (buf, tx)) in std::mem::take(&mut self.bufs)
                .into_iter()
                .zip(&txs)
                .enumerate()
            {
                if !buf.is_empty() {
                    self.note_batch_sent(shard);
                    tx.send(buf).expect("shard worker hung up");
                }
            }
            // Closing the senders ends each worker's receive loop.
            drop(txs);
            let results: Vec<ShardResult> = std::mem::take(&mut self.handles)
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect();
            self.done = Some(merge(results));
        }
        self.done.as_ref().expect("just set")
    }

    /// Finish the run (if not already flushed) and take the full merged
    /// output, events and per-shard counters included.
    pub fn into_run(mut self) -> ShardedRun {
        self.finish();
        self.done.take().expect("finish caches the run")
    }
}

impl RttMonitor for ShardedMonitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn describe(&self) -> String {
        format!(
            "Dart partitioned across {} symmetric-hash flow shards, deterministic fan-in merge",
            self.cfg.shards
        )
    }

    fn on_packet(&mut self, pkt: &PacketMeta, _sink: &mut dyn SampleSink) {
        self.feed(pkt);
    }

    /// First flush joins the workers and emits the merged sample stream;
    /// later flushes emit nothing.
    fn flush(&mut self, sink: &mut dyn SampleSink) {
        let first = self.done.is_none();
        let run = self.finish();
        if first {
            for s in &run.samples {
                sink.on_sample(*s);
            }
        }
    }

    /// Before `flush`, only the feeder-side packet count is known (shard
    /// counters live on the workers); after, the fully merged counters.
    fn stats(&self) -> EngineStats {
        match &self.done {
            Some(run) => run.stats,
            None => EngineStats {
                packets: self.fed,
                ..EngineStats::default()
            },
        }
    }
}

/// Flush-time entries sort after every real packet index, exactly like the
/// old end-of-trace tag, without needing to know the trace length up front.
const FLUSH_TAG: u64 = u64::MAX;

/// Worker body: one engine, fed batches until the channel closes.
fn run_shard(cfg: DartConfig, rx: Receiver<Batch>, hooks: ShardHooks) -> ShardResult {
    let mut engine = DartEngine::new(cfg);
    #[cfg(feature = "telemetry")]
    if let Some(tel) = hooks.tel.clone() {
        engine.attach_telemetry(tel);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = &hooks;
    // The event sink is installed once but must tag events with the packet
    // being processed; share the current index through a cell.
    let current = Rc::new(Cell::new(0u64));
    let events = Rc::new(RefCell::new(Vec::new()));
    engine.set_event_sink(Box::new({
        let current = Rc::clone(&current);
        let events = Rc::clone(&events);
        move |ev| events.borrow_mut().push((current.get(), ev))
    }));

    let mut samples: Vec<(u64, RttSample)> = Vec::new();
    for batch in rx {
        #[cfg(feature = "telemetry")]
        let batch_start = std::time::Instant::now();
        for (idx, pkt) in batch {
            current.set(idx);
            let mut sink = |s: RttSample| samples.push((idx, s));
            engine.process(&pkt, &mut sink);
        }
        #[cfg(feature = "telemetry")]
        {
            if let Some(tel) = &hooks.tel {
                tel.observe_batch_ns(batch_start.elapsed().as_nanos() as u64);
            }
            engine.sync_telemetry();
            if let Some(g) = &hooks.channel {
                g.sub(1);
            }
        }
    }
    current.set(FLUSH_TAG);
    engine.flush();
    let stats = *engine.stats();
    drop(engine); // releases its clone of the event sink's Rc
    let events = Rc::try_unwrap(events)
        .expect("event sink still alive")
        .into_inner();
    ShardResult {
        samples,
        events,
        stats,
    }
}

/// Deterministic merge: order by (global packet index, shard id). A packet
/// lives on exactly one shard, so the shard tiebreaker only orders
/// flush-time entries; the stable sort preserves a single packet's own
/// emission order.
fn merge(results: Vec<ShardResult>) -> ShardedRun {
    let mut samples: Vec<(u64, usize, RttSample)> = Vec::new();
    let mut events: Vec<(u64, usize, EngineEvent)> = Vec::new();
    let mut per_shard = Vec::with_capacity(results.len());
    let mut stats = EngineStats::default();
    for (shard, r) in results.into_iter().enumerate() {
        samples.extend(r.samples.into_iter().map(|(i, s)| (i, shard, s)));
        events.extend(r.events.into_iter().map(|(i, e)| (i, shard, e)));
        stats.merge(&r.stats);
        per_shard.push(r.stats);
    }
    samples.sort_by_key(|&(idx, shard, _)| (idx, shard));
    events.sort_by_key(|&(idx, shard, _)| (idx, shard));
    ShardedRun {
        samples: samples.into_iter().map(|(_, _, s)| s).collect(),
        events: events.into_iter().map(|(_, _, e)| e).collect(),
        stats,
        per_shard,
    }
}

/// Convenience mirroring [`run_trace`]: replay `packets` across `shards`
/// engine shards with default hand-off parameters.
pub fn run_trace_sharded(
    cfg: DartConfig,
    shards: usize,
    packets: &[PacketMeta],
) -> (Vec<RttSample>, EngineStats) {
    if shards <= 1 {
        // Single shard is definitionally the serial engine; skip the
        // thread machinery (the equivalence is asserted in tests).
        return run_trace(cfg, packets);
    }
    let out = ShardedDartEngine::new(ShardedConfig::new(cfg, shards)).run(packets);
    (out.samples, out.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{Direction, Nanos, PacketBuilder};

    fn flow(n: u32) -> FlowKey {
        FlowKey::from_raw(0x0a00_0000 + n, 40000 + (n % 1000) as u16, 0x5db8_d822, 443)
    }

    /// A clean data/ACK exchange for `f` at time `t`.
    fn data_ack(f: FlowKey, seq: u32, len: u32, t: Nanos, rtt: Nanos) -> [PacketMeta; 2] {
        let data = PacketBuilder::new(f, t)
            .seq(seq)
            .payload(len)
            .dir(Direction::Outbound)
            .build();
        let ack = PacketBuilder::new(f.reverse(), t + rtt)
            .ack(seq.wrapping_add(len))
            .dir(Direction::Inbound)
            .build();
        [data, ack]
    }

    /// Interleaved exchanges over `flows` flows, ACKs arriving after later
    /// flows' data — exercises cross-shard interleaving.
    fn trace(flows: u32, exchanges: u32) -> Vec<PacketMeta> {
        let mut pkts = Vec::new();
        for e in 0..exchanges {
            for fi in 0..flows {
                let t = (e as Nanos) * 10_000_000 + (fi as Nanos) * 1_000;
                let [d, a] = data_ack(flow(fi), e * 1460, 1460, t, 5_000_000);
                pkts.push(d);
                pkts.push(a);
            }
        }
        pkts.sort_by_key(|p| p.ts);
        pkts
    }

    #[test]
    fn one_shard_is_bit_identical_to_serial() {
        let pkts = trace(40, 6);
        let (serial_samples, serial_stats) = run_trace(DartConfig::default(), &pkts);
        // Through the full threaded path, not the shards<=1 shortcut.
        let out = ShardedDartEngine::new(ShardedConfig::new(DartConfig::default(), 1)).run(&pkts);
        assert_eq!(out.samples, serial_samples);
        assert_eq!(out.stats, serial_stats);
    }

    #[test]
    fn unlimited_config_matches_serial_at_any_shard_count() {
        let pkts = trace(50, 5);
        let (serial, _) = run_trace(DartConfig::unlimited(), &pkts);
        for shards in [2usize, 3, 4, 8] {
            let (sharded, stats) = run_trace_sharded(DartConfig::unlimited(), shards, &pkts);
            assert_eq!(sharded, serial, "shards = {shards}");
            assert_eq!(stats.packets, pkts.len() as u64);
        }
    }

    #[test]
    fn both_directions_land_on_one_shard() {
        for n in 1..=8usize {
            for fi in 0..100 {
                let f = flow(fi);
                assert_eq!(shard_of(&f, n), shard_of(&f.reverse(), n));
            }
        }
    }

    #[test]
    fn shards_cover_all_packets() {
        let pkts = trace(30, 4);
        let out = ShardedDartEngine::new(ShardedConfig::new(DartConfig::default(), 4)).run(&pkts);
        assert_eq!(out.stats.packets, pkts.len() as u64);
        assert_eq!(out.per_shard.len(), 4);
        let by_shard: u64 = out.per_shard.iter().map(|s| s.packets).sum();
        assert_eq!(by_shard, pkts.len() as u64);
        // Every shard must actually receive traffic (30 well-mixed flows
        // over 4 shards leave an empty shard with probability ~4·(3/4)³⁰).
        assert!(out.per_shard.iter().all(|s| s.packets > 0));
    }

    #[test]
    fn merge_order_is_serial_emission_order() {
        let pkts = trace(25, 4);
        let out = ShardedDartEngine::new(
            ShardedConfig::new(DartConfig::unlimited(), 4).with_batch_size(7),
        )
        .run(&pkts);
        // Samples must be ordered by their ACK's arrival time (ties allowed).
        assert!(out.samples.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn tiny_batches_and_queues_still_complete() {
        let pkts = trace(20, 3);
        let out = ShardedDartEngine::new(
            ShardedConfig::new(DartConfig::unlimited(), 3)
                .with_batch_size(1)
                .with_queue_depth(1),
        )
        .run(&pkts);
        let (serial, _) = run_trace(DartConfig::unlimited(), &pkts);
        assert_eq!(out.samples, serial);
    }

    #[test]
    fn streaming_monitor_matches_batch_run() {
        let pkts = trace(30, 5);
        let cfg = ShardedConfig::new(DartConfig::default(), 4).with_batch_size(16);
        let batch = ShardedDartEngine::new(cfg).run(&pkts);

        let mut monitor = ShardedMonitor::new(cfg);
        let mut streamed = Vec::new();
        for p in &pkts {
            monitor.on_packet(p, &mut streamed);
        }
        assert!(streamed.is_empty(), "sharded output is deferred to flush");
        // stats() before flush: feeder-side packet count only.
        assert_eq!(RttMonitor::stats(&monitor).packets, pkts.len() as u64);
        monitor.flush(&mut streamed);
        assert_eq!(streamed, batch.samples);
        assert_eq!(RttMonitor::stats(&monitor), batch.stats);
        // Idempotent: a second flush emits nothing and keeps the counters.
        monitor.flush(&mut streamed);
        assert_eq!(streamed, batch.samples);
        assert_eq!(RttMonitor::stats(&monitor), batch.stats);
    }

    #[test]
    fn events_are_merged_deterministically() {
        // A retransmission triggers a RangeCollapse event; duplicate the
        // data packet of a few flows.
        let mut pkts = Vec::new();
        for fi in 0..12 {
            let f = flow(fi);
            let t = fi as Nanos * 1_000_000;
            let [d, a] = data_ack(f, 0, 1460, t, 5_000_000);
            let mut retx = d;
            retx.ts = t + 1_000;
            pkts.push(d);
            pkts.push(retx);
            pkts.push(a);
        }
        pkts.sort_by_key(|p| p.ts);
        let cfg = DartConfig::unlimited();
        let a = ShardedDartEngine::new(ShardedConfig::new(cfg, 4)).run(&pkts);
        let b = ShardedDartEngine::new(ShardedConfig::new(cfg, 4)).run(&pkts);
        assert!(!a.events.is_empty(), "expected range-collapse events");
        assert_eq!(a.events, b.events);
        // And the merged events match the serial engine's (unlimited config:
        // no cross-flow interaction, so the sets coincide exactly).
        let (tx, rx) = std::sync::mpsc::channel();
        let mut engine = DartEngine::new(cfg);
        engine.set_event_sink(Box::new(move |ev| {
            let _ = tx.send(ev);
        }));
        let mut dump = Vec::new();
        engine.process_trace(pkts.iter(), &mut dump);
        drop(engine); // closes the sender so the drain below terminates
        let serial_events: Vec<EngineEvent> = rx.try_iter().collect();
        assert_eq!(a.events, serial_events);
    }
}
