//! Flow-sharded parallel Dart engine under a supervised, fault-tolerant
//! runtime.
//!
//! A hardware Dart instance is a single pipeline; a software replay of a
//! multi-gigabit trace need not be. This module partitions a capture across
//! `N` independent [`DartEngine`]s ("shards") keyed by the
//! direction-independent flow hash ([`FlowKey::symmetric_hash`]), so a data
//! packet and its ACK — which arrive under reversed 4-tuples — always land
//! on the same shard. Each shard owns its own Range Tracker, Packet
//! Tracker, victim cache, and recirculation loop, and is driven by a worker
//! thread fed over a bounded channel in batches of
//! [`ShardedConfig::batch_size`] packets.
//!
//! ## Supervision
//!
//! A switch cannot stop forwarding because its measurement pipeline hit a
//! bad state; the paper's whole design (lazy eviction, bounded
//! recirculation) degrades instead of failing. The software runtime holds
//! itself to the same standard:
//!
//! * every worker batch runs under panic isolation
//!   ([`std::panic::catch_unwind`]) — a panicking shard becomes a recorded
//!   [`ShardFailure`], never a process abort;
//! * the feeder hands batches off with a watchdog
//!   ([`SupervisorConfig::stall_timeout`]): a worker that stops consuming
//!   is declared [`Stalled`](FailureKind::Stalled) and abandoned;
//! * what happens next is the [`FailurePolicy`]: stop and surface a typed
//!   [`EngineError`] with the partial merged output (`FailFast`), respawn
//!   the shard's engine with fresh RT/PT state (`RestartShard`), or keep
//!   every other shard measuring while the failed one sheds its traffic
//!   (`ShedLoad` — the paper's lazy-eviction stance: measure less, never
//!   measure wrong).
//!
//! Degradation is *accounted*: respawns in `shard_restarts`, live flows
//! discarded with a failed engine in `flows_lost`, and every packet the
//! runtime dropped without offering it to a healthy engine in
//! `monitor_miss`, so `fed == stats.packets + stats.monitor_miss` holds for
//! every run, degraded or not. Failures survive into
//! [`ShardedRun::failures`] for reporting. The chaos harness in
//! `dart-testkit` drives these paths deterministically through
//! [`PacketHook`].
//!
//! ## Fidelity
//!
//! Per-flow processing is *identical* to the serial engine: a shard sees
//! exactly the packets of its flows, in capture order, with their original
//! timestamps. What changes with the shard count is the **cross-flow**
//! interaction — hash collisions in the RT/PT and eviction pressure now
//! happen among the flows of one shard instead of among all flows, so a
//! constrained configuration produces (slightly) different collision and
//! eviction counters at different shard counts. Consequences:
//!
//! * `shards == 1` is the faithful reproduction of the paper's single
//!   pipeline: the output is **bit-identical** to [`run_trace`] — same
//!   samples, same order, same stats.
//! * Under [`DartConfig::unlimited`] (no collisions, no evictions) every
//!   shard count yields exactly the serial per-flow samples.
//! * Under constrained configs, per-flow sample *sets* remain equal except
//!   where serial cross-flow collisions differ from sharded ones — the
//!   same caveat any hash-partitioned scale-out of Dart would carry.
//!
//! Samples and events come back over per-shard queues tagged with the
//! global packet index and are merged deterministically — ordered by
//! (packet index, shard id) — so a sharded run is reproducible regardless
//! of thread scheduling, and at `shards == 1` the merge is exactly serial
//! emission order.

use crate::config::DartConfig;
use crate::engine::{run_trace, DartEngine, EngineEvent};
use crate::error::{EngineError, FailureKind, FailurePolicy, ShardFailure};
use crate::monitor::{EpochRotation, RttMonitor};
use crate::sample::{RttSample, SampleSink};
use crate::snapshot::{SnapReader, SnapWriter, Snapshot, SnapshotError};
use crate::stats::EngineStats;
#[cfg(feature = "telemetry")]
use crate::telemetry::EngineTelemetry;
use dart_packet::{FlowKey, Nanos, PacketMeta};
#[cfg(feature = "telemetry")]
use dart_telemetry::{Counter, Gauge, MetricRegistry};
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, Sender as MpscSender, SyncSender, TrySendError,
};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Per-packet instrumentation hook run inside each worker, *before* the
/// packet reaches the engine, with `(global packet index, shard)`. This is
/// the chaos-injection seam: the testkit builds hooks that panic or stall
/// at a seeded packet to drive the supervised failure paths
/// deterministically. A hook that does nothing costs one indirect call per
/// packet.
pub type PacketHook = Arc<dyn Fn(u64, usize) + Send + Sync>;

/// How the supervised runtime reacts to shard failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// What to do when a shard worker panics or stalls.
    pub policy: FailurePolicy,
    /// How long the feeder may wait on a full hand-off channel before
    /// declaring the worker stalled and abandoning it. Generous by
    /// default: a slow consumer is backpressure, not a failure.
    pub stall_timeout: Duration,
    /// Respawn budget per shard under [`FailurePolicy::RestartShard`];
    /// a shard that exhausts it degrades to shedding its traffic.
    pub max_restarts: u32,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            policy: FailurePolicy::default(),
            stall_timeout: Duration::from_secs(5),
            max_restarts: 8,
        }
    }
}

/// Configuration of a sharded replay: the per-shard engine config plus the
/// partitioning, hand-off, and supervision parameters.
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Engine configuration applied to every shard.
    pub engine: DartConfig,
    /// Number of independent engine shards (≥ 1).
    pub shards: usize,
    /// Packets per hand-off batch. Larger batches amortize channel
    /// synchronization; smaller ones reduce feeder-to-worker latency.
    pub batch_size: usize,
    /// Bounded channel capacity, in batches, per shard. Bounds feeder
    /// run-ahead so memory stays proportional to
    /// `shards × queue_depth × batch_size`.
    pub queue_depth: usize,
    /// Failure handling: policy, watchdog timeout, restart budget.
    pub supervisor: SupervisorConfig,
    /// Retain per-packet samples and per-flow events for the merged
    /// [`ShardedRun`]. Replays want them (`true`, the default); a
    /// long-lived daemon that watches only counters and histograms sets
    /// this `false` so worker memory stays bounded over an unbounded
    /// packet stream — `stats` and telemetry are unaffected.
    pub keep_samples: bool,
}

impl ShardedConfig {
    /// Default hand-off parameters for `shards` shards over `engine`.
    pub fn new(engine: DartConfig, shards: usize) -> ShardedConfig {
        ShardedConfig {
            engine,
            shards,
            batch_size: 1024,
            queue_depth: 8,
            supervisor: SupervisorConfig::default(),
            keep_samples: true,
        }
    }

    /// Override the hand-off batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Override the per-shard queue depth (in batches).
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Override the failure policy.
    pub fn with_policy(mut self, policy: FailurePolicy) -> Self {
        self.supervisor.policy = policy;
        self
    }

    /// Override the watchdog stall timeout.
    pub fn with_stall_timeout(mut self, timeout: Duration) -> Self {
        self.supervisor.stall_timeout = timeout;
        self
    }

    /// Override the whole supervision block.
    pub fn with_supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Override sample/event retention (see [`ShardedConfig::keep_samples`]).
    pub fn with_keep_samples(mut self, keep_samples: bool) -> Self {
        self.keep_samples = keep_samples;
        self
    }
}

/// Point-in-time health of the supervised runtime, cheap to take from the
/// feeder thread at any moment — this is what a daemon's `/healthz`
/// endpoint reports between scrapes.
///
/// Worker-side failures (panics recorded inside a shard) only become
/// visible when that worker is joined at flush; until then `failures`
/// counts what the feeder has observed (stalls, disconnects). The
/// `healthy_shards` count is live either way: workers flip their shared
/// dead flag the moment they stop measuring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisorHealth {
    /// Configured shard count.
    pub shards: usize,
    /// Shards still measuring their traffic (not dead, not abandoned).
    pub healthy_shards: usize,
    /// Shards abandoned by the feeder watchdog.
    pub abandoned: usize,
    /// Watchdog expiries observed by the feeder.
    pub stalls: u64,
    /// Packets handed to the monitor so far.
    pub fed: u64,
    /// Failures visible so far (all of them once the run is flushed).
    pub failures: usize,
    /// True once the run has been flushed and the workers joined.
    pub flushed: bool,
}

impl SupervisorHealth {
    /// True when every shard is measuring and nothing has failed.
    pub fn healthy(&self) -> bool {
        self.healthy_shards == self.shards && self.failures == 0
    }

    /// Render as a single JSON object (stable key order) for health
    /// endpoints.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"healthy\":{},\"shards\":{},\"healthy_shards\":{},\"abandoned\":{},\"stalls\":{},\"fed\":{},\"failures\":{},\"flushed\":{}}}",
            self.healthy(),
            self.shards,
            self.healthy_shards,
            self.abandoned,
            self.stalls,
            self.fed,
            self.failures,
            self.flushed,
        )
    }
}

/// Output of a sharded run: merged samples, combined counters, merged
/// engine events, and any shard failures the supervised runtime survived,
/// all in the deterministic (packet index, shard) order.
#[derive(Clone, Debug, Default)]
pub struct ShardedRun {
    /// RTT samples from every shard, merged into serial emission order.
    pub samples: Vec<RttSample>,
    /// Sum of all per-shard counters (see [`EngineStats::merge`]), plus
    /// the runtime's own restart/loss accounting.
    pub stats: EngineStats,
    /// Per-flow events (range collapses, optimistic ACKs) from every shard,
    /// merged into the same deterministic order as the samples.
    pub events: Vec<EngineEvent>,
    /// Final counters of each individual shard, in shard order (all-zero
    /// for a shard abandoned by the watchdog — its results are lost and
    /// counted in `monitor_miss`).
    pub per_shard: Vec<EngineStats>,
    /// Every failure observed during the run, ordered by (shard, packet).
    /// Empty on a healthy run.
    pub failures: Vec<ShardFailure>,
}

impl ShardedRun {
    /// True when no shard failed (the run is not degraded).
    pub fn healthy(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Which shard a flow belongs to: both directions of a connection map to
/// the same shard.
#[inline]
pub fn shard_of(flow: &FlowKey, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (flow.symmetric_hash() % shards as u64) as usize
}

/// One unit of hand-off: packets tagged with their global trace index.
type Batch = Vec<(u64, PacketMeta)>;

/// What travels over a shard's hand-off channel: a batch of packets, or a
/// control message asking the worker to rotate its engine's epoch. Control
/// messages ride the same bounded queue as traffic, so a rotation is
/// ordered after every batch dispatched before it and never preempts one
/// mid-batch.
enum ShardMsg {
    Batch(Batch),
    Rotate(Nanos),
    /// Serialize the live engine's state section and reply with the raw
    /// payload bytes. Rides the same bounded queue as traffic, so the
    /// checkpoint is ordered after every batch dispatched before it — the
    /// same quiescence seam [`ShardMsg::Rotate`] uses.
    Checkpoint(MpscSender<Result<Vec<u8>, SnapshotError>>),
    /// Replace the live engine's state with a serialized section produced
    /// by [`ShardMsg::Checkpoint`] and acknowledge over the channel.
    Restore(Vec<u8>, MpscSender<Result<(), SnapshotError>>),
}

/// Kind tag of a sharded-runtime snapshot payload (the serial engine
/// writes `SNAP_KIND_ENGINE`), so a snapshot restored into the wrong
/// monitor kind fails loudly instead of misparsing.
pub(crate) const SNAP_KIND_SHARDED: u8 = 2;

/// Serialize one name-tagged counter block — the same forward-compatible
/// shape the engine section uses for its stats.
fn put_stats(w: &mut SnapWriter, stats: &EngineStats) {
    let rows = stats.metric_rows();
    w.put_u32(rows.len() as u32);
    for (name, value) in rows {
        w.put_str(name);
        w.put_u64(value);
    }
}

/// Read a counter block written by [`put_stats`]. Unknown counter names
/// are tolerated (a newer writer may track counters this build does not);
/// counters absent from the block keep their zero default.
fn read_stats(r: &mut SnapReader<'_>) -> Result<EngineStats, SnapshotError> {
    let mut stats = EngineStats::default();
    let rows = r.get_u32()?;
    for _ in 0..rows {
        let name = r.get_str()?;
        let value = r.get_u64()?;
        let _ = stats.set_metric(name, value);
    }
    Ok(stats)
}

/// Serialize one buffered `(global index, sample)` pair. Samples a worker
/// holds for the flush-time merge would otherwise be lost across a crash,
/// so they travel in the shard's checkpoint section.
fn put_sample(w: &mut SnapWriter, idx: u64, s: &RttSample) {
    w.put_u64(idx);
    w.put_bytes(&s.flow.to_bytes());
    w.put_u32(s.eack.raw());
    w.put_u64(s.rtt);
    w.put_u64(s.ts);
    w.put_u32(s.weight.0);
}

fn read_sample(r: &mut SnapReader<'_>) -> Result<(u64, RttSample), SnapshotError> {
    let idx = r.get_u64()?;
    let flow = crate::range_tracker::flow_key_from_wire(r.get_bytes(12)?);
    let eack = dart_packet::SeqNum(r.get_u32()?);
    let rtt = r.get_u64()?;
    let ts = r.get_u64()?;
    let weight = crate::sample::SampleWeight(r.get_u32()?);
    Ok((
        idx,
        RttSample {
            flow,
            eack,
            rtt,
            ts,
            weight,
        },
    ))
}

/// Serialize one buffered `(global index, event)` pair (same rationale as
/// [`put_sample`]).
fn put_event(w: &mut SnapWriter, idx: u64, ev: &EngineEvent) {
    w.put_u64(idx);
    match ev {
        EngineEvent::RangeCollapse {
            flow,
            ts,
            from_retransmission,
        } => {
            w.put_u8(0);
            w.put_bytes(&flow.to_bytes());
            w.put_u64(*ts);
            w.put_u8(u8::from(*from_retransmission));
        }
        EngineEvent::OptimisticAck { flow, ts } => {
            w.put_u8(1);
            w.put_bytes(&flow.to_bytes());
            w.put_u64(*ts);
        }
    }
}

fn read_event(r: &mut SnapReader<'_>) -> Result<(u64, EngineEvent), SnapshotError> {
    let idx = r.get_u64()?;
    let tag = r.get_u8()?;
    let flow = crate::range_tracker::flow_key_from_wire(r.get_bytes(12)?);
    let ts = r.get_u64()?;
    let ev = match tag {
        0 => EngineEvent::RangeCollapse {
            flow,
            ts,
            from_retransmission: r.get_u8()? != 0,
        },
        1 => EngineEvent::OptimisticAck { flow, ts },
        _ => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown engine-event tag {tag}"
            )))
        }
    };
    Ok((idx, ev))
}

/// What a worker sends back: index-tagged samples and events, the shard's
/// final counters (retired engines + live engine + runtime accounting),
/// and every failure it survived.
struct ShardResult {
    samples: Vec<(u64, RttSample)>,
    events: Vec<(u64, EngineEvent)>,
    stats: EngineStats,
    failures: Vec<ShardFailure>,
}

impl ShardResult {
    fn empty() -> ShardResult {
        ShardResult {
            samples: Vec::new(),
            events: Vec::new(),
            stats: EngineStats::default(),
            failures: Vec::new(),
        }
    }
}

/// Per-shard instrumentation handles, cloned into the worker thread.
/// Zero-sized (and all code paths compiled out) without the `telemetry`
/// feature.
#[derive(Clone, Default)]
struct ShardHooks {
    /// In-engine metric handles for this shard.
    #[cfg(feature = "telemetry")]
    tel: Option<EngineTelemetry>,
    /// Hand-off batches queued or being processed: the feeder adds one per
    /// send, the worker subtracts one per batch completed, so the gauge is
    /// the live channel depth.
    #[cfg(feature = "telemetry")]
    channel: Option<Gauge>,
    /// Runtime-level health gauge (`dart_supervisor_healthy_shards`),
    /// decremented once when this shard stops measuring.
    #[cfg(feature = "telemetry")]
    healthy: Option<Gauge>,
}

/// Render a caught panic payload for [`FailureKind::Panicked`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A flow-sharded Dart engine: `shards` independent [`DartEngine`]s, each
/// on its own worker thread, partitioned by symmetric flow hash.
pub struct ShardedDartEngine {
    cfg: ShardedConfig,
}

impl ShardedDartEngine {
    /// Build a sharded engine. Panics when `shards` or `batch_size` is 0.
    pub fn new(cfg: ShardedConfig) -> ShardedDartEngine {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.batch_size >= 1, "batch size must be positive");
        assert!(cfg.queue_depth >= 1, "queue depth must be positive");
        ShardedDartEngine { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.cfg
    }

    /// Replay a trace across the shards and merge the results, tolerating
    /// degraded runs: shard failures are recorded in
    /// [`ShardedRun::failures`] and accounted in the counters, but never
    /// surfaced as an error. Use [`ShardedDartEngine::try_run`] to get the
    /// policy-aware `Result`.
    pub fn run(&self, packets: &[PacketMeta]) -> ShardedRun {
        let mut monitor = ShardedMonitor::new(self.cfg);
        for pkt in packets {
            monitor.feed(pkt);
        }
        monitor.into_run()
    }

    /// Replay a trace and surface failures per the configured
    /// [`FailurePolicy`]: under `FailFast` a shard failure returns
    /// `Err(EngineError::ShardFailed)` carrying the partial merged output;
    /// under the degrading policies the `Ok` run carries its failures.
    pub fn try_run(&self, packets: &[PacketMeta]) -> Result<ShardedRun, EngineError> {
        let mut monitor = ShardedMonitor::new(self.cfg);
        for pkt in packets {
            monitor.try_feed(pkt)?;
        }
        monitor.try_into_run()
    }
}

/// The streaming face of the flow-sharded engine: an [`RttMonitor`] whose
/// `on_packet` partitions packets to worker threads as they arrive, so a
/// sharded replay can consume any [`PacketSource`](dart_packet::PacketSource)
/// without materializing the trace.
///
/// Samples cannot be emitted in deterministic merge order until every
/// worker has finished, so this monitor buffers: `on_packet` emits nothing
/// and the whole merged stream — ordered by (global packet index, shard
/// id), byte-identical to [`ShardedDartEngine::run`] — is delivered on
/// [`RttMonitor::flush`]. Memory for results is proportional to the sample
/// count, not the trace length; in-flight packets stay bounded by
/// `shards × queue_depth × batch_size`.
///
/// The monitor is the supervised runtime's feeder: it applies the
/// [`SupervisorConfig`] watchdog on every hand-off and the
/// [`FailurePolicy`] bookkeeping described in the module docs.
pub struct ShardedMonitor {
    cfg: ShardedConfig,
    name: String,
    /// `None` once a shard has been abandoned (watchdog) or its worker
    /// ended early — no further sends.
    txs: Vec<Option<SyncSender<ShardMsg>>>,
    /// `None` for abandoned shards: their stuck worker is detached, never
    /// joined, and its results are written off into `monitor_miss`.
    handles: Vec<Option<JoinHandle<ShardResult>>>,
    bufs: Vec<Batch>,
    /// Per-shard instrumentation handles (empty structs when the
    /// `telemetry` feature is off).
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    hooks: Vec<ShardHooks>,
    /// Set by a worker that stopped measuring (panic under any policy,
    /// restart budget exhausted) or by the feeder on abandon; the feeder
    /// drops that shard's traffic into `monitor_miss` from then on.
    dead: Vec<Arc<AtomicBool>>,
    /// Set on the first fatal failure under [`FailurePolicy::FailFast`]:
    /// feeder and workers stop processing new packets everywhere.
    fatal: Arc<AtomicBool>,
    /// Packets handed to each shard's channel (abandon accounting).
    sent: Vec<u64>,
    abandoned: Vec<bool>,
    feeder_failures: Vec<ShardFailure>,
    /// Runtime accounting done at the feeder (packets never offered to a
    /// healthy engine).
    feeder_extra: EngineStats,
    fed: u64,
    done: Option<ShardedRun>,
    /// First fatal failure, kept for [`ShardedMonitor::try_into_run`]
    /// under `FailFast`.
    fatal_failure: Option<ShardFailure>,
    #[cfg(feature = "telemetry")]
    sup_stalls: Option<Counter>,
}

impl ShardedMonitor {
    /// Spawn the shard workers and stand ready to feed them.
    pub fn new(cfg: ShardedConfig) -> ShardedMonitor {
        Self::spawn(cfg, |_| ShardHooks::default(), None)
    }

    /// Spawn with a per-packet [`PacketHook`] installed in every worker
    /// (the chaos-injection seam — see the type docs).
    pub fn with_packet_hook(cfg: ShardedConfig, hook: PacketHook) -> ShardedMonitor {
        Self::spawn(cfg, |_| ShardHooks::default(), Some(hook))
    }

    /// Spawn with per-shard telemetry: each worker's engine publishes
    /// `shard`-labelled counters, RTT and batch-latency histograms, and
    /// recirculation queue-depth gauges to `registry`, live while the
    /// replay runs. A `dart_shard_channel_batches` gauge per shard tracks
    /// the hand-off channel depth; the supervisor publishes
    /// `dart_supervisor_healthy_shards` and
    /// `dart_supervisor_stalls_total`.
    #[cfg(feature = "telemetry")]
    pub fn with_telemetry(cfg: ShardedConfig, registry: &MetricRegistry) -> ShardedMonitor {
        Self::with_telemetry_and_hook(cfg, registry, None)
    }

    /// [`ShardedMonitor::with_telemetry`] plus an optional chaos hook —
    /// what the instrumented chaos harness uses.
    #[cfg(feature = "telemetry")]
    pub fn with_telemetry_and_hook(
        cfg: ShardedConfig,
        registry: &MetricRegistry,
        hook: Option<PacketHook>,
    ) -> ShardedMonitor {
        let healthy = registry.gauge(
            "dart_supervisor_healthy_shards",
            &[],
            "shard workers still measuring their traffic",
        );
        healthy.set(cfg.shards as i64);
        let stalls = registry.counter(
            "dart_supervisor_stalls_total",
            &[],
            "shard workers abandoned by the feeder watchdog",
        );
        let reg = registry.clone();
        let healthy_for_hooks = healthy.clone();
        let mut monitor = Self::spawn(
            cfg,
            move |shard| {
                let shard_label = shard.to_string();
                ShardHooks {
                    tel: Some(EngineTelemetry::register(&reg, shard)),
                    channel: Some(reg.gauge(
                        "dart_shard_channel_batches",
                        &[("shard", &shard_label)],
                        "hand-off batches queued or being processed by this shard worker",
                    )),
                    healthy: Some(healthy_for_hooks.clone()),
                }
            },
            hook,
        );
        monitor.sup_stalls = Some(stalls);
        monitor
    }

    fn spawn(
        cfg: ShardedConfig,
        make_hooks: impl Fn(usize) -> ShardHooks,
        packet_hook: Option<PacketHook>,
    ) -> ShardedMonitor {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.batch_size >= 1, "batch size must be positive");
        assert!(cfg.queue_depth >= 1, "queue depth must be positive");
        let fatal = Arc::new(AtomicBool::new(false));
        let mut txs = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        let mut hooks = Vec::with_capacity(cfg.shards);
        let mut dead = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = sync_channel::<ShardMsg>(cfg.queue_depth);
            let shard_hooks = make_hooks(shard);
            let shard_dead = Arc::new(AtomicBool::new(false));
            let ctx = ShardCtx {
                shard,
                engine_cfg: cfg.engine,
                sup: cfg.supervisor,
                keep_samples: cfg.keep_samples,
                hooks: shard_hooks.clone(),
                packet_hook: packet_hook.clone(),
                fatal: Arc::clone(&fatal),
                dead: Arc::clone(&shard_dead),
            };
            hooks.push(shard_hooks);
            dead.push(shard_dead);
            txs.push(Some(tx));
            let fallback_dead = Arc::clone(&ctx.dead);
            let fallback_fatal = Arc::clone(&ctx.fatal);
            handles.push(Some(thread::spawn(move || {
                // Last-resort isolation: even a panic in the worker's own
                // scaffolding becomes a failure record, not a poisoned
                // join.
                match catch_unwind(AssertUnwindSafe(|| run_shard(ctx, rx))) {
                    Ok(result) => result,
                    Err(payload) => {
                        fallback_dead.store(true, Ordering::Relaxed);
                        fallback_fatal.store(true, Ordering::Relaxed);
                        let mut result = ShardResult::empty();
                        result.failures.push(ShardFailure {
                            shard,
                            at_packet: None,
                            kind: FailureKind::Panicked {
                                message: panic_message(payload),
                            },
                        });
                        result
                    }
                }
            })));
        }
        ShardedMonitor {
            name: format!("dart-sharded-{}", cfg.shards),
            bufs: (0..cfg.shards)
                .map(|_| Vec::with_capacity(cfg.batch_size))
                .collect(),
            sent: vec![0; cfg.shards],
            abandoned: vec![false; cfg.shards],
            feeder_failures: Vec::new(),
            feeder_extra: EngineStats::default(),
            cfg,
            txs,
            handles,
            hooks,
            dead,
            fatal,
            fed: 0,
            done: None,
            fatal_failure: None,
            #[cfg(feature = "telemetry")]
            sup_stalls: None,
        }
    }

    /// Account one batch handed to `shard`'s channel.
    fn note_batch_sent(&self, shard: usize) {
        #[cfg(feature = "telemetry")]
        if let Some(g) = &self.hooks[shard].channel {
            g.add(1);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = shard;
    }

    /// Hand one packet to its shard (buffered into hand-off batches).
    ///
    /// Never blocks past the watchdog timeout and never panics: a packet
    /// that cannot reach a healthy engine (failed shard, fail-fast stop)
    /// is dropped into `monitor_miss`. The only error is
    /// [`EngineError::FedAfterFlush`] — the run already ended.
    pub fn try_feed(&mut self, pkt: &PacketMeta) -> Result<(), EngineError> {
        if self.done.is_some() {
            return Err(EngineError::FedAfterFlush);
        }
        let idx = self.fed;
        self.fed += 1;
        if self.cfg.supervisor.policy == FailurePolicy::FailFast
            && self.fatal.load(Ordering::Relaxed)
        {
            self.feeder_extra.monitor_miss += 1;
            return Ok(());
        }
        let shard = shard_of(&pkt.flow, self.cfg.shards);
        if self.abandoned[shard] || self.dead[shard].load(Ordering::Relaxed) {
            self.feeder_extra.monitor_miss += 1;
            return Ok(());
        }
        self.bufs[shard].push((idx, *pkt));
        if self.bufs[shard].len() >= self.cfg.batch_size {
            self.dispatch(shard);
        }
        Ok(())
    }

    /// [`ShardedMonitor::try_feed`], swallowing the post-flush case (the
    /// packet is dropped; a debug build asserts).
    pub fn feed(&mut self, pkt: &PacketMeta) {
        let fed_after_flush = self.try_feed(pkt).is_err();
        debug_assert!(!fed_after_flush, "packet fed to a flushed ShardedMonitor");
    }

    /// Send `shard`'s buffered batch under the watchdog: spin on
    /// `try_send` until it lands or [`SupervisorConfig::stall_timeout`]
    /// expires, in which case the worker is declared stalled and
    /// abandoned.
    fn dispatch(&mut self, shard: usize) {
        let batch = std::mem::replace(
            &mut self.bufs[shard],
            Vec::with_capacity(self.cfg.batch_size),
        );
        if batch.is_empty() {
            return;
        }
        let len = batch.len() as u64;
        let first_idx = batch.first().map(|(i, _)| *i);
        self.send_msg(shard, ShardMsg::Batch(batch), first_idx, len);
    }

    /// Watchdog-guarded send of one message to `shard`. `pkts` is the
    /// number of packets the message carries (0 for control messages) —
    /// it drives the channel gauge, the abandon accounting, and the
    /// monitor-miss write-off on a dead worker.
    fn send_msg(&mut self, shard: usize, msg: ShardMsg, first_idx: Option<u64>, pkts: u64) {
        let Some(tx) = self.txs[shard].clone() else {
            self.feeder_extra.monitor_miss += pkts;
            return;
        };
        let started = Instant::now();
        let mut pending = msg;
        loop {
            match tx.try_send(pending) {
                Ok(()) => {
                    if pkts > 0 {
                        self.note_batch_sent(shard);
                        self.sent[shard] += pkts;
                    }
                    return;
                }
                Err(TrySendError::Full(back)) => {
                    let waited = started.elapsed();
                    if waited >= self.cfg.supervisor.stall_timeout {
                        self.abandon(shard, waited, first_idx, pkts);
                        return;
                    }
                    pending = back;
                    thread::sleep(Duration::from_millis(1));
                }
                Err(TrySendError::Disconnected(back)) => {
                    // The worker ended early (catastrophic fallback); its
                    // result is still joinable — just stop sending.
                    self.txs[shard] = None;
                    self.mark_dead(shard);
                    if let ShardMsg::Batch(b) = back {
                        self.feeder_extra.monitor_miss += b.len() as u64;
                    }
                    return;
                }
            }
        }
    }

    /// Ask every live shard to rotate its engine's epoch (see
    /// [`DartEngine::rotate_epoch`]): entries idle since `cutoff` are
    /// swept so table occupancy stays bounded over a long-lived run.
    ///
    /// Partial feeder buffers are dispatched first, so the rotation is
    /// ordered after every packet fed before this call. The rotation
    /// itself is asynchronous — each worker performs it when the control
    /// message reaches the front of its queue — and its totals surface
    /// through the per-shard telemetry (`dart_epoch_*` series), not as a
    /// return value.
    pub fn rotate_epoch(&mut self, cutoff: Nanos) {
        if self.done.is_some() {
            return;
        }
        for shard in 0..self.cfg.shards {
            if self.abandoned[shard] || self.dead[shard].load(Ordering::Relaxed) {
                continue;
            }
            self.dispatch(shard);
            self.send_msg(shard, ShardMsg::Rotate(cutoff), None, 0);
        }
    }

    /// Checkpoint the whole runtime into one [`Snapshot`].
    ///
    /// Mirrors [`ShardedMonitor::rotate_epoch`]'s quiescence seam: partial
    /// feeder buffers are dispatched first, then a `Checkpoint` control
    /// message rides each live shard's bounded queue, so every shard
    /// serializes its engine exactly after the packets fed before this
    /// call and before any fed after it. The feeder blocks for the
    /// replies (watchdog-bounded), so the returned snapshot is a
    /// consistent cut of the run.
    ///
    /// Shards that are dead, refuse (shedding), or fail to reply within
    /// the budget are written off *inside the snapshot*: their section is
    /// absent and every packet ever handed to them is added to the
    /// serialized `monitor_miss`, so books restored from this snapshot
    /// still satisfy the conservation law `fed == packets +
    /// monitor_miss`.
    pub fn checkpoint(&mut self) -> Result<Snapshot, SnapshotError> {
        if self.done.is_some() {
            return Err(SnapshotError::Unsupported(
                "monitor already flushed; nothing left to checkpoint".to_string(),
            ));
        }
        // Collect sections first: a shard that fails here mutates the
        // feeder books (watchdog write-off), which are serialized after.
        //
        // Two passes: every live shard gets its `Checkpoint` message before
        // any reply is awaited, so the shards serialize their tables
        // concurrently and the feeder's pause is one table walk, not a sum
        // over shards.
        type SectionReply = Receiver<Result<Vec<u8>, SnapshotError>>;
        let mut pending: Vec<Option<SectionReply>> = Vec::with_capacity(self.cfg.shards);
        for shard in 0..self.cfg.shards {
            if self.abandoned[shard] || self.dead[shard].load(Ordering::Relaxed) {
                pending.push(None);
                continue;
            }
            self.dispatch(shard);
            let (reply_tx, reply_rx) = channel();
            self.send_msg(shard, ShardMsg::Checkpoint(reply_tx), None, 0);
            pending.push(Some(reply_rx));
        }
        // The watchdog allows `stall_timeout` per hand-off and at most
        // `queue_depth` messages sit ahead of ours in the queue.
        let budget = self.cfg.supervisor.stall_timeout * (self.cfg.queue_depth as u32 + 1);
        let mut sections: Vec<Option<Vec<u8>>> = Vec::with_capacity(self.cfg.shards);
        for reply_rx in pending {
            // If send_msg abandoned the shard (watchdog) or found the
            // worker gone, the reply sender was dropped and recv fails
            // immediately — the shard is written off like any other
            // absent section.
            match reply_rx.map(|rx| rx.recv_timeout(budget)) {
                Some(Ok(Ok(bytes))) => sections.push(Some(bytes)),
                Some(Ok(Err(_))) | Some(Err(_)) => sections.push(None),
                None => sections.push(None),
            }
        }
        let mut w = SnapWriter::new();
        w.put_u8(SNAP_KIND_SHARDED);
        w.put_usize(self.cfg.shards);
        w.put_u64(self.fed);
        // Snapshot-local books: a shard without a section loses its
        // worker-side state across the crash, so its packets — everything
        // ever handed to its channel plus anything still sitting in its
        // feeder buffer — move to `monitor_miss` in the serialized feeder
        // accounting (the live run's own books are untouched — the worker
        // still reports at join time).
        let mut snap_extra = self.feeder_extra;
        let mut snap_sent = self.sent.clone();
        for shard in 0..self.cfg.shards {
            if sections[shard].is_none() {
                snap_extra.monitor_miss += snap_sent[shard] + self.bufs[shard].len() as u64;
                snap_sent[shard] = 0;
            }
        }
        put_stats(&mut w, &snap_extra);
        for shard in 0..self.cfg.shards {
            w.put_u64(snap_sent[shard]);
            match &sections[shard] {
                Some(bytes) => {
                    w.put_u8(1);
                    w.put_usize(bytes.len());
                    w.put_bytes(bytes);
                }
                None => w.put_u8(0),
            }
        }
        Ok(Snapshot::from_payload(w.into_payload()))
    }

    /// Restore a [`ShardedMonitor::checkpoint`] into this (freshly
    /// spawned, never fed) monitor: each shard section is shipped to its
    /// worker over the hand-off channel and installed before any traffic,
    /// and the feeder books (`fed`, write-offs) resume where the snapshot
    /// left them. Shard count and per-shard engine configuration must
    /// match; a shard whose section was written off at checkpoint time
    /// restarts fresh (its history is already in the restored
    /// `monitor_miss`).
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        if self.done.is_some() {
            return Err(SnapshotError::Unsupported(
                "monitor already flushed; cannot restore".to_string(),
            ));
        }
        if self.fed != 0 {
            return Err(SnapshotError::Unsupported(
                "restore must precede feeding".to_string(),
            ));
        }
        let mut r = SnapReader::new(snap.payload());
        let kind = r.get_u8()?;
        if kind != SNAP_KIND_SHARDED {
            return Err(SnapshotError::Mismatch(format!(
                "payload kind {kind} is not a sharded-runtime snapshot"
            )));
        }
        let shards = r.get_usize()?;
        if shards != self.cfg.shards {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot has {shards} shards, monitor has {}",
                self.cfg.shards
            )));
        }
        let fed = r.get_u64()?;
        let extra = read_stats(&mut r)?;
        let mut sent = vec![0u64; shards];
        let budget = self.cfg.supervisor.stall_timeout * (self.cfg.queue_depth as u32 + 1);
        for (shard, slot) in sent.iter_mut().enumerate() {
            *slot = r.get_u64()?;
            if r.get_u8()? == 0 {
                continue; // written off at checkpoint time: starts fresh
            }
            let len = r.get_usize()?;
            let bytes = r.get_bytes(len)?.to_vec();
            let (reply_tx, reply_rx) = channel();
            self.send_msg(shard, ShardMsg::Restore(bytes, reply_tx), None, 0);
            match reply_rx.recv_timeout(budget) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(e),
                Err(_) => {
                    return Err(SnapshotError::Unsupported(format!(
                        "shard {shard} did not acknowledge the restore"
                    )))
                }
            }
        }
        if r.remaining() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after sharded snapshot",
                r.remaining()
            )));
        }
        self.fed = fed;
        self.feeder_extra = extra;
        self.sent = sent;
        Ok(())
    }

    /// Point-in-time health of the runtime — see [`SupervisorHealth`].
    pub fn health(&self) -> SupervisorHealth {
        let dead = (0..self.cfg.shards)
            .filter(|&s| self.abandoned[s] || self.dead[s].load(Ordering::Relaxed))
            .count();
        SupervisorHealth {
            shards: self.cfg.shards,
            healthy_shards: self.cfg.shards - dead,
            abandoned: self.abandoned.iter().filter(|a| **a).count(),
            stalls: self
                .feeder_failures
                .iter()
                .filter(|f| matches!(f.kind, FailureKind::Stalled { .. }))
                .count() as u64
                + self.done.as_ref().map_or(0, |r| {
                    r.failures
                        .iter()
                        .filter(|f| matches!(f.kind, FailureKind::Stalled { .. }))
                        .count() as u64
                }),
            fed: self.fed,
            failures: self.feeder_failures.len()
                + self.done.as_ref().map_or(0, |r| r.failures.len()),
            flushed: self.done.is_some(),
        }
    }

    /// Flip `shard`'s dead flag, decrementing the health gauge exactly
    /// once across feeder and worker.
    fn mark_dead(&self, shard: usize) {
        if !self.dead[shard].swap(true, Ordering::Relaxed) {
            #[cfg(feature = "telemetry")]
            if let Some(g) = &self.hooks[shard].healthy {
                g.sub(1);
            }
        }
    }

    /// Watchdog expiry: record the stall, stop talking to the worker, and
    /// write off everything it was ever sent (its results are
    /// unrecoverable without joining a possibly-hung thread).
    fn abandon(&mut self, shard: usize, waited: Duration, at_packet: Option<u64>, pending: u64) {
        self.feeder_failures.push(ShardFailure {
            shard,
            at_packet,
            kind: FailureKind::Stalled { waited },
        });
        self.abandoned[shard] = true;
        self.txs[shard] = None;
        // Detach the stuck thread: dropping the handle lets it finish (or
        // hang) on its own without ever blocking the supervisor.
        self.handles[shard] = None;
        self.mark_dead(shard);
        if self.cfg.supervisor.policy == FailurePolicy::FailFast {
            self.fatal.store(true, Ordering::Relaxed);
        }
        self.feeder_extra.monitor_miss += self.sent[shard] + pending;
        self.sent[shard] = 0;
        #[cfg(feature = "telemetry")]
        if let Some(c) = &self.sup_stalls {
            c.add(1);
        }
    }

    /// Close the channels, collect the workers, and cache the merged
    /// result.
    fn finish(&mut self) {
        if self.done.is_some() {
            return;
        }
        for shard in 0..self.cfg.shards {
            if self.abandoned[shard] || self.dead[shard].load(Ordering::Relaxed) {
                // The worker is not (or no longer) measuring; don't bother
                // queueing — the drain loop would only count them anyway.
                self.feeder_extra.monitor_miss += self.bufs[shard].len() as u64;
                self.bufs[shard].clear();
            } else {
                self.dispatch(shard);
            }
        }
        // Closing the senders ends each worker's receive loop.
        for tx in &mut self.txs {
            *tx = None;
        }
        let mut results: Vec<Option<ShardResult>> = Vec::with_capacity(self.cfg.shards);
        for shard in 0..self.cfg.shards {
            match self.handles[shard].take() {
                None => results.push(None), // abandoned: written off already
                Some(handle) => match handle.join() {
                    Ok(result) => results.push(Some(result)),
                    Err(payload) => {
                        // Unreachable in practice (the worker closure is
                        // catch_unwind-wrapped), kept as defense in depth.
                        self.feeder_failures.push(ShardFailure {
                            shard,
                            at_packet: None,
                            kind: FailureKind::Panicked {
                                message: panic_message(payload),
                            },
                        });
                        self.feeder_extra.monitor_miss += self.sent[shard];
                        results.push(None);
                    }
                },
            }
        }
        let mut run = merge(results);
        run.stats.merge(&self.feeder_extra);
        run.failures.append(&mut self.feeder_failures);
        run.failures.sort_by_key(|f| (f.shard, f.at_packet));
        if self.cfg.supervisor.policy == FailurePolicy::FailFast {
            self.fatal_failure = run
                .failures
                .iter()
                .find(|f| !matches!(f.kind, FailureKind::SinkLeaked))
                .cloned();
        }
        self.done = Some(run);
    }

    /// Finish the run (if not already flushed) and take the full merged
    /// output, events, per-shard counters, and failures included — even
    /// when degraded. See [`ShardedMonitor::try_into_run`] for the
    /// policy-aware variant.
    pub fn into_run(mut self) -> ShardedRun {
        self.finish();
        self.done.take().unwrap_or_default()
    }

    /// Finish the run and apply the [`FailurePolicy`] contract: under
    /// `FailFast` any shard failure returns
    /// [`EngineError::ShardFailed`] carrying the partial merged run;
    /// under `RestartShard` / `ShedLoad` the `Ok` run records its
    /// failures and keeps every sample the surviving engines produced.
    pub fn try_into_run(mut self) -> Result<ShardedRun, EngineError> {
        self.finish();
        let run = self.done.take().unwrap_or_default();
        match self.fatal_failure.take() {
            Some(failure) => Err(EngineError::ShardFailed {
                failure,
                partial: Box::new(run),
            }),
            None => Ok(run),
        }
    }
}

impl RttMonitor for ShardedMonitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn describe(&self) -> String {
        format!(
            "Dart partitioned across {} symmetric-hash flow shards, supervised ({}), deterministic fan-in merge",
            self.cfg.shards, self.cfg.supervisor.policy
        )
    }

    fn on_packet(&mut self, pkt: &PacketMeta, _sink: &mut dyn SampleSink) {
        self.feed(pkt);
    }

    /// Feed a whole block: one virtual call per block from the batch
    /// drivers instead of one per packet. Partitioning stays per-packet
    /// (each packet hashes to its own shard), so this is purely a
    /// dispatch-cost optimization — ordering and results are unchanged.
    fn on_batch(&mut self, pkts: &[PacketMeta], _sink: &mut dyn SampleSink) {
        for pkt in pkts {
            self.feed(pkt);
        }
    }

    /// Dispatch the rotation to every live shard.
    ///
    /// Always returns [`EpochRotation::default`]: the sweep happens
    /// asynchronously on the workers, and its totals are published through
    /// each shard's `dart_epoch_*` telemetry series rather than merged
    /// into a synchronous return value.
    fn rotate_epoch(&mut self, cutoff: Nanos) -> EpochRotation {
        ShardedMonitor::rotate_epoch(self, cutoff);
        EpochRotation::default()
    }

    fn snapshot(&mut self) -> Result<Snapshot, SnapshotError> {
        ShardedMonitor::checkpoint(self)
    }

    fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        ShardedMonitor::restore(self, snap)
    }

    /// First flush joins the workers and emits the merged sample stream;
    /// later flushes emit nothing.
    fn flush(&mut self, sink: &mut dyn SampleSink) {
        let first = self.done.is_none();
        self.finish();
        if first {
            if let Some(run) = &self.done {
                for s in &run.samples {
                    sink.on_sample(*s);
                }
            }
        }
    }

    /// Before `flush`, only the feeder-side packet count is known (shard
    /// counters live on the workers); after, the fully merged counters.
    fn stats(&self) -> EngineStats {
        match &self.done {
            Some(run) => run.stats,
            None => EngineStats {
                packets: self.fed,
                ..EngineStats::default()
            },
        }
    }
}

/// Flush-time entries sort after every real packet index, exactly like the
/// old end-of-trace tag, without needing to know the trace length up front.
const FLUSH_TAG: u64 = u64::MAX;

/// Everything a worker thread needs, bundled so the spawn site stays
/// readable.
struct ShardCtx {
    shard: usize,
    engine_cfg: DartConfig,
    sup: SupervisorConfig,
    keep_samples: bool,
    hooks: ShardHooks,
    packet_hook: Option<PacketHook>,
    fatal: Arc<AtomicBool>,
    dead: Arc<AtomicBool>,
}

/// Worker body: one engine (respawned under `RestartShard`), fed batches
/// until the channel closes, every batch under panic isolation.
#[cfg_attr(not(feature = "telemetry"), allow(unused_variables))]
fn run_shard(ctx: ShardCtx, rx: Receiver<ShardMsg>) -> ShardResult {
    let ShardCtx {
        shard,
        engine_cfg,
        sup,
        keep_samples,
        hooks,
        packet_hook,
        fatal,
        dead,
    } = ctx;
    // The event sink is installed once per engine but must tag events with
    // the packet being processed; share the current index (and the buffer,
    // across respawns) through Rc cells.
    let current = Rc::new(Cell::new(0u64));
    let events = Rc::new(RefCell::new(Vec::new()));
    let install_sink = |engine: &mut DartEngine| {
        // Without sample retention there is no merged run to feed: leave
        // the engine's default (discarding) event sink in place too, so
        // neither buffer grows with the stream.
        if !keep_samples {
            return;
        }
        let current = Rc::clone(&current);
        let events = Rc::clone(&events);
        engine.set_event_sink(Box::new(move |ev| {
            events.borrow_mut().push((current.get(), ev))
        }));
    };
    let mut engine = DartEngine::new(engine_cfg);
    #[cfg(feature = "telemetry")]
    if let Some(tel) = hooks.tel.clone() {
        engine.attach_telemetry(tel);
    }
    install_sink(&mut engine);

    let mut samples: Vec<(u64, RttSample)> = Vec::new();
    let mut failures: Vec<ShardFailure> = Vec::new();
    // Counters of engines discarded by respawns.
    let mut retired = EngineStats::default();
    // The runtime's own accounting (restarts, losses, misses).
    let mut extra = EngineStats::default();
    let mut restarts = 0u32;
    // True once this shard stopped measuring its own traffic.
    let mut shedding = false;

    for msg in rx {
        let batch = match msg {
            ShardMsg::Batch(batch) => batch,
            ShardMsg::Rotate(cutoff) => {
                let failfast_stop =
                    sup.policy == FailurePolicy::FailFast && fatal.load(Ordering::Relaxed);
                if !(shedding || failfast_stop) {
                    // The engine publishes rotation counters and the pause
                    // histogram itself through its attached telemetry.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        engine.rotate_epoch(cutoff);
                    }));
                    if let Err(payload) = outcome {
                        // A panicking rotation leaves the tables in an
                        // unknown intermediate state; the shard stops
                        // measuring under every policy (a respawn would
                        // also forfeit all live flows — shedding is the
                        // same loss, honestly accounted).
                        failures.push(ShardFailure {
                            shard,
                            at_packet: None,
                            kind: FailureKind::Panicked {
                                message: panic_message(payload),
                            },
                        });
                        if sup.policy == FailurePolicy::FailFast {
                            fatal.store(true, Ordering::Relaxed);
                        }
                        if !dead.swap(true, Ordering::Relaxed) {
                            #[cfg(feature = "telemetry")]
                            if let Some(g) = &hooks.healthy {
                                g.sub(1);
                            }
                        }
                        shedding = true;
                    }
                    #[cfg(feature = "telemetry")]
                    engine.sync_telemetry();
                }
                continue;
            }
            ShardMsg::Checkpoint(reply) => {
                let failfast_stop =
                    sup.policy == FailurePolicy::FailFast && fatal.load(Ordering::Relaxed);
                let res = if shedding || failfast_stop {
                    Err(SnapshotError::Unsupported(format!(
                        "shard {shard} is shedding and holds no restorable state"
                    )))
                } else {
                    // Serialization only reads the tables; a panic here
                    // (there is no known path) would still leave the engine
                    // intact, but treat it like a failed rotation anyway.
                    catch_unwind(AssertUnwindSafe(|| {
                        let mut w = SnapWriter::new();
                        w.put_u32(restarts);
                        put_stats(&mut w, &retired);
                        put_stats(&mut w, &extra);
                        // Flush-time buffers: without them every sample
                        // produced since the run began would vanish in a
                        // crash even with a fresh checkpoint.
                        w.put_usize(samples.len());
                        for (idx, s) in &samples {
                            put_sample(&mut w, *idx, s);
                        }
                        let evs = events.borrow();
                        w.put_usize(evs.len());
                        for (idx, ev) in evs.iter() {
                            put_event(&mut w, *idx, ev);
                        }
                        drop(evs);
                        engine.snapshot_into(&mut w);
                        w.into_payload()
                    }))
                    .map_err(|payload| {
                        SnapshotError::Unsupported(format!(
                            "shard {shard} checkpoint panicked: {}",
                            panic_message(payload)
                        ))
                    })
                };
                let _ = reply.send(res);
                continue;
            }
            ShardMsg::Restore(bytes, reply) => {
                let failfast_stop =
                    sup.policy == FailurePolicy::FailFast && fatal.load(Ordering::Relaxed);
                let res = if shedding || failfast_stop {
                    Err(SnapshotError::Unsupported(format!(
                        "shard {shard} is shedding and cannot accept state"
                    )))
                } else {
                    let mut r = SnapReader::new(&bytes);
                    (|| {
                        let snap_restarts = r.get_u32()?;
                        let snap_retired = read_stats(&mut r)?;
                        let snap_extra = read_stats(&mut r)?;
                        let n = r.get_usize()?;
                        let mut snap_samples = Vec::with_capacity(n.min(4096));
                        for _ in 0..n {
                            snap_samples.push(read_sample(&mut r)?);
                        }
                        let n = r.get_usize()?;
                        let mut snap_events = Vec::with_capacity(n.min(4096));
                        for _ in 0..n {
                            snap_events.push(read_event(&mut r)?);
                        }
                        engine.restore_from(&mut r)?;
                        if r.remaining() != 0 {
                            return Err(SnapshotError::Corrupt(format!(
                                "{} trailing bytes after shard {shard} section",
                                r.remaining()
                            )));
                        }
                        restarts = snap_restarts;
                        retired = snap_retired;
                        extra = snap_extra;
                        samples = snap_samples;
                        *events.borrow_mut() = snap_events;
                        Ok(())
                    })()
                };
                let _ = reply.send(res);
                continue;
            }
        };
        #[cfg(feature = "telemetry")]
        let batch_start = Instant::now();
        let batch_len = batch.len() as u64;
        let failfast_stop = sup.policy == FailurePolicy::FailFast && fatal.load(Ordering::Relaxed);
        if shedding || failfast_stop {
            // Drain mode: keep consuming so the feeder never blocks on a
            // channel nobody reads, but count every packet as missed.
            extra.monitor_miss += batch_len;
        } else {
            let before = engine.stats().packets;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                for (idx, pkt) in batch {
                    current.set(idx);
                    if let Some(hook) = &packet_hook {
                        hook(idx, shard);
                    }
                    let mut sink = |s: RttSample| {
                        if keep_samples {
                            samples.push((idx, s));
                        }
                    };
                    engine.process(&pkt, &mut sink);
                }
            }));
            if let Err(payload) = outcome {
                // Whether the panic fired before or after the engine
                // counted the packet, `packets + monitor_miss` covers the
                // batch exactly.
                let processed = engine.stats().packets - before;
                extra.monitor_miss += batch_len - processed;
                failures.push(ShardFailure {
                    shard,
                    at_packet: Some(current.get()),
                    kind: FailureKind::Panicked {
                        message: panic_message(payload),
                    },
                });
                let restart =
                    sup.policy == FailurePolicy::RestartShard && restarts < sup.max_restarts;
                if restart {
                    // Respawn: fresh RT/PT state. The discarded engine's
                    // counters stay (they describe real processing); its
                    // live flows can no longer close.
                    restarts += 1;
                    extra.shard_restarts += 1;
                    extra.flows_lost += engine.rt_occupancy() as u64;
                    retired.merge(engine.stats());
                    engine = DartEngine::new(engine_cfg);
                    #[cfg(feature = "telemetry")]
                    if let Some(tel) = hooks.tel.clone() {
                        // Base the fresh engine's published series on the
                        // retired totals so per-shard counters stay
                        // monotone across the restart.
                        let mut base = retired;
                        base.merge(&extra);
                        engine.attach_telemetry(tel.with_base(base));
                    }
                    install_sink(&mut engine);
                } else {
                    if sup.policy == FailurePolicy::FailFast {
                        fatal.store(true, Ordering::Relaxed);
                    }
                    if !dead.swap(true, Ordering::Relaxed) {
                        #[cfg(feature = "telemetry")]
                        if let Some(g) = &hooks.healthy {
                            g.sub(1);
                        }
                    }
                    shedding = true;
                }
            }
        }
        #[cfg(feature = "telemetry")]
        {
            if let Some(tel) = &hooks.tel {
                tel.observe_batch_ns(batch_start.elapsed().as_nanos() as u64);
            }
            engine.sync_telemetry();
            if let Some(g) = &hooks.channel {
                g.sub(1);
            }
        }
    }
    if !shedding {
        current.set(FLUSH_TAG);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| engine.flush())) {
            failures.push(ShardFailure {
                shard,
                at_packet: None,
                kind: FailureKind::Panicked {
                    message: panic_message(payload),
                },
            });
            if sup.policy == FailurePolicy::FailFast {
                fatal.store(true, Ordering::Relaxed);
            }
            if !dead.swap(true, Ordering::Relaxed) {
                #[cfg(feature = "telemetry")]
                if let Some(g) = &hooks.healthy {
                    g.sub(1);
                }
            }
        }
    }
    let mut stats = retired;
    stats.merge(engine.stats());
    stats.merge(&extra);
    #[cfg(feature = "telemetry")]
    if let Some(tel) = &hooks.tel {
        // Publish the shard's true final totals (runtime accounting
        // included) regardless of any restart bases.
        tel.clone()
            .with_base(EngineStats::default())
            .sync_stats(&stats);
    }
    drop(engine); // releases its clone of the event sink's Rc
    let events = match Rc::try_unwrap(events) {
        Ok(cell) => cell.into_inner(),
        Err(shared) => {
            // A sink clone outlived the engine (it shouldn't): recover the
            // events by draining the shared buffer and record the leak
            // instead of panicking.
            failures.push(ShardFailure {
                shard,
                at_packet: None,
                kind: FailureKind::SinkLeaked,
            });
            std::mem::take(&mut *shared.borrow_mut())
        }
    };
    ShardResult {
        samples,
        events,
        stats,
        failures,
    }
}

/// Deterministic merge: order by (global packet index, shard id). A packet
/// lives on exactly one shard, so the shard tiebreaker only orders
/// flush-time entries; the stable sort preserves a single packet's own
/// emission order. `None` slots are abandoned shards: they contribute
/// all-zero per-shard counters and nothing else.
fn merge(results: Vec<Option<ShardResult>>) -> ShardedRun {
    let mut samples: Vec<(u64, usize, RttSample)> = Vec::new();
    let mut events: Vec<(u64, usize, EngineEvent)> = Vec::new();
    let mut per_shard = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    let mut stats = EngineStats::default();
    for (shard, r) in results.into_iter().enumerate() {
        let Some(mut r) = r else {
            per_shard.push(EngineStats::default());
            continue;
        };
        samples.extend(r.samples.into_iter().map(|(i, s)| (i, shard, s)));
        events.extend(r.events.into_iter().map(|(i, e)| (i, shard, e)));
        stats.merge(&r.stats);
        failures.append(&mut r.failures);
        per_shard.push(r.stats);
    }
    samples.sort_by_key(|&(idx, shard, _)| (idx, shard));
    events.sort_by_key(|&(idx, shard, _)| (idx, shard));
    ShardedRun {
        samples: samples.into_iter().map(|(_, _, s)| s).collect(),
        events: events.into_iter().map(|(_, _, e)| e).collect(),
        stats,
        per_shard,
        failures,
    }
}

/// Convenience mirroring [`run_trace`]: replay `packets` across `shards`
/// engine shards with default hand-off parameters.
pub fn run_trace_sharded(
    cfg: DartConfig,
    shards: usize,
    packets: &[PacketMeta],
) -> (Vec<RttSample>, EngineStats) {
    if shards <= 1 {
        // Single shard is definitionally the serial engine; skip the
        // thread machinery (the equivalence is asserted in tests).
        return run_trace(cfg, packets);
    }
    let out = ShardedDartEngine::new(ShardedConfig::new(cfg, shards)).run(packets);
    (out.samples, out.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{Direction, Nanos, PacketBuilder};

    fn flow(n: u32) -> FlowKey {
        FlowKey::from_raw(0x0a00_0000 + n, 40000 + (n % 1000) as u16, 0x5db8_d822, 443)
    }

    /// A clean data/ACK exchange for `f` at time `t`.
    fn data_ack(f: FlowKey, seq: u32, len: u32, t: Nanos, rtt: Nanos) -> [PacketMeta; 2] {
        let data = PacketBuilder::new(f, t)
            .seq(seq)
            .payload(len)
            .dir(Direction::Outbound)
            .build();
        let ack = PacketBuilder::new(f.reverse(), t + rtt)
            .ack(seq.wrapping_add(len))
            .dir(Direction::Inbound)
            .build();
        [data, ack]
    }

    /// Interleaved exchanges over `flows` flows, ACKs arriving after later
    /// flows' data — exercises cross-shard interleaving.
    fn trace(flows: u32, exchanges: u32) -> Vec<PacketMeta> {
        let mut pkts = Vec::new();
        for e in 0..exchanges {
            for fi in 0..flows {
                let t = (e as Nanos) * 10_000_000 + (fi as Nanos) * 1_000;
                let [d, a] = data_ack(flow(fi), e * 1460, 1460, t, 5_000_000);
                pkts.push(d);
                pkts.push(a);
            }
        }
        pkts.sort_by_key(|p| p.ts);
        pkts
    }

    #[test]
    fn one_shard_is_bit_identical_to_serial() {
        let pkts = trace(40, 6);
        let (serial_samples, serial_stats) = run_trace(DartConfig::default(), &pkts);
        // Through the full threaded path, not the shards<=1 shortcut.
        let out = ShardedDartEngine::new(ShardedConfig::new(DartConfig::default(), 1)).run(&pkts);
        assert_eq!(out.samples, serial_samples);
        assert_eq!(out.stats, serial_stats);
        assert!(out.healthy());
    }

    #[test]
    fn unlimited_config_matches_serial_at_any_shard_count() {
        let pkts = trace(50, 5);
        let (serial, _) = run_trace(DartConfig::unlimited(), &pkts);
        for shards in [2usize, 3, 4, 8] {
            let (sharded, stats) = run_trace_sharded(DartConfig::unlimited(), shards, &pkts);
            assert_eq!(sharded, serial, "shards = {shards}");
            assert_eq!(stats.packets, pkts.len() as u64);
        }
    }

    #[test]
    fn both_directions_land_on_one_shard() {
        for n in 1..=8usize {
            for fi in 0..100 {
                let f = flow(fi);
                assert_eq!(shard_of(&f, n), shard_of(&f.reverse(), n));
            }
        }
    }

    #[test]
    fn shards_cover_all_packets() {
        let pkts = trace(30, 4);
        let out = ShardedDartEngine::new(ShardedConfig::new(DartConfig::default(), 4)).run(&pkts);
        assert_eq!(out.stats.packets, pkts.len() as u64);
        assert_eq!(out.per_shard.len(), 4);
        let by_shard: u64 = out.per_shard.iter().map(|s| s.packets).sum();
        assert_eq!(by_shard, pkts.len() as u64);
        // Every shard must actually receive traffic (30 well-mixed flows
        // over 4 shards leave an empty shard with probability ~4·(3/4)³⁰).
        assert!(out.per_shard.iter().all(|s| s.packets > 0));
    }

    #[test]
    fn merge_order_is_serial_emission_order() {
        let pkts = trace(25, 4);
        let out = ShardedDartEngine::new(
            ShardedConfig::new(DartConfig::unlimited(), 4).with_batch_size(7),
        )
        .run(&pkts);
        // Samples must be ordered by their ACK's arrival time (ties allowed).
        assert!(out.samples.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn tiny_batches_and_queues_still_complete() {
        let pkts = trace(20, 3);
        let out = ShardedDartEngine::new(
            ShardedConfig::new(DartConfig::unlimited(), 3)
                .with_batch_size(1)
                .with_queue_depth(1),
        )
        .run(&pkts);
        let (serial, _) = run_trace(DartConfig::unlimited(), &pkts);
        assert_eq!(out.samples, serial);
    }

    #[test]
    fn streaming_monitor_matches_batch_run() {
        let pkts = trace(30, 5);
        let cfg = ShardedConfig::new(DartConfig::default(), 4).with_batch_size(16);
        let batch = ShardedDartEngine::new(cfg).run(&pkts);

        let mut monitor = ShardedMonitor::new(cfg);
        let mut streamed = Vec::new();
        for p in &pkts {
            monitor.on_packet(p, &mut streamed);
        }
        assert!(streamed.is_empty(), "sharded output is deferred to flush");
        // stats() before flush: feeder-side packet count only.
        assert_eq!(RttMonitor::stats(&monitor).packets, pkts.len() as u64);
        monitor.flush(&mut streamed);
        assert_eq!(streamed, batch.samples);
        assert_eq!(RttMonitor::stats(&monitor), batch.stats);
        // Idempotent: a second flush emits nothing and keeps the counters.
        monitor.flush(&mut streamed);
        assert_eq!(streamed, batch.samples);
        assert_eq!(RttMonitor::stats(&monitor), batch.stats);
    }

    #[test]
    fn events_are_merged_deterministically() {
        // A retransmission triggers a RangeCollapse event; duplicate the
        // data packet of a few flows.
        let mut pkts = Vec::new();
        for fi in 0..12 {
            let f = flow(fi);
            let t = fi as Nanos * 1_000_000;
            let [d, a] = data_ack(f, 0, 1460, t, 5_000_000);
            let mut retx = d;
            retx.ts = t + 1_000;
            pkts.push(d);
            pkts.push(retx);
            pkts.push(a);
        }
        pkts.sort_by_key(|p| p.ts);
        let cfg = DartConfig::unlimited();
        let a = ShardedDartEngine::new(ShardedConfig::new(cfg, 4)).run(&pkts);
        let b = ShardedDartEngine::new(ShardedConfig::new(cfg, 4)).run(&pkts);
        assert!(!a.events.is_empty(), "expected range-collapse events");
        assert_eq!(a.events, b.events);
        // And the merged events match the serial engine's (unlimited config:
        // no cross-flow interaction, so the sets coincide exactly).
        let (tx, rx) = std::sync::mpsc::channel();
        let mut engine = DartEngine::new(cfg);
        engine.set_event_sink(Box::new(move |ev| {
            let _ = tx.send(ev);
        }));
        let mut dump = Vec::new();
        engine.process_trace(pkts.iter(), &mut dump);
        drop(engine); // closes the sender so the drain below terminates
        let serial_events: Vec<EngineEvent> = rx.try_iter().collect();
        assert_eq!(a.events, serial_events);
    }

    // ---- supervised-runtime tests -------------------------------------

    /// A hook that panics when the worker reaches global packet `at`.
    fn panic_at(at: u64) -> PacketHook {
        Arc::new(move |idx, _shard| {
            if idx == at {
                panic!("chaos: injected panic at packet {at}");
            }
        })
    }

    /// Supervised config with small batches so failures land mid-run.
    fn sup_cfg(policy: FailurePolicy, shards: usize) -> ShardedConfig {
        ShardedConfig::new(DartConfig::default(), shards)
            .with_batch_size(8)
            .with_policy(policy)
    }

    #[test]
    fn failfast_surfaces_typed_error_with_partial_run() {
        let pkts = trace(30, 6);
        let target = (pkts.len() / 2) as u64;
        let mut monitor =
            ShardedMonitor::with_packet_hook(sup_cfg(FailurePolicy::FailFast, 4), panic_at(target));
        for p in &pkts {
            monitor.feed(p);
        }
        let err = monitor.try_into_run().expect_err("must surface the panic");
        let EngineError::ShardFailed { failure, partial } = err else {
            panic!("expected ShardFailed");
        };
        assert!(matches!(failure.kind, FailureKind::Panicked { .. }));
        assert_eq!(failure.at_packet, Some(target));
        // Partial output: something was processed, something was missed,
        // and the books balance.
        assert!(partial.stats.packets > 0);
        assert!(partial.stats.monitor_miss > 0);
        assert_eq!(
            partial.stats.packets + partial.stats.monitor_miss,
            pkts.len() as u64
        );
        assert!(!partial.healthy());
    }

    #[test]
    fn restart_respawns_and_accounts_losses() {
        let pkts = trace(30, 6);
        let target = (pkts.len() / 2) as u64;
        let mut monitor = ShardedMonitor::with_packet_hook(
            sup_cfg(FailurePolicy::RestartShard, 4),
            panic_at(target),
        );
        for p in &pkts {
            monitor.feed(p);
        }
        let run = monitor
            .try_into_run()
            .expect("restart policy degrades, not errors");
        assert_eq!(run.stats.shard_restarts, 1);
        assert!(run.failures.len() == 1, "{:?}", run.failures);
        assert_eq!(run.failures[0].at_packet, Some(target));
        // Only the failed batch's tail is missed; everything else measured.
        assert_eq!(
            run.stats.packets + run.stats.monitor_miss,
            pkts.len() as u64
        );
        assert!(run.stats.monitor_miss < 8, "at most one batch lost");
        assert!(run.stats.samples > 0);
    }

    #[test]
    fn shed_load_keeps_other_shards_measuring() {
        let pkts = trace(30, 6);
        let target = (pkts.len() / 3) as u64;
        let mut monitor =
            ShardedMonitor::with_packet_hook(sup_cfg(FailurePolicy::ShedLoad, 4), panic_at(target));
        for p in &pkts {
            monitor.feed(p);
        }
        let run = monitor
            .try_into_run()
            .expect("shed policy degrades, not errors");
        assert_eq!(run.stats.shard_restarts, 0);
        assert!(!run.healthy());
        assert_eq!(
            run.stats.packets + run.stats.monitor_miss,
            pkts.len() as u64
        );
        // The three surviving shards kept producing samples.
        assert!(run.stats.samples > 0);
        // The dead shard's later packets were shed.
        assert!(run.stats.monitor_miss > 0);
    }

    #[test]
    fn stalled_worker_is_abandoned_by_watchdog() {
        let pkts = trace(20, 8);
        // Stall one worker long enough that the watchdog (10 ms) fires
        // while the feeder still has traffic for it.
        let hook: PacketHook = Arc::new(move |idx, _shard| {
            if idx == 0 {
                thread::sleep(Duration::from_millis(200));
            }
        });
        let cfg = ShardedConfig::new(DartConfig::default(), 2)
            .with_batch_size(1)
            .with_queue_depth(1)
            .with_policy(FailurePolicy::ShedLoad)
            .with_stall_timeout(Duration::from_millis(10));
        let mut monitor = ShardedMonitor::with_packet_hook(cfg, hook);
        for p in &pkts {
            monitor.feed(p);
        }
        let run = monitor
            .try_into_run()
            .expect("shed policy tolerates the stall");
        assert!(
            run.failures
                .iter()
                .any(|f| matches!(f.kind, FailureKind::Stalled { .. })),
            "{:?}",
            run.failures
        );
        assert_eq!(
            run.stats.packets + run.stats.monitor_miss,
            pkts.len() as u64
        );
        assert!(run.stats.monitor_miss > 0);
    }

    #[test]
    fn feed_after_flush_is_a_typed_error() {
        let pkts = trace(5, 2);
        let mut monitor = ShardedMonitor::new(ShardedConfig::new(DartConfig::default(), 2));
        for p in &pkts {
            monitor.try_feed(p).expect("live monitor accepts packets");
        }
        let mut sink = Vec::new();
        monitor.flush(&mut sink);
        let err = monitor
            .try_feed(&pkts[0])
            .expect_err("flushed monitor rejects");
        assert!(matches!(err, EngineError::FedAfterFlush));
        // And the cached run is unaffected.
        assert_eq!(RttMonitor::stats(&monitor).packets, pkts.len() as u64);
    }

    #[test]
    fn restart_budget_exhaustion_degrades_to_shedding() {
        let pkts = trace(16, 8);
        // Panic on every 10th packet: more failures than the budget.
        let hook: PacketHook = Arc::new(|idx, _| {
            if idx % 10 == 0 {
                panic!("chaos: repeated panic");
            }
        });
        let cfg = ShardedConfig::new(DartConfig::default(), 2)
            .with_batch_size(4)
            .with_policy(FailurePolicy::RestartShard)
            .with_supervisor(SupervisorConfig {
                policy: FailurePolicy::RestartShard,
                max_restarts: 2,
                ..SupervisorConfig::default()
            });
        let mut monitor = ShardedMonitor::with_packet_hook(cfg, hook);
        for p in &pkts {
            monitor.feed(p);
        }
        let run = monitor.try_into_run().expect("restart policy never errors");
        assert!(run.stats.shard_restarts <= 4, "2 shards × 2 restarts");
        assert!(run.failures.len() as u64 > run.stats.shard_restarts);
        assert_eq!(
            run.stats.packets + run.stats.monitor_miss,
            pkts.len() as u64
        );
    }

    #[test]
    fn rotation_with_past_cutoff_preserves_the_run() {
        // cutoff 0 keeps every PT record; the RT generation sweep keeps
        // every flow touched in the current epoch — rotating mid-run over
        // continuously-active flows must not change the merged output.
        let pkts = trace(30, 6);
        let cfg = ShardedConfig::new(DartConfig::unlimited(), 4).with_batch_size(16);
        let baseline = ShardedDartEngine::new(cfg).run(&pkts);

        let mut monitor = ShardedMonitor::new(cfg);
        for (i, p) in pkts.iter().enumerate() {
            monitor.feed(p);
            if i == pkts.len() / 2 {
                ShardedMonitor::rotate_epoch(&mut monitor, 0);
            }
        }
        let run = monitor.try_into_run().expect("healthy rotation");
        assert!(run.healthy());
        assert_eq!(run.samples, baseline.samples);
        assert_eq!(run.stats.packets, pkts.len() as u64);
    }

    #[test]
    fn rotation_with_future_cutoff_sweeps_but_keeps_measuring() {
        // A cutoff past every timestamp drops all in-flight PT records:
        // their ACKs miss, yet conservation holds and later exchanges
        // still produce samples.
        let pkts = trace(20, 6);
        let cfg = ShardedConfig::new(DartConfig::default(), 3).with_batch_size(8);
        let mut monitor = ShardedMonitor::new(cfg);
        // Split mid-exchange: each exchange is 20 data packets then their
        // 20 ACKs (the 5 ms RTT dwarfs the µs flow stagger), so cutting
        // after exchange 3's data burst leaves 20 records in flight.
        let half = 3 * 40 + 20;
        for p in &pkts[..half] {
            monitor.feed(p);
        }
        ShardedMonitor::rotate_epoch(&mut monitor, Nanos::MAX);
        for p in &pkts[half..] {
            monitor.feed(p);
        }
        let run = monitor.try_into_run().expect("rotation is not a failure");
        assert!(run.healthy());
        assert_eq!(run.stats.packets, pkts.len() as u64);
        assert!(run.stats.samples > 0, "post-rotation exchanges measured");
        let (serial, _) = run_trace(DartConfig::default(), &pkts);
        assert!(
            (run.stats.samples as usize) < serial.len(),
            "the sweep must cost some in-flight matches"
        );
    }

    #[test]
    fn health_reports_the_runtime_state() {
        let pkts = trace(10, 2);
        let mut monitor = ShardedMonitor::new(ShardedConfig::new(DartConfig::default(), 3));
        let h = monitor.health();
        assert!(h.healthy());
        assert_eq!(h.shards, 3);
        assert_eq!(h.healthy_shards, 3);
        assert_eq!(h.fed, 0);
        assert!(!h.flushed);
        for p in &pkts {
            monitor.feed(p);
        }
        assert_eq!(monitor.health().fed, pkts.len() as u64);
        let mut sink = Vec::new();
        monitor.flush(&mut sink);
        let h = monitor.health();
        assert!(h.flushed);
        assert!(h.healthy());
        let json = h.to_json();
        assert!(json.contains("\"healthy\":true"), "{json}");
        assert!(json.contains("\"shards\":3"), "{json}");
    }

    #[test]
    fn health_counts_dead_shards() {
        let pkts = trace(20, 6);
        let target = (pkts.len() / 3) as u64;
        let mut monitor =
            ShardedMonitor::with_packet_hook(sup_cfg(FailurePolicy::ShedLoad, 4), panic_at(target));
        for p in &pkts {
            monitor.feed(p);
        }
        let mut sink = Vec::new();
        monitor.flush(&mut sink);
        let h = monitor.health();
        assert!(!h.healthy());
        assert_eq!(h.healthy_shards, 3, "one shard died");
        assert!(h.failures >= 1);
    }

    #[test]
    fn keep_samples_off_bounds_memory_but_keeps_counters() {
        let pkts = trace(25, 5);
        let cfg = ShardedConfig::new(DartConfig::default(), 3).with_keep_samples(false);
        let out = ShardedDartEngine::new(cfg).run(&pkts);
        assert!(out.samples.is_empty(), "retention off: no merged samples");
        assert!(out.events.is_empty(), "retention off: no merged events");
        assert_eq!(out.stats.packets, pkts.len() as u64);
        assert!(out.stats.samples > 0, "counters still tally the samples");
        assert!(out.healthy());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn rotation_publishes_per_shard_epoch_series() {
        use dart_telemetry::MetricRegistry;
        let pkts = trace(20, 4);
        let registry = MetricRegistry::new();
        let cfg = ShardedConfig::new(DartConfig::default(), 2).with_batch_size(8);
        let mut monitor = ShardedMonitor::with_telemetry(cfg, &registry);
        for p in &pkts {
            monitor.feed(p);
        }
        ShardedMonitor::rotate_epoch(&mut monitor, 0);
        let mut sink = Vec::new();
        monitor.flush(&mut sink);
        let snap = registry.scrape();
        let rotations: u64 = snap
            .samples
            .iter()
            .filter(|s| s.name == "dart_epoch_rotations_total")
            .map(|s| match s.value {
                dart_telemetry::MetricValue::Counter { total, .. } => total,
                _ => 0,
            })
            .sum();
        assert_eq!(rotations, 2, "one rotation on each of the two shards");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn supervisor_metrics_track_health() {
        use dart_telemetry::MetricRegistry;
        let pkts = trace(20, 6);
        let registry = MetricRegistry::new();
        let target = (pkts.len() / 2) as u64;
        let mut monitor = ShardedMonitor::with_telemetry_and_hook(
            sup_cfg(FailurePolicy::ShedLoad, 4),
            &registry,
            Some(panic_at(target)),
        );
        let healthy = registry.gauge("dart_supervisor_healthy_shards", &[], "");
        assert_eq!(healthy.get(), 4);
        for p in &pkts {
            monitor.feed(p);
        }
        let run = monitor.try_into_run().expect("shed degrades");
        assert!(!run.healthy());
        assert_eq!(healthy.get(), 3, "one shard died");
        // The supervised counters made it into the per-shard series.
        let snap = registry.scrape();
        assert!(snap
            .samples
            .iter()
            .any(|s| s.name == "dart_shard_monitor_miss_total"));
    }

    // ---- checkpoint/restore tests --------------------------------------

    #[test]
    fn sharded_checkpoint_restore_resumes_identically() {
        let pkts = trace(30, 5);
        let cfg = ShardedConfig::new(DartConfig::default(), 4).with_batch_size(7);

        // Reference: one uninterrupted run over the whole trace.
        let whole = ShardedDartEngine::new(cfg).run(&pkts);

        let split = pkts.len() * 2 / 3;
        let mut a = ShardedMonitor::new(cfg);
        for p in &pkts[..split] {
            a.feed(p);
        }
        let snap = a.checkpoint().expect("checkpoint");
        drop(a); // the crash: this side's results are never collected

        let mut b = ShardedMonitor::new(cfg);
        b.restore(&snap).expect("restore");
        for p in &pkts[split..] {
            b.feed(p);
        }
        let run = b.into_run();
        assert_eq!(run.samples, whole.samples);
        assert_eq!(run.stats, whole.stats);
        // Conservation across the crash boundary: every packet fed on
        // either side of it is processed or accounted as missed.
        assert_eq!(
            run.stats.packets + run.stats.monitor_miss,
            pkts.len() as u64
        );
        assert!(run.healthy());
    }

    #[test]
    fn checkpoint_writes_off_dead_shards_conservatively() {
        let pkts = trace(30, 6);
        let target = (pkts.len() / 3) as u64;
        let split = pkts.len() / 2;
        let cfg = sup_cfg(FailurePolicy::ShedLoad, 4);
        let mut a = ShardedMonitor::with_packet_hook(cfg, panic_at(target));
        for p in &pkts[..split] {
            a.feed(p);
        }
        let snap = a.checkpoint().expect("checkpoint survives a dead shard");
        drop(a);

        let mut b = ShardedMonitor::new(cfg);
        b.restore(&snap).expect("restore");
        for p in &pkts[split..] {
            b.feed(p);
        }
        let run = b.into_run();
        // The dead shard's entire history was written off into the
        // snapshot's monitor_miss (its worker-side books are
        // unrecoverable), so conservation holds across the crash and the
        // shard restarts fresh on the other side.
        assert_eq!(
            run.stats.packets + run.stats.monitor_miss,
            pkts.len() as u64
        );
        assert!(run.stats.monitor_miss > 0);
    }

    #[test]
    fn sharded_restore_guards() {
        let pkts = trace(10, 3);
        let cfg = ShardedConfig::new(DartConfig::default(), 4);
        let mut a = ShardedMonitor::new(cfg);
        for p in &pkts {
            a.feed(p);
        }
        let snap = a.checkpoint().expect("checkpoint");

        // Restoring into a monitor that already saw traffic is refused.
        let mut fed = ShardedMonitor::new(cfg);
        fed.feed(&pkts[0]);
        assert!(matches!(
            fed.restore(&snap),
            Err(SnapshotError::Unsupported(_))
        ));

        // Shard-count mismatch is refused before any worker is touched.
        let mut other = ShardedMonitor::new(ShardedConfig::new(DartConfig::default(), 2));
        assert!(matches!(
            other.restore(&snap),
            Err(SnapshotError::Mismatch(_))
        ));

        // Engine-geometry mismatch surfaces from the per-shard config
        // fingerprint.
        let mut narrow =
            ShardedMonitor::new(ShardedConfig::new(DartConfig::default().with_pt(16, 2), 4));
        assert!(matches!(
            narrow.restore(&snap),
            Err(SnapshotError::Mismatch(_))
        ));

        // Kind tags keep serial and sharded snapshots apart.
        let mut engine = DartEngine::new(DartConfig::default());
        assert!(matches!(
            engine.restore(&snap),
            Err(SnapshotError::Mismatch(_))
        ));
        let esnap = DartEngine::new(DartConfig::default())
            .snapshot()
            .expect("engine snapshot");
        let mut m = ShardedMonitor::new(cfg);
        assert!(matches!(m.restore(&esnap), Err(SnapshotError::Mismatch(_))));
    }
}
