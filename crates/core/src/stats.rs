//! Engine counters: everything the evaluation metrics are computed from.

/// Counters accumulated by a [`crate::engine::DartEngine`] over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Packets offered to the engine.
    pub packets: u64,
    /// Packets skipped because the SYN flag was set under `SynPolicy::Skip`.
    pub syn_skipped: u64,

    /// Data packets admitted into the Packet Tracker.
    pub seq_tracked: u64,
    /// Data packets rejected as retransmissions (range collapsed).
    pub seq_retransmission: u64,
    /// Data packets that reset the range past a hole (tracked).
    pub seq_hole_reset: u64,
    /// Data packets that triggered a sequence wraparound reset (untracked).
    pub seq_wraparound: u64,
    /// Data packets not tracked because the RT slot was held by another
    /// live flow (hash collision, older flow favored).
    pub seq_rt_collision: u64,

    /// ACKs that advanced a left edge and consulted the PT.
    pub ack_advanced: u64,
    /// Duplicate ACKs (range collapsed).
    pub ack_duplicate: u64,
    /// ACKs below the left edge (ignored).
    pub ack_stale: u64,
    /// Optimistic ACKs above the right edge (ignored).
    pub ack_optimistic: u64,
    /// ACKs for flows with no RT entry (ignored).
    pub ack_no_flow: u64,

    /// Range collapses (retransmission + duplicate-ACK inferences) — the
    /// per-flow congestion indicator §3.1 suggests exporting.
    pub range_collapses: u64,

    /// PT insertions into an empty slot.
    pub pt_stored: u64,
    /// PT displacements (a record evicted an occupant at its entry stage).
    pub pt_displaced: u64,
    /// PT matches that produced an RTT sample.
    pub pt_matched: u64,

    /// Records submitted to the recirculation port.
    pub recirc_issued: u64,
    /// Recirculated records found stale at RT re-validation (self-destruct).
    pub recirc_stale_dropped: u64,
    /// Recirculated records re-admitted into the PT.
    pub recirc_reinserted: u64,
    /// Records dropped at the per-record recirculation cap.
    pub recirc_cap_dropped: u64,
    /// Eviction cycles broken by the cycle detector (§3.2).
    pub recirc_cycles_broken: u64,
    /// Records dropped by the analytics preemptive-discard filter (§3.3).
    pub recirc_filtered: u64,
    /// Dual-role (SEQ+ACK) packets that cost a recirculation in `Leg::Both`
    /// mode (§5).
    pub dual_role_recirc: u64,
    /// Packets that fired neither the SEQ nor the ACK role: wrong direction
    /// for the measured leg, or neither payload nor ACK flag. Together with
    /// the skip/filter counters this makes the disposition accounting
    /// exhaustive (see the conservation-law test suite).
    pub no_role: u64,
    /// Packets ignored because no flow-selection rule matched (§4).
    pub filtered_flows: u64,
    /// Evicted records parked in the victim cache (§7).
    pub victim_cached: u64,
    /// ACK matches served from the victim cache.
    pub victim_cache_hits: u64,
    /// Evicted records re-validated by the RT copy and reinserted without
    /// recirculating (§7).
    pub rt_copy_reinserted: u64,
    /// Evicted records the RT copy declared stale (dropped, no
    /// recirculation).
    pub rt_copy_dropped: u64,

    /// Sketch backend: live records overwritten inside a full sketch way
    /// set (RT recency eviction or PT oldest-cell overwrite). Each one is a
    /// silently dropped in-flight measurement, surfacing later as
    /// `ack_no_flow` / unmatched `ack_advanced` and covered by the loss
    /// budget.
    pub sketch_overwritten: u64,
    /// Precision backend: evicted records denied recirculation by the
    /// probabilistic admission gate (neither heavy hitter nor coin-flip
    /// survivor).
    pub recirc_admission_denied: u64,
    /// Precision backend: evicted records admitted to recirculation because
    /// their flow is a tracked heavy hitter (bypassing the coin flip).
    pub recirc_admission_hh: u64,

    /// RTT samples emitted.
    pub samples: u64,

    /// Spin-bit engine: QUIC spin transitions (edges) observed, across all
    /// tracked flow directions.
    pub spin_edges: u64,
    /// Spin-bit engine: edge-to-edge periods discarded by the
    /// reordering/loss rejection heuristics instead of being emitted.
    pub spin_rejected: u64,

    /// Supervised-runtime counter: shard engines respawned with fresh
    /// RT/PT state after a panic or stall (policy
    /// [`RestartShard`](crate::FailurePolicy::RestartShard)).
    pub shard_restarts: u64,
    /// Supervised-runtime counter: live Range Tracker flows discarded with
    /// a failed shard engine. Their in-flight measurements can no longer
    /// close; subsequent ACKs surface as `ack_no_flow`.
    pub flows_lost: u64,
    /// Supervised-runtime counter: packets the runtime dropped without
    /// offering them to a healthy engine — the failed batch of a panicking
    /// shard, traffic shed after a failure, or packets queued to an
    /// abandoned (hung) worker. Not part of the `packets` disposition
    /// partition: `fed == packets + monitor_miss`.
    pub monitor_miss: u64,
}

/// Defines [`EngineStats::merge`] and [`EngineStats::metric_rows`] over
/// every counter field. The exhaustive destructure (no `..`) makes adding a
/// field without merging it a compile error, and keeps the telemetry
/// exporters in lockstep with the struct: a new counter shows up in the
/// metric rows (and therefore in every exposition format) automatically.
macro_rules! merge_counters {
    ($($field:ident),* $(,)?) => {
        impl EngineStats {
            /// Fold another run's counters into this one. Used by the
            /// sharded engine to combine per-shard stats into a whole-trace
            /// view.
            pub fn merge(&mut self, other: &EngineStats) {
                let EngineStats { $($field),* } = *other;
                $( self.$field += $field; )*
            }

            /// Every counter as a `(name, value)` row, in declaration
            /// order — the single source the telemetry exporters and the
            /// shared text formatter render from.
            pub fn metric_rows(&self) -> Vec<(&'static str, u64)> {
                vec![ $( (stringify!($field), self.$field) ),* ]
            }

            /// Set one counter by its metric-row name, returning whether the
            /// name exists. The snapshot restore path uses this so counters
            /// are matched by name rather than position: a checkpoint taken
            /// before a new counter was added still restores every field it
            /// knows about.
            pub fn set_metric(&mut self, name: &str, value: u64) -> bool {
                match name {
                    $( stringify!($field) => { self.$field = value; true } )*
                    _ => false,
                }
            }
        }
    };
}

merge_counters!(
    packets,
    syn_skipped,
    seq_tracked,
    seq_retransmission,
    seq_hole_reset,
    seq_wraparound,
    seq_rt_collision,
    ack_advanced,
    ack_duplicate,
    ack_stale,
    ack_optimistic,
    ack_no_flow,
    range_collapses,
    pt_stored,
    pt_displaced,
    pt_matched,
    recirc_issued,
    recirc_stale_dropped,
    recirc_reinserted,
    recirc_cap_dropped,
    recirc_cycles_broken,
    recirc_filtered,
    dual_role_recirc,
    no_role,
    filtered_flows,
    victim_cached,
    victim_cache_hits,
    rt_copy_reinserted,
    rt_copy_dropped,
    sketch_overwritten,
    recirc_admission_denied,
    recirc_admission_hh,
    samples,
    spin_edges,
    spin_rejected,
    shard_restarts,
    flows_lost,
    monitor_miss,
);

impl std::ops::Add for EngineStats {
    type Output = EngineStats;

    fn add(mut self, rhs: EngineStats) -> EngineStats {
        self.merge(&rhs);
        self
    }
}

impl std::ops::AddAssign for EngineStats {
    fn add_assign(&mut self, rhs: EngineStats) {
        self.merge(&rhs);
    }
}

impl std::iter::Sum for EngineStats {
    fn sum<I: Iterator<Item = EngineStats>>(iter: I) -> EngineStats {
        iter.fold(EngineStats::default(), |acc, s| acc + s)
    }
}

impl EngineStats {
    /// The paper's overhead metric: recirculations incurred per packet
    /// processed (Fig. 11c/12c/13c).
    pub fn recirc_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            (self.recirc_issued + self.dual_role_recirc) as f64 / self.packets as f64
        }
    }

    /// Fraction of tracked data packets that eventually produced a sample.
    pub fn sample_yield(&self) -> f64 {
        if self.seq_tracked == 0 {
            0.0
        } else {
            self.samples as f64 / self.seq_tracked as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recirc_per_packet_zero_when_idle() {
        assert_eq!(EngineStats::default().recirc_per_packet(), 0.0);
    }

    #[test]
    fn recirc_per_packet_computes_ratio() {
        let s = EngineStats {
            packets: 200,
            recirc_issued: 30,
            dual_role_recirc: 10,
            ..EngineStats::default()
        };
        assert!((s.recirc_per_packet() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_every_counter() {
        let a = EngineStats {
            packets: 10,
            samples: 3,
            recirc_issued: 2,
            ..EngineStats::default()
        };
        let b = EngineStats {
            packets: 5,
            samples: 1,
            ack_advanced: 7,
            ..EngineStats::default()
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.packets, 15);
        assert_eq!(m.samples, 4);
        assert_eq!(m.recirc_issued, 2);
        assert_eq!(m.ack_advanced, 7);
        assert_eq!(m, a + b);
        assert_eq!(m, [a, b].into_iter().sum());
        let mut aa = a;
        aa += b;
        assert_eq!(aa, m);
    }

    #[test]
    fn sum_of_empty_is_default() {
        let s: EngineStats = std::iter::empty().sum();
        assert_eq!(s, EngineStats::default());
    }

    #[test]
    fn metric_rows_cover_every_field() {
        let s = EngineStats {
            packets: 7,
            no_role: 2,
            samples: 1,
            ..EngineStats::default()
        };
        let rows = s.metric_rows();
        // One row per field, in declaration order, values carried through.
        assert_eq!(rows.first(), Some(&("packets", 7)));
        assert_eq!(rows.last(), Some(&("monitor_miss", 0)));
        assert!(rows.contains(&("samples", 1)));
        assert!(rows.contains(&("no_role", 2)));
        let total: u64 = rows.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 10, "exactly the three set fields");
    }

    #[test]
    fn set_metric_round_trips_every_row() {
        let s = EngineStats {
            packets: 11,
            ack_no_flow: 4,
            monitor_miss: 9,
            ..EngineStats::default()
        };
        let mut restored = EngineStats::default();
        for (name, value) in s.metric_rows() {
            assert!(restored.set_metric(name, value), "unknown row {name}");
        }
        assert_eq!(restored, s);
        assert!(!restored.set_metric("not_a_counter", 1));
    }

    #[test]
    fn sample_yield_ratio() {
        let s = EngineStats {
            seq_tracked: 50,
            samples: 40,
            ..EngineStats::default()
        };
        assert!((s.sample_yield() - 0.8).abs() < 1e-12);
    }
}
