//! The Dart engine: Range Tracker → Packet Tracker → analytics, with lazy
//! eviction and second-chance recirculation (paper Fig. 3 / Fig. 5).

use crate::backend::{PtBackend, PtTable, RtBackend, RtTable};
use crate::config::{AdmissionMode, Backend, DartConfig, Leg, PtMode, SynPolicy};
use crate::filter::FlowFilter;
use crate::packet_tracker::{PtInsert, PtProbe, PtRecord};
use crate::range::{AckVerdict, MeasurementRange, SeqVerdict};
use crate::range_tracker::{RtAckOutcome, RtSeqOutcome, RtSlot};
use crate::sample::{RttSample, SampleSink};
use crate::sketch::{Admission, AdmissionGate};
use crate::snapshot::{SnapReader, SnapWriter, Snapshot, SnapshotError};
use crate::stats::EngineStats;
#[cfg(feature = "telemetry")]
use crate::telemetry::{EngineTelemetry, SYNC_INTERVAL_PKTS};
use dart_packet::flow::fnv1a_64;
use dart_packet::{FlowKey, FlowSignature, Nanos, PacketId, PacketMeta, SeqNum};
use dart_switch::{RecircPort, Recirculated};
use std::collections::{HashMap, VecDeque};

/// Engine-kind tag leading every single-engine snapshot payload; the
/// sharded monitor writes [`crate::sharded`]'s own tag so the two formats
/// can never be restored into the wrong monitor shape.
pub(crate) const SNAP_KIND_ENGINE: u8 = 1;

/// A notable per-flow event the engine can report to the analytics module
/// beyond RTT samples: range collapses are the §3.1 congestion indicator
/// ("Dart can be adjusted to report the frequency of measurement range
/// collapses for a flow"), and optimistic ACKs the §7 misbehaving-receiver
/// signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineEvent {
    /// A flow's measurement range collapsed.
    RangeCollapse {
        /// Data-direction flow key.
        flow: dart_packet::FlowKey,
        /// When it happened.
        ts: Nanos,
        /// True when inferred from a retransmitted data packet, false when
        /// from a duplicate ACK.
        from_retransmission: bool,
    },
    /// An ACK arrived for bytes beyond the right edge (§7: a receiver
    /// trying to accelerate the sender).
    OptimisticAck {
        /// Data-direction flow key.
        flow: dart_packet::FlowKey,
        /// When it happened.
        ts: Nanos,
    },
}

/// Receiver of [`EngineEvent`]s.
pub type EventSink = Box<dyn FnMut(EngineEvent)>;

/// Analytics hook deciding whether an evicted record is worth recirculating
/// (§3.3 "Preemptively discard useless samples"). Return `false` to drop the
/// record instead of spending recirculation bandwidth on it.
pub trait RecircFilter {
    /// Should `rec`, evicted at time `now`, be recirculated?
    fn should_recirculate(&mut self, rec: &PtRecord, now: Nanos) -> bool;
}

/// A filter that recirculates everything (the default).
#[derive(Clone, Copy, Debug, Default)]
pub struct RecirculateAll;

impl RecircFilter for RecirculateAll {
    fn should_recirculate(&mut self, _rec: &PtRecord, _now: Nanos) -> bool {
        true
    }
}

/// A record traveling the recirculation loop: the evicted PT record plus the
/// identity of its displacer (for cycle detection) and its re-entry time.
#[derive(Clone, Copy, Debug)]
struct RecircEntry {
    rec: PtRecord,
    displaced_by: PacketId,
    ready: Nanos,
}

/// The §7 approximate Range Tracker copy: shadows the main RT with a sync
/// lag, letting evicted records be validated at the end of the pipeline
/// instead of recirculating.
struct RtCopy {
    sync: Nanos,
    /// Signature → (range, apply time). The apply time doubles as a
    /// recency stamp so epoch rotation can sweep stale shadow entries.
    shadow: HashMap<FlowSignature, (MeasurementRange, Nanos)>,
    pending: VecDeque<(Nanos, FlowSignature, MeasurementRange)>,
}

impl RtCopy {
    fn new(sync: Nanos) -> RtCopy {
        RtCopy {
            sync,
            shadow: HashMap::new(),
            pending: VecDeque::new(),
        }
    }

    /// Queue a write-through from the main RT; it lands after the sync lag.
    fn record(&mut self, now: Nanos, sig: FlowSignature, range: MeasurementRange) {
        self.pending.push_back((now + self.sync, sig, range));
    }

    /// Apply every write whose sync point has passed.
    fn drain(&mut self, now: Nanos) {
        while let Some((at, _, _)) = self.pending.front() {
            if *at > now {
                break;
            }
            if let Some((at, sig, range)) = self.pending.pop_front() {
                self.shadow.insert(sig, (range, at));
            }
        }
    }

    /// Approximate validity: is `eack` inside the (possibly stale) range?
    fn validate(&mut self, now: Nanos, rec: &PtRecord) -> bool {
        self.drain(now);
        self.shadow
            .get(&rec.sig)
            .is_some_and(|(r, _)| rec.eack.in_range(r.left, r.right))
    }

    /// Epoch rotation: sweep shadow entries last refreshed before `cutoff`
    /// and pending writes whose apply time already predates it. The shadow
    /// is a derived cache — swept entries only make validation
    /// conservative (records fall out as `rt_copy_dropped`), never wrong.
    fn rotate(&mut self, cutoff: Nanos) {
        self.shadow.retain(|_, (_, at)| *at >= cutoff);
        self.pending.retain(|(at, _, _)| *at >= cutoff);
    }
}

/// In-flight depth of the batch pipeline's fused decode/match loop: while
/// matching packet `i` it decodes packet `i + PREFETCH_DIST` — classify,
/// memoized RT location, warming reads — so each warmed slot has that many
/// packets of real work to overlap its memory latency with (software
/// pipelining). Far enough ahead to cover a DRAM miss, near enough that
/// the warmed lines are still resident on arrival; also the size of the
/// L1-resident decode ring, so it must stay a power of two.
const PREFETCH_DIST: usize = 16;

// Per-packet disposition flags from the batch decode pass.
const LANE_SYN_SKIP: u8 = 1;
const LANE_FILTERED: u8 = 2;
const LANE_ACK: u8 = 4;
const LANE_SEQ: u8 = 8;

/// One decoded packet of the current block: disposition flags plus the
/// pre-resolved RT locations its roles will touch. Kept as one struct
/// (not parallel arrays) because the match loop reads every field of a
/// packet together. PT probes are *not* pre-hashed: the Packet Tracker
/// is consulted only after a rare RT outcome (an in-range ACK or an
/// admitted data packet), so hashing its stages for every packet costs
/// far more than the rare dependent load it would hide.
#[derive(Clone, Copy, Debug, Default)]
struct Decoded {
    /// Disposition flags (`LANE_*`).
    lane: u8,
    /// Expected ACK (SEQ role only).
    eack: SeqNum,
    /// RT location of the data-direction flow (SEQ role).
    seq_rt: RtSlot,
    /// RT location of the reversed flow (ACK role).
    ack_rt: RtSlot,
}

/// Direct-mapped memo capacity for [`RangeTracker::locate`] results.
/// Power of two; sized to cover the hot flows of a trace segment while
/// staying a few cache lines per way.
const FLOW_MEMO_SLOTS: usize = 1024;

/// Bulk [`EngineStats`] increments computed by the decode pass; the match
/// loop adds them once per block instead of once per packet. Counter
/// totals are only observable at block boundaries (sync points), so
/// bulk-adding is indistinguishable from per-packet increments.
#[derive(Default)]
struct BlockCounts {
    syn_skipped: u64,
    filtered: u64,
    no_role: u64,
    dual_role_recirc: u64,
}

/// Reusable scratch for the batch pipeline (DESIGN.md §5f): the decode
/// ring of the software pipeline plus a flow-locality memo of RT
/// locations that persists across blocks. The ring holds exactly
/// [`PREFETCH_DIST`] in-flight packets, so it lives in a few L1 lines
/// regardless of block size — the whole block is never staged through
/// memory. `locate` is a pure function of packet and table geometry, so
/// memoizing it is invisible to results; packet trains within a flow make
/// it hit often, skipping the FNV/CRC dependency chains entirely.
struct BatchScratch {
    ring: [Decoded; PREFETCH_DIST],
    memo: Vec<Option<(FlowKey, RtSlot)>>,
}

impl Default for BatchScratch {
    fn default() -> Self {
        BatchScratch {
            ring: [Decoded::default(); PREFETCH_DIST],
            memo: Vec::new(),
        }
    }
}

impl BatchScratch {
    /// Direct-mapped memo index: a cheap multiplicative fold of the flow
    /// key (not a quality hash — collisions just miss the memo).
    #[inline]
    fn memo_idx(flow: &FlowKey) -> usize {
        let s = u64::from(u32::from(flow.src_ip));
        let d = u64::from(u32::from(flow.dst_ip));
        let p = (u64::from(flow.src_port) << 16) | u64::from(flow.dst_port);
        let h = (s ^ (d << 13) ^ (p << 29)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (FLOW_MEMO_SLOTS - 1)
    }
}

/// The Dart engine. Feed it packets in capture order via
/// [`DartEngine::process`]; it emits [`RttSample`]s into the supplied sink.
pub struct DartEngine {
    cfg: DartConfig,
    rt: RtTable,
    pt: PtTable,
    recirc: RecircPort<RecircEntry>,
    filter: Box<dyn RecircFilter>,
    /// Probabilistic-recirculation admission (the `precision` backend);
    /// `None` under [`AdmissionMode::All`].
    admission: Option<AdmissionGate>,
    flow_filter: FlowFilter,
    /// Small fully-associative cache of evicted records (§7) — FIFO.
    victim_cache: VecDeque<PtRecord>,
    rt_copy: Option<RtCopy>,
    events: Option<EventSink>,
    stats: EngineStats,
    scratch: BatchScratch,
    #[cfg(feature = "telemetry")]
    telemetry: Option<EngineTelemetry>,
}

impl DartEngine {
    /// Build an engine with the given configuration.
    pub fn new(cfg: DartConfig) -> DartEngine {
        Self::with_filter(cfg, Box::new(RecirculateAll))
    }

    /// Build an engine with an analytics recirculation filter (§3.3).
    pub fn with_filter(cfg: DartConfig, filter: Box<dyn RecircFilter>) -> DartEngine {
        DartEngine {
            rt: RtTable::new(cfg.rt, cfg.sig_width),
            pt: PtTable::new(cfg.pt),
            recirc: RecircPort::new(cfg.max_recirc),
            filter,
            admission: match cfg.admission {
                AdmissionMode::All => None,
                AdmissionMode::Probabilistic {
                    sample_shift,
                    hh_capacity,
                    seed,
                } => Some(AdmissionGate::new(sample_shift, hh_capacity, seed)),
            },
            flow_filter: FlowFilter::all(),
            victim_cache: VecDeque::new(),
            rt_copy: cfg.rt_copy_sync.map(RtCopy::new),
            events: None,
            stats: EngineStats::default(),
            scratch: BatchScratch::default(),
            #[cfg(feature = "telemetry")]
            telemetry: None,
            cfg,
        }
    }

    /// Attach metric handles: the engine publishes its counters to them at
    /// sync points (periodically, per batch, and at flush) and observes RTT
    /// samples and recirculation queue depth as they happen.
    #[cfg(feature = "telemetry")]
    pub fn attach_telemetry(&mut self, telemetry: EngineTelemetry) {
        let (gauge, dist) = telemetry.queue_depth_handles();
        self.recirc.set_telemetry(gauge, dist);
        self.telemetry = Some(telemetry);
        self.sync_telemetry();
    }

    /// The attached metric handles, if any.
    #[cfg(feature = "telemetry")]
    pub fn telemetry(&self) -> Option<&EngineTelemetry> {
        self.telemetry.as_ref()
    }

    /// Publish the current counters to the attached metric handles (no-op
    /// without attached telemetry). Called automatically every
    /// [`SYNC_INTERVAL_PKTS`] packets and at flush; the sharded workers
    /// also call it at every batch boundary so per-shard scrapes stay
    /// fresh.
    #[cfg(feature = "telemetry")]
    pub fn sync_telemetry(&self) {
        if let Some(t) = &self.telemetry {
            t.sync_stats(&self.stats);
        }
    }

    /// Subscribe to per-flow [`EngineEvent`]s (collapses, optimistic ACKs).
    pub fn set_event_sink(&mut self, sink: EventSink) {
        self.events = Some(sink);
    }

    fn emit(&mut self, ev: EngineEvent) {
        if let Some(sink) = &mut self.events {
            sink(ev);
        }
    }

    /// Install the operator's flow-selection rules (§4). Replaces any
    /// previous rule set; takes effect immediately, no redeploy needed.
    pub fn set_flow_filter(&mut self, filter: FlowFilter) {
        self.flow_filter = filter;
    }

    /// The installed flow-selection rules.
    pub fn flow_filter(&self) -> &FlowFilter {
        &self.flow_filter
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DartConfig {
        &self.cfg
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Live Range Tracker entries.
    pub fn rt_occupancy(&self) -> usize {
        self.rt.occupancy()
    }

    /// Live Packet Tracker records.
    pub fn pt_occupancy(&self) -> usize {
        self.pt.occupancy()
    }

    /// Process one packet in capture order.
    pub fn process(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        self.drain_recirc_until(pkt.ts);
        self.stats.packets += 1;
        #[cfg(feature = "telemetry")]
        if self.stats.packets.is_multiple_of(SYNC_INTERVAL_PKTS) {
            self.sync_telemetry();
        }

        if self.cfg.syn_policy == SynPolicy::Skip && pkt.is_syn() {
            self.stats.syn_skipped += 1;
            return;
        }
        if !self.flow_filter.matches(&pkt.flow) {
            self.stats.filtered_flows += 1;
            return;
        }

        // ACK role first: an acknowledgment refers to previously seen data,
        // while the SEQ role introduces new bytes.
        let ack_fired = self.cfg.ack_role_active(pkt.dir) && pkt.is_ack() && {
            self.handle_ack(pkt, sink);
            true
        };
        let seq_fired = self.cfg.seq_role_active(pkt.dir) && pkt.is_seq() && {
            self.handle_seq(pkt);
            true
        };
        // In both-legs mode a dual-role packet costs one recirculation to be
        // re-processed with a pseudo header (§5).
        if ack_fired && seq_fired && self.cfg.leg == Leg::Both {
            self.stats.dual_role_recirc += 1;
        }
        if !ack_fired && !seq_fired {
            self.stats.no_role += 1;
        }
    }

    /// Process a block of packets in capture order through the batch
    /// pipeline: a software-pipelined loop that decodes packet
    /// `i + PREFETCH_DIST` — classifying roles, pre-resolving RT locations
    /// through a flow-locality memo, and issuing warming reads for the RT
    /// slots it will probe — while matching packet `i` with its
    /// already-decoded state. Decode is pure ALU work (hashing, flag
    /// tests) and match is load-bound table work, so the two streams
    /// overlap in the core instead of serializing per packet; the decode
    /// ring stays L1-resident. Per-disposition counters are bulk-added
    /// per block.
    ///
    /// Observationally identical to calling [`DartEngine::process`] per
    /// packet — same samples, same [`EngineStats`], same table state — for
    /// any block split: decode computes only pure functions of packet and
    /// configuration (RT locations do not depend on table contents), and
    /// the match half performs exactly the per-packet path's state
    /// transitions in the same order. Only the telemetry publication
    /// cadence differs (per block instead of every
    /// [`SYNC_INTERVAL_PKTS`] packets).
    pub fn process_batch(&mut self, pkts: &[PacketMeta], sink: &mut dyn SampleSink) {
        let mut scratch = std::mem::take(&mut self.scratch);
        if scratch.memo.is_empty() {
            scratch.memo.resize(FLOW_MEMO_SLOTS, None);
        }
        scratch.ring.fill(Decoded::default());
        let mut counts = BlockCounts::default();

        // The steady-state loop is stamped out once per RT backend variant
        // so the decode half — the per-packet locate/prefetch stream this
        // loop exists to overlap — inlines exactly one backend's hashing.
        // Dispatching per call instead keeps both variants' bodies (or a
        // call, and its register spills) inside the hot loop and costs the
        // exact path its batch edge. The `unreachable!()` arms are
        // genuinely unreachable: the variant is matched right before the
        // loop and nothing in the loop can change it. The short prologue
        // and epilogue (≤ PREFETCH_DIST packets each) stay on the
        // dispatching path (`RtTable` is itself an `RtBackend`) to keep
        // this function's code size — and its instruction-cache bill —
        // down.

        // Prologue: decode the first DIST packets to fill the ring.
        let fill = pkts.len().min(PREFETCH_DIST);
        for (i, pkt) in pkts[..fill].iter().enumerate() {
            scratch.ring[i] = self.decode_and_warm(&self.rt, pkt, &mut scratch.memo, &mut counts);
        }
        // Steady state, bounds-check-free via the zip: match packet `j`
        // with its decoded state, then decode packet `j + PREFETCH_DIST`
        // into the ring slot it just freed (the ring has exactly
        // PREFETCH_DIST entries, so `j` and `j + PREFETCH_DIST` share a
        // slot — match must read before decode overwrites). Decode order
        // relative to match is immaterial for results: decode is pure,
        // and the match stream runs in capture order.
        let mut j = 0usize;
        if pkts.len() > PREFETCH_DIST {
            macro_rules! steady {
                ($variant:path) => {
                    for (mp, dp) in pkts.iter().zip(pkts[PREFETCH_DIST..].iter()) {
                        let d = scratch.ring[j & (PREFETCH_DIST - 1)];
                        self.match_one(mp, &d, sink);
                        let $variant(rt) = &self.rt else {
                            unreachable!()
                        };
                        scratch.ring[j & (PREFETCH_DIST - 1)] =
                            self.decode_and_warm(rt, dp, &mut scratch.memo, &mut counts);
                        j += 1;
                    }
                };
            }
            match self.rt {
                RtTable::Exact(_) => steady!(RtTable::Exact),
                RtTable::Sketch(_) => steady!(RtTable::Sketch),
            }
        }
        // Epilogue: drain the last DIST decoded packets from the ring.
        for pkt in pkts[j..].iter() {
            let d = scratch.ring[j & (PREFETCH_DIST - 1)];
            self.match_one(pkt, &d, sink);
            j += 1;
        }

        // Bulk per-disposition counters: totals are only observable at
        // block boundaries, so adding them once per block is
        // indistinguishable from the per-packet path's increments.
        self.stats.packets += pkts.len() as u64;
        self.stats.syn_skipped += counts.syn_skipped;
        self.stats.filtered_flows += counts.filtered;
        self.stats.no_role += counts.no_role;
        self.stats.dual_role_recirc += counts.dual_role_recirc;

        self.scratch = scratch;
        // Batch-boundary sync point: one publication per block instead of
        // a per-packet interval check.
        #[cfg(feature = "telemetry")]
        self.sync_telemetry();
    }

    /// The match half of the batch pipeline: exactly the per-packet path's
    /// state transitions for one packet, with classification and RT
    /// hashing already done by [`DartEngine::decode_and_warm`].
    #[inline]
    fn match_one(&mut self, pkt: &PacketMeta, d: &Decoded, sink: &mut dyn SampleSink) {
        self.drain_recirc_until(pkt.ts);
        if d.lane & LANE_ACK != 0 {
            let data_flow = pkt.flow.reverse();
            self.handle_ack_at(pkt, &data_flow, &d.ack_rt, None, sink);
        }
        if d.lane & LANE_SEQ != 0 {
            self.handle_seq_at(pkt, d.eack, &d.seq_rt, None);
        }
    }

    /// The decode half of the batch pipeline: classify one packet,
    /// pre-resolve the RT locations its roles will touch (through the flow
    /// memo), and issue warming reads for them. Pure per-packet compute —
    /// nothing here writes the tables, so decoding ahead of execution
    /// cannot change results.
    #[inline]
    fn decode_and_warm<R: RtBackend>(
        &self,
        rt: &R,
        pkt: &PacketMeta,
        memo: &mut [Option<(FlowKey, RtSlot)>],
        counts: &mut BlockCounts,
    ) -> Decoded {
        let mut d = Decoded::default();
        if self.cfg.syn_policy == SynPolicy::Skip && pkt.is_syn() {
            d.lane = LANE_SYN_SKIP;
            counts.syn_skipped += 1;
        } else if !self.flow_filter.matches(&pkt.flow) {
            d.lane = LANE_FILTERED;
            counts.filtered += 1;
        } else {
            if self.cfg.ack_role_active(pkt.dir) && pkt.is_ack() {
                d.lane |= LANE_ACK;
                d.ack_rt = Self::locate_memo(rt, memo, &pkt.flow.reverse());
                rt.prefetch(&d.ack_rt);
            }
            if self.cfg.seq_role_active(pkt.dir) && pkt.is_seq() {
                d.lane |= LANE_SEQ;
                d.eack = pkt.eack();
                d.seq_rt = Self::locate_memo(rt, memo, &pkt.flow);
                rt.prefetch(&d.seq_rt);
            }
            if d.lane == 0 {
                counts.no_role += 1;
            } else if d.lane == LANE_ACK | LANE_SEQ && self.cfg.leg == Leg::Both {
                counts.dual_role_recirc += 1;
            }
        }
        d
    }

    /// `rt.locate(flow)` through the direct-mapped flow memo.
    #[inline]
    fn locate_memo<R: RtBackend>(
        rt: &R,
        memo: &mut [Option<(FlowKey, RtSlot)>],
        flow: &FlowKey,
    ) -> RtSlot {
        let idx = BatchScratch::memo_idx(flow);
        if let Some((key, slot)) = &memo[idx] {
            if key == flow {
                return *slot;
            }
        }
        let slot = rt.locate(flow);
        memo[idx] = Some((*flow, slot));
        slot
    }

    /// Process an entire trace.
    pub fn process_trace<'a>(
        &mut self,
        packets: impl IntoIterator<Item = &'a PacketMeta>,
        sink: &mut dyn SampleSink,
    ) {
        for p in packets {
            self.process(p, sink);
        }
        self.flush();
    }

    /// Drain the recirculation loop at end of trace.
    pub fn flush(&mut self) {
        self.drain_recirc_until(Nanos::MAX);
        #[cfg(feature = "telemetry")]
        self.sync_telemetry();
    }

    /// Epoch rotation (control-plane): sweep RT flows idle for a whole
    /// epoch, PT and victim-cache records sent before `cutoff`, and stale
    /// RT-copy shadow entries, so a long-lived run's tables keep serving
    /// the live population instead of silting up (or, in unlimited mode,
    /// growing without bound). Records still traveling the recirculation
    /// loop are left alone — they are transient by construction (re-entry
    /// is one recirculation delay away) and drain with the next packets.
    ///
    /// Call between batches, never mid-batch. With attached telemetry the
    /// rotation is instrumented: `dart_epoch_rotations_total`, the
    /// carried/dropped counters, and the rotation-pause histogram.
    pub fn rotate_epoch(&mut self, cutoff: Nanos) -> crate::monitor::EpochRotation {
        #[cfg(feature = "telemetry")]
        let start = std::time::Instant::now();
        let (flows_carried, flows_dropped) = self.rt.rotate(cutoff);
        let (records_carried, mut records_dropped) = self.pt.rotate(cutoff);
        let vc_before = self.victim_cache.len();
        self.victim_cache.retain(|r| r.ts >= cutoff);
        records_dropped += (vc_before - self.victim_cache.len()) as u64;
        if let Some(copy) = &mut self.rt_copy {
            copy.rotate(cutoff);
        }
        let rotation = crate::monitor::EpochRotation {
            flows_carried,
            flows_dropped,
            records_carried,
            records_dropped,
        };
        #[cfg(feature = "telemetry")]
        if let Some(t) = &self.telemetry {
            let pause_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            t.observe_rotation(&rotation, pause_ns);
        }
        rotation
    }

    /// Identity of the configuration this engine was built from. Restoring
    /// a snapshot into an engine with a different configuration would
    /// silently mis-key every table (different geometry, signature width,
    /// or backend), so both ends of the snapshot carry this fingerprint.
    fn config_fingerprint(&self) -> u64 {
        fnv1a_64(format!("{:?}", self.cfg).as_bytes())
    }

    /// Serialize the engine's complete measurement state — both flow
    /// tables, the victim cache, records mid-recirculation, the RT copy,
    /// the admission gate's heavy-hitter book, and every counter — into a
    /// checksummed [`Snapshot`]. Control-plane only: call between batches,
    /// never mid-batch (same quiescence contract as
    /// [`DartEngine::rotate_epoch`]).
    pub fn snapshot(&self) -> Result<Snapshot, SnapshotError> {
        let mut w = SnapWriter::new();
        w.put_u8(SNAP_KIND_ENGINE);
        self.snapshot_into(&mut w);
        Ok(Snapshot::from_payload(w.into_payload()))
    }

    /// Restore a [`DartEngine::snapshot`] into this engine, replacing all
    /// measurement state. The engine must have been built from the same
    /// configuration the snapshot was taken under
    /// ([`SnapshotError::Mismatch`] otherwise); the snapshot's counters
    /// replace the current ones, so the conservation law
    /// (`fed == packets + monitor_miss`) resumes from where the
    /// checkpointed run left off.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        let mut r = SnapReader::new(snap.payload());
        let kind = r.get_u8()?;
        if kind != SNAP_KIND_ENGINE {
            return Err(SnapshotError::Mismatch(format!(
                "payload kind {kind} is not a single-engine snapshot"
            )));
        }
        self.restore_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after the engine state",
                r.remaining()
            )));
        }
        Ok(())
    }

    /// The engine-state section of the payload (no kind tag, no framing):
    /// the sharded monitor embeds one of these per shard inside its own
    /// payload.
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.config_fingerprint());

        // Counters, name-tagged: a snapshot taken before a counter existed
        // restores every field it knows about (see EngineStats::set_metric).
        let rows = self.stats.metric_rows();
        w.put_u32(rows.len() as u32);
        for (name, value) in rows {
            w.put_str(name);
            w.put_u64(value);
        }

        match &self.rt {
            RtTable::Exact(t) => {
                w.put_u8(0);
                t.snapshot_into(w);
            }
            RtTable::Sketch(t) => {
                w.put_u8(1);
                t.snapshot_into(w);
            }
        }
        match &self.pt {
            PtTable::Exact(t) => {
                w.put_u8(0);
                t.snapshot_into(w);
            }
            PtTable::Sketch(t) => {
                w.put_u8(1);
                t.snapshot_into(w);
            }
        }

        w.put_usize(self.victim_cache.len());
        for rec in &self.victim_cache {
            rec.snapshot_into(w);
        }

        // Records mid-recirculation, plus the port's accumulated books.
        let rstats = self.recirc.stats();
        w.put_u64(rstats.accepted);
        w.put_u64(rstats.refused_cap);
        w.put_usize(rstats.max_queue_depth);
        w.put_usize(self.recirc.in_flight());
        for e in self.recirc.iter() {
            e.record.rec.snapshot_into(w);
            w.put_u64(e.record.displaced_by.sig.0);
            w.put_u32(e.record.displaced_by.eack.0);
            w.put_u64(e.record.ready);
            w.put_u32(e.trips);
        }

        match &self.rt_copy {
            None => w.put_u8(0),
            Some(copy) => {
                w.put_u8(1);
                w.put_u64(copy.sync);
                // Sorted for a deterministic byte stream (HashMap iteration
                // order is not).
                let mut shadow: Vec<_> = copy
                    .shadow
                    .iter()
                    .map(|(sig, (range, at))| (sig.0, range.left.0, range.right.0, *at))
                    .collect();
                shadow.sort_unstable();
                w.put_usize(shadow.len());
                for (sig, left, right, at) in shadow {
                    w.put_u64(sig);
                    w.put_u32(left);
                    w.put_u32(right);
                    w.put_u64(at);
                }
                w.put_usize(copy.pending.len());
                for (at, sig, range) in &copy.pending {
                    w.put_u64(*at);
                    w.put_u64(sig.0);
                    w.put_u32(range.left.0);
                    w.put_u32(range.right.0);
                }
            }
        }

        match &self.admission {
            None => w.put_u8(0),
            Some(gate) => {
                w.put_u8(1);
                gate.snapshot_into(w);
            }
        }
    }

    /// Restore the engine-state section written by
    /// [`DartEngine::snapshot_into`].
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let fp = r.get_u64()?;
        if fp != self.config_fingerprint() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot was taken under a different configuration \
                 (fingerprint {fp:#018x}, this engine {:#018x})",
                self.config_fingerprint()
            )));
        }

        let mut stats = EngineStats::default();
        let rows = r.get_u32()?;
        for _ in 0..rows {
            let name = r.get_str()?;
            let value = r.get_u64()?;
            // Unknown names are tolerated: a newer build's snapshot may
            // carry counters this build does not have.
            let _ = stats.set_metric(name, value);
        }
        self.stats = stats;

        let rt_tag = r.get_u8()?;
        match (&mut self.rt, rt_tag) {
            (RtTable::Exact(t), 0) => t.restore_from(r)?,
            (RtTable::Sketch(t), 1) => t.restore_from(r)?,
            (_, tag) => {
                return Err(SnapshotError::Mismatch(format!(
                    "RT backend tag {tag} does not match this engine's backend"
                )))
            }
        }
        let pt_tag = r.get_u8()?;
        match (&mut self.pt, pt_tag) {
            (PtTable::Exact(t), 0) => t.restore_from(r)?,
            (PtTable::Sketch(t), 1) => t.restore_from(r)?,
            (_, tag) => {
                return Err(SnapshotError::Mismatch(format!(
                    "PT backend tag {tag} does not match this engine's backend"
                )))
            }
        }

        let vc = r.get_usize()?;
        self.victim_cache.clear();
        for _ in 0..vc {
            self.victim_cache.push_back(PtRecord::restore_from(r)?);
        }

        let rstats = dart_switch::RecircStats {
            accepted: r.get_u64()?,
            refused_cap: r.get_u64()?,
            max_queue_depth: r.get_usize()?,
        };
        let depth = r.get_usize()?;
        let mut entries = Vec::with_capacity(depth.min(1 << 20));
        for _ in 0..depth {
            let rec = PtRecord::restore_from(r)?;
            let displaced_by = PacketId::new(FlowSignature(r.get_u64()?), SeqNum(r.get_u32()?));
            let ready = r.get_u64()?;
            let trips = r.get_u32()?;
            entries.push(Recirculated {
                record: RecircEntry {
                    rec,
                    displaced_by,
                    ready,
                },
                trips,
            });
        }
        self.recirc.restore(entries, rstats);

        let copy_tag = r.get_u8()?;
        match (&mut self.rt_copy, copy_tag) {
            (None, 0) => {}
            (Some(copy), 1) => {
                copy.sync = r.get_u64()?;
                copy.shadow.clear();
                let n = r.get_usize()?;
                for _ in 0..n {
                    let sig = FlowSignature(r.get_u64()?);
                    let range = MeasurementRange {
                        left: SeqNum(r.get_u32()?),
                        right: SeqNum(r.get_u32()?),
                    };
                    let at = r.get_u64()?;
                    copy.shadow.insert(sig, (range, at));
                }
                copy.pending.clear();
                let n = r.get_usize()?;
                for _ in 0..n {
                    let at = r.get_u64()?;
                    let sig = FlowSignature(r.get_u64()?);
                    let range = MeasurementRange {
                        left: SeqNum(r.get_u32()?),
                        right: SeqNum(r.get_u32()?),
                    };
                    copy.pending.push_back((at, sig, range));
                }
            }
            (_, tag) => {
                return Err(SnapshotError::Mismatch(format!(
                    "RT-copy section tag {tag} does not match this engine"
                )))
            }
        }

        let gate_tag = r.get_u8()?;
        match (&mut self.admission, gate_tag) {
            (None, 0) => {}
            (Some(gate), 1) => gate.restore_from(r)?,
            (_, tag) => {
                return Err(SnapshotError::Mismatch(format!(
                    "admission section tag {tag} does not match this engine"
                )))
            }
        }

        // The batch scratch is a pure cache (locations are pure functions
        // of packet and geometry), but start it cold anyway.
        self.scratch = BatchScratch::default();
        #[cfg(feature = "telemetry")]
        self.sync_telemetry();
        Ok(())
    }

    fn handle_seq(&mut self, pkt: &PacketMeta) {
        let at = self.rt.locate(&pkt.flow);
        self.handle_seq_at(pkt, pkt.eack(), &at, None);
    }

    /// The SEQ role with a pre-resolved RT location and (on the batch
    /// path) a pre-hashed PT probe. `at` must come from
    /// `rt.locate(&pkt.flow)`; `probe`, when given, from
    /// `pt.probe(&PacketId::new(at.sig(), eack))`.
    fn handle_seq_at(
        &mut self,
        pkt: &PacketMeta,
        eack: SeqNum,
        at: &RtSlot,
        probe: Option<&PtProbe>,
    ) {
        let outcome = self.rt.on_seq_at(&pkt.flow, at, pkt.seq, eack, pkt.ts);
        match outcome {
            RtSeqOutcome::Created | RtSeqOutcome::Ruled(SeqVerdict::Extend) => {}
            RtSeqOutcome::CreatedEvicting => self.stats.sketch_overwritten += 1,
            RtSeqOutcome::Ruled(SeqVerdict::HoleReset) => self.stats.seq_hole_reset += 1,
            RtSeqOutcome::Ruled(SeqVerdict::Retransmission) => {
                self.stats.seq_retransmission += 1;
                self.stats.range_collapses += 1;
                self.emit(EngineEvent::RangeCollapse {
                    flow: pkt.flow,
                    ts: pkt.ts,
                    from_retransmission: true,
                });
            }
            RtSeqOutcome::Ruled(SeqVerdict::Wraparound) => self.stats.seq_wraparound += 1,
            RtSeqOutcome::Collision => self.stats.seq_rt_collision += 1,
        }
        if !outcome.track() {
            self.sync_rt_copy(pkt);
            return;
        }
        self.sync_rt_copy(pkt);
        self.stats.seq_tracked += 1;
        let sig = at.sig();
        // The admission gate's heavy-hitter sketch observes every tracked
        // data packet, so elephants bypass the recirculation coin later.
        // Outlined: the gate is `None` for every backend but `precision`,
        // and the CMS update must not bloat the fused batch loop.
        if let Some(gate) = &mut self.admission {
            gate_on_tracked(gate, sig);
        }
        let result = match probe {
            Some(p) => self.pt.insert_new_probed(&pkt.flow, sig, eack, pkt.ts, p),
            None => self.pt.insert_new(&pkt.flow, sig, eack, pkt.ts),
        };
        let inserted_id = PacketId::new(sig, eack);
        self.account_insert(result, inserted_id, pkt.ts);
    }

    /// Write-through the flow's current range to the §7 RT copy (applied
    /// after the sync lag).
    fn sync_rt_copy(&mut self, pkt: &PacketMeta) {
        if self.rt_copy.is_none() {
            return;
        }
        let data_flow = if self.cfg.seq_role_active(pkt.dir) && pkt.is_seq() {
            pkt.flow
        } else {
            pkt.flow.reverse()
        };
        if let Some(range) = self.rt.peek(&data_flow) {
            let sig = self.rt.sig(&data_flow);
            if let Some(copy) = &mut self.rt_copy {
                copy.record(pkt.ts, sig, range);
            }
        }
    }

    fn handle_ack(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        let data_flow = pkt.flow.reverse();
        let at = self.rt.locate(&data_flow);
        self.handle_ack_at(pkt, &data_flow, &at, None, sink);
    }

    /// The ACK role with a pre-resolved RT location and (on the batch
    /// path) a pre-hashed PT probe. `data_flow` is `pkt.flow.reverse()`;
    /// `at` must come from `rt.locate(data_flow)`; `probe`, when given,
    /// from `pt.probe(&PacketId::new(at.sig(), pkt.ack))`.
    fn handle_ack_at(
        &mut self,
        pkt: &PacketMeta,
        data_flow: &FlowKey,
        at: &RtSlot,
        probe: Option<&PtProbe>,
        sink: &mut dyn SampleSink,
    ) {
        let data_flow = *data_flow;
        match self
            .rt
            .on_ack_at(&data_flow, at, pkt.ack, pkt.is_pure_ack(), pkt.ts)
        {
            RtAckOutcome::Ruled(AckVerdict::Advance) => {
                self.stats.ack_advanced += 1;
                let sig = at.sig();
                let pt_hit = match probe {
                    Some(p) => self.pt.match_ack_probed(&data_flow, sig, pkt.ack, p),
                    None => self.pt.match_ack(&data_flow, sig, pkt.ack),
                };
                let hit = pt_hit.or_else(|| {
                    // Victim cache (§7): evicted records get matched here
                    // instead of being lost to a missed recirculation.
                    let id = PacketId::new(sig, pkt.ack);
                    self.victim_cache
                        .iter()
                        .position(|r| r.id() == id)
                        .and_then(|pos| self.victim_cache.remove(pos))
                        .map(|rec| {
                            self.stats.victim_cache_hits += 1;
                            rec.ts
                        })
                });
                if let Some(ts0) = hit {
                    self.stats.pt_matched += 1;
                    self.stats.samples += 1;
                    let rtt = pkt.ts.saturating_sub(ts0);
                    #[cfg(feature = "telemetry")]
                    if let Some(t) = &self.telemetry {
                        t.observe_rtt(rtt);
                    }
                    sink.on_sample(RttSample::new(data_flow, pkt.ack, rtt, pkt.ts));
                }
            }
            RtAckOutcome::Ruled(AckVerdict::DuplicateCollapse) => {
                self.stats.ack_duplicate += 1;
                self.stats.range_collapses += 1;
                self.emit(EngineEvent::RangeCollapse {
                    flow: data_flow,
                    ts: pkt.ts,
                    from_retransmission: false,
                });
            }
            RtAckOutcome::Ruled(AckVerdict::Stale) => self.stats.ack_stale += 1,
            RtAckOutcome::Ruled(AckVerdict::Optimistic) => {
                self.stats.ack_optimistic += 1;
                self.emit(EngineEvent::OptimisticAck {
                    flow: data_flow,
                    ts: pkt.ts,
                });
            }
            RtAckOutcome::NoFlow => self.stats.ack_no_flow += 1,
        }
        self.sync_rt_copy(pkt);
    }

    fn account_insert(&mut self, result: PtInsert, inserted_id: PacketId, now: Nanos) {
        match result {
            PtInsert::Stored => self.stats.pt_stored += 1,
            PtInsert::StoredOverwriting => {
                self.stats.pt_stored += 1;
                self.stats.sketch_overwritten += 1;
            }
            PtInsert::StoredEvicting(old) => {
                self.stats.pt_displaced += 1;
                self.evict(old, inserted_id, now);
            }
            PtInsert::CycleBroken { .. } => self.stats.recirc_cycles_broken += 1,
        }
    }

    /// Route an evicted record toward the recirculation port, applying (in
    /// order) the victim cache, the RT-copy validity check, the analytics
    /// filter, and the per-record trip cap.
    fn evict(&mut self, old: PtRecord, displaced_by: PacketId, now: Nanos) {
        // §7 victim cache: park the record; the oldest cached record spills
        // toward the recirculation path when the cache is full.
        let old = if self.cfg.victim_cache > 0 {
            self.victim_cache.push_back(old);
            self.stats.victim_cached += 1;
            if self.victim_cache.len() <= self.cfg.victim_cache {
                return;
            }
            // The push above guarantees the cache is nonempty; if that ever
            // changes, spilling nothing is the safe degradation.
            let Some(spilled) = self.victim_cache.pop_front() else {
                return;
            };
            spilled
        } else {
            old
        };
        // §7 RT copy: validate here instead of spending a recirculation.
        if let Some(copy) = &mut self.rt_copy {
            if copy.validate(now, &old) {
                if old.trips >= self.cfg.max_recirc {
                    self.stats.recirc_cap_dropped += 1;
                    return;
                }
                let mut rec = old;
                rec.trips += 1;
                self.stats.rt_copy_reinserted += 1;
                let result = self.pt.insert_recirculated(rec, Some(displaced_by));
                self.account_insert(result, rec.id(), now);
            } else {
                self.stats.rt_copy_dropped += 1;
            }
            return;
        }
        // Probabilistic recirculation admission (the `precision` backend):
        // heavy hitters always earn a second chance; the rest flip a pure,
        // record-keyed coin, so the batch and streaming paths agree.
        if let Some(gate) = &self.admission {
            match gate_admit(gate, &old) {
                Admission::Heavy => self.stats.recirc_admission_hh += 1,
                Admission::Sampled => {}
                Admission::Denied => {
                    self.stats.recirc_admission_denied += 1;
                    return;
                }
            }
        }
        if !self.filter.should_recirculate(&old, now) {
            self.stats.recirc_filtered += 1;
            return;
        }
        let entry = RecircEntry {
            rec: old,
            displaced_by,
            ready: now + self.cfg.recirc_delay,
        };
        match self.recirc.submit(entry, old.trips) {
            Ok(()) => self.stats.recirc_issued += 1,
            Err(_) => self.stats.recirc_cap_dropped += 1,
        }
    }

    /// Re-admit recirculated records whose re-entry time has arrived.
    /// Fast path of the recirculation drain: a single front-of-queue check
    /// inlined into both hot loops; the drain body stays out of line.
    #[inline]
    fn drain_recirc_until(&mut self, now: Nanos) {
        if self.recirc.peek().is_some_and(|e| e.record.ready <= now) {
            self.drain_recirc_slow(now);
        }
    }

    #[cold]
    fn drain_recirc_slow(&mut self, now: Nanos) {
        while self.recirc.peek().is_some_and(|e| e.record.ready <= now) {
            let Some(popped) = self.recirc.pop() else {
                break; // unreachable: peek just returned Some
            };
            let mut rec = popped.record.rec;
            rec.trips = popped.trips;
            // Second chance: re-consult the Range Tracker (Fig. 5, event 5).
            if !self.rt.revalidate(rec.sig, rec.eack) {
                self.stats.recirc_stale_dropped += 1;
                continue;
            }
            let displaced_by = popped.record.displaced_by;
            let result = self.pt.insert_recirculated(rec, Some(displaced_by));
            if matches!(result, PtInsert::Stored | PtInsert::StoredEvicting(_)) {
                self.stats.recirc_reinserted += 1;
            }
            self.account_insert(result, rec.id(), popped.record.ready.min(now));
        }
    }
}

/// Outlined CMS update for the admission gate (see the call site in
/// [`DartEngine`]): precision-backend work that must not be compiled into
/// the fused batch loop of the default exact path.
#[cold]
#[inline(never)]
fn gate_on_tracked(gate: &mut AdmissionGate, sig: FlowSignature) {
    gate.on_tracked(sig);
}

/// Outlined admission ruling, same rationale as [`gate_on_tracked`].
#[cold]
#[inline(never)]
fn gate_admit(gate: &AdmissionGate, rec: &PtRecord) -> Admission {
    gate.admit(rec)
}

/// Convenience: run a full trace through a fresh engine and return the
/// samples plus final statistics.
pub fn run_trace(cfg: DartConfig, packets: &[PacketMeta]) -> (Vec<RttSample>, EngineStats) {
    let mut engine = DartEngine::new(cfg);
    let mut samples = Vec::new();
    engine.process_trace(packets.iter(), &mut samples);
    (samples, *engine.stats())
}

impl crate::monitor::RttMonitor for DartEngine {
    fn name(&self) -> &str {
        match self.cfg.backend() {
            Backend::Exact => "dart",
            Backend::Sketch => "dart@sketch",
            Backend::Precision => "dart@precision",
        }
    }

    fn describe(&self) -> String {
        let tables = match self.cfg.backend() {
            Backend::Exact => "exact RT/PT tables",
            Backend::Sketch => "recency-aged sketch RT/PT tables",
            Backend::Precision => "exact RT/PT tables with probabilistic recirculation admission",
        };
        format!("Dart: {tables} with lazy eviction and second-chance recirculation (SIGCOMM '22)")
    }

    fn on_packet(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink) {
        self.process(pkt, sink);
    }

    /// The real batch pipeline (SoA decode → prefetch → match loop), not
    /// the default per-packet loop.
    fn on_batch(&mut self, pkts: &[PacketMeta], sink: &mut dyn SampleSink) {
        self.process_batch(pkts, sink);
    }

    /// Drains the recirculation loop; never emits samples (recirculated
    /// records can only be evicted or reinserted), so a second flush finds
    /// the loop empty and is a no-op.
    fn flush(&mut self, _sink: &mut dyn SampleSink) {
        DartEngine::flush(self);
    }

    fn rotate_epoch(&mut self, cutoff: Nanos) -> crate::monitor::EpochRotation {
        DartEngine::rotate_epoch(self, cutoff)
    }

    fn snapshot(&mut self) -> Result<Snapshot, SnapshotError> {
        DartEngine::snapshot(self)
    }

    fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        DartEngine::restore(self, snap)
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }
}

// The engine in unlimited mode never evicts, so `PtMode::Unlimited` combined
// with recirculation settings is harmless; assert that invariant in tests.
#[allow(unused_imports)]
use PtMode as _PtModeUsedInDocs;

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{Direction, FlowKey, PacketBuilder, SeqNum};

    fn flow(n: u32) -> FlowKey {
        // Campus client (outbound data goes toward the internet server).
        FlowKey::from_raw(0x0a00_0000 + n, 40000, 0x5db8_d822, 443)
    }

    /// Build a clean request/response exchange on the external leg:
    /// outbound data at t, inbound ACK at t + rtt.
    fn data_ack(f: FlowKey, seq: u32, len: u32, t: Nanos, rtt: Nanos) -> [PacketMeta; 2] {
        let data = PacketBuilder::new(f, t)
            .seq(seq)
            .payload(len)
            .dir(Direction::Outbound)
            .build();
        let ack = PacketBuilder::new(f.reverse(), t + rtt)
            .ack(seq + len)
            .dir(Direction::Inbound)
            .build();
        [data, ack]
    }

    #[test]
    fn clean_exchange_produces_exact_sample() {
        for cfg in [DartConfig::unlimited(), DartConfig::default()] {
            let f = flow(1);
            let pkts: Vec<_> = data_ack(f, 1000, 500, 1_000_000, 25_000_000).into();
            let (samples, stats) = run_trace(cfg, &pkts);
            assert_eq!(samples.len(), 1, "cfg {cfg:?}");
            assert_eq!(samples[0].rtt, 25_000_000);
            assert_eq!(samples[0].flow, f);
            assert_eq!(samples[0].eack, SeqNum(1500));
            assert_eq!(stats.samples, 1);
            assert_eq!(stats.seq_tracked, 1);
        }
    }

    #[test]
    fn syn_skip_ignores_handshake() {
        let f = flow(2);
        let syn = PacketBuilder::new(f, 0)
            .seq(99u32)
            .syn()
            .dir(Direction::Outbound)
            .build();
        let syn_ack = PacketBuilder::new(f.reverse(), 10_000_000)
            .seq(499u32)
            .ack(100u32)
            .syn()
            .dir(Direction::Inbound)
            .build();
        let hs_ack = PacketBuilder::new(f, 20_000_000)
            .ack(500u32)
            .dir(Direction::Outbound)
            .build();
        let (samples, stats) = run_trace(DartConfig::default(), &[syn, syn_ack, hs_ack]);
        assert!(samples.is_empty());
        assert_eq!(stats.syn_skipped, 2);
        // The bare handshake ACK is an ACK for a flow we never tracked.
        assert_eq!(stats.ack_no_flow, 0); // inbound leg only acks outbound data
    }

    #[test]
    fn syn_include_collects_handshake_rtt() {
        let f = flow(3);
        let syn = PacketBuilder::new(f, 0)
            .seq(99u32)
            .syn()
            .dir(Direction::Outbound)
            .build();
        let syn_ack = PacketBuilder::new(f.reverse(), 30_000_000)
            .seq(499u32)
            .ack(100u32)
            .syn()
            .dir(Direction::Inbound)
            .build();
        let cfg = DartConfig::unlimited().with_syn(SynPolicy::Include);
        let (samples, _) = run_trace(cfg, &[syn, syn_ack]);
        // The SYN-ACK acknowledges the SYN: external-leg handshake RTT.
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].rtt, 30_000_000);
        assert_eq!(samples[0].eack, SeqNum(100));
    }

    #[test]
    fn retransmission_yields_no_sample() {
        let f = flow(4);
        let d1 = PacketBuilder::new(f, 0)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build();
        // Retransmission of the same bytes.
        let d2 = PacketBuilder::new(f, 5_000_000)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build();
        let ack = PacketBuilder::new(f.reverse(), 10_000_000)
            .ack(100u32)
            .dir(Direction::Inbound)
            .build();
        let (samples, stats) = run_trace(DartConfig::unlimited(), &[d1, d2, ack]);
        assert!(samples.is_empty(), "ambiguous ACK must not sample");
        assert_eq!(stats.seq_retransmission, 1);
        // Two collapses: the retransmission, then the ACK landing on the
        // collapsed edge (classified as a duplicate ACK).
        assert_eq!(stats.range_collapses, 2);
        assert_eq!(stats.ack_duplicate, 1);
    }

    #[test]
    fn cumulative_ack_samples_last_segment_only() {
        let f = flow(5);
        let d1 = PacketBuilder::new(f, 0)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build();
        let d2 = PacketBuilder::new(f, 1_000_000)
            .seq(100u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build();
        let d3 = PacketBuilder::new(f, 2_000_000)
            .seq(200u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build();
        let ack = PacketBuilder::new(f.reverse(), 20_000_000)
            .ack(300u32)
            .dir(Direction::Inbound)
            .build();
        let (samples, stats) = run_trace(DartConfig::unlimited(), &[d1, d2, d3, ack]);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].eack, SeqNum(300));
        assert_eq!(samples[0].rtt, 18_000_000);
        assert_eq!(stats.seq_tracked, 3);
    }

    #[test]
    fn reordering_dup_acks_suppress_inflated_sample() {
        // P1..P4 sent; P2 reordered: receiver dup-acks P1, then cumulatively
        // acks through P4. The cumulative ACK must not sample P4 (paper §2.2).
        let f = flow(6);
        let mk = |seq: u32, t: Nanos| {
            PacketBuilder::new(f, t)
                .seq(seq)
                .payload(100)
                .dir(Direction::Outbound)
                .build()
        };
        let ack = |n: u32, t: Nanos| {
            PacketBuilder::new(f.reverse(), t)
                .ack(n)
                .dir(Direction::Inbound)
                .build()
        };
        let pkts = [
            mk(0, 0),
            mk(100, 1_000_000),
            mk(200, 2_000_000),
            mk(300, 3_000_000),
            ack(100, 10_000_000), // acks P1
            ack(100, 11_000_000), // dup ack (P2 missing at receiver)
            ack(400, 30_000_000), // P2 arrived; cumulative ack through P4
        ];
        let (samples, stats) = run_trace(DartConfig::unlimited(), &pkts);
        assert_eq!(samples.len(), 1, "only P1's ACK may sample");
        assert_eq!(samples[0].eack, SeqNum(100));
        // Two duplicate-ACK classifications: the true dup-ACK at 100, and
        // the later cumulative ACK landing exactly on the collapsed edge
        // (ambiguous, correctly unsampled).
        assert_eq!(stats.ack_duplicate, 2);
        assert_eq!(stats.samples, 1);
    }

    #[test]
    fn optimistic_ack_is_ignored() {
        let f = flow(7);
        let d = PacketBuilder::new(f, 0)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build();
        let early = PacketBuilder::new(f.reverse(), 1_000_000)
            .ack(500u32)
            .dir(Direction::Inbound)
            .build();
        let (samples, stats) = run_trace(DartConfig::unlimited(), &[d, early]);
        assert!(samples.is_empty());
        assert_eq!(stats.ack_optimistic, 1);
    }

    #[test]
    fn internal_leg_mirrors_roles() {
        // Data inbound, ACK outbound: only the Internal leg samples it.
        let server = FlowKey::from_raw(0x5db8_d822, 443, 0x0a00_0001, 40000);
        let d = PacketBuilder::new(server, 0)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Inbound)
            .build();
        let a = PacketBuilder::new(server.reverse(), 2_000_000)
            .ack(100u32)
            .dir(Direction::Outbound)
            .build();
        let ext = run_trace(DartConfig::unlimited(), &[d, a]);
        assert!(ext.0.is_empty());
        let int = run_trace(DartConfig::unlimited().with_leg(Leg::Internal), &[d, a]);
        assert_eq!(int.0.len(), 1);
        assert_eq!(int.0[0].rtt, 2_000_000);
    }

    #[test]
    fn both_legs_counts_dual_role_recirculation() {
        // A piggyback packet (data + ACK) in Both mode costs a recirculation.
        let f = flow(8);
        let d1 = PacketBuilder::new(f, 0)
            .seq(0u32)
            .payload(10)
            .dir(Direction::Outbound)
            .build();
        let piggy = PacketBuilder::new(f.reverse(), 3_000_000)
            .seq(900u32)
            .payload(20)
            .ack(10u32)
            .dir(Direction::Inbound)
            .build();
        let cfg = DartConfig::unlimited().with_leg(Leg::Both);
        let (samples, stats) = run_trace(cfg, &[d1, piggy]);
        assert_eq!(samples.len(), 1);
        assert_eq!(stats.dual_role_recirc, 1);
    }

    #[test]
    fn eviction_recirculation_and_second_chance() {
        // A 1-slot PT forces every second tracked packet to evict the first.
        // The evicted record is still valid, recirculates, and (cycle) the
        // older record wins the slot back — so the FIRST packet's ACK still
        // samples.
        let fa = flow(9);
        let fb = flow(10);
        let cfg = DartConfig::default()
            .with_rt(1 << 12)
            .with_pt(1, 1)
            .with_max_recirc(4);
        let da = PacketBuilder::new(fa, 0)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build();
        let db = PacketBuilder::new(fb, 1_000_000)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build();
        let aa = PacketBuilder::new(fa.reverse(), 50_000_000)
            .ack(100u32)
            .dir(Direction::Inbound)
            .build();
        let (samples, stats) = run_trace(cfg, &[da, db, aa]);
        assert_eq!(stats.pt_displaced, 1);
        assert_eq!(stats.recirc_issued, 1);
        // After recirculation the old record displaced the new one (cycle
        // broken in favor of the older record), so fa's ACK samples.
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].flow, fa);
        assert_eq!(stats.recirc_cycles_broken, 1);
    }

    #[test]
    fn recirc_cap_drops_records() {
        let fa = flow(11);
        let fb = flow(12);
        let cfg = DartConfig::default().with_pt(1, 1).with_max_recirc(0);
        let da = PacketBuilder::new(fa, 0)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build();
        let db = PacketBuilder::new(fb, 1_000_000)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build();
        let (_, stats) = run_trace(cfg, &[da, db]);
        assert_eq!(stats.recirc_cap_dropped, 1);
        assert_eq!(stats.recirc_issued, 0);
    }

    #[test]
    fn stale_recirculated_record_self_destructs() {
        // Flow A sends two segments through a 1-slot PT: the second displaces
        // the first, which recirculates, comes back still valid, and wins the
        // slot back via cycle-breaking (it is older). A cumulative ACK then
        // moves A's left edge past it; when flow B later evicts it, the
        // recirculated record must self-destruct at the RT check.
        let fa = flow(13);
        let fb = flow(14);
        let cfg = DartConfig::default().with_pt(1, 1).with_max_recirc(4);
        let pkts = [
            PacketBuilder::new(fa, 0)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            PacketBuilder::new(fa, 1_000_000)
                .seq(100u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            PacketBuilder::new(fa.reverse(), 5_000_000)
                .ack(200u32)
                .dir(Direction::Inbound)
                .build(),
            // Flow B evicts the squatting eack=100 record.
            PacketBuilder::new(fb, 60_000_000)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
        ];
        let (samples, stats) = run_trace(cfg, &pkts);
        // The cycle-break kept the older record (eack=100) and dropped
        // eack=200, so the cumulative ACK finds nothing: no samples — the
        // price of a 1-slot PT.
        assert!(samples.is_empty());
        assert_eq!(stats.recirc_cycles_broken, 1);
        // eack=100's record was evicted by flow B, recirculated, and died:
        // its eACK is below the advanced left edge.
        assert_eq!(stats.recirc_stale_dropped, 1);
    }

    #[test]
    fn filter_drops_instead_of_recirculating() {
        struct DropAll;
        impl RecircFilter for DropAll {
            fn should_recirculate(&mut self, _: &PtRecord, _: Nanos) -> bool {
                false
            }
        }
        let cfg = DartConfig::default().with_pt(1, 1).with_max_recirc(4);
        let mut engine = DartEngine::with_filter(cfg, Box::new(DropAll));
        let mut sink: Vec<RttSample> = Vec::new();
        let fa = flow(15);
        let fb = flow(16);
        engine.process(
            &PacketBuilder::new(fa, 0)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            &mut sink,
        );
        engine.process(
            &PacketBuilder::new(fb, 1)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            &mut sink,
        );
        assert_eq!(engine.stats().recirc_filtered, 1);
        assert_eq!(engine.stats().recirc_issued, 0);
    }

    #[test]
    fn flush_drains_pending_recirculations() {
        let cfg = DartConfig::default().with_pt(1, 1).with_max_recirc(8);
        let mut engine = DartEngine::new(cfg);
        let mut sink: Vec<RttSample> = Vec::new();
        let fa = flow(17);
        let fb = flow(18);
        engine.process(
            &PacketBuilder::new(fa, 0)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            &mut sink,
        );
        engine.process(
            &PacketBuilder::new(fb, 1)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            &mut sink,
        );
        assert_eq!(engine.stats().recirc_issued, 1);
        engine.flush();
        // The recirculated record was processed (reinserted or cycled).
        let s = engine.stats();
        assert_eq!(
            s.recirc_issued,
            s.recirc_stale_dropped + s.recirc_reinserted + s.recirc_cycles_broken
        );
    }

    /// The batch pipeline must be observationally identical to the
    /// per-packet path — samples, stats, and subsequent table state — for
    /// every config family (unlimited, constrained, multi-stage, victim
    /// cache, RT copy) and for any block split, including empty and
    /// size-1 blocks.
    #[test]
    fn batch_pipeline_matches_per_packet_across_configs() {
        // A workload exercising every role: data, ACKs, dup-ACKs,
        // retransmissions, piggybacks, SYNs, and eviction pressure.
        let mut pkts = Vec::new();
        for n in 0..200u32 {
            let f = flow(n % 13);
            let base = u64::from(n) * 400_000;
            if n % 17 == 0 {
                pkts.push(
                    PacketBuilder::new(f, base)
                        .seq(n * 100)
                        .syn()
                        .dir(Direction::Outbound)
                        .build(),
                );
            }
            pkts.push(
                PacketBuilder::new(f, base + 50_000)
                    .seq(n * 100)
                    .payload(100)
                    .dir(Direction::Outbound)
                    .build(),
            );
            if n % 3 == 0 {
                pkts.push(
                    PacketBuilder::new(f.reverse(), base + 250_000)
                        .ack(n * 100 + 100)
                        .dir(Direction::Inbound)
                        .build(),
                );
            }
            if n % 11 == 0 {
                // Retransmission of the same bytes → range collapse.
                pkts.push(
                    PacketBuilder::new(f, base + 300_000)
                        .seq(n * 100)
                        .payload(100)
                        .dir(Direction::Outbound)
                        .build(),
                );
            }
            if n % 23 == 0 {
                // Piggyback: data + ACK in one packet.
                pkts.push(
                    PacketBuilder::new(f.reverse(), base + 350_000)
                        .seq(n * 50)
                        .payload(20)
                        .ack(n * 100 + 100)
                        .dir(Direction::Inbound)
                        .build(),
                );
            }
        }
        let cfgs = [
            DartConfig::unlimited(),
            DartConfig::default(),
            DartConfig::default().with_pt(16, 4).with_max_recirc(4),
            DartConfig::default().with_pt(4, 2).with_victim_cache(3),
            DartConfig::default().with_pt(8, 1).with_rt_copy(1_000_000),
            DartConfig::default().with_leg(Leg::Both),
        ];
        // Irregular splits, including empty and size-1 blocks.
        let split_lens = [0usize, 1, 7, 0, 64, 3, 1, 200, 13];
        for cfg in cfgs {
            let (expected, expected_stats) = run_trace(cfg, &pkts);
            let mut engine = DartEngine::new(cfg);
            let mut got: Vec<RttSample> = Vec::new();
            let mut off = 0;
            let mut s = 0;
            while off < pkts.len() {
                let len = split_lens[s % split_lens.len()].min(pkts.len() - off);
                engine.process_batch(&pkts[off..off + len], &mut got);
                off += len;
                s += 1;
            }
            engine.flush();
            assert_eq!(got, expected, "samples diverge for {cfg:?}");
            assert_eq!(*engine.stats(), expected_stats, "stats diverge for {cfg:?}");
        }
    }

    /// Snapshot → restore into a fresh engine must reproduce the original
    /// engine bit for bit as far as observation goes: identical stats
    /// (byte-identical snapshot bytes on re-snapshot), and identical
    /// samples/stats when both engines process the same continuation
    /// traffic. Exercised across every config family the batch conformance
    /// test covers, plus sketch and precision backends.
    #[test]
    fn snapshot_restore_resumes_identically() {
        let cfgs = [
            DartConfig::unlimited(),
            DartConfig::default(),
            DartConfig::default().with_pt(16, 4).with_max_recirc(4),
            DartConfig::default().with_pt(4, 2).with_victim_cache(3),
            DartConfig::default().with_pt(8, 1).with_rt_copy(1_000_000),
            DartConfig::default().with_backend(Backend::Sketch),
            DartConfig::default().with_backend(Backend::Precision),
        ];
        // Traffic with eviction pressure so the victim cache and recirc
        // queue are non-empty at the checkpoint.
        let mut first = Vec::new();
        let mut second = Vec::new();
        for n in 0..120u32 {
            let f = flow(n % 7);
            let base = u64::from(n) * 500_000;
            let into = if n < 70 { &mut first } else { &mut second };
            into.push(
                PacketBuilder::new(f, base)
                    .seq(n * 100)
                    .payload(100)
                    .dir(Direction::Outbound)
                    .build(),
            );
            if n % 2 == 0 {
                into.push(
                    PacketBuilder::new(f.reverse(), base + 200_000)
                        .ack(n * 100 + 100)
                        .dir(Direction::Inbound)
                        .build(),
                );
            }
        }
        for cfg in cfgs {
            // Reference: one engine over the whole trace.
            let mut all = first.clone();
            all.extend(second.iter().cloned());
            let (expected, expected_stats) = run_trace(cfg, &all);

            let mut a = DartEngine::new(cfg);
            let mut samples: Vec<RttSample> = Vec::new();
            for p in &first {
                a.process(p, &mut samples);
            }
            let snap = a.snapshot().unwrap();

            // Restore into a fresh engine ("the restarted process").
            let mut b = DartEngine::new(cfg);
            b.restore(&snap).unwrap();
            assert_eq!(*b.stats(), *a.stats(), "restored counters for {cfg:?}");
            assert_eq!(b.rt_occupancy(), a.rt_occupancy());
            assert_eq!(b.pt_occupancy(), a.pt_occupancy());
            // Re-snapshot is byte-identical: nothing was lost or invented.
            assert_eq!(
                b.snapshot().unwrap().as_bytes(),
                snap.as_bytes(),
                "re-snapshot diverges for {cfg:?}"
            );

            for p in &second {
                b.process(p, &mut samples);
            }
            b.flush();
            assert_eq!(samples, expected, "samples diverge for {cfg:?}");
            assert_eq!(*b.stats(), expected_stats, "stats diverge for {cfg:?}");
        }
    }

    #[test]
    fn restore_refuses_other_configs_and_torn_payloads() {
        let f = flow(40);
        let pkts: Vec<_> = data_ack(f, 0, 500, 0, 10_000_000).into();
        let mut a = DartEngine::new(DartConfig::default());
        let mut sink: Vec<RttSample> = Vec::new();
        for p in &pkts {
            a.process(p, &mut sink);
        }
        let snap = a.snapshot().unwrap();

        // Different geometry → fingerprint mismatch.
        let mut other = DartEngine::new(DartConfig::default().with_pt(4, 2));
        assert!(matches!(
            other.restore(&snap),
            Err(SnapshotError::Mismatch(_))
        ));
        // Different backend → fingerprint mismatch.
        let mut sketchy = DartEngine::new(DartConfig::default().with_backend(Backend::Sketch));
        assert!(matches!(
            sketchy.restore(&snap),
            Err(SnapshotError::Mismatch(_))
        ));
        // A truncated payload surfaces as Corrupt from the reader, never a
        // panic (the frame itself would normally catch this first; this
        // drives the payload parser directly).
        let payload = snap.payload();
        for cut in [1usize, 9, 20, payload.len() - 3] {
            let torn = Snapshot::from_payload(payload[..cut].to_vec());
            let mut fresh = DartEngine::new(DartConfig::default());
            assert!(
                fresh.restore(&torn).is_err(),
                "cut at {cut} must not restore"
            );
        }
        // Trailing garbage is refused too.
        let mut padded = payload.to_vec();
        padded.extend_from_slice(&[0u8; 5]);
        let mut fresh = DartEngine::new(DartConfig::default());
        assert!(fresh.restore(&Snapshot::from_payload(padded)).is_err());
    }

    #[test]
    fn sequence_wraparound_foregoes_top_samples() {
        let f = flow(19);
        let pkts = [
            PacketBuilder::new(f, 0)
                .seq(u32::MAX - 199)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            // This one wraps: [MAX-99, 100).
            PacketBuilder::new(f, 1_000_000)
                .seq(u32::MAX - 99)
                .payload(200)
                .dir(Direction::Outbound)
                .build(),
            // ACK for the pre-wrap packet: left edge was reset to 0, so this
            // is stale — the foregone sample.
            PacketBuilder::new(f.reverse(), 5_000_000)
                .ack(u32::MAX - 99)
                .dir(Direction::Inbound)
                .build(),
        ];
        let (samples, stats) = run_trace(DartConfig::unlimited(), &pkts);
        assert!(samples.is_empty());
        assert_eq!(stats.seq_wraparound, 1);
        assert_eq!(stats.ack_stale, 1);
    }
}
