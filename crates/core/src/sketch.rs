//! Sketch-backed flow state: the memory-frontier backends.
//!
//! The exact RT/PT register tables cap the concurrent-flow population a
//! fixed SRAM budget can carry (the paper stops at 1.38M connections).
//! This module stretches the same memory 10×–100× further with bounded,
//! *counted* error, following two lines of related work:
//!
//! * **DUNE-style sketch tables** ([`SketchRangeTracker`],
//!   [`SketchPacketTracker`]) — set-associative ways with recency-based
//!   eviction (RT) and compact fingerprint cells with oldest-first
//!   overwrite (PT). Dead flows never pin a slot forever, so under churn
//!   the tables keep serving the *live* population; each overwrite of a
//!   live record is counted (`sketch_overwritten`) and surfaces in the
//!   loss budget instead of fabricating samples.
//! * **Probabilistic recirculation** (Ben Basat et al.) —
//!   [`AdmissionGate`] spends the recirculation budget only on evictions
//!   surviving a seeded coin flip, with a [`CountMinSketch`]-backed
//!   [`HeavyHitters`] bypass so elephant flows keep their in-flight
//!   measurements deterministically.
//!
//! Everything here is deterministic: hashing is seeded CRC (the same
//! [`HashUnit`] primitive the exact tables use), the coin flip is a pure
//! function of `(seed, record)`, and the heavy-hitter store is a plain
//! vector — so batch and streaming replays stay bit-identical, shard merges
//! are order-independent, and every test can pin seeds.

use crate::config::{PtMode, RtMode};
use crate::packet_tracker::{PtInsert, PtProbe, PtRecord};
use crate::range::MeasurementRange;
use crate::range_tracker::{RtAckOutcome, RtSeqOutcome, RtSlot};
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use dart_packet::{FlowKey, FlowSignature, Nanos, PacketId, SeqNum, SignatureWidth};
use dart_switch::{HashUnit, RegisterArray};

/// Deterministic 64-bit finalizer (splitmix64): the admission coin flip
/// and fingerprint whitening.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

// ---------------------------------------------------------------------------
// Count-min sketch + heavy hitters (shared with `dart_analytics::sketch`)
// ---------------------------------------------------------------------------

/// A count-min sketch: `depth` rows of `width` counters, each row indexed
/// by an independent seeded hash. Estimates are upper bounds — collisions
/// only inflate counts — which is the right direction for a heavy-hitter
/// gate (false *admissions*, never false denials of a true elephant).
///
/// This is the one CMS implementation in the workspace; `analytics`
/// re-exports it next to the P² quantile sketch.
#[derive(Clone, Debug)]
pub struct CountMinSketch {
    width: usize,
    rows: Vec<Vec<u32>>,
    hashers: Vec<HashUnit>,
}

impl CountMinSketch {
    /// Build a sketch of `depth` rows × `width` counters, hashed under
    /// `seed`.
    pub fn new(width: usize, depth: usize, seed: u64) -> CountMinSketch {
        assert!(width >= 1 && depth >= 1, "CMS needs at least one counter");
        CountMinSketch {
            width,
            rows: vec![vec![0; width]; depth],
            hashers: (0..depth)
                .map(|d| HashUnit::new(0xC0 ^ (mix64(seed ^ d as u64) as u32), 32))
                .collect(),
        }
    }

    /// Add one occurrence of `key`, returning the updated (min-row)
    /// estimate.
    pub fn increment(&mut self, key: u64) -> u32 {
        let bytes = key.to_le_bytes();
        let mut est = u32::MAX;
        for (row, hasher) in self.rows.iter_mut().zip(&self.hashers) {
            let idx = hasher.index(&bytes, self.width);
            row[idx] = row[idx].saturating_add(1);
            est = est.min(row[idx]);
        }
        est
    }

    /// The current (upper-bound) count estimate for `key`.
    pub fn estimate(&self, key: u64) -> u32 {
        let bytes = key.to_le_bytes();
        self.rows
            .iter()
            .zip(&self.hashers)
            .map(|(row, hasher)| row[hasher.index(&bytes, self.width)])
            .min()
            .unwrap_or(0)
    }

    /// Total counters held (control-plane memory report).
    pub fn counters(&self) -> usize {
        self.rows.len() * self.width
    }

    /// Serialize dimensions and every counter into `w` (control plane).
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.width);
        w.put_usize(self.rows.len());
        for row in &self.rows {
            for &c in row {
                w.put_u32(c);
            }
        }
    }

    /// Replace the counters with a checkpointed state written by
    /// [`CountMinSketch::snapshot_into`]. Dimensions must match (the hash
    /// seeds come from the configuration, so same-config means same row
    /// indexing).
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let width = r.get_usize()?;
        let depth = r.get_usize()?;
        if width != self.width || depth != self.rows.len() {
            return Err(SnapshotError::Mismatch(format!(
                "CMS snapshot is {width}x{depth}, this sketch is {}x{}",
                self.width,
                self.rows.len()
            )));
        }
        for row in &mut self.rows {
            for c in row.iter_mut() {
                *c = r.get_u32()?;
            }
        }
        Ok(())
    }
}

/// A CMS-filtered top-K heavy-hitter store: keys whose estimated count
/// beats the current top-K minimum are promoted, evicting the smallest
/// member. Deterministic — the store is a plain vector, ties keep the
/// incumbent — so replays are reproducible.
#[derive(Clone, Debug)]
pub struct HeavyHitters {
    cms: CountMinSketch,
    capacity: usize,
    top: Vec<(u64, u32)>,
}

impl HeavyHitters {
    /// Track up to `capacity` keys over a `width × depth` CMS.
    pub fn new(capacity: usize, width: usize, depth: usize, seed: u64) -> HeavyHitters {
        HeavyHitters {
            cms: CountMinSketch::new(width, depth, seed),
            capacity,
            top: Vec::with_capacity(capacity),
        }
    }

    /// Record one occurrence of `key`, promoting it into the top set when
    /// its estimate beats the current minimum.
    pub fn observe(&mut self, key: u64) {
        let est = self.cms.increment(key);
        if self.capacity == 0 {
            return;
        }
        if let Some(entry) = self.top.iter_mut().find(|(k, _)| *k == key) {
            entry.1 = est;
            return;
        }
        if self.top.len() < self.capacity {
            self.top.push((key, est));
            return;
        }
        // Full: challenge the smallest member (first minimum wins ties, so
        // the scan is deterministic).
        let (mi, &(_, mc)) = match self.top.iter().enumerate().min_by_key(|(_, (_, c))| *c) {
            Some(m) => m,
            None => return,
        };
        if est > mc {
            self.top[mi] = (key, est);
        }
    }

    /// Is `key` currently a tracked heavy hitter?
    pub fn contains(&self, key: u64) -> bool {
        self.top.iter().any(|(k, _)| *k == key)
    }

    /// The current top set, largest first (control plane / reports).
    pub fn top(&self) -> Vec<(u64, u32)> {
        let mut v = self.top.clone();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The underlying CMS (estimate queries, memory report).
    pub fn cms(&self) -> &CountMinSketch {
        &self.cms
    }

    /// Serialize the top set and the CMS counters into `w`.
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.capacity);
        w.put_usize(self.top.len());
        for &(key, count) in &self.top {
            w.put_u64(key);
            w.put_u32(count);
        }
        self.cms.snapshot_into(w);
    }

    /// Replace the top set and CMS counters with a checkpointed state
    /// written by [`HeavyHitters::snapshot_into`].
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let capacity = r.get_usize()?;
        if capacity != self.capacity {
            return Err(SnapshotError::Mismatch(format!(
                "heavy-hitter snapshot capacity {capacity}, this store holds {}",
                self.capacity
            )));
        }
        let len = r.get_usize()?;
        if len > capacity {
            return Err(SnapshotError::Corrupt(format!(
                "heavy-hitter snapshot has {len} entries over capacity {capacity}"
            )));
        }
        self.top.clear();
        for _ in 0..len {
            let key = r.get_u64()?;
            let count = r.get_u32()?;
            self.top.push((key, count));
        }
        self.cms.restore_from(r)
    }
}

// ---------------------------------------------------------------------------
// Probabilistic-recirculation admission gate (`dart@precision`)
// ---------------------------------------------------------------------------

/// What the admission gate decided for one evicted record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The flow is a tracked heavy hitter: recirculate unconditionally.
    Heavy,
    /// The record survived the seeded coin flip.
    Sampled,
    /// Denied: the recirculation budget is not spent on this record.
    Denied,
}

/// The `dart@precision` gate: evicted Packet Tracker records pay a
/// recirculation only when their flow is a tracked heavy hitter or they
/// survive a `2^-sample_shift` coin flip keyed on `(seed, sig, eack, ts)`.
///
/// The flip is a pure function of the record, so admission is independent
/// of packet interleaving — the batch pipeline and the streaming path make
/// identical decisions.
#[derive(Clone, Debug)]
pub struct AdmissionGate {
    hh: HeavyHitters,
    mask: u64,
    seed: u64,
}

impl AdmissionGate {
    /// Build a gate admitting `2^-sample_shift` of evictions by coin flip
    /// plus up to `hh_capacity` heavy-hitter flows unconditionally.
    pub fn new(sample_shift: u32, hh_capacity: usize, seed: u64) -> AdmissionGate {
        AdmissionGate {
            hh: HeavyHitters::new(hh_capacity, 512, 2, seed),
            mask: (1u64 << sample_shift.min(63)) - 1,
            seed,
        }
    }

    /// Feed one tracked data packet's flow signature (keeps the
    /// heavy-hitter estimates current).
    #[inline]
    pub fn on_tracked(&mut self, sig: FlowSignature) {
        self.hh.observe(sig.raw());
    }

    /// Rule on one evicted record.
    #[inline]
    pub fn admit(&self, rec: &PtRecord) -> Admission {
        if self.hh.contains(rec.sig.raw()) {
            return Admission::Heavy;
        }
        let key =
            self.seed ^ rec.sig.raw() ^ (u64::from(rec.eack.raw()) << 32) ^ rec.ts.rotate_left(17);
        if mix64(key) & self.mask == 0 {
            Admission::Sampled
        } else {
            Admission::Denied
        }
    }

    /// The heavy-hitter store (reports / tests).
    pub fn heavy_hitters(&self) -> &HeavyHitters {
        &self.hh
    }

    /// Serialize the gate's identity (mask, seed) and heavy-hitter book
    /// into `w`. The coin flip itself is stateless — only the elephant set
    /// must survive a restart, or a heavy flow would lose its deterministic
    /// recirculation bypass after recovery.
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.mask);
        w.put_u64(self.seed);
        self.hh.snapshot_into(w);
    }

    /// Restore a gate checkpointed by [`AdmissionGate::snapshot_into`];
    /// the mask and seed (configuration identity) must match.
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let mask = r.get_u64()?;
        let seed = r.get_u64()?;
        if mask != self.mask || seed != self.seed {
            return Err(SnapshotError::Mismatch(format!(
                "admission-gate snapshot (mask {mask:#x}, seed {seed:#x}) does not match \
                 this gate (mask {:#x}, seed {:#x})",
                self.mask, self.seed
            )));
        }
        self.hh.restore_from(r)
    }
}

// ---------------------------------------------------------------------------
// Sketch Range Tracker (`dart@sketch` RT)
// ---------------------------------------------------------------------------

/// One sketch-RT entry: the exact entry plus a recency stamp.
#[derive(Clone, Copy, Debug)]
struct SketchRtEntry {
    sig: FlowSignature,
    range: MeasurementRange,
    last: Nanos,
}

/// A set-associative Range Tracker with recency eviction: `ways`
/// independently hashed ways of `slots / ways` entries each. Where the
/// exact one-way table rejects a new flow whose slot is held by another
/// *live* flow — leaking slots to dead flows forever under churn — this
/// tracker overwrites the least-recently-touched occupant of the full way
/// set ([`RtSeqOutcome::CreatedEvicting`]).
///
/// The overwritten flow's later ACKs miss on signature and fall out as
/// `ack_no_flow`: loss is counted, samples are never fabricated.
pub struct SketchRangeTracker {
    ways: Vec<RegisterArray<SketchRtEntry>>,
    hashers: Vec<HashUnit>,
    sig_width: SignatureWidth,
    way_size: usize,
}

/// The sketch RT packs both way indices into `RtSlot::idx` (way 0 in the
/// low 32 bits, way 1 in the high), so the pure `locate` contract the batch
/// pipeline relies on is preserved without growing the slot struct.
const WAY_SHIFT: u32 = 32;

impl SketchRangeTracker {
    /// Build a sketch RT from its mode. Panics if handed a non-sketch mode
    /// (the engine routes those to the exact tracker).
    pub fn new(mode: RtMode, sig_width: SignatureWidth) -> SketchRangeTracker {
        let RtMode::Sketch { slots, ways } = mode else {
            panic!("SketchRangeTracker requires RtMode::Sketch, got {mode:?}")
        };
        assert!((1..=2).contains(&ways), "sketch RT supports 1 or 2 ways");
        assert!(slots >= ways, "sketch RT needs at least one slot per way");
        let way_size = slots / ways;
        assert!(
            (way_size as u64) <= u64::from(u32::MAX),
            "sketch RT way exceeds the packed 32-bit index range"
        );
        SketchRangeTracker {
            ways: (0..ways)
                .map(|_| RegisterArray::new("range_tracker_sketch", way_size))
                .collect(),
            hashers: (0..ways)
                .map(|w| HashUnit::new(0xA8 + w as u32, 32))
                .collect(),
            sig_width,
            way_size,
        }
    }

    /// The data-plane signature of a flow under this tracker's width.
    pub fn sig(&self, flow: &FlowKey) -> FlowSignature {
        flow.signature(self.sig_width)
    }

    #[inline]
    fn indices_of(&self, sig: FlowSignature) -> (usize, usize) {
        let bytes = sig.raw().to_le_bytes();
        let i0 = self.hashers[0].index(&bytes, self.way_size);
        let i1 = if self.ways.len() == 2 {
            self.hashers[1].index(&bytes, self.way_size)
        } else {
            i0
        };
        (i0, i1)
    }

    #[inline]
    fn unpack(at: &RtSlot) -> (usize, usize) {
        let packed = at.idx();
        (packed & (u32::MAX as usize), packed >> WAY_SHIFT)
    }

    /// Resolve where `flow` may live: its signature plus both way indices,
    /// packed. Pure (no table access) — the batch decode pass depends on
    /// that.
    #[inline]
    pub fn locate(&self, flow: &FlowKey) -> RtSlot {
        let sig = flow.signature(self.sig_width);
        let (i0, i1) = self.indices_of(sig);
        RtSlot::from_parts(sig, i0 | (i1 << WAY_SHIFT))
    }

    /// Warm both located way slots into cache.
    #[inline]
    pub fn prefetch(&self, at: &RtSlot) {
        let (i0, i1) = Self::unpack(at);
        self.ways[0].prefetch(i0);
        if let Some(w1) = self.ways.get(1) {
            w1.prefetch(i1);
        }
    }

    /// Offer a data packet occupying `[seq, eack)`; `now` drives the
    /// recency stamps.
    pub fn on_seq(
        &mut self,
        flow: &FlowKey,
        seq: SeqNum,
        eack: SeqNum,
        now: Nanos,
    ) -> RtSeqOutcome {
        let at = self.locate(flow);
        self.on_seq_at(&at, seq, eack, now)
    }

    /// [`SketchRangeTracker::on_seq`] with a pre-resolved location (batch
    /// path). `at` must come from `locate(flow)` on this tracker.
    pub fn on_seq_at(
        &mut self,
        at: &RtSlot,
        seq: SeqNum,
        eack: SeqNum,
        now: Nanos,
    ) -> RtSeqOutcome {
        let sig = at.sig();
        let (i0, i1) = Self::unpack(at);
        let idx = [i0, i1];

        // Pass 1: does the flow already live in a way?
        for (w, &i) in idx.iter().enumerate().take(self.ways.len()) {
            let hit = self.ways[w].rmw(i, |old| match old {
                Some(mut e) if e.sig == sig => {
                    let v = e.range.on_seq(seq, eack);
                    e.last = now;
                    (Some(e), Some(RtSeqOutcome::Ruled(v)))
                }
                other => (other, None),
            });
            if let Some(out) = hit {
                return out;
            }
        }

        // Pass 2: claim an empty or collapsed way.
        let fresh = SketchRtEntry {
            sig,
            range: MeasurementRange::open(seq, eack),
            last: now,
        };
        for (w, &i) in idx.iter().enumerate().take(self.ways.len()) {
            let claimed = self.ways[w].rmw(i, |old| match old {
                Some(e) if !e.range.is_collapsed() => (Some(e), false),
                _ => (Some(fresh), true),
            });
            if claimed {
                return RtSeqOutcome::Created;
            }
        }

        // Pass 3: every way holds a different live flow — overwrite the
        // least recently touched one (recency eviction; this is what keeps
        // the table serving the live population under churn).
        let victim_way = if self.ways.len() == 2 {
            let age0 = self.ways[0].read(i0).map(|e| e.last).unwrap_or(0);
            let age1 = self.ways[1].read(i1).map(|e| e.last).unwrap_or(0);
            usize::from(age1 < age0)
        } else {
            0
        };
        self.ways[victim_way].rmw(idx[victim_way], |_| (Some(fresh), ()));
        RtSeqOutcome::CreatedEvicting
    }

    /// Offer an ACK numbered `ack`; `pure` marks a payload-free ACK.
    pub fn on_ack(&mut self, flow: &FlowKey, ack: SeqNum, pure: bool, now: Nanos) -> RtAckOutcome {
        let at = self.locate(flow);
        self.on_ack_at(&at, ack, pure, now)
    }

    /// [`SketchRangeTracker::on_ack`] with a pre-resolved location (batch
    /// path).
    pub fn on_ack_at(&mut self, at: &RtSlot, ack: SeqNum, pure: bool, now: Nanos) -> RtAckOutcome {
        let sig = at.sig();
        let (i0, i1) = Self::unpack(at);
        let idx = [i0, i1];
        for (w, &i) in idx.iter().enumerate().take(self.ways.len()) {
            let hit = self.ways[w].rmw(i, |old| match old {
                Some(mut e) if e.sig == sig => {
                    let v = e.range.on_ack(ack, pure);
                    e.last = now;
                    (Some(e), Some(RtAckOutcome::Ruled(v)))
                }
                other => (other, None),
            });
            if let Some(out) = hit {
                return out;
            }
        }
        RtAckOutcome::NoFlow
    }

    /// Re-validate an evicted PT record (§3.2), same contract as the exact
    /// tracker's.
    pub fn revalidate(&mut self, sig: FlowSignature, eack: SeqNum) -> bool {
        let (i0, i1) = self.indices_of(sig);
        let idx = [i0, i1];
        for (w, &i) in idx.iter().enumerate().take(self.ways.len()) {
            let valid = match self.ways[w].read(i) {
                Some(e) if e.sig == sig => eack.in_range(e.range.left, e.range.right),
                _ => false,
            };
            if valid {
                return true;
            }
        }
        false
    }

    /// Epoch rotation (control-plane): sweep every entry whose recency
    /// stamp predates `cutoff`, returning `(carried, dropped)` flow counts.
    /// The sketch already stamps entries with the packet clock for LRU
    /// eviction, so rotation is a plain cutoff sweep over the ways.
    pub fn rotate(&mut self, cutoff: Nanos) -> (u64, u64) {
        let (mut kept, mut cleared) = (0u64, 0u64);
        for way in &mut self.ways {
            let (k, c) = way.sweep(|e| e.last >= cutoff);
            kept += k;
            cleared += c;
        }
        (kept, cleared)
    }

    /// Current number of live entries.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().map(|w| w.occupancy()).sum()
    }

    /// Read a flow's current range, if present (tests / control plane).
    pub fn peek(&mut self, flow: &FlowKey) -> Option<MeasurementRange> {
        let sig = flow.signature(self.sig_width);
        let (i0, i1) = self.indices_of(sig);
        let idx = [i0, i1];
        for (w, &i) in idx.iter().enumerate().take(self.ways.len()) {
            if let Some(e) = self.ways[w].read(i) {
                if e.sig == sig {
                    return Some(e.range);
                }
            }
        }
        None
    }

    /// Serialize every live entry of every way into `w` (control plane).
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.ways.len());
        w.put_usize(self.way_size);
        for way in &self.ways {
            w.put_usize(way.occupancy());
            for (idx, e) in way.iter() {
                w.put_usize(idx);
                w.put_u64(e.sig.raw());
                w.put_u32(e.range.left.raw());
                w.put_u32(e.range.right.raw());
                w.put_u64(e.last);
            }
        }
    }

    /// Replace this tracker's contents with a checkpointed state written by
    /// [`SketchRangeTracker::snapshot_into`]. Way count and way size must
    /// match.
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let ways = r.get_usize()?;
        let way_size = r.get_usize()?;
        if ways != self.ways.len() || way_size != self.way_size {
            return Err(SnapshotError::Mismatch(format!(
                "sketch RT snapshot is {ways}x{way_size}, this tracker is {}x{}",
                self.ways.len(),
                self.way_size
            )));
        }
        for way in &mut self.ways {
            let count = r.get_usize()?;
            way.sweep(|_| false);
            for _ in 0..count {
                let idx = r.get_usize()?;
                if idx >= way_size {
                    return Err(SnapshotError::Corrupt(format!(
                        "sketch RT entry index {idx} out of bounds ({way_size} slots)"
                    )));
                }
                let sig = FlowSignature(r.get_u64()?);
                let left = SeqNum(r.get_u32()?);
                let right = SeqNum(r.get_u32()?);
                let last = r.get_u64()?;
                way.load(
                    idx,
                    SketchRtEntry {
                        sig,
                        range: MeasurementRange { left, right },
                        last,
                    },
                );
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Sketch Packet Tracker (`dart@sketch` PT)
// ---------------------------------------------------------------------------

/// One sketch-PT cell: a 32-bit record fingerprint plus the arrival
/// timestamp — 80 bits against the exact record's 112 (32-bit signature +
/// 32-bit eACK + 48-bit timestamp), a 1.4× density win before any
/// behavioural difference.
#[derive(Clone, Copy, Debug)]
struct SketchPtCell {
    fp: u32,
    ts: Nanos,
}

/// A compact fingerprint Packet Tracker: `ways` independently hashed ways
/// of `(fingerprint, ts)` cells. Insertion into a full way set overwrites
/// the oldest-timestamp cell ([`PtInsert::StoredOverwriting`]) instead of
/// recirculating — the sketch spends zero recirculation bandwidth. An ACK
/// matches only when the stored fingerprint verifies, so a fingerprint
/// collision can *lose* a sample (overwrite) or mis-time one with
/// probability ~2⁻³² per probe, but the structure never invents a record
/// that was not inserted.
pub struct SketchPacketTracker {
    ways: Vec<RegisterArray<SketchPtCell>>,
    hashers: Vec<HashUnit>,
    fp_hasher: HashUnit,
    way_size: usize,
}

impl SketchPacketTracker {
    /// Build a sketch PT from its mode. Panics if handed a non-sketch mode
    /// (the engine routes those to the exact tracker).
    pub fn new(mode: PtMode) -> SketchPacketTracker {
        let PtMode::Sketch { slots, ways } = mode else {
            panic!("SketchPacketTracker requires PtMode::Sketch, got {mode:?}")
        };
        assert!(
            (1..=PtProbe::MAX).contains(&ways),
            "sketch PT supports 1..={} ways",
            PtProbe::MAX
        );
        assert!(slots >= ways, "sketch PT needs at least one cell per way");
        let way_size = slots / ways;
        SketchPacketTracker {
            ways: (0..ways)
                .map(|_| RegisterArray::new("packet_tracker_sketch", way_size))
                .collect(),
            hashers: (0..ways)
                .map(|w| HashUnit::new(0xB8 + w as u32, 32))
                .collect(),
            fp_hasher: HashUnit::new(0xD7, 32),
            way_size,
        }
    }

    #[inline]
    fn key_bytes(id: &PacketId) -> [u8; 12] {
        let mut key = [0u8; 12];
        key[0..8].copy_from_slice(&id.sig.raw().to_le_bytes());
        key[8..12].copy_from_slice(&id.eack.raw().to_le_bytes());
        key
    }

    #[inline]
    fn fp(&self, id: &PacketId) -> u32 {
        self.fp_hasher.hash(&Self::key_bytes(id))
    }

    /// Pre-resolve the per-way cell indices for `id`. Pure, reusing the
    /// batch pipeline's [`PtProbe`] pre-hash product.
    #[inline]
    pub fn probe(&self, id: &PacketId) -> PtProbe {
        let key = Self::key_bytes(id);
        let mut idx = [0usize; PtProbe::MAX];
        for (slot, hasher) in idx.iter_mut().zip(&self.hashers) {
            *slot = hasher.index(&key, self.way_size);
        }
        PtProbe::from_ways(&idx[..self.ways.len()])
    }

    /// Warm every pre-resolved way cell into cache.
    #[inline]
    pub fn prefetch(&self, p: &PtProbe) {
        for (w, way) in self.ways.iter().enumerate() {
            if let Some(i) = p.get(w) {
                way.prefetch(i);
            }
        }
    }

    #[inline]
    fn idx_at(&self, probe: Option<&PtProbe>, w: usize, id: &PacketId) -> usize {
        probe
            .and_then(|p| p.get(w))
            .unwrap_or_else(|| self.hashers[w].index(&Self::key_bytes(id), self.way_size))
    }

    /// Insert a freshly tracked data packet.
    pub fn insert_new(&mut self, sig: FlowSignature, eack: SeqNum, ts: Nanos) -> PtInsert {
        self.insert_inner(sig, eack, ts, None)
    }

    /// [`SketchPacketTracker::insert_new`] with a pre-resolved probe
    /// (batch path).
    pub fn insert_new_probed(
        &mut self,
        sig: FlowSignature,
        eack: SeqNum,
        ts: Nanos,
        probe: &PtProbe,
    ) -> PtInsert {
        self.insert_inner(sig, eack, ts, Some(probe))
    }

    /// Defensive re-insert path: the sketch never evicts a recirculatable
    /// record, but the engine's recirculation port is backend-agnostic, so
    /// route any stray record through the ordinary insert.
    pub fn insert_recirculated(&mut self, rec: PtRecord) -> PtInsert {
        self.insert_inner(rec.sig, rec.eack, rec.ts, None)
    }

    fn insert_inner(
        &mut self,
        sig: FlowSignature,
        eack: SeqNum,
        ts: Nanos,
        probe: Option<&PtProbe>,
    ) -> PtInsert {
        let id = PacketId::new(sig, eack);
        let fp = self.fp(&id);
        let fresh = SketchPtCell { fp, ts };
        let mut oldest: Option<(Nanos, usize, usize)> = None;
        for w in 0..self.ways.len() {
            let i = self.idx_at(probe, w, &id);
            match self.ways[w].read(i).copied() {
                None => {
                    self.ways[w].write(i, fresh);
                    return PtInsert::Stored;
                }
                Some(c) if c.fp == fp => {
                    // Same identity (tracking restarted on the byte range):
                    // refresh the timestamp, as the exact PT does.
                    self.ways[w].write(i, fresh);
                    return PtInsert::Stored;
                }
                Some(c) => {
                    if oldest.map(|(t, _, _)| c.ts < t).unwrap_or(true) {
                        oldest = Some((c.ts, w, i));
                    }
                }
            }
        }
        // Full way set: overwrite the oldest occupant. Its measurement is
        // lost (counted), never recirculated — fingerprints carry no
        // reconstructable record.
        if let Some((_, w, i)) = oldest {
            self.ways[w].write(i, fresh);
        }
        PtInsert::StoredOverwriting
    }

    /// Match an arriving ACK: probe every way for a verifying fingerprint,
    /// clear the cell on a hit, and return its stored timestamp.
    pub fn match_ack(&mut self, sig: FlowSignature, ack: SeqNum) -> Option<Nanos> {
        self.match_inner(sig, ack, None)
    }

    /// [`SketchPacketTracker::match_ack`] with a pre-resolved probe (batch
    /// path).
    pub fn match_ack_probed(
        &mut self,
        sig: FlowSignature,
        ack: SeqNum,
        probe: &PtProbe,
    ) -> Option<Nanos> {
        self.match_inner(sig, ack, Some(probe))
    }

    fn match_inner(
        &mut self,
        sig: FlowSignature,
        ack: SeqNum,
        probe: Option<&PtProbe>,
    ) -> Option<Nanos> {
        let id = PacketId::new(sig, ack);
        let fp = self.fp(&id);
        for w in 0..self.ways.len() {
            let i = self.idx_at(probe, w, &id);
            let hit = matches!(self.ways[w].read(i), Some(c) if c.fp == fp);
            if hit {
                return self.ways[w].clear(i).map(|c| c.ts);
            }
        }
        None
    }

    /// Epoch rotation (control-plane): sweep every cell whose stored send
    /// timestamp predates `cutoff`, returning `(carried, dropped)` record
    /// counts — the same time-cutoff rule as the exact Packet Tracker.
    pub fn rotate(&mut self, cutoff: Nanos) -> (u64, u64) {
        let (mut kept, mut cleared) = (0u64, 0u64);
        for way in &mut self.ways {
            let (k, c) = way.sweep(|cell| cell.ts >= cutoff);
            kept += k;
            cleared += c;
        }
        (kept, cleared)
    }

    /// Live cells (control-plane visibility).
    pub fn occupancy(&self) -> usize {
        self.ways.iter().map(|w| w.occupancy()).sum()
    }

    /// Total cells.
    pub fn capacity(&self) -> usize {
        self.ways.iter().map(|w| w.size()).sum()
    }

    /// Serialize every live cell of every way into `w` (control plane).
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.ways.len());
        w.put_usize(self.way_size);
        for way in &self.ways {
            w.put_usize(way.occupancy());
            for (idx, c) in way.iter() {
                w.put_usize(idx);
                w.put_u32(c.fp);
                w.put_u64(c.ts);
            }
        }
    }

    /// Replace this tracker's contents with a checkpointed state written by
    /// [`SketchPacketTracker::snapshot_into`]. Way count and way size must
    /// match.
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let ways = r.get_usize()?;
        let way_size = r.get_usize()?;
        if ways != self.ways.len() || way_size != self.way_size {
            return Err(SnapshotError::Mismatch(format!(
                "sketch PT snapshot is {ways}x{way_size}, this tracker is {}x{}",
                self.ways.len(),
                self.way_size
            )));
        }
        for way in &mut self.ways {
            let count = r.get_usize()?;
            way.sweep(|_| false);
            for _ in 0..count {
                let idx = r.get_usize()?;
                if idx >= way_size {
                    return Err(SnapshotError::Corrupt(format!(
                        "sketch PT cell index {idx} out of bounds ({way_size} cells)"
                    )));
                }
                let fp = r.get_u32()?;
                let ts = r.get_u64()?;
                way.load(idx, SketchPtCell { fp, ts });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(n: u32) -> FlowKey {
        FlowKey::from_raw(0x0a00_0000 + n, 40000 + (n as u16 % 1000), 0x0808_0808, 443)
    }

    fn sig(n: u32) -> FlowSignature {
        flow(n).signature(SignatureWidth::W32)
    }

    fn rt(slots: usize, ways: usize) -> SketchRangeTracker {
        SketchRangeTracker::new(RtMode::Sketch { slots, ways }, SignatureWidth::W32)
    }

    fn pt(slots: usize, ways: usize) -> SketchPacketTracker {
        SketchPacketTracker::new(PtMode::Sketch { slots, ways })
    }

    #[test]
    fn cms_estimates_are_upper_bounds() {
        let mut cms = CountMinSketch::new(64, 2, 7);
        for k in 0..100u64 {
            for _ in 0..=(k % 5) {
                cms.increment(k);
            }
        }
        for k in 0..100u64 {
            assert!(u64::from(cms.estimate(k)) > (k % 5), "key {k} undercounted");
        }
        assert_eq!(cms.counters(), 128);
    }

    #[test]
    fn heavy_hitters_finds_the_elephants() {
        let mut hh = HeavyHitters::new(4, 256, 2, 0xDA27);
        // 4 elephants at 100 observations, 96 mice at ≤3.
        for round in 0..100u64 {
            for e in 0..4u64 {
                hh.observe(1000 + e);
            }
            if round < 3 {
                for m in 0..96u64 {
                    hh.observe(m);
                }
            }
        }
        for e in 0..4u64 {
            assert!(hh.contains(1000 + e), "elephant {e} missing");
        }
        let top = hh.top();
        assert_eq!(top.len(), 4);
        assert!(top.iter().all(|&(_, c)| c >= 100));
    }

    #[test]
    fn admission_gate_is_deterministic_and_respects_shift() {
        let mut gate = AdmissionGate::new(3, 0, 0x5EED);
        gate.on_tracked(sig(1));
        let mut admitted = 0u32;
        let total = 8192u32;
        for n in 0..total {
            let rec = PtRecord {
                sig: sig(n),
                eack: SeqNum(n * 100),
                ts: u64::from(n) * 1000,
                trips: 0,
            };
            let a = gate.admit(&rec);
            assert_eq!(a, gate.admit(&rec), "gate not deterministic");
            if a != Admission::Denied {
                admitted += 1;
            }
        }
        // Expect ~1/8 = 1024 of 8192; allow a generous binomial band.
        assert!(
            (700..1400).contains(&admitted),
            "coin flip far from 1/8: {admitted}/{total}"
        );
    }

    #[test]
    fn admission_gate_heavy_hitters_bypass_the_coin() {
        let mut gate = AdmissionGate::new(63, 8, 0x5EED); // coin ~never admits
        for _ in 0..50 {
            gate.on_tracked(sig(42));
        }
        let rec = PtRecord {
            sig: sig(42),
            eack: SeqNum(7),
            ts: 1,
            trips: 0,
        };
        assert_eq!(gate.admit(&rec), Admission::Heavy);
        let mouse = PtRecord {
            sig: sig(9999),
            eack: SeqNum(7),
            ts: 1,
            trips: 0,
        };
        assert_eq!(gate.admit(&mouse), Admission::Denied);
    }

    #[test]
    fn sketch_rt_creates_rules_and_acks() {
        let mut t = rt(64, 2);
        let f = flow(1);
        assert_eq!(
            t.on_seq(&f, SeqNum(0), SeqNum(100), 10),
            RtSeqOutcome::Created
        );
        assert!(matches!(
            t.on_seq(&f, SeqNum(100), SeqNum(200), 20),
            RtSeqOutcome::Ruled(_)
        ));
        assert!(t.on_ack(&f, SeqNum(100), true, 30).match_pt());
        assert_eq!(t.occupancy(), 1);
        assert!(t.peek(&f).is_some());
    }

    #[test]
    fn sketch_rt_located_paths_match_plain_paths() {
        let mut plain = rt(16, 2);
        let mut located = rt(16, 2);
        for step in 0..300u32 {
            let f = flow(step % 19);
            let at = located.locate(&f);
            assert_eq!(at.sig(), located.sig(&f));
            located.prefetch(&at);
            let now = u64::from(step) * 100;
            if step % 3 == 2 {
                let ack = SeqNum(step * 40);
                assert_eq!(
                    plain.on_ack(&f, ack, true, now),
                    located.on_ack_at(&at, ack, true, now),
                    "ack step {step}"
                );
            } else {
                let (seq, eack) = (SeqNum(step * 100), SeqNum(step * 100 + 100));
                assert_eq!(
                    plain.on_seq(&f, seq, eack, now),
                    located.on_seq_at(&at, seq, eack, now),
                    "seq step {step}"
                );
            }
        }
        assert_eq!(plain.occupancy(), located.occupancy());
    }

    #[test]
    fn sketch_rt_evicts_the_least_recently_touched() {
        // A 2-slot, 1-way table: every flow maps to the single way set only
        // when the way size is 1... use 2 ways of 1 slot each so every flow
        // shares both ways and the third live flow must evict.
        let mut t = rt(2, 2);
        assert_eq!(
            t.on_seq(&flow(1), SeqNum(0), SeqNum(100), 10),
            RtSeqOutcome::Created
        );
        assert_eq!(
            t.on_seq(&flow(2), SeqNum(0), SeqNum(100), 20),
            RtSeqOutcome::Created
        );
        // Touch flow 1 so flow 2 becomes the LRU victim.
        assert!(matches!(
            t.on_seq(&flow(1), SeqNum(100), SeqNum(200), 30),
            RtSeqOutcome::Ruled(_)
        ));
        assert_eq!(
            t.on_seq(&flow(3), SeqNum(0), SeqNum(50), 40),
            RtSeqOutcome::CreatedEvicting
        );
        assert!(t.peek(&flow(1)).is_some(), "recently touched flow survived");
        assert!(t.peek(&flow(2)).is_none(), "LRU flow evicted");
        assert!(t.peek(&flow(3)).is_some());
        // The evicted flow's ACKs miss — loss, never fabrication.
        assert_eq!(
            t.on_ack(&flow(2), SeqNum(50), true, 50),
            RtAckOutcome::NoFlow
        );
    }

    #[test]
    fn sketch_rt_never_overwrites_under_capacity() {
        // With plenty of slots, distinct flows essentially all get created
        // without evicting: an eviction needs a *double* collision (both
        // ways full), which at ~1% per-way load is vanishingly rare.
        let mut t = rt(1 << 14, 2);
        let mut evictions = 0;
        for n in 0..200 {
            match t.on_seq(&flow(n), SeqNum(0), SeqNum(100), u64::from(n)) {
                RtSeqOutcome::Created => {}
                RtSeqOutcome::CreatedEvicting => evictions += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(
            evictions <= 2,
            "evictions at ~1% load in a 2-way table: {evictions}"
        );
    }

    #[test]
    fn sketch_pt_insert_match_and_overwrite() {
        let mut t = pt(2, 2);
        assert_eq!(t.insert_new(sig(1), SeqNum(100), 10), PtInsert::Stored);
        assert_eq!(t.insert_new(sig(2), SeqNum(200), 20), PtInsert::Stored);
        assert_eq!(t.occupancy(), 2);
        // Full: the oldest (ts=10) cell is overwritten.
        assert_eq!(
            t.insert_new(sig(3), SeqNum(300), 30),
            PtInsert::StoredOverwriting
        );
        assert_eq!(
            t.match_ack(sig(1), SeqNum(100)),
            None,
            "oldest was the victim"
        );
        assert_eq!(t.match_ack(sig(3), SeqNum(300)), Some(30));
        assert_eq!(t.match_ack(sig(2), SeqNum(200)), Some(20));
        // Matches consumed the records.
        assert_eq!(t.match_ack(sig(2), SeqNum(200)), None);
        assert_eq!(t.capacity(), 2);
    }

    #[test]
    fn sketch_pt_duplicate_identity_refreshes() {
        let mut t = pt(8, 2);
        t.insert_new(sig(1), SeqNum(100), 10);
        assert_eq!(t.insert_new(sig(1), SeqNum(100), 99), PtInsert::Stored);
        assert_eq!(t.occupancy(), 1);
        assert_eq!(t.match_ack(sig(1), SeqNum(100)), Some(99));
    }

    #[test]
    fn sketch_pt_probed_paths_match_plain_paths() {
        for ways in [1usize, 2, 4] {
            let mut plain = pt(32, ways);
            let mut probed = pt(32, ways);
            for step in 0..400u32 {
                let n = step % 29;
                let eack = SeqNum(100 + step % 11);
                let id = PacketId::new(sig(n), eack);
                let p = probed.probe(&id);
                probed.prefetch(&p);
                if step % 3 == 2 {
                    assert_eq!(
                        plain.match_ack(sig(n), eack),
                        probed.match_ack_probed(sig(n), eack, &p),
                        "match step {step} ways {ways}"
                    );
                } else {
                    assert_eq!(
                        plain.insert_new(sig(n), eack, u64::from(step)),
                        probed.insert_new_probed(sig(n), eack, u64::from(step), &p),
                        "insert step {step} ways {ways}"
                    );
                }
            }
            assert_eq!(plain.occupancy(), probed.occupancy());
        }
    }

    /// Rotation sweeps by the recency stamp (RT) / send timestamp (PT):
    /// entries at or past the cutoff survive, older ones are cleared.
    #[test]
    fn sketch_rotation_sweeps_by_cutoff() {
        let mut t = rt(64, 2);
        t.on_seq(&flow(1), SeqNum(0), SeqNum(100), 1_000);
        t.on_seq(&flow(2), SeqNum(0), SeqNum(100), 9_000);
        assert_eq!(t.rotate(5_000), (1, 1));
        assert!(t.peek(&flow(1)).is_none());
        assert!(t.peek(&flow(2)).is_some());

        let mut p = pt(64, 2);
        p.insert_new(sig(1), SeqNum(100), 1_000);
        p.insert_new(sig(2), SeqNum(200), 9_000);
        assert_eq!(p.rotate(5_000), (1, 1));
        assert_eq!(p.match_ack(sig(1), SeqNum(100)), None);
        assert_eq!(p.match_ack(sig(2), SeqNum(200)), Some(9_000));
    }

    /// Snapshot then restore into fresh sketch tables: live entries,
    /// recency stamps, and the admission gate's elephant set all survive.
    #[test]
    fn sketch_snapshot_restore_round_trips() {
        let mut t = rt(64, 2);
        t.on_seq(&flow(1), SeqNum(0), SeqNum(100), 1_000);
        t.on_seq(&flow(2), SeqNum(0), SeqNum(100), 9_000);
        let mut w = SnapWriter::new();
        t.snapshot_into(&mut w);
        let rt_payload = w.into_payload();
        let mut t2 = rt(64, 2);
        t2.restore_from(&mut SnapReader::new(&rt_payload)).unwrap();
        assert_eq!(t2.occupancy(), 2);
        assert_eq!(t2.peek(&flow(1)), t.peek(&flow(1)));
        // Recency stamps survived: the same cutoff sweeps the same entry.
        assert_eq!(t2.rotate(5_000), (1, 1));

        let mut p = pt(64, 2);
        p.insert_new(sig(1), SeqNum(100), 1_000);
        p.insert_new(sig(2), SeqNum(200), 9_000);
        let mut w = SnapWriter::new();
        p.snapshot_into(&mut w);
        let pt_payload = w.into_payload();
        let mut p2 = pt(64, 2);
        p2.restore_from(&mut SnapReader::new(&pt_payload)).unwrap();
        assert_eq!(p2.match_ack(sig(1), SeqNum(100)), Some(1_000));
        assert_eq!(p2.match_ack(sig(2), SeqNum(200)), Some(9_000));

        let mut gate = AdmissionGate::new(63, 8, 0x5EED); // coin ~never admits
        for _ in 0..50 {
            gate.on_tracked(sig(42));
        }
        let mut w = SnapWriter::new();
        gate.snapshot_into(&mut w);
        let gate_payload = w.into_payload();
        let mut gate2 = AdmissionGate::new(63, 8, 0x5EED);
        gate2
            .restore_from(&mut SnapReader::new(&gate_payload))
            .unwrap();
        let rec = PtRecord {
            sig: sig(42),
            eack: SeqNum(7),
            ts: 1,
            trips: 0,
        };
        assert_eq!(
            gate2.admit(&rec),
            Admission::Heavy,
            "elephant set survived the restore"
        );
    }

    #[test]
    fn sketch_restores_reject_mismatched_geometry() {
        let t = rt(64, 2);
        let mut w = SnapWriter::new();
        t.snapshot_into(&mut w);
        let payload = w.into_payload();
        let mut wrong = rt(32, 2);
        assert!(matches!(
            wrong.restore_from(&mut SnapReader::new(&payload)),
            Err(SnapshotError::Mismatch(_))
        ));

        let gate = AdmissionGate::new(3, 8, 0x5EED);
        let mut w = SnapWriter::new();
        gate.snapshot_into(&mut w);
        let payload = w.into_payload();
        let mut wrong_seed = AdmissionGate::new(3, 8, 0xBEEF);
        assert!(matches!(
            wrong_seed.restore_from(&mut SnapReader::new(&payload)),
            Err(SnapshotError::Mismatch(_))
        ));
    }

    #[test]
    fn sketch_pt_never_fabricates() {
        let mut t = pt(64, 4);
        for n in 0..500u32 {
            t.insert_new(sig(n), SeqNum(n * 10), u64::from(n));
        }
        // ACKs for never-inserted identities miss (fingerprint verification)
        // — modulo the ~2^-32 collision probability, which these 500 probes
        // stay clear of for this pinned hash seed.
        for n in 0..500u32 {
            assert_eq!(t.match_ack(sig(n + 10_000), SeqNum(n * 10 + 7)), None);
        }
    }
}
