//! Operator flow selection (paper §4, "Specifying target flows"): rules
//! installable from the control plane restricting which flows Dart tracks,
//! by source/destination prefix and port range — no recompilation or
//! redeployment needed.
//!
//! On hardware this is the ternary `flow_select` table; here it is a rule
//! list evaluated against each packet's data-direction flow key.

use dart_packet::FlowKey;
use std::net::Ipv4Addr;
use std::ops::RangeInclusive;

/// One match criterion on an address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefixMatch {
    net: u32,
    mask: u32,
}

impl PrefixMatch {
    /// Match addresses inside `addr/len`.
    pub fn new(addr: Ipv4Addr, len: u8) -> PrefixMatch {
        assert!(len <= 32, "prefix length out of range");
        let mask = if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        };
        PrefixMatch {
            net: u32::from(addr) & mask,
            mask,
        }
    }

    /// Does `addr` fall inside this prefix?
    pub fn matches(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & self.mask == self.net
    }
}

/// One flow-selection rule; unspecified fields are wildcards. The rule is
/// evaluated against the **data-direction** flow key (src = data sender).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowRule {
    /// Source prefix (data sender side).
    pub src: Option<PrefixMatch>,
    /// Destination prefix (data receiver side).
    pub dst: Option<PrefixMatch>,
    /// Source port range.
    pub src_ports: Option<RangeInclusive<u16>>,
    /// Destination port range.
    pub dst_ports: Option<RangeInclusive<u16>>,
}

impl FlowRule {
    /// Match everything.
    pub fn any() -> FlowRule {
        FlowRule::default()
    }

    /// Restrict to a destination prefix.
    pub fn to_prefix(addr: Ipv4Addr, len: u8) -> FlowRule {
        FlowRule {
            dst: Some(PrefixMatch::new(addr, len)),
            ..FlowRule::default()
        }
    }

    /// Restrict to a destination port.
    pub fn to_port(port: u16) -> FlowRule {
        FlowRule {
            dst_ports: Some(port..=port),
            ..FlowRule::default()
        }
    }

    /// Does `flow` satisfy every specified criterion?
    pub fn matches(&self, flow: &FlowKey) -> bool {
        self.src.is_none_or(|p| p.matches(flow.src_ip))
            && self.dst.is_none_or(|p| p.matches(flow.dst_ip))
            && self
                .src_ports
                .as_ref()
                .is_none_or(|r| r.contains(&flow.src_port))
            && self
                .dst_ports
                .as_ref()
                .is_none_or(|r| r.contains(&flow.dst_port))
    }
}

/// The installed rule set: a flow is tracked when **any** rule matches
/// either direction of the connection (ACKs travel opposite to data). An
/// empty rule set tracks everything — the default deployment.
#[derive(Clone, Debug, Default)]
pub struct FlowFilter {
    rules: Vec<FlowRule>,
}

impl FlowFilter {
    /// Track everything.
    pub fn all() -> FlowFilter {
        FlowFilter::default()
    }

    /// Build from rules.
    pub fn new(rules: impl IntoIterator<Item = FlowRule>) -> FlowFilter {
        FlowFilter {
            rules: rules.into_iter().collect(),
        }
    }

    /// Install an additional rule at runtime (the control-plane call).
    pub fn install(&mut self, rule: FlowRule) {
        self.rules.push(rule);
    }

    /// Remove all rules (back to track-everything).
    pub fn clear(&mut self) {
        self.rules.clear();
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are installed (track everything).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Should packets of this data-direction flow be tracked?
    pub fn matches(&self, data_flow: &FlowKey) -> bool {
        if self.rules.is_empty() {
            return true;
        }
        let rev = data_flow.reverse();
        self.rules
            .iter()
            .any(|r| r.matches(data_flow) || r.matches(&rev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(src: [u8; 4], sport: u16, dst: [u8; 4], dport: u16) -> FlowKey {
        FlowKey::new(Ipv4Addr::from(src), sport, Ipv4Addr::from(dst), dport)
    }

    #[test]
    fn empty_filter_tracks_everything() {
        let f = FlowFilter::all();
        assert!(f.is_empty());
        assert!(f.matches(&flow([10, 0, 0, 1], 1, [8, 8, 8, 8], 2)));
    }

    #[test]
    fn prefix_rule_matches_either_direction() {
        let f = FlowFilter::new([FlowRule::to_prefix(Ipv4Addr::new(93, 184, 216, 0), 24)]);
        // Data toward the prefix.
        assert!(f.matches(&flow([10, 0, 0, 1], 1, [93, 184, 216, 34], 443)));
        // Data *from* the prefix (reverse direction of the same connection).
        assert!(f.matches(&flow([93, 184, 216, 34], 443, [10, 0, 0, 1], 1)));
        // Unrelated flow.
        assert!(!f.matches(&flow([10, 0, 0, 1], 1, [1, 1, 1, 1], 443)));
    }

    #[test]
    fn port_ranges_and_conjunction() {
        let rule = FlowRule {
            dst: Some(PrefixMatch::new(Ipv4Addr::new(10, 9, 0, 0), 16)),
            dst_ports: Some(440..=450),
            ..FlowRule::default()
        };
        let f = FlowFilter::new([rule]);
        assert!(f.matches(&flow([1, 2, 3, 4], 9999, [10, 9, 1, 1], 443)));
        assert!(!f.matches(&flow([1, 2, 3, 4], 9999, [10, 9, 1, 1], 80)));
        assert!(!f.matches(&flow([1, 2, 3, 4], 9999, [10, 8, 1, 1], 443)));
    }

    #[test]
    fn rules_are_disjunctive() {
        let mut f = FlowFilter::new([FlowRule::to_port(443)]);
        f.install(FlowRule::to_port(80));
        assert_eq!(f.len(), 2);
        assert!(f.matches(&flow([1, 1, 1, 1], 5, [2, 2, 2, 2], 443)));
        assert!(f.matches(&flow([1, 1, 1, 1], 5, [2, 2, 2, 2], 80)));
        assert!(!f.matches(&flow([1, 1, 1, 1], 5, [2, 2, 2, 2], 22)));
        f.clear();
        assert!(f.matches(&flow([1, 1, 1, 1], 5, [2, 2, 2, 2], 22)));
    }

    #[test]
    fn zero_length_prefix_is_wildcard() {
        let p = PrefixMatch::new(Ipv4Addr::new(1, 2, 3, 4), 0);
        assert!(p.matches(Ipv4Addr::new(255, 255, 255, 255)));
    }
}
