//! The per-flow measurement range: the Fig. 4 state machine.
//!
//! A flow's measurement range `[left, right]` is the contiguous
//! sequence-number byte range that can still produce unambiguous RTT
//! samples. The left edge is the latest byte acknowledged (or the highest
//! byte touched by a retransmission/reordering ambiguity); the right edge is
//! the latest byte transmitted. All transitions below follow paper §3.1:
//!
//! * in-order data extends the right edge (Fig. 4a);
//! * in-order ACKs advance the left edge (Fig. 4b);
//! * a data packet at or below the right edge is a retransmission, an ACK
//!   exactly at the left edge is a duplicate ACK — either collapses the
//!   range to `[right, right]`, declaring everything in flight ambiguous
//!   (Fig. 4c);
//! * a data packet starting beyond the right edge leaves a hole; only the
//!   highest contiguous byte range is kept (Fig. 4d);
//! * sequence-number wraparound resets the left edge to zero, foregoing
//!   samples at the top of the space (§4).

use dart_packet::SeqNum;

/// A flow's measurement range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeasurementRange {
    /// Latest byte ACKed, or highest ambiguous byte after a collapse.
    pub left: SeqNum,
    /// Latest byte transmitted.
    pub right: SeqNum,
}

/// What the range tracker decided about a data (SEQ) packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqVerdict {
    /// In-order new data: right edge extended; track the packet.
    Extend,
    /// New data beyond a hole: range snapped to the packet; track it.
    HoleReset,
    /// Retransmission (eACK at or below the right edge): range collapsed;
    /// do not track.
    Retransmission,
    /// Sequence-number wraparound: left edge reset to zero; the wrapping
    /// packet itself is not tracked.
    Wraparound,
}

impl SeqVerdict {
    /// Should the packet be inserted into the Packet Tracker?
    pub fn track(self) -> bool {
        matches!(self, SeqVerdict::Extend | SeqVerdict::HoleReset)
    }
}

/// What the range tracker decided about an ACK packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckVerdict {
    /// ACK inside `(left, right]`: left edge advanced; match against the
    /// Packet Tracker for an RTT sample.
    Advance,
    /// ACK exactly at the left edge: duplicate ACK, reordering inferred;
    /// range collapsed, no sample.
    DuplicateCollapse,
    /// ACK below the left edge: acknowledges bytes already deemed
    /// ambiguous; ignored.
    Stale,
    /// ACK above the right edge: optimistic ACK (§7); ignored.
    Optimistic,
}

impl AckVerdict {
    /// Should the Packet Tracker be consulted for a sample?
    pub fn match_pt(self) -> bool {
        matches!(self, AckVerdict::Advance)
    }
}

impl MeasurementRange {
    /// Open a range for a flow first seen with a data packet covering
    /// `[seq, eack)`.
    pub fn open(seq: SeqNum, eack: SeqNum) -> MeasurementRange {
        MeasurementRange {
            left: seq,
            right: eack,
        }
    }

    /// True when the range has been collapsed (no bytes in flight are
    /// unambiguous). A collapsed entry may be safely overwritten by a new
    /// flow on a hash collision (paper §3.1).
    pub fn is_collapsed(&self) -> bool {
        self.left == self.right
    }

    /// Collapse the range: everything in flight is ambiguous.
    pub fn collapse(&mut self) {
        self.left = self.right;
    }

    /// Apply a data packet occupying `[seq, eack)` (Fig. 4a/4c/4d and the
    /// §4 wraparound rule). Returns the verdict; the packet should be
    /// tracked only when `verdict.track()`.
    pub fn on_seq(&mut self, seq: SeqNum, eack: SeqNum) -> SeqVerdict {
        // Wraparound: the segment crosses zero going forward. Detected on
        // raw values, as the hardware does.
        if eack.raw() < seq.raw() {
            self.left = SeqNum::ZERO;
            self.right = eack;
            return SeqVerdict::Wraparound;
        }
        if eack.gt(self.right) {
            if seq.gt(self.right) {
                // Hole in the sequence space: keep only the highest
                // contiguous byte range (Fig. 4d).
                self.left = seq;
                self.right = eack;
                return SeqVerdict::HoleReset;
            }
            // In-order (or overlapping-but-advancing) data.
            self.right = eack;
            return SeqVerdict::Extend;
        }
        // eACK at or below the right edge: retransmission. Collapse so that
        // the now-ambiguous in-flight bytes can never produce samples.
        self.collapse();
        SeqVerdict::Retransmission
    }

    /// Apply an ACK with acknowledgment number `ack` (Fig. 4b/4c and the
    /// §3.1 rules for untracked ACKs). `pure` is true when the packet
    /// carries no payload: only a *pure* ACK at the left edge is a TCP
    /// duplicate ACK — data segments re-asserting the edge (a one-way bulk
    /// phase) are normal and must not collapse the range.
    pub fn on_ack(&mut self, ack: SeqNum, pure: bool) -> AckVerdict {
        if ack == self.left {
            if !pure {
                return AckVerdict::Stale;
            }
            // Duplicate ACK: explicit marker of loss or reordering.
            self.collapse();
            return AckVerdict::DuplicateCollapse;
        }
        if ack.in_range(self.left, self.right) {
            self.left = ack;
            return AckVerdict::Advance;
        }
        if ack.lt(self.left) {
            AckVerdict::Stale
        } else {
            AckVerdict::Optimistic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(l: u32, r: u32) -> MeasurementRange {
        MeasurementRange {
            left: SeqNum(l),
            right: SeqNum(r),
        }
    }

    #[test]
    fn normal_seq_extends_right_edge() {
        let mut mr = range(100, 200);
        assert_eq!(mr.on_seq(SeqNum(200), SeqNum(300)), SeqVerdict::Extend);
        assert_eq!(mr, range(100, 300));
    }

    #[test]
    fn normal_ack_advances_left_edge() {
        let mut mr = range(100, 300);
        assert_eq!(mr.on_ack(SeqNum(200), true), AckVerdict::Advance);
        assert_eq!(mr, range(200, 300));
        assert_eq!(mr.on_ack(SeqNum(300), true), AckVerdict::Advance);
        assert!(mr.is_collapsed());
    }

    #[test]
    fn retransmission_collapses() {
        let mut mr = range(100, 300);
        // eACK 250 <= right edge 300: retransmitted bytes.
        let v = mr.on_seq(SeqNum(150), SeqNum(250));
        assert_eq!(v, SeqVerdict::Retransmission);
        assert!(!v.track());
        assert_eq!(mr, range(300, 300));
        assert!(mr.is_collapsed());
    }

    #[test]
    fn exact_replica_is_retransmission() {
        let mut mr = range(100, 300);
        assert_eq!(
            mr.on_seq(SeqNum(200), SeqNum(300)),
            SeqVerdict::Retransmission
        );
    }

    #[test]
    fn duplicate_ack_collapses() {
        let mut mr = range(100, 300);
        assert_eq!(mr.on_ack(SeqNum(100), true), AckVerdict::DuplicateCollapse);
        assert_eq!(mr, range(300, 300));
    }

    #[test]
    fn stale_and_optimistic_acks_ignored() {
        let mut mr = range(100, 300);
        assert_eq!(mr.on_ack(SeqNum(50), true), AckVerdict::Stale);
        assert_eq!(mr, range(100, 300)); // unchanged
        assert_eq!(mr.on_ack(SeqNum(400), true), AckVerdict::Optimistic);
        assert_eq!(mr, range(100, 300)); // unchanged
        assert!(!AckVerdict::Stale.match_pt());
        assert!(!AckVerdict::Optimistic.match_pt());
    }

    #[test]
    fn data_packet_at_left_edge_does_not_collapse() {
        // A piggybacked ACK re-asserting the edge during a one-way bulk
        // phase is not a duplicate ACK.
        let mut mr = range(100, 300);
        assert_eq!(mr.on_ack(SeqNum(100), false), AckVerdict::Stale);
        assert_eq!(mr, range(100, 300));
        // The genuine pure dup-ACK still collapses.
        assert_eq!(mr.on_ack(SeqNum(100), true), AckVerdict::DuplicateCollapse);
    }

    #[test]
    fn hole_keeps_highest_range_only() {
        let mut mr = range(100, 200);
        // Bytes [250, 350) arrive: [200, 250) is a hole.
        assert_eq!(mr.on_seq(SeqNum(250), SeqNum(350)), SeqVerdict::HoleReset);
        assert_eq!(mr, range(250, 350));
        // The hole-filling packet later looks like a retransmission.
        assert_eq!(
            mr.on_seq(SeqNum(200), SeqNum(250)),
            SeqVerdict::Retransmission
        );
    }

    #[test]
    fn after_collapse_new_data_resumes_tracking() {
        let mut mr = range(100, 300);
        mr.on_seq(SeqNum(150), SeqNum(250)); // retransmission, collapse to [300,300]
        assert_eq!(mr.on_seq(SeqNum(300), SeqNum(400)), SeqVerdict::Extend);
        assert_eq!(mr, range(300, 400));
    }

    #[test]
    fn collapsed_range_ack_at_edge_is_duplicate() {
        let mut mr = range(300, 300);
        assert_eq!(mr.on_ack(SeqNum(300), true), AckVerdict::DuplicateCollapse);
    }

    #[test]
    fn wraparound_resets_left_to_zero() {
        let mut mr = range(u32::MAX - 5000, u32::MAX - 1000);
        let v = mr.on_seq(SeqNum(u32::MAX - 1000), SeqNum(460)); // crosses zero
        assert_eq!(v, SeqVerdict::Wraparound);
        assert!(!v.track());
        assert_eq!(mr.left, SeqNum::ZERO);
        assert_eq!(mr.right, SeqNum(460));
        // ACKs for pre-wrap bytes are now below the left edge: ignored,
        // foregoing top-of-space samples as the paper documents.
        assert_eq!(mr.on_ack(SeqNum(u32::MAX - 2000), true), AckVerdict::Stale);
        // Post-wrap traffic proceeds normally.
        assert_eq!(mr.on_seq(SeqNum(460), SeqNum(1000)), SeqVerdict::Extend);
        assert_eq!(mr.on_ack(SeqNum(460), true), AckVerdict::Advance);
    }

    #[test]
    fn circular_comparisons_span_wrap_seamlessly_after_reset() {
        let mut mr = MeasurementRange::open(SeqNum(u32::MAX - 100), SeqNum(u32::MAX - 50));
        // Data continues to just below the wrap point.
        assert_eq!(
            mr.on_seq(SeqNum(u32::MAX - 50), SeqNum(u32::MAX)),
            SeqVerdict::Extend
        );
        // ACK inside the range.
        assert_eq!(mr.on_ack(SeqNum(u32::MAX - 50), true), AckVerdict::Advance);
    }

    #[test]
    fn open_tracks_first_packet_bounds() {
        let mr = MeasurementRange::open(SeqNum(500), SeqNum(900));
        assert_eq!(mr.left, SeqNum(500));
        assert_eq!(mr.right, SeqNum(900));
        assert!(!mr.is_collapsed());
    }
}
