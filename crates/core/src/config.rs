//! Configuration of a Dart engine instance.

use dart_packet::{Nanos, SignatureWidth};

/// Whether handshake packets (SYN / SYN-ACK) are monitored.
///
/// Skipping them (`Skip`, the deployed default) makes Dart robust to SYN
/// floods and saves Range Tracker memory for the 72.5% of campus connections
/// that never complete a handshake, at the cost of ~4% of samples (paper
/// §3.1, Fig. 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SynPolicy {
    /// Track SYN/SYN-ACK like data packets (`+SYN` in Fig. 9/10).
    Include,
    /// Ignore any packet with the SYN flag (`-SYN`, the default).
    #[default]
    Skip,
}

/// Which leg of the path is measured (paper §2.1, Fig. 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Leg {
    /// Monitor ↔ Internet: data outbound, ACKs inbound (the paper's §6
    /// evaluation setting).
    #[default]
    External,
    /// Campus host ↔ monitor: data inbound, ACKs outbound (§5's wired vs
    /// wireless experiment).
    Internal,
    /// Both legs simultaneously; dual-role packets cost one recirculation
    /// each, as in the hardware prototype (§5).
    Both,
}

/// Range Tracker sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtMode {
    /// Fully associative, unbounded: the `tcptrace_const` idealization
    /// used as the §6 baseline.
    Unlimited,
    /// A one-way associative hash table of `slots` entries, as on hardware.
    Constrained {
        /// Number of slots.
        slots: usize,
    },
}

/// Packet Tracker sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PtMode {
    /// Fully associative, unbounded.
    Unlimited,
    /// `slots` total entries divided evenly across `stages` one-way
    /// associative stages (paper §6.2).
    Constrained {
        /// Total slots across all stages.
        slots: usize,
        /// Number of stages (1 = the Tofino 1 layout).
        stages: usize,
    },
}

/// Full engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct DartConfig {
    /// Handshake policy.
    pub syn_policy: SynPolicy,
    /// Measured leg.
    pub leg: Leg,
    /// Range Tracker mode.
    pub rt: RtMode,
    /// Packet Tracker mode.
    pub pt: PtMode,
    /// Flow-signature width in constrained tables.
    pub sig_width: SignatureWidth,
    /// Maximum recirculations per evicted record (paper §3.2's safeguard;
    /// swept in Fig. 13). Zero disables recirculation entirely.
    pub max_recirc: u32,
    /// Delay before a recirculated record re-enters the ingress pipeline.
    pub recirc_delay: Nanos,
    /// Slots in the small fully-associative victim cache holding evicted
    /// records before they cost a recirculation (§3.2/§7's "small cache of
    /// heavy flows after the RT"). Zero disables the cache.
    pub victim_cache: usize,
    /// Enable the §7 recirculation-avoidance approximation: evicted records
    /// are validated against a *copy* of the Range Tracker placed after the
    /// Packet Tracker instead of recirculating. The copy lags the original
    /// by this sync delay, so validation is approximate — it trades
    /// recirculation bandwidth for memory and a little accuracy.
    pub rt_copy_sync: Option<Nanos>,
}

impl Default for DartConfig {
    /// The paper's chosen operating point: `-SYN`, external leg, large RT,
    /// 2^17-slot single-stage PT, one recirculation allowed.
    fn default() -> Self {
        DartConfig {
            syn_policy: SynPolicy::Skip,
            leg: Leg::External,
            rt: RtMode::Constrained { slots: 1 << 20 },
            pt: PtMode::Constrained {
                slots: 1 << 17,
                stages: 1,
            },
            sig_width: SignatureWidth::W32,
            max_recirc: 1,
            recirc_delay: 10_000, // 10 µs: a handful of pipeline passes
            victim_cache: 0,
            rt_copy_sync: None,
        }
    }
}

impl DartConfig {
    /// The unlimited-memory idealization (`tcptrace_const`): fully
    /// associative RT and PT, no evictions, no recirculations.
    pub fn unlimited() -> DartConfig {
        DartConfig {
            rt: RtMode::Unlimited,
            pt: PtMode::Unlimited,
            ..DartConfig::default()
        }
    }

    /// Builder-style: set the SYN policy.
    pub fn with_syn(mut self, p: SynPolicy) -> Self {
        self.syn_policy = p;
        self
    }

    /// Builder-style: set the measured leg.
    pub fn with_leg(mut self, leg: Leg) -> Self {
        self.leg = leg;
        self
    }

    /// Builder-style: constrained PT with `slots` total and `stages` stages.
    pub fn with_pt(mut self, slots: usize, stages: usize) -> Self {
        assert!(stages >= 1, "PT needs at least one stage");
        assert!(slots >= stages, "PT needs at least one slot per stage");
        self.pt = PtMode::Constrained { slots, stages };
        self
    }

    /// Builder-style: constrained RT with `slots` entries.
    pub fn with_rt(mut self, slots: usize) -> Self {
        assert!(slots >= 1, "RT needs at least one slot");
        self.rt = RtMode::Constrained { slots };
        self
    }

    /// Builder-style: set the recirculation cap.
    pub fn with_max_recirc(mut self, n: u32) -> Self {
        self.max_recirc = n;
        self
    }

    /// Builder-style: enable the victim cache with `slots` entries.
    pub fn with_victim_cache(mut self, slots: usize) -> Self {
        self.victim_cache = slots;
        self
    }

    /// Builder-style: enable the RT-copy approximation with the given sync
    /// delay.
    pub fn with_rt_copy(mut self, sync: Nanos) -> Self {
        self.rt_copy_sync = Some(sync);
        self
    }

    /// True when a data packet traveling `dir` should be processed as SEQ.
    pub fn seq_role_active(&self, dir: dart_packet::Direction) -> bool {
        use dart_packet::Direction::*;
        match self.leg {
            Leg::External => dir == Outbound,
            Leg::Internal => dir == Inbound,
            Leg::Both => true,
        }
    }

    /// True when an ACK traveling `dir` should be processed as ACK.
    pub fn ack_role_active(&self, dir: dart_packet::Direction) -> bool {
        use dart_packet::Direction::*;
        match self.leg {
            Leg::External => dir == Inbound,
            Leg::Internal => dir == Outbound,
            Leg::Both => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::Direction;

    #[test]
    fn default_matches_paper_operating_point() {
        let c = DartConfig::default();
        assert_eq!(c.syn_policy, SynPolicy::Skip);
        assert_eq!(c.leg, Leg::External);
        assert_eq!(
            c.pt,
            PtMode::Constrained {
                slots: 1 << 17,
                stages: 1
            }
        );
        assert_eq!(c.max_recirc, 1);
    }

    #[test]
    fn unlimited_has_no_tables() {
        let c = DartConfig::unlimited();
        assert_eq!(c.rt, RtMode::Unlimited);
        assert_eq!(c.pt, PtMode::Unlimited);
    }

    #[test]
    fn external_leg_roles() {
        let c = DartConfig::default();
        assert!(c.seq_role_active(Direction::Outbound));
        assert!(!c.seq_role_active(Direction::Inbound));
        assert!(c.ack_role_active(Direction::Inbound));
        assert!(!c.ack_role_active(Direction::Outbound));
    }

    #[test]
    fn internal_leg_roles_are_mirrored() {
        let c = DartConfig::default().with_leg(Leg::Internal);
        assert!(c.seq_role_active(Direction::Inbound));
        assert!(c.ack_role_active(Direction::Outbound));
        assert!(!c.seq_role_active(Direction::Outbound));
    }

    #[test]
    fn both_legs_activate_everything() {
        let c = DartConfig::default().with_leg(Leg::Both);
        for d in [Direction::Inbound, Direction::Outbound] {
            assert!(c.seq_role_active(d));
            assert!(c.ack_role_active(d));
        }
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_rejected() {
        DartConfig::default().with_pt(1024, 0);
    }
}
