//! Configuration of a Dart engine instance.

use dart_packet::{Nanos, SignatureWidth};

/// Whether handshake packets (SYN / SYN-ACK) are monitored.
///
/// Skipping them (`Skip`, the deployed default) makes Dart robust to SYN
/// floods and saves Range Tracker memory for the 72.5% of campus connections
/// that never complete a handshake, at the cost of ~4% of samples (paper
/// §3.1, Fig. 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SynPolicy {
    /// Track SYN/SYN-ACK like data packets (`+SYN` in Fig. 9/10).
    Include,
    /// Ignore any packet with the SYN flag (`-SYN`, the default).
    #[default]
    Skip,
}

/// Which leg of the path is measured (paper §2.1, Fig. 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Leg {
    /// Monitor ↔ Internet: data outbound, ACKs inbound (the paper's §6
    /// evaluation setting).
    #[default]
    External,
    /// Campus host ↔ monitor: data inbound, ACKs outbound (§5's wired vs
    /// wireless experiment).
    Internal,
    /// Both legs simultaneously; dual-role packets cost one recirculation
    /// each, as in the hardware prototype (§5).
    Both,
}

/// Range Tracker sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtMode {
    /// Fully associative, unbounded: the `tcptrace_const` idealization
    /// used as the §6 baseline.
    Unlimited,
    /// A one-way associative hash table of `slots` entries, as on hardware.
    Constrained {
        /// Number of slots.
        slots: usize,
    },
    /// A DUNE-style set-associative sketch of `slots` total entries split
    /// across `ways` independently hashed ways, with recency-based
    /// eviction: a new flow landing on a fully occupied way set overwrites
    /// the least-recently-touched occupant instead of being rejected. Under
    /// churn this reclaims slots leaked to dead flows, stretching a fixed
    /// SRAM budget 10×–100× further at the cost of bounded, *counted*
    /// sample loss ([`crate::EngineStats::sketch_overwritten`]).
    Sketch {
        /// Total entries across all ways.
        slots: usize,
        /// Number of ways (1 or 2; each way is its own hash function).
        ways: usize,
    },
}

/// Packet Tracker sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PtMode {
    /// Fully associative, unbounded.
    Unlimited,
    /// `slots` total entries divided evenly across `stages` one-way
    /// associative stages (paper §6.2).
    Constrained {
        /// Total slots across all stages.
        slots: usize,
        /// Number of stages (1 = the Tofino 1 layout).
        stages: usize,
    },
    /// A compact fingerprint sketch: `slots` cells of `(fingerprint, ts)`
    /// pairs — 80 bits vs. the exact record's 112 — split across `ways`
    /// hashed ways. Insertion into a full way set overwrites the
    /// oldest-timestamp cell (counted, never recirculated); matching
    /// verifies the fingerprint before emitting a sample.
    Sketch {
        /// Total cells across all ways.
        slots: usize,
        /// Number of ways (each with its own hash function).
        ways: usize,
    },
}

/// How evicted Packet Tracker records are admitted to the recirculation
/// port (the `dart@precision` backend's probabilistic-recirculation gate,
/// after Ben Basat et al.).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Every eviction may recirculate (subject only to the recirc cap and
    /// analytics filter) — the paper's behaviour and the default.
    #[default]
    All,
    /// Spend the recirculation budget only on flows surviving a seeded
    /// coin flip, with a CMS-backed heavy-hitter bypass so elephant flows
    /// keep their in-flight measurements deterministically.
    Probabilistic {
        /// Coin-flip survival is `2^-sample_shift` (e.g. 3 → 1/8 of
        /// evictions recirculate).
        sample_shift: u32,
        /// Number of flows tracked as heavy hitters (admitted regardless of
        /// the coin flip). Zero disables the bypass.
        hh_capacity: usize,
        /// Seed for the deterministic coin flip (and CMS hashing).
        seed: u64,
    },
}

/// Which flow-state backend family a config describes — a convenience view
/// over [`RtMode`]/[`PtMode`]/[`AdmissionMode`] used by the registry and
/// CLI (`--backend exact|sketch|precision`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backend {
    /// Exact register tables (the reference implementation).
    #[default]
    Exact,
    /// Sketch RT/PT (recency-aged, fingerprint cells).
    Sketch,
    /// Exact tables + probabilistic recirculation admission.
    Precision,
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Backend, String> {
        match s {
            "exact" => Ok(Backend::Exact),
            "sketch" => Ok(Backend::Sketch),
            "precision" => Ok(Backend::Precision),
            other => Err(format!(
                "unknown backend {other:?} (expected exact|sketch|precision)"
            )),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Exact => "exact",
            Backend::Sketch => "sketch",
            Backend::Precision => "precision",
        })
    }
}

/// Full engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct DartConfig {
    /// Handshake policy.
    pub syn_policy: SynPolicy,
    /// Measured leg.
    pub leg: Leg,
    /// Range Tracker mode.
    pub rt: RtMode,
    /// Packet Tracker mode.
    pub pt: PtMode,
    /// Flow-signature width in constrained tables.
    pub sig_width: SignatureWidth,
    /// Maximum recirculations per evicted record (paper §3.2's safeguard;
    /// swept in Fig. 13). Zero disables recirculation entirely.
    pub max_recirc: u32,
    /// Delay before a recirculated record re-enters the ingress pipeline.
    pub recirc_delay: Nanos,
    /// Slots in the small fully-associative victim cache holding evicted
    /// records before they cost a recirculation (§3.2/§7's "small cache of
    /// heavy flows after the RT"). Zero disables the cache.
    pub victim_cache: usize,
    /// Enable the §7 recirculation-avoidance approximation: evicted records
    /// are validated against a *copy* of the Range Tracker placed after the
    /// Packet Tracker instead of recirculating. The copy lags the original
    /// by this sync delay, so validation is approximate — it trades
    /// recirculation bandwidth for memory and a little accuracy.
    pub rt_copy_sync: Option<Nanos>,
    /// Recirculation admission policy (the `precision` backend's gate).
    pub admission: AdmissionMode,
}

impl Default for DartConfig {
    /// The paper's chosen operating point: `-SYN`, external leg, large RT,
    /// 2^17-slot single-stage PT, one recirculation allowed.
    fn default() -> Self {
        DartConfig {
            syn_policy: SynPolicy::Skip,
            leg: Leg::External,
            rt: RtMode::Constrained { slots: 1 << 20 },
            pt: PtMode::Constrained {
                slots: 1 << 17,
                stages: 1,
            },
            sig_width: SignatureWidth::W32,
            max_recirc: 1,
            recirc_delay: 10_000, // 10 µs: a handful of pipeline passes
            victim_cache: 0,
            rt_copy_sync: None,
            admission: AdmissionMode::All,
        }
    }
}

impl DartConfig {
    /// The unlimited-memory idealization (`tcptrace_const`): fully
    /// associative RT and PT, no evictions, no recirculations.
    pub fn unlimited() -> DartConfig {
        DartConfig {
            rt: RtMode::Unlimited,
            pt: PtMode::Unlimited,
            ..DartConfig::default()
        }
    }

    /// Builder-style: set the SYN policy.
    pub fn with_syn(mut self, p: SynPolicy) -> Self {
        self.syn_policy = p;
        self
    }

    /// Builder-style: set the measured leg.
    pub fn with_leg(mut self, leg: Leg) -> Self {
        self.leg = leg;
        self
    }

    /// Builder-style: constrained PT with `slots` total and `stages` stages.
    pub fn with_pt(mut self, slots: usize, stages: usize) -> Self {
        assert!(stages >= 1, "PT needs at least one stage");
        assert!(slots >= stages, "PT needs at least one slot per stage");
        self.pt = PtMode::Constrained { slots, stages };
        self
    }

    /// Builder-style: constrained RT with `slots` entries.
    pub fn with_rt(mut self, slots: usize) -> Self {
        assert!(slots >= 1, "RT needs at least one slot");
        self.rt = RtMode::Constrained { slots };
        self
    }

    /// Builder-style: set the recirculation cap.
    pub fn with_max_recirc(mut self, n: u32) -> Self {
        self.max_recirc = n;
        self
    }

    /// Builder-style: enable the victim cache with `slots` entries.
    pub fn with_victim_cache(mut self, slots: usize) -> Self {
        self.victim_cache = slots;
        self
    }

    /// Builder-style: enable the RT-copy approximation with the given sync
    /// delay.
    pub fn with_rt_copy(mut self, sync: Nanos) -> Self {
        self.rt_copy_sync = Some(sync);
        self
    }

    /// Builder-style: set the recirculation admission policy.
    pub fn with_admission(mut self, admission: AdmissionMode) -> Self {
        self.admission = admission;
        self
    }

    /// Builder-style: switch the flow-state backend family, keeping the
    /// configured slot budgets. `Sketch` converts both constrained tables
    /// into their sketch counterparts (RT 2-way, PT 4-way, clamped to the
    /// slot count); `Precision` keeps exact tables and turns on the default
    /// probabilistic admission gate (1/8 coin flip, 64 heavy hitters);
    /// `Exact` reverts both.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        // Normalise back to exact tables first so the conversion is
        // idempotent and composable with the sizing builders.
        if let RtMode::Sketch { slots, .. } = self.rt {
            self.rt = RtMode::Constrained { slots };
        }
        if let PtMode::Sketch { slots, ways } = self.pt {
            self.pt = PtMode::Constrained {
                slots,
                stages: ways,
            };
        }
        self.admission = AdmissionMode::All;
        match backend {
            Backend::Exact => {}
            Backend::Sketch => {
                if let RtMode::Constrained { slots } = self.rt {
                    self.rt = RtMode::Sketch {
                        slots,
                        ways: 2.min(slots),
                    };
                }
                if let PtMode::Constrained { slots, .. } = self.pt {
                    self.pt = PtMode::Sketch {
                        slots,
                        ways: 4.min(slots),
                    };
                }
            }
            Backend::Precision => {
                self.admission = AdmissionMode::Probabilistic {
                    sample_shift: 3,
                    hh_capacity: 64,
                    seed: 0xDA27_AD31,
                };
            }
        }
        self
    }

    /// The backend family this config describes (drives the engine's
    /// registry name: `dart`, `dart@sketch`, `dart@precision`).
    pub fn backend(&self) -> Backend {
        let sketchy =
            matches!(self.rt, RtMode::Sketch { .. }) || matches!(self.pt, PtMode::Sketch { .. });
        if sketchy {
            Backend::Sketch
        } else if self.admission != AdmissionMode::All {
            Backend::Precision
        } else {
            Backend::Exact
        }
    }

    /// True when a data packet traveling `dir` should be processed as SEQ.
    pub fn seq_role_active(&self, dir: dart_packet::Direction) -> bool {
        use dart_packet::Direction::*;
        match self.leg {
            Leg::External => dir == Outbound,
            Leg::Internal => dir == Inbound,
            Leg::Both => true,
        }
    }

    /// True when an ACK traveling `dir` should be processed as ACK.
    pub fn ack_role_active(&self, dir: dart_packet::Direction) -> bool {
        use dart_packet::Direction::*;
        match self.leg {
            Leg::External => dir == Inbound,
            Leg::Internal => dir == Outbound,
            Leg::Both => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::Direction;

    #[test]
    fn default_matches_paper_operating_point() {
        let c = DartConfig::default();
        assert_eq!(c.syn_policy, SynPolicy::Skip);
        assert_eq!(c.leg, Leg::External);
        assert_eq!(
            c.pt,
            PtMode::Constrained {
                slots: 1 << 17,
                stages: 1
            }
        );
        assert_eq!(c.max_recirc, 1);
    }

    #[test]
    fn unlimited_has_no_tables() {
        let c = DartConfig::unlimited();
        assert_eq!(c.rt, RtMode::Unlimited);
        assert_eq!(c.pt, PtMode::Unlimited);
    }

    #[test]
    fn external_leg_roles() {
        let c = DartConfig::default();
        assert!(c.seq_role_active(Direction::Outbound));
        assert!(!c.seq_role_active(Direction::Inbound));
        assert!(c.ack_role_active(Direction::Inbound));
        assert!(!c.ack_role_active(Direction::Outbound));
    }

    #[test]
    fn internal_leg_roles_are_mirrored() {
        let c = DartConfig::default().with_leg(Leg::Internal);
        assert!(c.seq_role_active(Direction::Inbound));
        assert!(c.ack_role_active(Direction::Outbound));
        assert!(!c.seq_role_active(Direction::Outbound));
    }

    #[test]
    fn both_legs_activate_everything() {
        let c = DartConfig::default().with_leg(Leg::Both);
        for d in [Direction::Inbound, Direction::Outbound] {
            assert!(c.seq_role_active(d));
            assert!(c.ack_role_active(d));
        }
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_rejected() {
        DartConfig::default().with_pt(1024, 0);
    }
}
