//! Typed failures of the supervised sharded runtime.
//!
//! A hardware Dart cannot abort: the switch keeps forwarding whatever the
//! measurement pipeline does, so the paper's design degrades (lazy
//! eviction, bounded recirculation) instead of failing. The software
//! runtime holds itself to the same standard — a shard worker that panics
//! or stalls becomes a [`ShardFailure`] record and, at most, a typed
//! [`EngineError`], never a process abort. How the run proceeds after a
//! failure is the [`FailurePolicy`]; what actually happened is preserved in
//! [`ShardedRun::failures`](crate::ShardedRun) and in the
//! `shard_restarts` / `flows_lost` / `monitor_miss` counters of
//! [`EngineStats`](crate::EngineStats).

use crate::sharded::ShardedRun;
use std::fmt;
use std::time::Duration;

/// What the supervised runtime does when a shard worker fails.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Stop feeding on the first failure and surface it: the run ends with
    /// `Err(EngineError::ShardFailed)` carrying the partial merged output
    /// of everything processed before the failure.
    #[default]
    FailFast,
    /// Respawn the failed shard with fresh RT/PT state and keep measuring.
    /// The discarded engine's live flows are counted in `flows_lost`, the
    /// unprocessed packets in `monitor_miss`, and each respawn in
    /// `shard_restarts`. New traffic measures normally; ACKs of lost flows
    /// surface as `ack_no_flow`.
    RestartShard,
    /// Stop measuring the failed shard's traffic but keep every other
    /// shard running: the paper's lazy-eviction stance — measure less,
    /// never measure wrong. Dropped packets are counted in `monitor_miss`.
    ShedLoad,
}

impl FailurePolicy {
    /// Stable lowercase name (CLI flag value, report label).
    pub fn name(&self) -> &'static str {
        match self {
            FailurePolicy::FailFast => "failfast",
            FailurePolicy::RestartShard => "restart",
            FailurePolicy::ShedLoad => "shed",
        }
    }
}

impl fmt::Display for FailurePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FailurePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<FailurePolicy, String> {
        match s.to_ascii_lowercase().as_str() {
            "failfast" | "fail-fast" => Ok(FailurePolicy::FailFast),
            "restart" | "restart-shard" => Ok(FailurePolicy::RestartShard),
            "shed" | "shed-load" => Ok(FailurePolicy::ShedLoad),
            other => Err(format!(
                "unknown failure policy `{other}` (expected failfast | restart | shed)"
            )),
        }
    }
}

/// How one shard worker failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The worker panicked while processing a batch; `message` is the
    /// panic payload when it was a string.
    Panicked {
        /// Rendered panic payload.
        message: String,
    },
    /// The watchdog timed out: the feeder could not hand off a batch (or
    /// the run could not collect the worker's result) within the deadline.
    Stalled {
        /// How long the watchdog waited before declaring the stall.
        waited: Duration,
    },
    /// A worker's event-sink handle outlived the engine, so the shard's
    /// events were recovered by draining the shared buffer instead of
    /// unwrapping it. Non-fatal: samples, events, and counters are intact.
    SinkLeaked,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panicked { message } => write!(f, "panicked: {message}"),
            FailureKind::Stalled { waited } => {
                write!(f, "stalled (watchdog waited {} ms)", waited.as_millis())
            }
            FailureKind::SinkLeaked => f.write_str("event sink leaked (events drained)"),
        }
    }
}

/// One shard failure observed by the supervised runtime. Every failure —
/// fatal or survived — is recorded in
/// [`ShardedRun::failures`](crate::ShardedRun) in shard order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardFailure {
    /// Which shard failed.
    pub shard: usize,
    /// Global trace index of the packet being processed (or queued) when
    /// the failure was detected, when known.
    pub at_packet: Option<u64>,
    /// What happened.
    pub kind: FailureKind,
}

impl fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} ", self.shard)?;
        match self.at_packet {
            Some(at) => write!(f, "{} at packet {at}", self.kind),
            None => write!(f, "{}", self.kind),
        }
    }
}

/// Error surfaced by the supervised sharded runtime instead of a panic.
#[derive(Debug)]
pub enum EngineError {
    /// A shard failed under [`FailurePolicy::FailFast`]. `partial` is the
    /// merged output of everything processed before (and despite) the
    /// failure — degraded, but every sample in it is sound.
    ShardFailed {
        /// The first fatal failure.
        failure: ShardFailure,
        /// Partial merged run: samples, events, and counters accumulated
        /// up to the failure, with `monitor_miss` covering the rest.
        partial: Box<ShardedRun>,
    },
    /// A packet was fed to a monitor that already flushed. The packet was
    /// dropped without being processed; the cached merged run is
    /// unaffected.
    FedAfterFlush,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ShardFailed { failure, partial } => write!(
                f,
                "{failure} (partial run kept: {} samples, {} packets missed, {} flows lost)",
                partial.samples.len(),
                partial.stats.monitor_miss,
                partial.stats.flows_lost,
            ),
            EngineError::FedAfterFlush => {
                f.write_str("packet fed to a flushed ShardedMonitor (dropped)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl EngineError {
    /// Take the partial merged run out of the error (empty for
    /// [`EngineError::FedAfterFlush`]).
    pub fn into_partial(self) -> ShardedRun {
        match self {
            EngineError::ShardFailed { partial, .. } => *partial,
            EngineError::FedAfterFlush => ShardedRun::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_aliases_and_rejects_unknown() {
        for (text, want) in [
            ("failfast", FailurePolicy::FailFast),
            ("fail-fast", FailurePolicy::FailFast),
            ("RESTART", FailurePolicy::RestartShard),
            ("restart-shard", FailurePolicy::RestartShard),
            ("shed", FailurePolicy::ShedLoad),
            ("shed-load", FailurePolicy::ShedLoad),
        ] {
            assert_eq!(text.parse::<FailurePolicy>().unwrap(), want, "{text}");
        }
        assert!("abort".parse::<FailurePolicy>().is_err());
        assert_eq!(FailurePolicy::default(), FailurePolicy::FailFast);
    }

    #[test]
    fn failure_and_error_render() {
        let failure = ShardFailure {
            shard: 2,
            at_packet: Some(1042),
            kind: FailureKind::Panicked {
                message: "chaos: injected panic".into(),
            },
        };
        let text = failure.to_string();
        assert!(text.contains("shard 2"), "{text}");
        assert!(text.contains("packet 1042"), "{text}");
        let err = EngineError::ShardFailed {
            failure,
            partial: Box::default(),
        };
        assert!(err.to_string().contains("partial run kept"));
        let run = err.into_partial();
        assert!(run.samples.is_empty());
    }

    #[test]
    fn stall_renders_wait() {
        let kind = FailureKind::Stalled {
            waited: Duration::from_millis(250),
        };
        assert!(kind.to_string().contains("250 ms"));
    }
}
