//! Crash-consistent engine snapshots: a versioned, checksummed binary
//! format for checkpointing flow state across process restarts.
//!
//! The paper's monitor runs continuously in the data plane; a software
//! daemon that loses every Range Tracker entry, Packet Tracker record and
//! counter the moment its process dies cannot honour that contract. This
//! module gives the engine a control-plane serialization of everything the
//! conservation law (`fed == packets + monitor_miss`) and the in-flight
//! measurements depend on:
//!
//! * both flow tables under every backend (exact, sketch, precision),
//!   including the exact RT's activity-generation epoch,
//! * the victim cache and the recirculation queue (records mid-loop),
//! * the probabilistic-admission gate's heavy-hitter book,
//! * all [`crate::EngineStats`] counters, name-tagged so a snapshot taken
//!   by an older build restores cleanly into a newer one.
//!
//! # Format
//!
//! ```text
//! magic "DSNP" | version u32 | payload_len u64 | payload | fnv1a-64(payload)
//! ```
//!
//! All integers little-endian. The payload is engine-defined (see
//! [`crate::DartEngine::snapshot`]); this module only guarantees framing:
//! a [`Snapshot`] that deserializes at all has a verified checksum, so a
//! crash mid-checkpoint-write can never restore half a table.
//!
//! # Crash consistency
//!
//! [`Snapshot::to_file`] writes a sibling temporary file, fsyncs it, and
//! renames it over the destination — the POSIX publish idiom. A reader
//! therefore observes either the previous complete snapshot or the new
//! complete snapshot, never a torn one; a crash between fsync and rename
//! leaves a stale `.tmp` that [`Snapshot::from_file`] ignores.

use dart_packet::flow::fnv1a_64;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Leading magic of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"DSNP";
/// Current format version. Bumped on any layout change; older versions are
/// refused rather than misread.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be produced, parsed, or restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure while persisting or loading.
    Io(io::Error),
    /// The bytes are not a complete, checksum-valid snapshot (truncated
    /// write, bit rot, or not a snapshot at all).
    Corrupt(String),
    /// The snapshot is valid but was taken under an incompatible
    /// configuration (different backend, table geometry, or signature
    /// width) — restoring it would silently mis-key every table.
    Mismatch(String),
    /// The monitor implementation does not support checkpointing.
    Unsupported(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            SnapshotError::Mismatch(why) => write!(f, "snapshot mismatch: {why}"),
            SnapshotError::Unsupported(what) => write!(f, "snapshot unsupported: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// Little-endian payload writer used by the per-table serializers.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Start an empty payload.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a u64 (snapshots are architecture-portable).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append raw bytes (caller encodes the length).
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append a length-prefixed short string (u16 length).
    pub fn put_str(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize, "snapshot string too long");
        self.put_u16(s.len() as u16);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Finish, yielding the raw payload bytes.
    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Little-endian payload reader; every getter fails loudly on truncation
/// instead of panicking, so a corrupt payload surfaces as
/// [`SnapshotError::Corrupt`].
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Read from the start of `payload`.
    pub fn new(payload: &'a [u8]) -> SnapReader<'a> {
        SnapReader {
            buf: payload,
            pos: 0,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or_else(|| {
            SnapshotError::Corrupt("snapshot length overflows the payload".into())
        })?;
        if end > self.buf.len() {
            return Err(SnapshotError::Corrupt(format!(
                "truncated snapshot payload: needed {n} bytes at offset {}, {} remain",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a u64 and narrow it to `usize`, rejecting values this
    /// architecture cannot index.
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| SnapshotError::Corrupt(format!("snapshot count {v} exceeds usize")))
    }

    /// Read `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Read a length-prefixed short string written by
    /// [`SnapWriter::put_str`].
    pub fn get_str(&mut self) -> Result<&'a str, SnapshotError> {
        let len = self.get_u16()? as usize;
        let b = self.take(len)?;
        std::str::from_utf8(b)
            .map_err(|_| SnapshotError::Corrupt("snapshot string is not UTF-8".into()))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// A complete framed snapshot: magic, version, length, payload, checksum.
///
/// Constructing one via [`Snapshot::from_bytes`] / [`Snapshot::from_file`]
/// verifies the frame end to end, so holding a `Snapshot` is proof the
/// payload arrived intact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
    payload_at: usize,
    payload_len: usize,
}

impl Snapshot {
    /// Frame `payload` into a snapshot (computes the trailing checksum).
    pub fn from_payload(payload: Vec<u8>) -> Snapshot {
        let mut bytes = Vec::with_capacity(payload.len() + 24);
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let payload_at = bytes.len();
        let payload_len = payload.len();
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a_64(&payload).to_le_bytes());
        Snapshot {
            bytes,
            payload_at,
            payload_len,
        }
    }

    /// Parse and verify a framed snapshot.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < 24 {
            return Err(SnapshotError::Corrupt(format!(
                "{} bytes is shorter than the minimal frame",
                bytes.len()
            )));
        }
        if bytes[0..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Corrupt("bad magic (not a snapshot)".into()));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot version {version}, this build reads {SNAPSHOT_VERSION}"
            )));
        }
        let len = u64::from_le_bytes([
            bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
        ]);
        let payload_len = usize::try_from(len)
            .map_err(|_| SnapshotError::Corrupt(format!("payload length {len} exceeds usize")))?;
        let expected_total = 16usize
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(8))
            .ok_or_else(|| SnapshotError::Corrupt("payload length overflows".into()))?;
        if bytes.len() != expected_total {
            return Err(SnapshotError::Corrupt(format!(
                "frame is {} bytes, header promises {expected_total} (truncated write?)",
                bytes.len()
            )));
        }
        let payload = &bytes[16..16 + payload_len];
        let stored = u64::from_le_bytes(
            bytes[16 + payload_len..].try_into().unwrap_or([0u8; 8]), // length verified above; unreachable
        );
        let computed = fnv1a_64(payload);
        if stored != computed {
            return Err(SnapshotError::Corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
        Ok(Snapshot {
            bytes,
            payload_at: 16,
            payload_len,
        })
    }

    /// The verified payload.
    pub fn payload(&self) -> &[u8] {
        &self.bytes[self.payload_at..self.payload_at + self.payload_len]
    }

    /// The full frame (what [`Snapshot::to_file`] persists).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume into the full frame bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Persist atomically: write `<path>.tmp`, fsync, rename over `path`.
    /// A crash at any point leaves either the previous snapshot or this
    /// one at `path` — never a torn file.
    pub fn to_file(&self, path: &Path) -> Result<(), SnapshotError> {
        let tmp = tmp_path(path);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        // Publish the rename itself (best-effort: directory fsync is not
        // available on every platform, and the rename already ordered the
        // data).
        if let Some(dir) = path.parent() {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Load and verify a snapshot file.
    pub fn from_file(path: &Path) -> Result<Snapshot, SnapshotError> {
        Snapshot::from_bytes(fs::read(path)?)
    }
}

/// The sibling temporary path [`Snapshot::to_file`] stages through (same
/// directory, so the final rename is atomic).
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payload() -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(0xDEAD_BEEF_CAFE_F00D);
        w.put_usize(42);
        w.put_str("dart");
        w.put_bytes(&[1, 2, 3]);
        w.into_payload()
    }

    #[test]
    fn writer_reader_round_trip() {
        let payload = sample_payload();
        let mut r = SnapReader::new(&payload);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert_eq!(r.get_str().unwrap(), "dart");
        assert_eq!(r.get_bytes(3).unwrap(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_read_is_an_error_not_a_panic() {
        let payload = vec![1u8, 2];
        let mut r = SnapReader::new(&payload);
        assert!(matches!(r.get_u64(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn frame_round_trips() {
        let snap = Snapshot::from_payload(sample_payload());
        let back = Snapshot::from_bytes(snap.as_bytes().to_vec()).unwrap();
        assert_eq!(back.payload(), sample_payload().as_slice());
        assert_eq!(back, snap);
    }

    #[test]
    fn bit_flip_is_detected() {
        let snap = Snapshot::from_payload(sample_payload());
        let mut bytes = snap.into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_frame_is_detected() {
        let snap = Snapshot::from_payload(sample_payload());
        let mut bytes = snap.into_bytes();
        bytes.truncate(bytes.len() - 5);
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_refused() {
        let snap = Snapshot::from_payload(vec![0u8; 16]);
        let mut bad_magic = snap.as_bytes().to_vec();
        bad_magic[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(bad_magic),
            Err(SnapshotError::Corrupt(_))
        ));
        let mut bad_version = snap.into_bytes();
        bad_version[4] = 99;
        assert!(matches!(
            Snapshot::from_bytes(bad_version),
            Err(SnapshotError::Mismatch(_))
        ));
    }

    #[test]
    fn empty_payload_frames_fine() {
        let snap = Snapshot::from_payload(Vec::new());
        let back = Snapshot::from_bytes(snap.into_bytes()).unwrap();
        assert!(back.payload().is_empty());
    }

    #[test]
    fn atomic_file_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "dart-snapshot-test-{}-{:x}",
            std::process::id(),
            fnv1a_64(b"atomic_file_round_trip")
        ));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.dsnp");
        let snap = Snapshot::from_payload(sample_payload());
        snap.to_file(&path).unwrap();
        // No staging file left behind.
        assert!(!tmp_path(&path).exists());
        let back = Snapshot::from_file(&path).unwrap();
        assert_eq!(back.payload(), snap.payload());
        // Overwrite publishes the new state.
        let snap2 = Snapshot::from_payload(vec![9u8; 64]);
        snap2.to_file(&path).unwrap();
        assert_eq!(
            Snapshot::from_file(&path).unwrap().payload(),
            &[9u8; 64][..]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tmp_file_never_parses() {
        // Simulate a crash mid-write: a prefix of the frame on disk.
        let snap = Snapshot::from_payload(sample_payload());
        for cut in [0, 3, 10, 20] {
            let torn = snap.as_bytes()[..cut.min(snap.as_bytes().len())].to_vec();
            assert!(Snapshot::from_bytes(torn).is_err(), "cut at {cut}");
        }
    }
}
