//! In-engine metric hooks (the `telemetry` cargo feature).
//!
//! Two layers of instrumentation, matching the two places an observer can
//! stand:
//!
//! * [`EngineTelemetry`] lives **inside** a [`DartEngine`](crate::DartEngine)
//!   (one per shard; the serial engine is `shard="0"`). The engine keeps
//!   accumulating its plain [`EngineStats`] on the hot path and *publishes*
//!   the totals to the shared atomic counters at sync points — every
//!   [`SYNC_INTERVAL_PKTS`] packets, at every batch boundary in the sharded
//!   engine, and at flush — so the per-packet cost is a predictable branch,
//!   not thirty atomic writes. Only the RTT histogram observes on the hot
//!   path (one `fetch_add` per *sample*, not per packet).
//! * [`MeteredMonitor`] wraps **any** [`RttMonitor`] from the outside: it
//!   mirrors the monitor's whole-run counters (`dart_run_*`) and feeds every
//!   emitted sample into a run-level RTT histogram. This is what makes the
//!   software baselines scrape-able without touching their code.
//!
//! Metric families (see the naming scheme in `dart-telemetry`'s crate docs
//! and DESIGN.md §5d):
//!
//! | family | kind | labels |
//! |---|---|---|
//! | `dart_shard_<counter>_total` | counter | `shard` |
//! | `dart_rtt_ns` | histogram | `shard` |
//! | `dart_batch_process_ns` | histogram | `shard` |
//! | `dart_recirc_queue_depth` | gauge | `shard` |
//! | `dart_recirc_queue_depth_records` | histogram | `shard` |
//! | `dart_epoch_rotations_total` | counter | `shard` |
//! | `dart_epoch_flows_carried_total` | counter | `shard` |
//! | `dart_epoch_flows_dropped_total` | counter | `shard` |
//! | `dart_epoch_records_dropped_total` | counter | `shard` |
//! | `dart_epoch_rotation_pause_ns` | histogram | `shard` |
//! | `dart_stage_decode_ns` | histogram | — |
//! | `dart_stage_match_ns` | histogram | — |
//! | `dart_stage_flush_ns` | histogram | — |
//! | `dart_shard_channel_batches` | gauge | `shard` |
//! | `dart_supervisor_healthy_shards` | gauge | — |
//! | `dart_supervisor_stalls_total` | counter | — |
//! | `dart_run_<counter>_total` | counter | — |
//! | `dart_run_rtt_ns` | histogram | — |
//!
//! The two `dart_supervisor_*` families are owned by the supervised
//! sharded runtime (`sharded.rs`): the gauge drops by one each time a
//! worker is retired (panicked past its restart budget, shedding, or
//! abandoned by the watchdog) and the counter records watchdog firings.
//! CI's `--example check --require` run lists them, together with the
//! degradation counters (`dart_shard_shard_restarts_total`,
//! `dart_shard_flows_lost_total`, `dart_shard_monitor_miss_total`), so
//! the schema cannot silently drift from this table.

use crate::monitor::{EpochRotation, RttMonitor};
use crate::sample::{RttSample, SampleSink};
use crate::stats::EngineStats;
use dart_telemetry::{Counter, Gauge, Histogram, MetricRegistry};

/// How many packets between periodic counter publications on the serial
/// hot path. Scrapes between sync points read totals at most this stale;
/// flush always publishes the exact final values.
pub const SYNC_INTERVAL_PKTS: u64 = 1024;

/// The metric handles of one engine shard.
#[derive(Clone)]
pub struct EngineTelemetry {
    /// Parallel to [`EngineStats::metric_rows`] order.
    counters: Vec<Counter>,
    /// Offset folded into every `sync_stats` publication (see
    /// [`EngineTelemetry::with_base`]).
    base: EngineStats,
    rtt_ns: Histogram,
    batch_ns: Histogram,
    queue_depth: Gauge,
    queue_depth_records: Histogram,
    rotations: Counter,
    rot_flows_carried: Counter,
    rot_flows_dropped: Counter,
    rot_records_dropped: Counter,
    rot_pause_ns: Histogram,
}

impl EngineTelemetry {
    /// Register (or re-attach to) the shard's series in `registry`.
    pub fn register(registry: &MetricRegistry, shard: usize) -> EngineTelemetry {
        let shard_label = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &shard_label)];
        let counters = EngineStats::default()
            .metric_rows()
            .iter()
            .map(|(name, _)| {
                registry.counter(
                    &format!("dart_shard_{name}_total"),
                    labels,
                    &format!("engine disposition counter `{name}` (see EngineStats)"),
                )
            })
            .collect();
        EngineTelemetry {
            counters,
            base: EngineStats::default(),
            rtt_ns: registry.histogram("dart_rtt_ns", labels, "RTT samples in nanoseconds"),
            batch_ns: registry.histogram(
                "dart_batch_process_ns",
                labels,
                "processing latency per hand-off batch in nanoseconds",
            ),
            queue_depth: registry.gauge(
                "dart_recirc_queue_depth",
                labels,
                "records currently in flight around the recirculation loop",
            ),
            queue_depth_records: registry.histogram(
                "dart_recirc_queue_depth_records",
                labels,
                "recirculation queue depth observed at each submission",
            ),
            rotations: registry.counter(
                "dart_epoch_rotations_total",
                labels,
                "epoch rotations performed on this shard",
            ),
            rot_flows_carried: registry.counter(
                "dart_epoch_flows_carried_total",
                labels,
                "RT flows that survived an epoch rotation",
            ),
            rot_flows_dropped: registry.counter(
                "dart_epoch_flows_dropped_total",
                labels,
                "RT flows swept as stale by epoch rotations",
            ),
            rot_records_dropped: registry.counter(
                "dart_epoch_records_dropped_total",
                labels,
                "PT and auxiliary records swept as stale by epoch rotations",
            ),
            rot_pause_ns: registry.histogram(
                "dart_epoch_rotation_pause_ns",
                labels,
                "wall-clock pause of each epoch rotation in nanoseconds",
            ),
        }
    }

    /// Publish the engine's accumulated counters (totals are stored, not
    /// re-added, so sync points are idempotent). The published value of
    /// each counter is `base + stats` — see [`EngineTelemetry::with_base`].
    pub fn sync_stats(&self, stats: &EngineStats) {
        let mut combined = self.base;
        combined.merge(stats);
        for ((_, value), counter) in combined.metric_rows().iter().zip(&self.counters) {
            counter.store(*value);
        }
    }

    /// Offset every future `sync_stats` publication by `base`. The
    /// supervised sharded runtime attaches a based clone to each respawned
    /// engine — the retired engines' totals plus the runtime's own
    /// restart/loss accounting — so the per-shard counter series stay
    /// cumulative (monotone) across engine restarts instead of resetting
    /// with the fresh engine.
    pub fn with_base(mut self, base: EngineStats) -> EngineTelemetry {
        self.base = base;
        self
    }

    /// Record one RTT sample.
    #[inline]
    pub fn observe_rtt(&self, rtt_ns: u64) {
        self.rtt_ns.observe(rtt_ns);
    }

    /// Record one hand-off batch's processing latency.
    pub fn observe_batch_ns(&self, ns: u64) {
        self.batch_ns.observe(ns);
    }

    /// Record one epoch rotation: what it swept plus its wall-clock pause.
    pub fn observe_rotation(&self, rotation: &EpochRotation, pause_ns: u64) {
        self.rotations.inc();
        self.rot_flows_carried.add(rotation.flows_carried);
        self.rot_flows_dropped.add(rotation.flows_dropped);
        self.rot_records_dropped.add(rotation.records_dropped);
        self.rot_pause_ns.observe(pause_ns);
    }

    /// The handles the recirculation port updates live (depth gauge and the
    /// at-submission depth histogram).
    pub(crate) fn queue_depth_handles(&self) -> (Gauge, Histogram) {
        (self.queue_depth.clone(), self.queue_depth_records.clone())
    }
}

/// Driver-level per-stage timing histograms (`dart_stage_*_ns`): the
/// pipeline self-profile a long-running daemon exposes. The *driver* owns
/// the clock — decode is the time spent pulling the next block from the
/// [`PacketSource`](dart_packet::PacketSource), match is the
/// [`RttMonitor::on_batch`] call, flush covers flushes and epoch rotations
/// — so the engine hot path stays free of timing syscalls and the <3%
/// telemetry overhead budget holds (observing a pre-measured duration is
/// one atomic add into a log2 bucket).
#[derive(Clone)]
pub struct StageTimers {
    decode_ns: Histogram,
    match_ns: Histogram,
    flush_ns: Histogram,
}

impl StageTimers {
    /// Register the three stage histograms in `registry`.
    pub fn register(registry: &MetricRegistry) -> StageTimers {
        StageTimers {
            decode_ns: registry.histogram(
                "dart_stage_decode_ns",
                &[],
                "time pulling one block from the packet source, nanoseconds",
            ),
            match_ns: registry.histogram(
                "dart_stage_match_ns",
                &[],
                "time processing one block through the monitor, nanoseconds",
            ),
            flush_ns: registry.histogram(
                "dart_stage_flush_ns",
                &[],
                "time spent in flush or epoch rotation, nanoseconds",
            ),
        }
    }

    /// Record one source pull.
    #[inline]
    pub fn observe_decode(&self, ns: u64) {
        self.decode_ns.observe(ns);
    }

    /// Record one block's match/process time.
    #[inline]
    pub fn observe_match(&self, ns: u64) {
        self.match_ns.observe(ns);
    }

    /// Record one flush or rotation.
    #[inline]
    pub fn observe_flush(&self, ns: u64) {
        self.flush_ns.observe(ns);
    }

    /// Time `f`, observing the elapsed wall-clock into `stage`'s histogram.
    pub fn time<R>(&self, stage: Stage, f: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let out = f();
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        match stage {
            Stage::Decode => self.observe_decode(ns),
            Stage::Match => self.observe_match(ns),
            Stage::Flush => self.observe_flush(ns),
        }
        out
    }
}

/// Which pipeline stage a [`StageTimers::time`] measurement belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Pulling the next block from the packet source.
    Decode,
    /// Processing a block through the monitor.
    Match,
    /// Flushing buffered state or rotating an epoch.
    Flush,
}

/// Sink adapter: forwards to the real sink and observes each RTT.
struct ObservingSink<'a> {
    inner: &'a mut dyn SampleSink,
    rtt_ns: &'a Histogram,
}

impl SampleSink for ObservingSink<'_> {
    fn on_sample(&mut self, sample: RttSample) {
        self.rtt_ns.observe(sample.rtt);
        self.inner.on_sample(sample);
    }
}

/// Driver-level instrumentation for any [`RttMonitor`]: run-level counters
/// mirrored from [`RttMonitor::stats`] plus a run-level RTT histogram fed
/// from the sample stream. Engines that buffer samples until flush (the
/// sharded fan-in) populate `dart_run_rtt_ns` only at flush — their live
/// view is the in-engine per-shard `dart_rtt_ns`.
pub struct MeteredMonitor {
    inner: Box<dyn RttMonitor>,
    /// Parallel to [`EngineStats::metric_rows`] order.
    counters: Vec<Counter>,
    rtt_ns: Histogram,
    seen: u64,
}

impl MeteredMonitor {
    /// Wrap `inner`, registering the `dart_run_*` series in `registry`.
    pub fn new(inner: Box<dyn RttMonitor>, registry: &MetricRegistry) -> MeteredMonitor {
        let counters = EngineStats::default()
            .metric_rows()
            .iter()
            .map(|(name, _)| {
                registry.counter(
                    &format!("dart_run_{name}_total"),
                    &[],
                    &format!("whole-run engine counter `{name}` (see EngineStats)"),
                )
            })
            .collect();
        let monitor = MeteredMonitor {
            counters,
            rtt_ns: registry.histogram("dart_run_rtt_ns", &[], "RTT samples in nanoseconds"),
            seen: 0,
            inner,
        };
        monitor.sync();
        monitor
    }

    fn sync(&self) {
        let stats = self.inner.stats();
        for ((_, value), counter) in stats.metric_rows().iter().zip(&self.counters) {
            counter.store(*value);
        }
    }

    /// The wrapped monitor.
    pub fn inner(&self) -> &dyn RttMonitor {
        self.inner.as_ref()
    }
}

impl RttMonitor for MeteredMonitor {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }

    fn on_packet(&mut self, pkt: &dart_packet::PacketMeta, sink: &mut dyn SampleSink) {
        let mut observing = ObservingSink {
            inner: sink,
            rtt_ns: &self.rtt_ns,
        };
        self.inner.on_packet(pkt, &mut observing);
        self.seen += 1;
        if self.seen.is_multiple_of(SYNC_INTERVAL_PKTS) {
            self.sync();
        }
    }

    /// Forwards the whole block to the wrapped monitor's batch path and
    /// publishes counters once at the block boundary — the run-level
    /// sync-point is per block, not per packet, on batch drivers.
    fn on_batch(&mut self, pkts: &[dart_packet::PacketMeta], sink: &mut dyn SampleSink) {
        let mut observing = ObservingSink {
            inner: sink,
            rtt_ns: &self.rtt_ns,
        };
        self.inner.on_batch(pkts, &mut observing);
        self.seen += pkts.len() as u64;
        self.sync();
    }

    fn flush(&mut self, sink: &mut dyn SampleSink) {
        let mut observing = ObservingSink {
            inner: sink,
            rtt_ns: &self.rtt_ns,
        };
        self.inner.flush(&mut observing);
        self.sync();
    }

    fn stats(&self) -> EngineStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DartConfig;
    use crate::engine::DartEngine;
    use crate::monitor::run_monitor_slice;
    use dart_packet::{Direction, FlowKey, PacketBuilder, PacketMeta};

    fn exchange(n: u32) -> Vec<PacketMeta> {
        let mut pkts = Vec::new();
        for i in 0..n {
            let f = FlowKey::from_raw(0x0a00_0000 + i, 40000, 0x5db8_d822, 443);
            pkts.push(
                PacketBuilder::new(f, u64::from(i) * 1_000)
                    .seq(0u32)
                    .payload(1460)
                    .dir(Direction::Outbound)
                    .build(),
            );
            pkts.push(
                PacketBuilder::new(f.reverse(), u64::from(i) * 1_000 + 20_000_000)
                    .ack(1460u32)
                    .dir(Direction::Inbound)
                    .build(),
            );
        }
        pkts
    }

    #[test]
    fn engine_publishes_counters_and_rtt() {
        let registry = MetricRegistry::new();
        let mut engine = DartEngine::new(DartConfig::default());
        engine.attach_telemetry(EngineTelemetry::register(&registry, 0));
        let (samples, stats) = run_monitor_slice(&mut engine, &exchange(5));
        assert_eq!(samples.len(), 5);
        let snap = registry.scrape();
        let packets = snap
            .samples
            .iter()
            .find(|s| s.key() == "dart_shard_packets_total{shard=\"0\"}")
            .expect("per-shard packet counter registered");
        match &packets.value {
            dart_telemetry::MetricValue::Counter { total, .. } => {
                assert_eq!(*total, stats.packets);
            }
            other => panic!("expected counter, got {other:?}"),
        }
        let rtt = snap
            .samples
            .iter()
            .find(|s| s.key() == "dart_rtt_ns{shard=\"0\"}")
            .expect("rtt histogram registered");
        match &rtt.value {
            dart_telemetry::MetricValue::Histogram { hist, .. } => {
                assert_eq!(hist.count(), stats.samples);
                // All five RTTs are 20 ms; the log2 bucket estimate must
                // land within a factor of two.
                assert_eq!(hist.quantile(0.5), Some((1 << 25) - 1));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn metered_monitor_mirrors_any_engine() {
        let registry = MetricRegistry::new();
        let inner = Box::new(DartEngine::new(DartConfig::default()));
        let mut metered = MeteredMonitor::new(inner, &registry);
        let (samples, stats) = run_monitor_slice(&mut metered, &exchange(3));
        assert_eq!(samples.len(), 3);
        let snap = registry.scrape();
        let get = |key: &str| {
            snap.samples
                .iter()
                .find(|s| s.key() == key)
                .unwrap_or_else(|| panic!("missing series {key}"))
                .value
                .clone()
        };
        match get("dart_run_packets_total") {
            dart_telemetry::MetricValue::Counter { total, .. } => {
                assert_eq!(total, stats.packets);
            }
            other => panic!("expected counter, got {other:?}"),
        }
        match get("dart_run_samples_total") {
            dart_telemetry::MetricValue::Counter { total, .. } => {
                assert_eq!(total, stats.samples);
            }
            other => panic!("expected counter, got {other:?}"),
        }
        match get("dart_run_rtt_ns") {
            dart_telemetry::MetricValue::Histogram { hist, .. } => {
                assert_eq!(hist.count(), stats.samples);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn recirc_queue_depth_gauge_tracks_submissions() {
        // A 1-slot PT with two flows forces an eviction into the loop; the
        // gauge must show it in flight until the delayed re-entry drains it.
        let registry = MetricRegistry::new();
        let cfg = DartConfig::default().with_pt(1, 1).with_max_recirc(4);
        let mut engine = DartEngine::new(cfg);
        engine.attach_telemetry(EngineTelemetry::register(&registry, 0));
        let mut sink: Vec<RttSample> = Vec::new();
        let fa = FlowKey::from_raw(0x0a00_0001, 40000, 0x5db8_d822, 443);
        let fb = FlowKey::from_raw(0x0a00_0002, 40000, 0x5db8_d822, 443);
        for (f, t) in [(fa, 0u64), (fb, 1_000)] {
            engine.process(
                &PacketBuilder::new(f, t)
                    .seq(0u32)
                    .payload(100)
                    .dir(Direction::Outbound)
                    .build(),
                &mut sink,
            );
        }
        let gauge = registry.gauge("dart_recirc_queue_depth", &[("shard", "0")], "");
        assert_eq!(gauge.get(), 1, "one record in flight after the eviction");
        engine.flush();
        assert_eq!(gauge.get(), 0, "flush drains the loop");
        let dist = registry.histogram("dart_recirc_queue_depth_records", &[("shard", "0")], "");
        assert_eq!(dist.count(), 1, "one submission observed");
    }
}
