//! The flow-state backend seam: [`RtBackend`] / [`PtBackend`] contracts
//! and the [`RtTable`] / [`PtTable`] dispatchers the engine stores.
//!
//! [`crate::DartEngine`] is generic over *behaviour*, not over types: it
//! holds the closed enums [`RtTable`] and [`PtTable`], whose variants are
//! the exact register tables (the reference implementation — byte-identical
//! to the pre-seam engine, enforced by the golden conformance suite) and
//! the sketch tables of [`crate::sketch`]. Static enum dispatch keeps the
//! batch hot path free of virtual calls: each table operation costs one
//! predictable branch, which is what holds the <5% batch-throughput budget
//! the refactor was accepted under.
//!
//! The traits name the contract every backend must satisfy:
//!
//! 1. **Pure resolution** — [`RtBackend::locate`] and [`PtBackend::probe`]
//!    must not read or write table contents. The batch pipeline pre-hashes
//!    whole blocks (and memoizes locations across packets of one batch)
//!    before any mutation; a backend whose resolution depended on table
//!    state would silently diverge between the streaming and batch paths.
//! 2. **Located ≡ self-locating** — `on_seq_at(.., locate(f), ..)` must
//!    behave exactly like a self-locating `on_seq(f, ..)`; likewise for
//!    ACKs and probes. Every backend carries a property test for this.
//! 3. **No fabrication** — a backend may *lose* state (collisions,
//!    recency eviction, fingerprint overwrite) but must never answer a
//!    lookup with state that was not inserted under a verifying identity.
//!    Loss must surface in outcomes the engine counts
//!    (`sketch_overwritten`, `ack_no_flow`, unmatched `ack_advanced`), so
//!    the testkit loss budget stays a sound upper bound.
//!
//! Future backends (victim-cache hybrids, per-shard heterogeneous tables)
//! add an enum variant and a trait impl; the engine does not change.

use crate::config::{PtMode, RtMode};
use crate::packet_tracker::{PacketTracker, PtInsert, PtProbe, PtRecord};
use crate::range::MeasurementRange;
use crate::range_tracker::{RangeTracker, RtAckOutcome, RtSeqOutcome, RtSlot};
use crate::sketch::{SketchPacketTracker, SketchRangeTracker};
use dart_packet::{FlowKey, FlowSignature, Nanos, PacketId, SeqNum, SignatureWidth};

/// The Range Tracker backend contract (per-flow measurement ranges).
///
/// `now` is the packet timestamp: backends with recency state (the sketch)
/// age entries by it; stateless-in-time backends (exact) ignore it.
pub trait RtBackend {
    /// Resolve where `flow` lives. **Pure**: no table access.
    fn locate(&self, flow: &FlowKey) -> RtSlot;
    /// Warm a located slot into cache (no register access).
    fn prefetch(&self, at: &RtSlot);
    /// Offer a data packet occupying `[seq, eack)` at a pre-resolved
    /// location (`at` must come from `locate(flow)` on this backend).
    fn on_seq_at(
        &mut self,
        flow: &FlowKey,
        at: &RtSlot,
        seq: SeqNum,
        eack: SeqNum,
        now: Nanos,
    ) -> RtSeqOutcome;
    /// Offer an ACK numbered `ack` at a pre-resolved location; `pure`
    /// marks a payload-free ACK.
    fn on_ack_at(
        &mut self,
        flow: &FlowKey,
        at: &RtSlot,
        ack: SeqNum,
        pure: bool,
        now: Nanos,
    ) -> RtAckOutcome;
    /// Re-validate an evicted PT record during recirculation (§3.2).
    fn revalidate(&mut self, sig: FlowSignature, eack: SeqNum) -> bool;
    /// Epoch rotation (control-plane): sweep entries stale at `cutoff`,
    /// returning `(carried, dropped)` flow counts. The sketch judges
    /// staleness by its recency stamps against `cutoff`; the exact tracker
    /// carries no timestamps and uses activity generations instead
    /// (entries untouched for a whole epoch are swept — `cutoff` ignored).
    fn rotate(&mut self, cutoff: Nanos) -> (u64, u64);
    /// Live entries (control plane).
    fn occupancy(&self) -> usize;
    /// A flow's current range, if present (tests / control plane).
    fn peek(&mut self, flow: &FlowKey) -> Option<MeasurementRange>;
}

/// The Packet Tracker backend contract (outstanding data packets).
pub trait PtBackend {
    /// Pre-resolve the stage/way indices for `id`. **Pure**: no table
    /// access.
    fn probe(&self, id: &PacketId) -> PtProbe;
    /// Warm every pre-resolved slot into cache.
    fn prefetch(&self, p: &PtProbe);
    /// Insert a freshly tracked data packet at a pre-resolved probe.
    fn insert_new_probed(
        &mut self,
        flow: &FlowKey,
        sig: FlowSignature,
        eack: SeqNum,
        ts: Nanos,
        probe: &PtProbe,
    ) -> PtInsert;
    /// Re-insert a recirculated record that passed RT re-validation.
    fn insert_recirculated(&mut self, rec: PtRecord, displaced_by: Option<PacketId>) -> PtInsert;
    /// Match an arriving ACK at a pre-resolved probe, consuming the record.
    fn match_ack_probed(
        &mut self,
        flow: &FlowKey,
        sig: FlowSignature,
        ack: SeqNum,
        probe: &PtProbe,
    ) -> Option<Nanos>;
    /// Epoch rotation (control-plane): sweep records whose send timestamp
    /// predates `cutoff`, returning `(carried, dropped)` record counts.
    fn rotate(&mut self, cutoff: Nanos) -> (u64, u64);
    /// Live records (control plane).
    fn occupancy(&self) -> usize;
    /// Total slots (`usize::MAX` for unlimited).
    fn capacity(&self) -> usize;
}

// --- trait impls for the concrete backends ---------------------------------

impl RtBackend for RangeTracker {
    #[inline]
    fn locate(&self, flow: &FlowKey) -> RtSlot {
        RangeTracker::locate(self, flow)
    }

    #[inline]
    fn prefetch(&self, at: &RtSlot) {
        RangeTracker::prefetch(self, at)
    }

    #[inline]
    fn on_seq_at(
        &mut self,
        flow: &FlowKey,
        at: &RtSlot,
        seq: SeqNum,
        eack: SeqNum,
        _now: Nanos,
    ) -> RtSeqOutcome {
        RangeTracker::on_seq_at(self, flow, at, seq, eack)
    }

    #[inline]
    fn on_ack_at(
        &mut self,
        flow: &FlowKey,
        at: &RtSlot,
        ack: SeqNum,
        pure: bool,
        _now: Nanos,
    ) -> RtAckOutcome {
        RangeTracker::on_ack_at(self, flow, at, ack, pure)
    }

    #[inline]
    fn revalidate(&mut self, sig: FlowSignature, eack: SeqNum) -> bool {
        RangeTracker::revalidate(self, sig, eack)
    }

    fn rotate(&mut self, _cutoff: Nanos) -> (u64, u64) {
        RangeTracker::rotate(self)
    }

    fn occupancy(&self) -> usize {
        RangeTracker::occupancy(self)
    }

    fn peek(&mut self, flow: &FlowKey) -> Option<MeasurementRange> {
        RangeTracker::peek(self, flow)
    }
}

// The sketch forwarders are deliberately outlined (`#[cold]`,
// `#[inline(never)]`): the engine's fused batch loop inlines the table
// calls of whichever variants the optimizer pulls in, and carrying *both*
// backends' bodies in the loop costs the exact path its batch-throughput
// edge (~12% measured). Keeping the sketch arms behind a call keeps the
// exact reference path as tight as it was before the seam; the sketch
// backend pays one predicted call per table op, noise next to its own
// cache behaviour.
impl RtBackend for SketchRangeTracker {
    #[cold]
    #[inline(never)]
    fn locate(&self, flow: &FlowKey) -> RtSlot {
        SketchRangeTracker::locate(self, flow)
    }

    #[cold]
    #[inline(never)]
    fn prefetch(&self, at: &RtSlot) {
        SketchRangeTracker::prefetch(self, at)
    }

    #[cold]
    #[inline(never)]
    fn on_seq_at(
        &mut self,
        _flow: &FlowKey,
        at: &RtSlot,
        seq: SeqNum,
        eack: SeqNum,
        now: Nanos,
    ) -> RtSeqOutcome {
        SketchRangeTracker::on_seq_at(self, at, seq, eack, now)
    }

    #[cold]
    #[inline(never)]
    fn on_ack_at(
        &mut self,
        _flow: &FlowKey,
        at: &RtSlot,
        ack: SeqNum,
        pure: bool,
        now: Nanos,
    ) -> RtAckOutcome {
        SketchRangeTracker::on_ack_at(self, at, ack, pure, now)
    }

    #[cold]
    #[inline(never)]
    fn revalidate(&mut self, sig: FlowSignature, eack: SeqNum) -> bool {
        SketchRangeTracker::revalidate(self, sig, eack)
    }

    fn rotate(&mut self, cutoff: Nanos) -> (u64, u64) {
        SketchRangeTracker::rotate(self, cutoff)
    }

    fn occupancy(&self) -> usize {
        SketchRangeTracker::occupancy(self)
    }

    fn peek(&mut self, flow: &FlowKey) -> Option<MeasurementRange> {
        SketchRangeTracker::peek(self, flow)
    }
}

impl PtBackend for PacketTracker {
    #[inline]
    fn probe(&self, id: &PacketId) -> PtProbe {
        PacketTracker::probe(self, id)
    }

    #[inline]
    fn prefetch(&self, p: &PtProbe) {
        PacketTracker::prefetch(self, p)
    }

    #[inline]
    fn insert_new_probed(
        &mut self,
        flow: &FlowKey,
        sig: FlowSignature,
        eack: SeqNum,
        ts: Nanos,
        probe: &PtProbe,
    ) -> PtInsert {
        PacketTracker::insert_new_probed(self, flow, sig, eack, ts, probe)
    }

    #[inline]
    fn insert_recirculated(&mut self, rec: PtRecord, displaced_by: Option<PacketId>) -> PtInsert {
        PacketTracker::insert_recirculated(self, rec, displaced_by)
    }

    #[inline]
    fn match_ack_probed(
        &mut self,
        flow: &FlowKey,
        sig: FlowSignature,
        ack: SeqNum,
        probe: &PtProbe,
    ) -> Option<Nanos> {
        PacketTracker::match_ack_probed(self, flow, sig, ack, probe)
    }

    fn rotate(&mut self, cutoff: Nanos) -> (u64, u64) {
        PacketTracker::rotate(self, cutoff)
    }

    fn occupancy(&self) -> usize {
        PacketTracker::occupancy(self)
    }

    fn capacity(&self) -> usize {
        PacketTracker::capacity(self)
    }
}

impl PtBackend for SketchPacketTracker {
    #[cold]
    #[inline(never)]
    fn probe(&self, id: &PacketId) -> PtProbe {
        SketchPacketTracker::probe(self, id)
    }

    #[cold]
    #[inline(never)]
    fn prefetch(&self, p: &PtProbe) {
        SketchPacketTracker::prefetch(self, p)
    }

    #[cold]
    #[inline(never)]
    fn insert_new_probed(
        &mut self,
        _flow: &FlowKey,
        sig: FlowSignature,
        eack: SeqNum,
        ts: Nanos,
        probe: &PtProbe,
    ) -> PtInsert {
        SketchPacketTracker::insert_new_probed(self, sig, eack, ts, probe)
    }

    #[cold]
    #[inline(never)]
    fn insert_recirculated(&mut self, rec: PtRecord, _displaced_by: Option<PacketId>) -> PtInsert {
        SketchPacketTracker::insert_recirculated(self, rec)
    }

    #[cold]
    #[inline(never)]
    fn match_ack_probed(
        &mut self,
        _flow: &FlowKey,
        sig: FlowSignature,
        ack: SeqNum,
        probe: &PtProbe,
    ) -> Option<Nanos> {
        SketchPacketTracker::match_ack_probed(self, sig, ack, probe)
    }

    fn rotate(&mut self, cutoff: Nanos) -> (u64, u64) {
        SketchPacketTracker::rotate(self, cutoff)
    }

    fn occupancy(&self) -> usize {
        SketchPacketTracker::occupancy(self)
    }

    fn capacity(&self) -> usize {
        SketchPacketTracker::capacity(self)
    }
}

// Outlined sketch arms for the inherent dispatchers, same rationale as the
// cold trait forwarders above: keep the sketch bodies out of the engine's
// fused batch loop.
#[cold]
#[inline(never)]
fn sketch_insert_new(
    t: &mut SketchPacketTracker,
    sig: FlowSignature,
    eack: SeqNum,
    ts: Nanos,
) -> PtInsert {
    t.insert_new(sig, eack, ts)
}

#[cold]
#[inline(never)]
fn sketch_match_ack(t: &mut SketchPacketTracker, sig: FlowSignature, ack: SeqNum) -> Option<Nanos> {
    t.match_ack(sig, ack)
}

// --- the engine-facing dispatchers -----------------------------------------

/// Closed static dispatch over the Range Tracker backends.
pub enum RtTable {
    /// The exact reference tables (unlimited or constrained).
    Exact(RangeTracker),
    /// The recency-aged set-associative sketch.
    Sketch(SketchRangeTracker),
}

/// Delegate one method call to whichever backend is live.
macro_rules! rt_dispatch {
    ($self:expr, $t:ident => $body:expr) => {
        match $self {
            RtTable::Exact($t) => $body,
            RtTable::Sketch($t) => $body,
        }
    };
}

impl RtTable {
    /// Build the backend a mode describes.
    pub fn new(mode: RtMode, sig_width: SignatureWidth) -> RtTable {
        match mode {
            RtMode::Sketch { .. } => RtTable::Sketch(SketchRangeTracker::new(mode, sig_width)),
            _ => RtTable::Exact(RangeTracker::new(mode, sig_width)),
        }
    }

    /// The data-plane signature of a flow.
    #[inline]
    pub fn sig(&self, flow: &FlowKey) -> FlowSignature {
        match self {
            RtTable::Exact(t) => t.sig(flow),
            RtTable::Sketch(t) => t.sig(flow),
        }
    }
}

impl RtBackend for RtTable {
    #[inline]
    fn locate(&self, flow: &FlowKey) -> RtSlot {
        rt_dispatch!(self, t => RtBackend::locate(t, flow))
    }

    #[inline]
    fn prefetch(&self, at: &RtSlot) {
        rt_dispatch!(self, t => RtBackend::prefetch(t, at))
    }

    #[inline]
    fn on_seq_at(
        &mut self,
        flow: &FlowKey,
        at: &RtSlot,
        seq: SeqNum,
        eack: SeqNum,
        now: Nanos,
    ) -> RtSeqOutcome {
        rt_dispatch!(self, t => RtBackend::on_seq_at(t, flow, at, seq, eack, now))
    }

    #[inline]
    fn on_ack_at(
        &mut self,
        flow: &FlowKey,
        at: &RtSlot,
        ack: SeqNum,
        pure: bool,
        now: Nanos,
    ) -> RtAckOutcome {
        rt_dispatch!(self, t => RtBackend::on_ack_at(t, flow, at, ack, pure, now))
    }

    #[inline]
    fn revalidate(&mut self, sig: FlowSignature, eack: SeqNum) -> bool {
        rt_dispatch!(self, t => RtBackend::revalidate(t, sig, eack))
    }

    fn rotate(&mut self, cutoff: Nanos) -> (u64, u64) {
        rt_dispatch!(self, t => RtBackend::rotate(t, cutoff))
    }

    fn occupancy(&self) -> usize {
        rt_dispatch!(self, t => RtBackend::occupancy(t))
    }

    fn peek(&mut self, flow: &FlowKey) -> Option<MeasurementRange> {
        rt_dispatch!(self, t => RtBackend::peek(t, flow))
    }
}

/// Closed static dispatch over the Packet Tracker backends.
pub enum PtTable {
    /// The exact reference tables (unlimited or constrained).
    Exact(PacketTracker),
    /// The compact fingerprint sketch.
    Sketch(SketchPacketTracker),
}

/// Delegate one method call to whichever backend is live.
macro_rules! pt_dispatch {
    ($self:expr, $t:ident => $body:expr) => {
        match $self {
            PtTable::Exact($t) => $body,
            PtTable::Sketch($t) => $body,
        }
    };
}

impl PtTable {
    /// Build the backend a mode describes.
    pub fn new(mode: PtMode) -> PtTable {
        match mode {
            PtMode::Sketch { .. } => PtTable::Sketch(SketchPacketTracker::new(mode)),
            _ => PtTable::Exact(PacketTracker::new(mode)),
        }
    }

    /// Self-hashing insert (streaming path; the batch path pre-probes).
    #[inline]
    pub fn insert_new(
        &mut self,
        flow: &FlowKey,
        sig: FlowSignature,
        eack: SeqNum,
        ts: Nanos,
    ) -> PtInsert {
        match self {
            PtTable::Exact(t) => t.insert_new(flow, sig, eack, ts),
            PtTable::Sketch(t) => sketch_insert_new(t, sig, eack, ts),
        }
    }

    /// Self-hashing ACK match (streaming path).
    #[inline]
    pub fn match_ack(&mut self, flow: &FlowKey, sig: FlowSignature, ack: SeqNum) -> Option<Nanos> {
        match self {
            PtTable::Exact(t) => t.match_ack(flow, sig, ack),
            PtTable::Sketch(t) => sketch_match_ack(t, sig, ack),
        }
    }
}

impl PtBackend for PtTable {
    #[inline]
    fn probe(&self, id: &PacketId) -> PtProbe {
        pt_dispatch!(self, t => PtBackend::probe(t, id))
    }

    #[inline]
    fn prefetch(&self, p: &PtProbe) {
        pt_dispatch!(self, t => PtBackend::prefetch(t, p))
    }

    #[inline]
    fn insert_new_probed(
        &mut self,
        flow: &FlowKey,
        sig: FlowSignature,
        eack: SeqNum,
        ts: Nanos,
        probe: &PtProbe,
    ) -> PtInsert {
        pt_dispatch!(self, t => PtBackend::insert_new_probed(t, flow, sig, eack, ts, probe))
    }

    #[inline]
    fn insert_recirculated(&mut self, rec: PtRecord, displaced_by: Option<PacketId>) -> PtInsert {
        pt_dispatch!(self, t => PtBackend::insert_recirculated(t, rec, displaced_by))
    }

    #[inline]
    fn match_ack_probed(
        &mut self,
        flow: &FlowKey,
        sig: FlowSignature,
        ack: SeqNum,
        probe: &PtProbe,
    ) -> Option<Nanos> {
        pt_dispatch!(self, t => PtBackend::match_ack_probed(t, flow, sig, ack, probe))
    }

    fn rotate(&mut self, cutoff: Nanos) -> (u64, u64) {
        pt_dispatch!(self, t => PtBackend::rotate(t, cutoff))
    }

    fn occupancy(&self) -> usize {
        pt_dispatch!(self, t => PtBackend::occupancy(t))
    }

    fn capacity(&self) -> usize {
        pt_dispatch!(self, t => PtBackend::capacity(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PtMode, RtMode};

    fn flow(n: u32) -> FlowKey {
        FlowKey::from_raw(0x0a00_0000 + n, 40000, 0x0808_0808, 443)
    }

    /// Both dispatcher variants satisfy the backend contract through one
    /// code path: exercise a small workload through the trait object-free
    /// enum and check the backends stay self-consistent.
    #[test]
    fn dispatchers_route_to_the_right_backend() {
        let exact = RtTable::new(RtMode::Constrained { slots: 64 }, SignatureWidth::W32);
        assert!(matches!(exact, RtTable::Exact(_)));
        let sketch = RtTable::new(RtMode::Sketch { slots: 64, ways: 2 }, SignatureWidth::W32);
        assert!(matches!(sketch, RtTable::Sketch(_)));
        let exact_pt = PtTable::new(PtMode::Constrained {
            slots: 8,
            stages: 1,
        });
        assert!(matches!(exact_pt, PtTable::Exact(_)));
        let sketch_pt = PtTable::new(PtMode::Sketch { slots: 8, ways: 4 });
        assert!(matches!(sketch_pt, PtTable::Sketch(_)));
    }

    #[test]
    fn enum_dispatch_matches_direct_calls() {
        for mode in [
            RtMode::Constrained { slots: 32 },
            RtMode::Sketch { slots: 32, ways: 2 },
        ] {
            let mut via_enum = RtTable::new(mode, SignatureWidth::W32);
            for step in 0..100u32 {
                let f = flow(step % 9);
                let at = via_enum.locate(&f);
                via_enum.prefetch(&at);
                assert_eq!(at.sig(), via_enum.sig(&f));
                let now = u64::from(step);
                if step % 3 == 2 {
                    let out = via_enum.on_ack_at(&f, &at, SeqNum(step * 40), true, now);
                    // Self-locating call must agree with the located one on
                    // the *next* identical offer (state already updated).
                    let _ = out;
                } else {
                    via_enum.on_seq_at(&f, &at, SeqNum(step * 100), SeqNum(step * 100 + 100), now);
                }
            }
            assert!(via_enum.occupancy() <= 9);
            assert!(via_enum.peek(&flow(0)).is_some() || via_enum.peek(&flow(1)).is_some());
        }
    }
}
