//! # dart-core
//!
//! The paper's contribution: **Dart** (Data-plane Actionable Round-trip
//! Times), an inline, real-time, continuous RTT measurement system
//! (Sengupta, Kim, Rexford — SIGCOMM 2022).
//!
//! The engine matches TCP data packets with their acknowledgments under
//! hardware constraints — one-way associative register tables, no revisiting
//! memory, bounded recirculation — while staying correct under TCP
//! retransmission, reordering, cumulative/duplicate ACKs, optimistic ACKs,
//! and sequence wraparound:
//!
//! * [`range::MeasurementRange`] — the per-flow Fig. 4 state machine;
//! * [`range_tracker::RangeTracker`] — the RT table (§3.1);
//! * [`packet_tracker::PacketTracker`] — the PT table with lazy eviction
//!   (§3.2);
//! * [`engine::DartEngine`] — the full pipeline with second-chance
//!   recirculation, cycle detection, and the analytics discard hook (§3.3).
//!
//! ```
//! use dart_core::{DartConfig, DartEngine, RttSample};
//! use dart_packet::{Direction, FlowKey, PacketBuilder};
//!
//! let flow = FlowKey::from_raw(0x0a000001, 44123, 0x5db8d822, 443);
//! let data = PacketBuilder::new(flow, 0)
//!     .seq(0u32).payload(1460).dir(Direction::Outbound).build();
//! let ack = PacketBuilder::new(flow.reverse(), 23_000_000)
//!     .ack(1460u32).dir(Direction::Inbound).build();
//!
//! let mut engine = DartEngine::new(DartConfig::default());
//! let mut samples: Vec<RttSample> = Vec::new();
//! engine.process(&data, &mut samples);
//! engine.process(&ack, &mut samples);
//! assert_eq!(samples[0].rtt, 23_000_000); // 23 ms
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The engine must never take down its host process: panicking unwraps are
// banned from lib code (tests keep them). Intentional exceptions carry an
// `#[allow]` with a justification at the call site.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod config;
pub mod engine;
pub mod error;
pub mod filter;
pub mod monitor;
pub mod packet_tracker;
pub mod pt_salu;
pub mod range;
pub mod range_tracker;
pub mod rt_salu;
pub mod sample;
pub mod sharded;
pub mod sketch;
pub mod snapshot;
pub mod stats;
#[cfg(feature = "telemetry")]
pub mod telemetry;

pub use backend::{PtBackend, PtTable, RtBackend, RtTable};
pub use config::{AdmissionMode, Backend, DartConfig, Leg, PtMode, RtMode, SynPolicy};
pub use engine::{run_trace, DartEngine, EngineEvent, EventSink, RecircFilter, RecirculateAll};
pub use error::{EngineError, FailureKind, FailurePolicy, ShardFailure};
pub use filter::{FlowFilter, FlowRule, PrefixMatch};
pub use monitor::{
    run_monitor, run_monitor_slice, run_monitor_ticked, EpochRotation, RttMonitor,
    DEFAULT_BLOCK_PKTS,
};
pub use packet_tracker::{PacketTracker, PtInsert, PtProbe, PtRecord};
pub use pt_salu::{SaluPtSlot, SlotRecord};
pub use range::{AckVerdict, MeasurementRange, SeqVerdict};
pub use range_tracker::{RangeTracker, RtAckOutcome, RtSeqOutcome, RtSlot};
pub use rt_salu::SaluRangeTracker;
pub use sample::{RttSample, SampleSink, SampleWeight};
pub use sharded::{
    run_trace_sharded, shard_of, PacketHook, ShardedConfig, ShardedDartEngine, ShardedMonitor,
    ShardedRun, SupervisorConfig, SupervisorHealth,
};
pub use sketch::{
    Admission, AdmissionGate, CountMinSketch, HeavyHitters, SketchPacketTracker, SketchRangeTracker,
};
pub use snapshot::{
    SnapReader, SnapWriter, Snapshot, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use stats::EngineStats;
#[cfg(feature = "telemetry")]
pub use telemetry::{EngineTelemetry, MeteredMonitor, Stage, StageTimers, SYNC_INTERVAL_PKTS};
