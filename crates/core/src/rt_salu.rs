//! The Range Tracker as a chain of stateful-ALU accesses — the §4
//! implementability proof, executable.
//!
//! The paper states the RT "spread\[s\] across 3 component tables, and
//! therefore 3 stages" because each register allows one access per pass and
//! updates must happen in sequence: the right edge is maxed first, then the
//! left edge is decided against the *old* right edge. This module expresses
//! exactly that decomposition using [`dart_switch::SaluProgram`]s — two
//! condition units and two predicated updates per access, gateway-selected
//! program variants, metadata carried between stages — and the test suite
//! proves it bit-equivalent to the behavioural
//! [`crate::range::MeasurementRange`] on arbitrary packet sequences.
//!
//! Stage layout per packet:
//!
//! ```text
//! SEQ:  gateway(raw eack < seq?) ──► right-edge SALU ──► left-edge SALU
//!         wraparound variant          max(right,eack)     hole/collapse
//! ACK:  right-edge SALU (read) ──► gateway(optimistic?) ──► left-edge SALU
//!         old right + compare          skip if beyond        dup/advance
//! ```

use crate::range::{AckVerdict, SeqVerdict};
use dart_switch::{Cmp, Condition, Guard, Operand, OutputSel, SaluProgram, Update};

/// Right-edge SALU for data packets: `right = max(right, eack)`, exporting
/// the old right edge and the "extended" condition (phv0 = seq, phv1 = eack).
fn seq_right_program() -> SaluProgram {
    SaluProgram {
        cond0: Some(Condition {
            a: Operand::Phv1, // eack
            b: Operand::Reg,  // right
            cmp: Cmp::CircGt,
        }),
        cond1: None,
        updates: [
            Some(Update {
                guard: Guard::c0(),
                value: Operand::Phv1,
            }),
            None,
        ],
        output: OutputSel::OldReg,
    }
}

/// Left-edge SALU for data packets that extended the right edge
/// (phv0 = seq, phv1 = old right): on a hole, snap left to seq.
fn seq_left_extended_program() -> SaluProgram {
    SaluProgram {
        cond0: Some(Condition {
            a: Operand::Phv0, // seq
            b: Operand::Phv1, // old right
            cmp: Cmp::CircGt,
        }),
        cond1: None,
        updates: [
            Some(Update {
                guard: Guard::c0(),
                value: Operand::Phv0,
            }),
            None,
        ],
        output: OutputSel::Conditions,
    }
}

/// Left-edge SALU for retransmissions: collapse to the (unchanged) right
/// edge carried as phv1.
fn seq_left_collapse_program() -> SaluProgram {
    SaluProgram {
        cond0: None,
        cond1: None,
        updates: [
            Some(Update {
                guard: Guard::ALWAYS,
                value: Operand::Phv1,
            }),
            None,
        ],
        output: OutputSel::NewReg,
    }
}

/// Wraparound variant (gateway: raw eack < raw seq): right := eack.
fn seq_right_wrap_program() -> SaluProgram {
    SaluProgram {
        cond0: None,
        cond1: None,
        updates: [
            Some(Update {
                guard: Guard::ALWAYS,
                value: Operand::Phv1,
            }),
            None,
        ],
        output: OutputSel::NewReg,
    }
}

/// Wraparound variant: left := 0.
fn seq_left_wrap_program() -> SaluProgram {
    SaluProgram {
        cond0: None,
        cond1: None,
        updates: [
            Some(Update {
                guard: Guard::ALWAYS,
                value: Operand::Const(0),
            }),
            None,
        ],
        output: OutputSel::NewReg,
    }
}

/// Right-edge SALU for ACKs: read-only, exports the old right edge and the
/// "optimistic" condition (phv0 = ack).
fn ack_right_program() -> SaluProgram {
    SaluProgram {
        cond0: Some(Condition {
            a: Operand::Phv0, // ack
            b: Operand::Reg,  // right
            cmp: Cmp::CircGt,
        }),
        cond1: None,
        updates: [None, None],
        output: OutputSel::OldReg,
    }
}

/// Left-edge SALU for in-window pure ACKs (phv0 = ack, phv1 = old right):
/// c0 = duplicate (ack == left) → collapse; else c1 = above-left → advance.
fn ack_left_pure_program() -> SaluProgram {
    SaluProgram {
        cond0: Some(Condition {
            a: Operand::Phv0,
            b: Operand::Reg,
            cmp: Cmp::Eq,
        }),
        cond1: Some(Condition {
            a: Operand::Phv0,
            b: Operand::Reg,
            cmp: Cmp::CircGt,
        }),
        updates: [
            Some(Update {
                guard: Guard::c0(),
                value: Operand::Phv1, // collapse: left = right
            }),
            Some(Update {
                guard: Guard::c1_and_not_c0(),
                value: Operand::Phv0, // advance
            }),
        ],
        output: OutputSel::Conditions,
    }
}

/// Left-edge SALU for ACKs piggybacked on data: same classification but the
/// duplicate case must NOT collapse (a data packet re-asserting the edge is
/// not a TCP dup-ACK).
fn ack_left_piggyback_program() -> SaluProgram {
    SaluProgram {
        cond0: Some(Condition {
            a: Operand::Phv0,
            b: Operand::Reg,
            cmp: Cmp::Eq,
        }),
        cond1: Some(Condition {
            a: Operand::Phv0,
            b: Operand::Reg,
            cmp: Cmp::CircGt,
        }),
        updates: [
            Some(Update {
                guard: Guard::c1_and_not_c0(),
                value: Operand::Phv0,
            }),
            None,
        ],
        output: OutputSel::Conditions,
    }
}

/// A Range Tracker entry realized as two SALU-driven registers plus the
/// occupancy handled by the (separately modeled) signature stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct SaluRangeTracker {
    right: u32,
    left: u32,
    occupied: bool,
}

impl SaluRangeTracker {
    /// Fresh, unoccupied entry.
    pub fn new() -> SaluRangeTracker {
        SaluRangeTracker::default()
    }

    /// Current `(left, right)` registers.
    pub fn edges(&self) -> Option<(u32, u32)> {
        self.occupied.then_some((self.left, self.right))
    }

    /// Process a data packet through the stage chain.
    pub fn on_seq(&mut self, seq: u32, eack: u32) -> SeqVerdict {
        if !self.occupied {
            // Table miss: the signature stage initializes both registers.
            self.occupied = true;
            self.left = seq;
            self.right = eack;
            return SeqVerdict::Extend;
        }
        // Gateway: raw-compare wraparound check on the PHV alone.
        if eack < seq {
            seq_right_wrap_program().execute(&mut self.right, [seq, eack]);
            seq_left_wrap_program().execute(&mut self.left, [seq, eack]);
            return SeqVerdict::Wraparound;
        }
        // Stage 1: right edge. Exports old right + "extended" bit.
        let r = seq_right_program().execute(&mut self.right, [seq, eack]);
        let old_right = r.output;
        if r.c0 {
            // Stage 2 (extended variant): hole detection against old right.
            let l = seq_left_extended_program().execute(&mut self.left, [seq, old_right]);
            if l.c0 {
                SeqVerdict::HoleReset
            } else {
                SeqVerdict::Extend
            }
        } else {
            // Stage 2 (retransmission variant): collapse.
            seq_left_collapse_program().execute(&mut self.left, [seq, old_right]);
            SeqVerdict::Retransmission
        }
    }

    /// Process an ACK through the stage chain. `pure` selects the
    /// left-stage program variant (a gateway on the payload-length field).
    pub fn on_ack(&mut self, ack: u32, pure: bool) -> Option<AckVerdict> {
        if !self.occupied {
            return None;
        }
        // Stage 1: read right edge, optimistic check.
        let r = ack_right_program().execute(&mut self.right, [ack, 0]);
        if r.c0 {
            return Some(AckVerdict::Optimistic);
        }
        let old_right = r.output;
        // Stage 2: duplicate/advance/stale against the left edge.
        let prog = if pure {
            ack_left_pure_program()
        } else {
            ack_left_piggyback_program()
        };
        let l = prog.execute(&mut self.left, [ack, old_right]);
        Some(if l.c0 {
            if pure {
                AckVerdict::DuplicateCollapse
            } else {
                AckVerdict::Stale
            }
        } else if l.c1 {
            AckVerdict::Advance
        } else {
            AckVerdict::Stale
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::MeasurementRange;
    use dart_packet::SeqNum;

    /// Drive both implementations with the same operations and compare
    /// edges + verdicts after every step.
    fn check_equivalence(base: u32, ops: &[(bool, u32, u32, bool)]) {
        let mut salu = SaluRangeTracker::new();
        let mut model: Option<MeasurementRange> = None;
        for &(is_seq, off, len, pure) in ops {
            if is_seq {
                let seq = base.wrapping_add(off);
                let eack = seq.wrapping_add(len);
                let sv = salu.on_seq(seq, eack);
                let mv = match &mut model {
                    None => {
                        model = Some(MeasurementRange::open(SeqNum(seq), SeqNum(eack)));
                        SeqVerdict::Extend
                    }
                    Some(m) => m.on_seq(SeqNum(seq), SeqNum(eack)),
                };
                assert_eq!(sv, mv, "seq verdict mismatch at seq={seq} eack={eack}");
            } else if let Some(m) = &mut model {
                let ack = base.wrapping_add(off);
                let sv = salu.on_ack(ack, pure).expect("occupied");
                let mv = m.on_ack(SeqNum(ack), pure);
                assert_eq!(sv, mv, "ack verdict mismatch at ack={ack}");
            }
            if let Some(m) = &model {
                assert_eq!(
                    salu.edges(),
                    Some((m.left.raw(), m.right.raw())),
                    "edge mismatch"
                );
            }
        }
    }

    #[test]
    fn equivalent_on_the_papers_scenarios() {
        // Fig 4a/4b: normal operation.
        check_equivalence(
            1000,
            &[
                (true, 0, 500, false),
                (true, 500, 500, false),
                (false, 500, 0, true),
                (true, 1000, 500, false),
                (false, 1500, 0, true),
            ],
        );
        // Fig 4c: retransmission then recovery.
        check_equivalence(
            1000,
            &[
                (true, 0, 500, false),
                (true, 0, 500, false),   // retransmission → collapse
                (false, 500, 0, true),   // dup at collapsed edge
                (true, 500, 500, false), // recovery
                (false, 1000, 0, true),
            ],
        );
        // Fig 4d: hole.
        check_equivalence(
            1000,
            &[
                (true, 0, 100, false),
                (true, 200, 100, false), // hole: [200,300)
                (false, 100, 0, true),   // stale (below new left)
                (false, 300, 0, true),   // advance
            ],
        );
        // Optimistic + piggyback edge reassertion.
        check_equivalence(
            1000,
            &[
                (true, 0, 100, false),
                (false, 900, 0, true), // optimistic
                (false, 0, 0, false),  // piggyback at left edge: no collapse
                (false, 0, 0, true),   // pure dup at left edge: collapse
            ],
        );
    }

    #[test]
    fn equivalent_across_wraparound() {
        check_equivalence(
            u32::MAX - 700,
            &[
                (true, 0, 500, false),
                (true, 500, 400, false), // crosses zero → wraparound reset
                (false, 200, 0, true),
                (true, 900, 300, false),
            ],
        );
    }

    #[test]
    fn exhaustive_small_space_equivalence() {
        // Brute-force short op sequences over a tiny offset space: every
        // combination of 4 operations.
        let offs = [0u32, 100, 200];
        let lens = [100u32, 200];
        let mut checked = 0;
        for a in 0..2usize {
            for &o1 in &offs {
                for &l1 in &lens {
                    for b in 0..2usize {
                        for &o2 in &offs {
                            for &l2 in &lens {
                                let ops = [
                                    (true, 0, 200, false), // establish
                                    (a == 0, o1, l1, true),
                                    (b == 0, o2, l2, true),
                                ];
                                check_equivalence(5000, &ops);
                                checked += 1;
                            }
                        }
                    }
                }
            }
        }
        assert!(checked > 100);
    }
}
