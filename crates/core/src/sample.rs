//! RTT samples: the engine's output.

use dart_packet::{FlowKey, Nanos, SeqNum};

/// A sample's statistical weight, fixed-point in units of
/// 1/[`SampleWeight::SCALE`] so [`RttSample`] stays `Eq`/hashable.
///
/// Almost every engine emits plain samples at [`SampleWeight::UNIT`].
/// Fridge's corrected estimator (§4 of the fridge paper) weights each
/// sample by the inverse of its survival probability; those weights ride
/// through the common [`SampleSink`] here instead of needing a bespoke
/// callback type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SampleWeight(pub u32);

impl SampleWeight {
    /// Fixed-point scale: weight 1.0 is `SCALE` raw units.
    pub const SCALE: u32 = 1_000;

    /// The default weight of an unweighted sample (1.0).
    pub const UNIT: SampleWeight = SampleWeight(Self::SCALE);

    /// Quantize a floating-point weight (clamped to `[0, u32::MAX/SCALE]`).
    pub fn from_f64(w: f64) -> SampleWeight {
        let raw = (w * Self::SCALE as f64).round();
        SampleWeight(raw.clamp(0.0, u32::MAX as f64) as u32)
    }

    /// The weight as a float, for estimator math and reports.
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / Self::SCALE as f64
    }

    /// True for the default weight 1.0.
    pub fn is_unit(self) -> bool {
        self == Self::UNIT
    }
}

impl Default for SampleWeight {
    fn default() -> Self {
        SampleWeight::UNIT
    }
}

/// One round-trip time measurement: a data packet matched with its ACK.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RttSample {
    /// Flow key in the *data* direction.
    pub flow: FlowKey,
    /// The acknowledgment number that closed the sample.
    pub eack: SeqNum,
    /// Measured round-trip time.
    pub rtt: Nanos,
    /// Arrival time of the ACK at the monitor (sample emission time).
    pub ts: Nanos,
    /// Statistical weight ([`SampleWeight::UNIT`] unless the engine
    /// corrects for sampling survival, like fridge).
    pub weight: SampleWeight,
}

impl RttSample {
    /// An unweighted sample (weight 1.0) — what every engine except
    /// fridge emits.
    pub fn new(flow: FlowKey, eack: SeqNum, rtt: Nanos, ts: Nanos) -> RttSample {
        RttSample {
            flow,
            eack,
            rtt,
            ts,
            weight: SampleWeight::UNIT,
        }
    }

    /// The same sample with an explicit weight.
    pub fn with_weight(mut self, weight: SampleWeight) -> RttSample {
        self.weight = weight;
        self
    }

    /// RTT in fractional milliseconds (for reports).
    pub fn rtt_ms(&self) -> f64 {
        self.rtt as f64 / 1e6
    }
}

/// A sink receiving samples as the engine emits them.
///
/// The analytics module implements this; tests and the harness use
/// `Vec<RttSample>`.
pub trait SampleSink {
    /// Receive one sample.
    fn on_sample(&mut self, sample: RttSample);
}

impl SampleSink for Vec<RttSample> {
    fn on_sample(&mut self, sample: RttSample) {
        self.push(sample);
    }
}

impl<F: FnMut(RttSample)> SampleSink for F {
    fn on_sample(&mut self, sample: RttSample) {
        self(sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_ms_converts() {
        let s = RttSample::new(FlowKey::from_raw(1, 2, 3, 4), SeqNum(10), 12_500_000, 0);
        assert!((s.rtt_ms() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn vec_sink_collects() {
        let mut v: Vec<RttSample> = Vec::new();
        v.on_sample(RttSample::new(
            FlowKey::from_raw(1, 2, 3, 4),
            SeqNum(1),
            5,
            6,
        ));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn closure_sink_works() {
        let mut n = 0u32;
        {
            let mut sink = |_s: RttSample| n += 1;
            sink.on_sample(RttSample::new(
                FlowKey::from_raw(1, 2, 3, 4),
                SeqNum(1),
                5,
                6,
            ));
        }
        assert_eq!(n, 1);
    }

    #[test]
    fn weights_quantize_and_default_to_unit() {
        assert!(SampleWeight::default().is_unit());
        assert_eq!(SampleWeight::from_f64(1.0), SampleWeight::UNIT);
        assert_eq!(SampleWeight::from_f64(2.5).0, 2_500);
        assert!((SampleWeight::from_f64(1.2345).as_f64() - 1.235).abs() < 1e-9);
        // Clamped, never wrapped.
        assert_eq!(SampleWeight::from_f64(-3.0).0, 0);
        assert_eq!(SampleWeight::from_f64(1e12), SampleWeight(u32::MAX));
        let s = RttSample::new(FlowKey::from_raw(1, 2, 3, 4), SeqNum(1), 5, 6)
            .with_weight(SampleWeight::from_f64(4.0));
        assert_eq!(s.weight.as_f64(), 4.0);
    }
}
