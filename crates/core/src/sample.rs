//! RTT samples: the engine's output.

use dart_packet::{FlowKey, Nanos, SeqNum};

/// One round-trip time measurement: a data packet matched with its ACK.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RttSample {
    /// Flow key in the *data* direction.
    pub flow: FlowKey,
    /// The acknowledgment number that closed the sample.
    pub eack: SeqNum,
    /// Measured round-trip time.
    pub rtt: Nanos,
    /// Arrival time of the ACK at the monitor (sample emission time).
    pub ts: Nanos,
}

impl RttSample {
    /// RTT in fractional milliseconds (for reports).
    pub fn rtt_ms(&self) -> f64 {
        self.rtt as f64 / 1e6
    }
}

/// A sink receiving samples as the engine emits them.
///
/// The analytics module implements this; tests and the harness use
/// `Vec<RttSample>`.
pub trait SampleSink {
    /// Receive one sample.
    fn on_sample(&mut self, sample: RttSample);
}

impl SampleSink for Vec<RttSample> {
    fn on_sample(&mut self, sample: RttSample) {
        self.push(sample);
    }
}

impl<F: FnMut(RttSample)> SampleSink for F {
    fn on_sample(&mut self, sample: RttSample) {
        self(sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_ms_converts() {
        let s = RttSample {
            flow: FlowKey::from_raw(1, 2, 3, 4),
            eack: SeqNum(10),
            rtt: 12_500_000,
            ts: 0,
        };
        assert!((s.rtt_ms() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn vec_sink_collects() {
        let mut v: Vec<RttSample> = Vec::new();
        v.on_sample(RttSample {
            flow: FlowKey::from_raw(1, 2, 3, 4),
            eack: SeqNum(1),
            rtt: 5,
            ts: 6,
        });
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn closure_sink_works() {
        let mut n = 0u32;
        {
            let mut sink = |_s: RttSample| n += 1;
            sink.on_sample(RttSample {
                flow: FlowKey::from_raw(1, 2, 3, 4),
                eack: SeqNum(1),
                rtt: 5,
                ts: 6,
            });
        }
        assert_eq!(n, 1);
    }
}
