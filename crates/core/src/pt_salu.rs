//! The Packet Tracker slot as stateful-ALU accesses — the §3.2/§4
//! implementability proof for lazy eviction.
//!
//! A PT slot stores (signature, eACK, timestamp) across three component
//! registers ("we spread the ... PT ... across 3 component tables", §4).
//! The crucial hardware trick behind lazy eviction is that a stateful ALU
//! can **read the old value and write the new one in a single access** —
//! so when a new record claims an occupied slot, the displaced occupant's
//! fields ride out of the registers into packet metadata, ready to be
//! recirculated (paper Fig. 5, events 4–5). This module expresses insert,
//! displace, and match-and-clear with [`dart_switch::SaluProgram`]s, and
//! the tests prove equivalence with a plain `Option<(sig, eack, ts)>` slot.

use dart_switch::{Cmp, Condition, Guard, Operand, OutputSel, SaluProgram, Update};

/// Swap-in program: writes the PHV value unconditionally and outputs the
/// old register value — the displaced occupant's field.
fn swap_program() -> SaluProgram {
    SaluProgram {
        cond0: None,
        cond1: None,
        updates: [
            Some(Update {
                guard: Guard::ALWAYS,
                value: Operand::Phv0,
            }),
            None,
        ],
        output: OutputSel::OldReg,
    }
}

/// Compare-and-clear program for the signature register: if the stored
/// signature equals the probe (phv0), clear to the sentinel (phv1 = 0) and
/// report the hit; otherwise leave untouched.
fn match_clear_program() -> SaluProgram {
    SaluProgram {
        cond0: Some(Condition {
            a: Operand::Reg,
            b: Operand::Phv0,
            cmp: Cmp::Eq,
        }),
        cond1: None,
        updates: [
            Some(Update {
                guard: Guard::c0(),
                value: Operand::Phv1, // sentinel
            }),
            None,
        ],
        output: OutputSel::OldReg,
    }
}

/// Conditional read-and-clear for the value registers: clear when the
/// preceding signature stage hit (gateway-selected), outputting the old
/// value either way.
fn clear_program() -> SaluProgram {
    SaluProgram {
        cond0: None,
        cond1: None,
        updates: [
            Some(Update {
                guard: Guard::ALWAYS,
                value: Operand::Const(0),
            }),
            None,
        ],
        output: OutputSel::OldReg,
    }
}

/// A PT slot realized as three SALU-driven registers. The signature
/// register doubles as the occupancy indicator (0 = empty, a real
/// deployment reserves the sentinel or keeps a validity bit — our third
/// register in the resource model).
#[derive(Clone, Copy, Debug, Default)]
pub struct SaluPtSlot {
    sig: u32,
    eack: u32,
    ts: u32,
}

/// A record as carried in packet metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotRecord {
    /// Flow signature (nonzero).
    pub sig: u32,
    /// Expected ACK.
    pub eack: u32,
    /// Timestamp.
    pub ts: u32,
}

impl SaluPtSlot {
    /// Empty slot.
    pub fn new() -> SaluPtSlot {
        SaluPtSlot::default()
    }

    /// Current occupant (control-plane view).
    pub fn occupant(&self) -> Option<SlotRecord> {
        (self.sig != 0).then_some(SlotRecord {
            sig: self.sig,
            eack: self.eack,
            ts: self.ts,
        })
    }

    /// Insert `rec`, unconditionally claiming the slot; the displaced
    /// occupant (if any) rides out through the SALU outputs.
    pub fn insert(&mut self, rec: SlotRecord) -> Option<SlotRecord> {
        debug_assert_ne!(rec.sig, 0, "signature 0 is the empty sentinel");
        // One access per register, each swapping in the new field and
        // emitting the old one.
        let old_sig = swap_program().execute(&mut self.sig, [rec.sig, 0]).output;
        let old_eack = swap_program().execute(&mut self.eack, [rec.eack, 0]).output;
        let old_ts = swap_program().execute(&mut self.ts, [rec.ts, 0]).output;
        (old_sig != 0).then_some(SlotRecord {
            sig: old_sig,
            eack: old_eack,
            ts: old_ts,
        })
    }

    /// Match an arriving ACK's (sig, eack): on a hit, clear the slot and
    /// return the stored timestamp.
    pub fn match_clear(&mut self, sig: u32, eack: u32) -> Option<u32> {
        // Stage 1: signature compare-and-conditionally-clear.
        let r = match_clear_program().execute(&mut self.sig, [sig, 0]);
        if !r.c0 {
            return None;
        }
        // Stage 2: eACK verification. The eACK register is read in the same
        // pass; a mismatch means a signature collision on a different
        // packet — restore is impossible (memory already passed), so the
        // hardware verifies eACK *as part of the signature* in practice: we
        // model that by comparing before clearing the remaining registers.
        let e = match_clear_program().execute(&mut self.eack, [eack, 0]);
        if !e.c0 {
            // Collision on sig but not eack: the slot is now damaged (sig
            // cleared). The prototype avoids this by hashing sig over
            // (flow, eACK) jointly — mirror that invariant here.
            return None;
        }
        let ts = clear_program().execute(&mut self.ts, [0, 0]).output;
        Some(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain behavioural slot for equivalence checking.
    #[derive(Default)]
    struct ModelSlot(Option<SlotRecord>);

    impl ModelSlot {
        fn insert(&mut self, rec: SlotRecord) -> Option<SlotRecord> {
            self.0.replace(rec)
        }
        fn match_clear(&mut self, sig: u32, eack: u32) -> Option<u32> {
            match self.0 {
                Some(r) if r.sig == sig && r.eack == eack => {
                    self.0 = None;
                    Some(r.ts)
                }
                _ => None,
            }
        }
    }

    fn rec(sig: u32, eack: u32, ts: u32) -> SlotRecord {
        SlotRecord { sig, eack, ts }
    }

    #[test]
    fn insert_into_empty_displaces_nothing() {
        let mut s = SaluPtSlot::new();
        assert_eq!(s.insert(rec(7, 100, 42)), None);
        assert_eq!(s.occupant(), Some(rec(7, 100, 42)));
    }

    #[test]
    fn displacement_carries_full_old_record() {
        // Fig. 5 events 3-5: the new entry is stored while the old one's
        // fields exit through the ALU outputs for recirculation.
        let mut s = SaluPtSlot::new();
        s.insert(rec(7, 100, 42));
        let displaced = s.insert(rec(9, 200, 77)).expect("displacement");
        assert_eq!(displaced, rec(7, 100, 42));
        assert_eq!(s.occupant(), Some(rec(9, 200, 77)));
    }

    #[test]
    fn match_and_clear_in_one_pass() {
        let mut s = SaluPtSlot::new();
        s.insert(rec(7, 100, 42));
        assert_eq!(s.match_clear(7, 100), Some(42));
        assert_eq!(s.occupant(), None);
        assert_eq!(s.match_clear(7, 100), None, "consumed");
    }

    #[test]
    fn wrong_probe_misses() {
        let mut s = SaluPtSlot::new();
        s.insert(rec(7, 100, 42));
        assert_eq!(s.match_clear(8, 100), None);
        assert_eq!(s.occupant(), Some(rec(7, 100, 42)), "slot untouched");
    }

    #[test]
    fn equivalent_to_behavioural_slot_on_random_ops() {
        // Deterministic xorshift op stream; signatures joint over (sig,eack)
        // as the prototype requires.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut salu = SaluPtSlot::new();
        let mut model = ModelSlot::default();
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let sig = 1 + (x as u32 % 7);
            let eack = 100 * (1 + ((x >> 32) as u32 % 5));
            let joint_sig = sig.wrapping_mul(0x01000193) ^ eack; // joint hash
            if x.is_multiple_of(3) {
                let a = salu.match_clear(joint_sig, eack);
                let b = model.match_clear(joint_sig, eack);
                assert_eq!(a, b);
            } else {
                let r = rec(joint_sig, eack, (x >> 16) as u32 | 1);
                assert_eq!(salu.insert(r), model.insert(r));
            }
            assert_eq!(salu.occupant(), model.0);
        }
    }
}
