//! The unified streaming engine contract: every RTT monitor — Dart, the
//! sharded Dart, and each software baseline — behind one trait.
//!
//! # Contract
//!
//! A monitor consumes packets **in capture order**, one at a time, and
//! pushes samples into a [`SampleSink`] as it discovers them. The driver
//! promises:
//!
//! * `on_packet` is called once per packet, in order;
//! * `flush` is called exactly once after the last packet (drivers may call
//!   it again — implementations must make it **idempotent**: a second flush
//!   emits nothing and changes no counters);
//! * `stats` may be read at any time and reflects everything processed so
//!   far.
//!
//! The monitor promises:
//!
//! * samples are emitted in a deterministic order for a given input: the
//!   same packets through the same configuration produce a byte-identical
//!   sample stream (the differential testkit depends on this);
//! * per-packet engines emit during `on_packet`; engines that buffer
//!   (the sharded fan-in, lean's end-of-trace estimates) emit during
//!   `flush`, still deterministically ordered;
//! * `stats` uses the shared [`EngineStats`] vocabulary. Baselines fill
//!   only the counters that have a meaning for them (at minimum `packets`
//!   and `samples`); Dart's loss-accounting counters stay zero and the
//!   testkit asserts bounded loss only where the registry promises it.
//!
//! [`run_monitor`] drives any monitor from any
//! [`PacketSource`] — the single helper that
//! replaced the per-engine `process_trace` copies — so a monitor written
//! against this trait gets native-trace, pcap, and simulated streaming
//! (without trace materialization) for free.

use crate::sample::{RttSample, SampleSink};
use crate::stats::EngineStats;
use dart_packet::{PacketError, PacketMeta, PacketSource, SliceSource};

/// One streaming RTT measurement engine.
pub trait RttMonitor {
    /// Stable engine name (`dart`, `tcptrace`, ...): the registry key and
    /// report row label.
    fn name(&self) -> &str;

    /// One-line human description for CLI listings.
    fn describe(&self) -> String {
        self.name().to_string()
    }

    /// Consume one packet in capture order, emitting any samples it closes.
    fn on_packet(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink);

    /// End of stream: emit anything buffered (sharded fan-in, end-of-trace
    /// estimates) and settle counters. Must be idempotent.
    fn flush(&mut self, sink: &mut dyn SampleSink);

    /// Counters so far, in the shared vocabulary.
    fn stats(&self) -> EngineStats;
}

/// Drive a monitor over a packet source to exhaustion, then flush.
///
/// Returns the monitor's final counters; samples land in `sink`. This is
/// the one place trace-driving lives — engines implement [`RttMonitor`],
/// sources implement [`PacketSource`], and every driver (bench harness,
/// differential runner, CLI) goes through here.
pub fn run_monitor<M: RttMonitor + ?Sized, S: PacketSource>(
    monitor: &mut M,
    mut source: S,
    sink: &mut dyn SampleSink,
) -> Result<EngineStats, PacketError> {
    while let Some(pkt) = source.next_packet()? {
        monitor.on_packet(&pkt, sink);
    }
    monitor.flush(sink);
    Ok(monitor.stats())
}

/// [`run_monitor`] with a periodic callback: `tick(processed, done)` fires
/// after every `every` packets (with `done = false`) and once more after
/// the flush (with `done = true`, whatever the final count). The metrics
/// scraper hangs its periodic snapshot emission off this; anything else
/// needing a progress heartbeat (progress bars, watchdogs) can use it too.
pub fn run_monitor_ticked<M: RttMonitor + ?Sized, S: PacketSource>(
    monitor: &mut M,
    mut source: S,
    sink: &mut dyn SampleSink,
    every: u64,
    mut tick: impl FnMut(u64, bool),
) -> Result<EngineStats, PacketError> {
    let every = every.max(1);
    let mut processed = 0u64;
    while let Some(pkt) = source.next_packet()? {
        monitor.on_packet(&pkt, sink);
        processed += 1;
        if processed.is_multiple_of(every) {
            tick(processed, false);
        }
    }
    monitor.flush(sink);
    tick(processed, true);
    Ok(monitor.stats())
}

/// [`run_monitor`] over an in-memory trace, collecting into a fresh vector.
/// Infallible: slice sources cannot error.
pub fn run_monitor_slice<M: RttMonitor + ?Sized>(
    monitor: &mut M,
    packets: &[PacketMeta],
) -> (Vec<RttSample>, EngineStats) {
    let mut samples = Vec::new();
    // SliceSource::next_packet never returns Err, so this expect cannot
    // fire; the lint exception documents the proof obligation.
    #[allow(clippy::expect_used)]
    let stats = run_monitor(monitor, SliceSource::new(packets), &mut samples)
        .expect("slice sources are infallible");
    (samples, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DartConfig;
    use crate::engine::{run_trace, DartEngine};
    use dart_packet::{Direction, FlowKey, PacketBuilder};

    fn handshake_free_exchange() -> Vec<PacketMeta> {
        let flow = FlowKey::from_raw(0x0a00_0001, 44123, 0x5db8_d822, 443);
        vec![
            PacketBuilder::new(flow, 0)
                .seq(0u32)
                .payload(1460)
                .dir(Direction::Outbound)
                .build(),
            PacketBuilder::new(flow.reverse(), 23_000_000)
                .ack(1460u32)
                .dir(Direction::Inbound)
                .build(),
        ]
    }

    #[test]
    fn run_monitor_matches_run_trace_for_dart() {
        let packets = handshake_free_exchange();
        let (expect_samples, expect_stats) = run_trace(DartConfig::default(), &packets);
        let mut engine = DartEngine::new(DartConfig::default());
        let (samples, stats) = run_monitor_slice(&mut engine, &packets);
        assert_eq!(samples, expect_samples);
        assert_eq!(stats, expect_stats);
        assert_eq!(samples.len(), 1);
    }

    #[test]
    fn dart_flush_is_idempotent() {
        let packets = handshake_free_exchange();
        let mut engine = DartEngine::new(DartConfig::default());
        let (samples, stats) = run_monitor_slice(&mut engine, &packets);
        let mut extra = Vec::new();
        RttMonitor::flush(&mut engine, &mut extra);
        assert!(extra.is_empty(), "second flush must emit nothing");
        assert_eq!(RttMonitor::stats(&engine), stats);
        assert_eq!(samples.len(), 1);
    }

    #[test]
    fn monitor_names_and_descriptions_render() {
        let engine = DartEngine::new(DartConfig::default());
        assert_eq!(engine.name(), "dart");
        assert!(engine.describe().contains("Dart"));
    }
}
