//! The unified streaming engine contract: every RTT monitor — Dart, the
//! sharded Dart, and each software baseline — behind one trait.
//!
//! # Contract
//!
//! A monitor consumes packets **in capture order** — one at a time via
//! `on_packet`, or a block at a time via `on_batch` — and pushes samples
//! into a [`SampleSink`] as it discovers them. The driver promises:
//!
//! * every packet is delivered exactly once, in order, through any mix of
//!   `on_packet` and `on_batch` calls (blocks may be empty);
//! * `flush` is called exactly once after the last packet (drivers may call
//!   it again — implementations must make it **idempotent**: a second flush
//!   emits nothing and changes no counters);
//! * `stats` may be read at any time and reflects everything processed so
//!   far.
//!
//! The monitor promises:
//!
//! * samples are emitted in a deterministic order for a given input: the
//!   same packets through the same configuration produce a byte-identical
//!   sample stream (the differential testkit depends on this);
//! * per-packet engines emit during `on_packet`; engines that buffer
//!   (the sharded fan-in, lean's end-of-trace estimates) emit during
//!   `flush`, still deterministically ordered;
//! * `stats` uses the shared [`EngineStats`] vocabulary. Baselines fill
//!   only the counters that have a meaning for them (at minimum `packets`
//!   and `samples`); Dart's loss-accounting counters stay zero and the
//!   testkit asserts bounded loss only where the registry promises it.
//!
//! [`run_monitor`] drives any monitor from any
//! [`PacketSource`] — the single helper that
//! replaced the per-engine `process_trace` copies — so a monitor written
//! against this trait gets native-trace, pcap, and simulated streaming
//! (without trace materialization) for free.

use crate::sample::{RttSample, SampleSink};
use crate::snapshot::{Snapshot, SnapshotError};
use crate::stats::EngineStats;
use dart_packet::{Nanos, PacketError, PacketMeta, PacketSource, SliceSource};

/// What one epoch rotation swept: flow counts from the Range Tracker,
/// record counts from the Packet Tracker (plus any auxiliary state the
/// engine holds, e.g. victim-cache records). Long-lived daemons rotate
/// periodically so tables keep serving the live population instead of
/// growing (unlimited mode) or silting up with dead flows (constrained
/// modes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochRotation {
    /// RT flows that survived the rotation.
    pub flows_carried: u64,
    /// RT flows swept as stale.
    pub flows_dropped: u64,
    /// PT records that survived the rotation.
    pub records_carried: u64,
    /// PT (and auxiliary) records swept as stale.
    pub records_dropped: u64,
}

impl EpochRotation {
    /// Accumulate another rotation's counts (sharded fan-in).
    pub fn merge(&mut self, other: &EpochRotation) {
        self.flows_carried += other.flows_carried;
        self.flows_dropped += other.flows_dropped;
        self.records_carried += other.records_carried;
        self.records_dropped += other.records_dropped;
    }
}

/// One streaming RTT measurement engine.
pub trait RttMonitor {
    /// Stable engine name (`dart`, `tcptrace`, ...): the registry key and
    /// report row label.
    fn name(&self) -> &str;

    /// One-line human description for CLI listings.
    fn describe(&self) -> String {
        self.name().to_string()
    }

    /// Consume one packet in capture order, emitting any samples it closes.
    fn on_packet(&mut self, pkt: &PacketMeta, sink: &mut dyn SampleSink);

    /// Consume a block of packets in capture order. Must be observationally
    /// identical to calling [`RttMonitor::on_packet`] per packet — same
    /// samples in the same order, same final [`RttMonitor::stats`] — for
    /// any split of the stream into blocks (the conformance suite pins
    /// this). The default does exactly that; engines with a real batch
    /// pipeline (SoA decode, pre-hashed and prefetched table probes)
    /// override it for throughput, and drivers call this so virtual
    /// dispatch is paid per block, not per packet.
    fn on_batch(&mut self, pkts: &[PacketMeta], sink: &mut dyn SampleSink) {
        for pkt in pkts {
            self.on_packet(pkt, sink);
        }
    }

    /// Epoch rotation: sweep flow/record state stale at `cutoff` (packet
    /// time) so long runs stay bounded, returning what was swept. Called by
    /// daemons between batches — never mid-batch — so implementations may
    /// treat it as a quiescent point. Samples already emitted are
    /// unaffected; in-flight state for swept flows is lost (their later
    /// ACKs surface as ordinary misses, which the loss accounting already
    /// counts). The default is a no-op for engines without rotatable state
    /// (baselines estimate from whatever they hold).
    fn rotate_epoch(&mut self, _cutoff: Nanos) -> EpochRotation {
        EpochRotation::default()
    }

    /// Checkpoint (control-plane): serialize the monitor's complete
    /// measurement state into a checksummed [`Snapshot`] a later process
    /// can [`RttMonitor::restore`]. Called between batches — never
    /// mid-batch — at the same quiescent points as
    /// [`RttMonitor::rotate_epoch`]. The default refuses: baselines that
    /// hold no restorable state (or buffer samples they could not replay)
    /// are not checkpointable, and a daemon asked to checkpoint one should
    /// fail loudly rather than silently persist nothing.
    fn snapshot(&mut self) -> Result<Snapshot, SnapshotError> {
        Err(SnapshotError::Unsupported(format!(
            "{} does not support checkpointing",
            self.name()
        )))
    }

    /// Restore a [`RttMonitor::snapshot`] taken by a compatible monitor
    /// (same engine shape, same configuration), replacing all measurement
    /// state. Counters resume from the checkpointed values, so the
    /// conservation law (`fed == packets + monitor_miss`) holds summed
    /// across a crash boundary. Call before feeding any packets.
    fn restore(&mut self, _snap: &Snapshot) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported(format!(
            "{} does not support checkpointing",
            self.name()
        )))
    }

    /// End of stream: emit anything buffered (sharded fan-in, end-of-trace
    /// estimates) and settle counters. Must be idempotent.
    fn flush(&mut self, sink: &mut dyn SampleSink);

    /// Counters so far, in the shared vocabulary.
    fn stats(&self) -> EngineStats;
}

/// Block size the drivers pull from a [`PacketSource`] per
/// [`RttMonitor::on_batch`] call: big enough to amortize virtual dispatch
/// and fill the batch pipeline's prefetch window, small enough that a
/// block of [`PacketMeta`] stays cache-resident.
pub const DEFAULT_BLOCK_PKTS: usize = 1024;

/// Drive a monitor over a packet source to exhaustion, then flush.
///
/// Returns the monitor's final counters; samples land in `sink`. This is
/// the one place trace-driving lives — engines implement [`RttMonitor`],
/// sources implement [`PacketSource`], and every driver (bench harness,
/// differential runner, CLI) goes through here. Packets are pulled in
/// blocks of [`DEFAULT_BLOCK_PKTS`] and handed to [`RttMonitor::on_batch`],
/// so the per-packet cost is one slice iteration, not a virtual call.
pub fn run_monitor<M: RttMonitor + ?Sized, S: PacketSource>(
    monitor: &mut M,
    mut source: S,
    sink: &mut dyn SampleSink,
) -> Result<EngineStats, PacketError> {
    let mut buf = Vec::new();
    loop {
        let block = source.next_block(&mut buf, DEFAULT_BLOCK_PKTS)?;
        if block.is_empty() {
            break;
        }
        monitor.on_batch(block, sink);
    }
    monitor.flush(sink);
    Ok(monitor.stats())
}

/// [`run_monitor`] with a periodic callback: `tick(processed, done)` fires
/// at every multiple of `every` packets processed (with `done = false`) and
/// once more after the flush (with `done = true`, whatever the final
/// count). The metrics scraper hangs its periodic snapshot emission off
/// this; anything else needing a progress heartbeat (progress bars,
/// watchdogs) can use it too.
///
/// Ticks are accounted at block boundaries: each pulled block is capped at
/// the distance to the next tick, so the callback fires exactly at
/// multiples of `every` even when the block size does not divide it.
pub fn run_monitor_ticked<M: RttMonitor + ?Sized, S: PacketSource>(
    monitor: &mut M,
    mut source: S,
    sink: &mut dyn SampleSink,
    every: u64,
    mut tick: impl FnMut(u64, bool),
) -> Result<EngineStats, PacketError> {
    let every = every.max(1);
    let mut processed = 0u64;
    let mut buf = Vec::new();
    loop {
        let until_tick = every - processed % every;
        let max = DEFAULT_BLOCK_PKTS.min(usize::try_from(until_tick).unwrap_or(usize::MAX));
        let block = source.next_block(&mut buf, max)?;
        if block.is_empty() {
            break;
        }
        monitor.on_batch(block, sink);
        processed += block.len() as u64;
        if processed.is_multiple_of(every) {
            tick(processed, false);
        }
    }
    monitor.flush(sink);
    tick(processed, true);
    Ok(monitor.stats())
}

/// [`run_monitor`] over an in-memory trace, collecting into a fresh vector.
/// Infallible: slice sources cannot error.
pub fn run_monitor_slice<M: RttMonitor + ?Sized>(
    monitor: &mut M,
    packets: &[PacketMeta],
) -> (Vec<RttSample>, EngineStats) {
    let mut samples = Vec::new();
    // SliceSource::next_packet never returns Err, so this expect cannot
    // fire; the lint exception documents the proof obligation.
    #[allow(clippy::expect_used)]
    let stats = run_monitor(monitor, SliceSource::new(packets), &mut samples)
        .expect("slice sources are infallible");
    (samples, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DartConfig;
    use crate::engine::{run_trace, DartEngine};
    use dart_packet::{Direction, FlowKey, PacketBuilder};

    fn handshake_free_exchange() -> Vec<PacketMeta> {
        let flow = FlowKey::from_raw(0x0a00_0001, 44123, 0x5db8_d822, 443);
        vec![
            PacketBuilder::new(flow, 0)
                .seq(0u32)
                .payload(1460)
                .dir(Direction::Outbound)
                .build(),
            PacketBuilder::new(flow.reverse(), 23_000_000)
                .ack(1460u32)
                .dir(Direction::Inbound)
                .build(),
        ]
    }

    #[test]
    fn run_monitor_matches_run_trace_for_dart() {
        let packets = handshake_free_exchange();
        let (expect_samples, expect_stats) = run_trace(DartConfig::default(), &packets);
        let mut engine = DartEngine::new(DartConfig::default());
        let (samples, stats) = run_monitor_slice(&mut engine, &packets);
        assert_eq!(samples, expect_samples);
        assert_eq!(stats, expect_stats);
        assert_eq!(samples.len(), 1);
    }

    #[test]
    fn dart_flush_is_idempotent() {
        let packets = handshake_free_exchange();
        let mut engine = DartEngine::new(DartConfig::default());
        let (samples, stats) = run_monitor_slice(&mut engine, &packets);
        let mut extra = Vec::new();
        RttMonitor::flush(&mut engine, &mut extra);
        assert!(extra.is_empty(), "second flush must emit nothing");
        assert_eq!(RttMonitor::stats(&engine), stats);
        assert_eq!(samples.len(), 1);
    }

    fn data_stream(n: u32) -> Vec<PacketMeta> {
        let flow = FlowKey::from_raw(0x0a00_0001, 44123, 0x5db8_d822, 443);
        (0..n)
            .map(|i| {
                PacketBuilder::new(flow, u64::from(i) * 1_000)
                    .seq(i * 100)
                    .payload(100)
                    .dir(Direction::Outbound)
                    .build()
            })
            .collect()
    }

    /// `tick(processed, false)` must fire at exact multiples of `every`
    /// even though the driver pulls blocks — the block-boundary accounting
    /// caps each block at the distance to the next tick.
    #[test]
    fn ticked_driver_fires_at_exact_multiples() {
        let packets = data_stream(25);
        let mut engine = DartEngine::new(DartConfig::default());
        let mut sink: Vec<crate::sample::RttSample> = Vec::new();
        let mut ticks = Vec::new();
        run_monitor_ticked(
            &mut engine,
            SliceSource::new(&packets),
            &mut sink,
            7, // does not divide any power-of-two block size
            |n, done| ticks.push((n, done)),
        )
        .unwrap();
        assert_eq!(
            ticks,
            vec![(7, false), (14, false), (21, false), (25, true)]
        );
    }

    /// An interval longer than the trace yields only the final tick, and
    /// the batch-pulling driver still matches the per-packet result.
    #[test]
    fn ticked_driver_matches_untick_result() {
        let packets = data_stream(40);
        let (expected, expected_stats) = {
            let mut engine = DartEngine::new(DartConfig::default());
            run_monitor_slice(&mut engine, &packets)
        };
        let mut engine = DartEngine::new(DartConfig::default());
        let mut sink: Vec<crate::sample::RttSample> = Vec::new();
        let mut ticks = Vec::new();
        let stats = run_monitor_ticked(
            &mut engine,
            SliceSource::new(&packets),
            &mut sink,
            1_000_000,
            |n, done| ticks.push((n, done)),
        )
        .unwrap();
        assert_eq!(ticks, vec![(40, true)]);
        assert_eq!(sink, expected);
        assert_eq!(stats, expected_stats);
    }

    #[test]
    fn monitor_names_and_descriptions_render() {
        let engine = DartEngine::new(DartConfig::default());
        assert_eq!(engine.name(), "dart");
        assert!(engine.describe().contains("Dart"));
    }
}
