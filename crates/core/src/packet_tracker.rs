//! The Packet Tracker (PT) table: outstanding data packets awaiting ACKs.
//!
//! Each tracked data packet is stored keyed by (flow signature, expected
//! ACK) with its arrival timestamp (paper Fig. 2). Two modes:
//!
//! * **Unlimited** — fully associative and unbounded, keyed by the exact
//!   (4-tuple, eACK); the §6.1 idealization.
//! * **Constrained** — `stages` one-way associative register arrays, each
//!   indexed by an independent hash. A packet gets one register access per
//!   stage per pass, so insertion probes the record's slot in each stage
//!   for an empty home; only when every probed slot is occupied does it
//!   displace the occupant of its *entry stage*, which must then
//!   recirculate for re-validation (§3.2). Incumbents in other stages are
//!   never displaced — "older records are preferred" (§6.2). With one
//!   recirculation allowed, splitting a fixed-size PT into more stages
//!   strands stale records in the later stages (Fig. 12's degradation);
//!   allowing more recirculations lets each trip enter one stage later,
//!   displacing and cleaning those squatters (Fig. 13's recovery).

use crate::config::PtMode;
use crate::range_tracker::flow_key_from_wire;
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use dart_packet::{FlowKey, FlowSignature, Nanos, PacketId, SeqNum};
use dart_switch::{HashUnit, RegisterArray};
use std::collections::HashMap;

/// One constrained-mode PT record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PtRecord {
    /// Flow signature (data direction).
    pub sig: FlowSignature,
    /// Expected ACK number.
    pub eack: SeqNum,
    /// Arrival timestamp of the data packet.
    pub ts: Nanos,
    /// Recirculation trips this record has survived.
    pub trips: u32,
}

impl PtRecord {
    /// The record's identity.
    pub fn id(&self) -> PacketId {
        PacketId::new(self.sig, self.eack)
    }

    /// Serialize into a checkpoint payload (24 bytes: sig, eack, ts, trips).
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.sig.raw());
        w.put_u32(self.eack.raw());
        w.put_u64(self.ts);
        w.put_u32(self.trips);
    }

    /// Deserialize a record written by [`PtRecord::snapshot_into`].
    pub(crate) fn restore_from(r: &mut SnapReader<'_>) -> Result<PtRecord, SnapshotError> {
        Ok(PtRecord {
            sig: FlowSignature(r.get_u64()?),
            eack: SeqNum(r.get_u32()?),
            ts: r.get_u64()?,
            trips: r.get_u32()?,
        })
    }
}

/// Result of inserting a record into the PT.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PtInsert {
    /// Stored without displacing anyone (an empty probed slot, or refresh
    /// of a duplicate identity).
    Stored,
    /// Every probed slot was full: stored at the entry stage; the displaced
    /// occupant must be recirculated (or dropped) by the caller.
    StoredEvicting(PtRecord),
    /// Eviction cycle detected (§3.2): the incumbent is the record this one
    /// displaced earlier. The older of the two was kept, the younger
    /// dropped; nothing recirculates.
    CycleBroken {
        /// True when the incumbent survived (the inserting record was
        /// dropped).
        kept_incumbent: bool,
    },
    /// Sketch backend only: stored by overwriting the oldest cell of a full
    /// way set. The victim is gone — fingerprint cells carry no record to
    /// recirculate — and is counted as `sketch_overwritten`. The exact
    /// tracker never returns this.
    StoredOverwriting,
}

/// Pre-computed per-stage slot indices for one [`PacketId`] — the batch
/// pipeline's pre-hash product, consumed by
/// [`PacketTracker::insert_new_probed`] / [`PacketTracker::match_ack_probed`].
/// Covers up to [`PtProbe::MAX`] stages; deeper configurations (ablation
/// sweeps) compute the overflow stages inline, so a probe is always safe to
/// use. Empty (`n == 0`) for the unlimited store, which probes by exact key.
#[derive(Clone, Copy, Debug, Default)]
pub struct PtProbe {
    n: u8,
    idx: [u32; PtProbe::MAX],
}

impl PtProbe {
    /// Number of stages a probe can pre-resolve.
    pub const MAX: usize = 8;

    /// The pre-resolved index for `stage`, if covered.
    #[inline]
    pub(crate) fn get(&self, stage: usize) -> Option<usize> {
        (stage < self.n as usize).then(|| self.idx[stage] as usize)
    }

    /// Assemble a probe from per-way indices (backend implementations in
    /// this crate; the sketch tracker reuses the probe as its pre-hash).
    #[inline]
    pub(crate) fn from_ways(ways: &[usize]) -> PtProbe {
        let n = ways.len().min(PtProbe::MAX);
        let mut p = PtProbe {
            n: n as u8,
            idx: [0; PtProbe::MAX],
        };
        for (slot, &w) in p.idx.iter_mut().zip(ways.iter()).take(n) {
            *slot = w as u32;
        }
        p
    }
}

enum PtStore {
    Unlimited(HashMap<(FlowKey, SeqNum), Nanos>),
    Constrained {
        stages: Vec<RegisterArray<PtRecord>>,
        hashers: Vec<HashUnit>,
    },
}

/// The Packet Tracker table.
pub struct PacketTracker {
    store: PtStore,
}

impl PacketTracker {
    /// Build a tracker in the given mode. `PtMode::Sketch` belongs to
    /// [`crate::SketchPacketTracker`]; handed one anyway, this exact
    /// tracker degrades it to a same-budget `Constrained` table with one
    /// stage per way.
    pub fn new(mode: PtMode) -> PacketTracker {
        let store = match mode {
            PtMode::Unlimited => PtStore::Unlimited(HashMap::new()),
            PtMode::Constrained { slots, stages }
            | PtMode::Sketch {
                slots,
                ways: stages,
            } => {
                assert!(stages >= 1 && slots >= stages);
                let per_stage = slots / stages;
                let arrays = (0..stages)
                    .map(|_| RegisterArray::new("packet_tracker", per_stage))
                    .collect();
                let hashers = (0..stages)
                    .map(|s| HashUnit::new(0xB0 + s as u32, 32))
                    .collect();
                PtStore::Constrained {
                    stages: arrays,
                    hashers,
                }
            }
        };
        PacketTracker { store }
    }

    fn index(hashers: &[HashUnit], stage: usize, size: usize, id: &PacketId) -> usize {
        let mut key = [0u8; 12];
        key[0..8].copy_from_slice(&id.sig.raw().to_le_bytes());
        key[8..12].copy_from_slice(&id.eack.raw().to_le_bytes());
        hashers[stage].index(&key, size)
    }

    /// Pre-resolve the per-stage slot indices for `id`. Pure (no table
    /// access), so the batch decode pass can hash a whole block up front.
    #[inline]
    pub fn probe(&self, id: &PacketId) -> PtProbe {
        match &self.store {
            PtStore::Unlimited(_) => PtProbe::default(),
            PtStore::Constrained { stages, hashers } => {
                let size = stages[0].size();
                let n = stages.len().min(PtProbe::MAX);
                let mut p = PtProbe {
                    n: n as u8,
                    idx: [0; PtProbe::MAX],
                };
                for (s, slot) in p.idx.iter_mut().enumerate().take(n) {
                    *slot = Self::index(hashers, s, size, id) as u32;
                }
                p
            }
        }
    }

    /// Warm every pre-resolved stage slot into cache (no register access).
    #[inline]
    pub fn prefetch(&self, p: &PtProbe) {
        if let PtStore::Constrained { stages, .. } = &self.store {
            for (stage, idx) in stages.iter().zip(p.idx.iter()).take(p.n as usize) {
                stage.prefetch(*idx as usize);
            }
        }
    }

    /// Insert a freshly tracked data packet. `flow` keys the unlimited
    /// store exactly; constrained mode uses only the signature.
    pub fn insert_new(
        &mut self,
        flow: &FlowKey,
        sig: FlowSignature,
        eack: SeqNum,
        ts: Nanos,
    ) -> PtInsert {
        self.insert_new_inner(flow, sig, eack, ts, None)
    }

    /// [`PacketTracker::insert_new`] with pre-resolved stage indices (batch
    /// path). `probe` must come from `self.probe(&PacketId::new(sig, eack))`.
    pub fn insert_new_probed(
        &mut self,
        flow: &FlowKey,
        sig: FlowSignature,
        eack: SeqNum,
        ts: Nanos,
        probe: &PtProbe,
    ) -> PtInsert {
        self.insert_new_inner(flow, sig, eack, ts, Some(probe))
    }

    fn insert_new_inner(
        &mut self,
        flow: &FlowKey,
        sig: FlowSignature,
        eack: SeqNum,
        ts: Nanos,
        probe: Option<&PtProbe>,
    ) -> PtInsert {
        match &mut self.store {
            PtStore::Unlimited(map) => {
                map.insert((*flow, eack), ts);
                PtInsert::Stored
            }
            PtStore::Constrained { .. } => self.insert_constrained(
                PtRecord {
                    sig,
                    eack,
                    ts,
                    trips: 0,
                },
                None,
                0,
                probe,
            ),
        }
    }

    /// Re-insert a recirculated record that passed RT re-validation.
    /// `displaced_by` is the identity of the record that evicted it, used
    /// for cycle detection.
    ///
    /// Each recirculation trip enters the pipeline one stage later
    /// (`trips mod stages`), so repeated passes probe *alternate locations*
    /// (§6.2, Fig. 13) — and, crucially, displace later-stage squatters,
    /// forcing stale records out to re-validation.
    pub fn insert_recirculated(
        &mut self,
        rec: PtRecord,
        displaced_by: Option<PacketId>,
    ) -> PtInsert {
        match &mut self.store {
            PtStore::Unlimited(_) => {
                unreachable!("unlimited PT never evicts, so nothing recirculates")
            }
            PtStore::Constrained { stages, .. } => {
                let entry = rec.trips as usize % stages.len();
                self.insert_constrained(rec, displaced_by, entry, None)
            }
        }
    }

    fn insert_constrained(
        &mut self,
        rec: PtRecord,
        displaced_by: Option<PacketId>,
        entry_stage: usize,
        probe: Option<&PtProbe>,
    ) -> PtInsert {
        let PtStore::Constrained { stages, hashers } = &mut self.store else {
            unreachable!()
        };
        let n = stages.len();
        let size = stages[0].size();
        let idx_at = |s: usize| {
            probe
                .and_then(|p| p.get(s))
                .unwrap_or_else(|| Self::index(hashers, s, size, &rec.id()))
        };

        // Probe pass: one access per stage, looking for an empty home (or a
        // duplicate of ourselves to refresh) from the entry stage onward.
        #[allow(clippy::needless_range_loop)] // stage index feeds the hash choice
        for s in entry_stage..n {
            let idx = idx_at(s);
            match stages[s].read(idx).copied() {
                None => {
                    stages[s].write(idx, rec);
                    return PtInsert::Stored;
                }
                Some(o) if o.id() == rec.id() => {
                    // Same identity (e.g. tracking restarted on the same
                    // byte range): refresh the timestamp.
                    stages[s].write(idx, rec);
                    return PtInsert::Stored;
                }
                Some(_) => {}
            }
        }

        // Every probed slot is occupied: displace the entry-stage occupant.
        let idx0 = idx_at(entry_stage);
        // The probe loop above returned without finding a free slot, so the
        // entry stage is occupied; the lint exception documents that proof.
        #[allow(clippy::expect_used)]
        let occupant = stages[entry_stage]
            .read(idx0)
            .copied()
            .expect("probed occupied just above");
        if displaced_by == Some(occupant.id()) {
            // Cycle: the incumbent is the record that displaced us. Keep
            // the older record, drop the younger, recirculate nothing
            // (§3.2's cycle detector).
            if occupant.ts <= rec.ts {
                return PtInsert::CycleBroken {
                    kept_incumbent: true,
                };
            }
            stages[entry_stage].write(idx0, rec);
            return PtInsert::CycleBroken {
                kept_incumbent: false,
            };
        }
        stages[entry_stage].write(idx0, rec);
        PtInsert::StoredEvicting(occupant)
    }

    /// Match an arriving ACK: look up (flow/sig, ack) in every stage and
    /// remove the record on a hit, returning its stored timestamp.
    pub fn match_ack(&mut self, flow: &FlowKey, sig: FlowSignature, ack: SeqNum) -> Option<Nanos> {
        self.match_ack_inner(flow, sig, ack, None)
    }

    /// [`PacketTracker::match_ack`] with pre-resolved stage indices (batch
    /// path). `probe` must come from `self.probe(&PacketId::new(sig, ack))`.
    pub fn match_ack_probed(
        &mut self,
        flow: &FlowKey,
        sig: FlowSignature,
        ack: SeqNum,
        probe: &PtProbe,
    ) -> Option<Nanos> {
        self.match_ack_inner(flow, sig, ack, Some(probe))
    }

    fn match_ack_inner(
        &mut self,
        flow: &FlowKey,
        sig: FlowSignature,
        ack: SeqNum,
        probe: Option<&PtProbe>,
    ) -> Option<Nanos> {
        match &mut self.store {
            PtStore::Unlimited(map) => map.remove(&(*flow, ack)),
            PtStore::Constrained { stages, hashers } => {
                let id = PacketId::new(sig, ack);
                let size = stages[0].size();
                #[allow(clippy::needless_range_loop)] // stage index feeds the hash choice
                for s in 0..stages.len() {
                    let idx = probe
                        .and_then(|p| p.get(s))
                        .unwrap_or_else(|| Self::index(hashers, s, size, &id));
                    let hit =
                        matches!(stages[s].read(idx), Some(r) if r.sig == sig && r.eack == ack);
                    if hit {
                        return stages[s].clear(idx).map(|r| r.ts);
                    }
                }
                None
            }
        }
    }

    /// Live records (control-plane visibility).
    pub fn occupancy(&self) -> usize {
        match &self.store {
            PtStore::Unlimited(map) => map.len(),
            PtStore::Constrained { stages, .. } => stages.iter().map(|s| s.occupancy()).sum(),
        }
    }

    /// Epoch rotation (control-plane): sweep every record whose data packet
    /// was sent before `cutoff` — an ACK that old is either lost or will
    /// produce a sample too stale to trust — returning `(carried, dropped)`
    /// record counts. PT records carry their send timestamp in the data
    /// plane (it *is* the RTT measurement), so rotation judges them by time
    /// directly, unlike the RT's activity generations.
    pub fn rotate(&mut self, cutoff: Nanos) -> (u64, u64) {
        match &mut self.store {
            PtStore::Unlimited(map) => {
                let before = map.len() as u64;
                map.retain(|_, ts| *ts >= cutoff);
                let kept = map.len() as u64;
                (kept, before - kept)
            }
            PtStore::Constrained { stages, .. } => {
                let (mut kept, mut cleared) = (0u64, 0u64);
                for stage in stages {
                    let (k, c) = stage.sweep(|r| r.ts >= cutoff);
                    kept += k;
                    cleared += c;
                }
                (kept, cleared)
            }
        }
    }

    /// Total slots (`usize::MAX` for unlimited mode).
    pub fn capacity(&self) -> usize {
        match &self.store {
            PtStore::Unlimited(_) => usize::MAX,
            PtStore::Constrained { stages, .. } => stages.iter().map(|s| s.size()).sum(),
        }
    }

    /// Serialize every outstanding record into `w` (control plane).
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        match &self.store {
            PtStore::Unlimited(map) => {
                w.put_u8(0);
                w.put_usize(map.len());
                // Sorted by (wire key, eack): HashMap iteration order would
                // make two snapshots of identical state byte-different.
                let mut entries: Vec<_> = map.iter().collect();
                entries.sort_unstable_by_key(|((flow, eack), _)| (flow.to_bytes(), eack.raw()));
                for ((flow, eack), ts) in entries {
                    w.put_bytes(&flow.to_bytes());
                    w.put_u32(eack.raw());
                    w.put_u64(*ts);
                }
            }
            PtStore::Constrained { stages, .. } => {
                w.put_u8(1);
                w.put_usize(stages.len());
                for stage in stages {
                    w.put_usize(stage.size());
                    w.put_usize(stage.occupancy());
                    for (idx, rec) in stage.iter() {
                        w.put_usize(idx);
                        rec.snapshot_into(w);
                    }
                }
            }
        }
    }

    /// Replace this tracker's contents with a checkpointed state written by
    /// [`PacketTracker::snapshot_into`]. The store kind and stage geometry
    /// must match.
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let tag = r.get_u8()?;
        match (&mut self.store, tag) {
            (PtStore::Unlimited(map), 0) => {
                let count = r.get_usize()?;
                map.clear();
                for _ in 0..count {
                    let flow = flow_key_from_wire(r.get_bytes(12)?);
                    let eack = SeqNum(r.get_u32()?);
                    let ts = r.get_u64()?;
                    map.insert((flow, eack), ts);
                }
            }
            (PtStore::Constrained { stages, .. }, 1) => {
                let n = r.get_usize()?;
                if n != stages.len() {
                    return Err(SnapshotError::Mismatch(format!(
                        "PT snapshot has {n} stages, this tracker has {}",
                        stages.len()
                    )));
                }
                for stage in stages.iter_mut() {
                    let size = r.get_usize()?;
                    if size != stage.size() {
                        return Err(SnapshotError::Mismatch(format!(
                            "PT snapshot stage has {size} slots, this tracker has {}",
                            stage.size()
                        )));
                    }
                    let count = r.get_usize()?;
                    stage.sweep(|_| false);
                    for _ in 0..count {
                        let idx = r.get_usize()?;
                        if idx >= size {
                            return Err(SnapshotError::Corrupt(format!(
                                "PT record index {idx} out of bounds ({size} slots)"
                            )));
                        }
                        stage.load(idx, PtRecord::restore_from(r)?);
                    }
                }
            }
            (_, other) => {
                return Err(SnapshotError::Mismatch(format!(
                    "PT snapshot store kind {other} does not match this tracker"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::SignatureWidth;

    fn flow(n: u32) -> FlowKey {
        FlowKey::from_raw(0x0a00_0000 + n, 40000, 0x0808_0808, 443)
    }

    fn sig(n: u32) -> FlowSignature {
        flow(n).signature(SignatureWidth::W32)
    }

    fn rec(n: u32, eack: u32, ts: Nanos) -> PtRecord {
        PtRecord {
            sig: sig(n),
            eack: SeqNum(eack),
            ts,
            trips: 0,
        }
    }

    #[test]
    fn unlimited_insert_and_match() {
        let mut pt = PacketTracker::new(PtMode::Unlimited);
        assert_eq!(
            pt.insert_new(&flow(1), sig(1), SeqNum(100), 500),
            PtInsert::Stored
        );
        assert_eq!(pt.occupancy(), 1);
        assert_eq!(pt.match_ack(&flow(1), sig(1), SeqNum(100)), Some(500));
        assert_eq!(pt.occupancy(), 0);
        // Second match misses: the record was consumed.
        assert_eq!(pt.match_ack(&flow(1), sig(1), SeqNum(100)), None);
    }

    #[test]
    fn constrained_single_slot_displaces() {
        let mut pt = PacketTracker::new(PtMode::Constrained {
            slots: 1,
            stages: 1,
        });
        assert_eq!(
            pt.insert_new(&flow(1), sig(1), SeqNum(100), 10),
            PtInsert::Stored
        );
        // A different record contends for the single slot.
        match pt.insert_new(&flow(2), sig(2), SeqNum(200), 20) {
            PtInsert::StoredEvicting(old) => {
                assert_eq!(old.sig, sig(1));
                assert_eq!(old.ts, 10);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        // The new record is resident.
        assert_eq!(pt.match_ack(&flow(2), sig(2), SeqNum(200)), Some(20));
    }

    #[test]
    fn duplicate_identity_refreshes_timestamp() {
        let mut pt = PacketTracker::new(PtMode::Constrained {
            slots: 1,
            stages: 1,
        });
        pt.insert_new(&flow(1), sig(1), SeqNum(100), 10);
        assert_eq!(
            pt.insert_new(&flow(1), sig(1), SeqNum(100), 99),
            PtInsert::Stored
        );
        assert_eq!(pt.match_ack(&flow(1), sig(1), SeqNum(100)), Some(99));
    }

    #[test]
    fn cycle_keeps_older_record() {
        let mut pt = PacketTracker::new(PtMode::Constrained {
            slots: 1,
            stages: 1,
        });
        pt.insert_new(&flow(1), sig(1), SeqNum(100), 10);
        // New record displaces the old one.
        let old = match pt.insert_new(&flow(2), sig(2), SeqNum(200), 20) {
            PtInsert::StoredEvicting(o) => o,
            other => panic!("{other:?}"),
        };
        // The displaced (older) record recirculates back, targeting the slot
        // now held by its displacer: cycle. The older record wins.
        let res = pt.insert_recirculated(old, Some(PacketId::new(sig(2), SeqNum(200))));
        assert_eq!(
            res,
            PtInsert::CycleBroken {
                kept_incumbent: false
            }
        );
        assert_eq!(pt.match_ack(&flow(1), sig(1), SeqNum(100)), Some(10));
        assert_eq!(pt.match_ack(&flow(2), sig(2), SeqNum(200)), None);
    }

    #[test]
    fn cycle_keeps_incumbent_when_incumbent_older() {
        let mut pt = PacketTracker::new(PtMode::Constrained {
            slots: 1,
            stages: 1,
        });
        pt.insert_new(&flow(1), sig(1), SeqNum(100), 50);
        let old = match pt.insert_new(&flow(2), sig(2), SeqNum(200), 5) {
            PtInsert::StoredEvicting(o) => o,
            other => panic!("{other:?}"),
        };
        assert_eq!(old.ts, 50);
        // Incumbent (ts=5) is older than the recirculated record (ts=50).
        let res = pt.insert_recirculated(old, Some(PacketId::new(sig(2), SeqNum(200))));
        assert_eq!(
            res,
            PtInsert::CycleBroken {
                kept_incumbent: true
            }
        );
        assert_eq!(pt.match_ack(&flow(2), sig(2), SeqNum(200)), Some(5));
    }

    #[test]
    fn multi_stage_probe_finds_later_stage_home() {
        // 4 slots in 2 stages of 2. Find two records whose stage-1 slots
        // collide: the second must land in its stage-2 slot (probe-for-
        // empty), leaving both matchable with no eviction.
        let mut found = None;
        'outer: for a in 0..200u32 {
            for b in (a + 1)..200u32 {
                let mut probe = PacketTracker::new(PtMode::Constrained {
                    slots: 2,
                    stages: 1,
                });
                probe.insert_new(&flow(a), sig(a), SeqNum(1), 1);
                if let PtInsert::StoredEvicting(_) =
                    probe.insert_new(&flow(b), sig(b), SeqNum(1), 2)
                {
                    found = Some((a, b));
                    break 'outer;
                }
            }
        }
        let (a, b) = found.expect("no stage-1-colliding pair found");
        let mut pt = PacketTracker::new(PtMode::Constrained {
            slots: 4,
            stages: 2,
        });
        assert_eq!(
            pt.insert_new(&flow(a), sig(a), SeqNum(1), 1),
            PtInsert::Stored
        );
        assert_eq!(
            pt.insert_new(&flow(b), sig(b), SeqNum(1), 2),
            PtInsert::Stored,
            "second record probes into stage 2 instead of evicting"
        );
        assert_eq!(pt.match_ack(&flow(a), sig(a), SeqNum(1)), Some(1));
        assert_eq!(pt.match_ack(&flow(b), sig(b), SeqNum(1)), Some(2));
    }

    #[test]
    fn recirculated_record_enters_at_rotated_stage() {
        // With 2 stages, a record on its first recirculation (trips = 1)
        // enters at stage 2: it probes only stage 2 and displaces there if
        // full.
        let mut found = None;
        'outer: for a in 0..200u32 {
            for b in (a + 1)..200u32 {
                let mut probe = PacketTracker::new(PtMode::Constrained {
                    slots: 2,
                    stages: 1,
                });
                probe.insert_new(&flow(a), sig(a), SeqNum(1), 1);
                if let PtInsert::StoredEvicting(_) =
                    probe.insert_new(&flow(b), sig(b), SeqNum(1), 2)
                {
                    found = Some((a, b));
                    break 'outer;
                }
            }
        }
        let (a, b) = found.expect("no colliding pair");
        let mut pt = PacketTracker::new(PtMode::Constrained {
            slots: 4,
            stages: 2,
        });
        pt.insert_new(&flow(a), sig(a), SeqNum(1), 1);
        pt.insert_new(&flow(b), sig(b), SeqNum(1), 2); // lands in stage 2
                                                       // A recirculated record with trips = 1 targets stage 2 directly and,
                                                       // finding it occupied by b, displaces b.
        let rec = PtRecord {
            sig: sig(b),
            eack: SeqNum(9),
            ts: 3,
            trips: 1,
        };
        match pt.insert_recirculated(rec, Some(PacketId::new(sig(77), SeqNum(77)))) {
            PtInsert::Stored => {
                // b's stage-2 slot differed from rec's: fine, both live.
                assert_eq!(pt.match_ack(&flow(b), sig(b), SeqNum(1)), Some(2));
            }
            PtInsert::StoredEvicting(old) => {
                assert_eq!(old.sig, sig(b));
            }
            other => panic!("{other:?}"),
        }
    }

    /// Probed entry points must behave identically to the self-hashing
    /// ones, across multi-stage configs — the batch path rides on this.
    #[test]
    fn probed_paths_match_plain_paths() {
        for (slots, stages) in [(8, 1), (8, 2), (16, 4)] {
            let mode = PtMode::Constrained { slots, stages };
            let mut plain = PacketTracker::new(mode);
            let mut probed = PacketTracker::new(mode);
            for step in 0..300u32 {
                let n = step % 23;
                let eack = SeqNum(100 + step % 7);
                let id = PacketId::new(sig(n), eack);
                let p = probed.probe(&id);
                probed.prefetch(&p);
                if step % 3 == 2 {
                    assert_eq!(
                        plain.match_ack(&flow(n), sig(n), eack),
                        probed.match_ack_probed(&flow(n), sig(n), eack, &p),
                        "match step {step}"
                    );
                } else {
                    assert_eq!(
                        plain.insert_new(&flow(n), sig(n), eack, u64::from(step)),
                        probed.insert_new_probed(&flow(n), sig(n), eack, u64::from(step), &p),
                        "insert step {step}"
                    );
                }
            }
            assert_eq!(plain.occupancy(), probed.occupancy());
        }
    }

    #[test]
    fn match_miss_returns_none() {
        let mut pt = PacketTracker::new(PtMode::Constrained {
            slots: 8,
            stages: 1,
        });
        pt.insert_new(&flow(1), sig(1), SeqNum(100), 10);
        assert_eq!(pt.match_ack(&flow(1), sig(1), SeqNum(101)), None);
        assert_eq!(pt.match_ack(&flow(9), sig(9), SeqNum(100)), None);
    }

    #[test]
    fn capacity_and_occupancy() {
        let pt = PacketTracker::new(PtMode::Constrained {
            slots: 64,
            stages: 4,
        });
        assert_eq!(pt.capacity(), 64);
        assert_eq!(pt.occupancy(), 0);
        assert_eq!(PacketTracker::new(PtMode::Unlimited).capacity(), usize::MAX);
    }

    /// Rotation sweeps records older than the cutoff in both stores and
    /// leaves fresh ones matchable.
    #[test]
    fn rotation_sweeps_stale_records() {
        for mode in [
            PtMode::Unlimited,
            PtMode::Constrained {
                slots: 64,
                stages: 2,
            },
        ] {
            let mut pt = PacketTracker::new(mode);
            pt.insert_new(&flow(1), sig(1), SeqNum(100), 1_000);
            pt.insert_new(&flow(2), sig(2), SeqNum(200), 5_000);
            pt.insert_new(&flow(3), sig(3), SeqNum(300), 9_000);
            assert_eq!(pt.rotate(5_000), (2, 1), "mode {mode:?}");
            assert_eq!(pt.match_ack(&flow(1), sig(1), SeqNum(100)), None);
            assert_eq!(pt.match_ack(&flow(2), sig(2), SeqNum(200)), Some(5_000));
            assert_eq!(pt.match_ack(&flow(3), sig(3), SeqNum(300)), Some(9_000));
            assert_eq!(pt.occupancy(), 0);
        }
    }

    /// Snapshot then restore into a fresh tracker: every outstanding record
    /// stays matchable with its original timestamp, on both store kinds.
    #[test]
    fn snapshot_restore_round_trips() {
        for mode in [
            PtMode::Unlimited,
            PtMode::Constrained {
                slots: 64,
                stages: 2,
            },
        ] {
            let mut pt = PacketTracker::new(mode);
            for n in 0..10u32 {
                pt.insert_new(&flow(n), sig(n), SeqNum(100 + n), u64::from(1000 + n));
            }
            let mut w = crate::snapshot::SnapWriter::new();
            pt.snapshot_into(&mut w);
            let payload = w.into_payload();

            let mut fresh = PacketTracker::new(mode);
            let mut r = crate::snapshot::SnapReader::new(&payload);
            fresh.restore_from(&mut r).unwrap();
            assert_eq!(r.remaining(), 0);
            assert_eq!(fresh.occupancy(), pt.occupancy());
            for n in 0..10u32 {
                assert_eq!(
                    fresh.match_ack(&flow(n), sig(n), SeqNum(100 + n)),
                    pt.match_ack(&flow(n), sig(n), SeqNum(100 + n)),
                    "record {n} under {mode:?}"
                );
            }
        }
    }

    #[test]
    fn restore_rejects_mismatched_geometry() {
        let mut pt = PacketTracker::new(PtMode::Constrained {
            slots: 64,
            stages: 2,
        });
        pt.insert_new(&flow(1), sig(1), SeqNum(100), 10);
        let mut w = crate::snapshot::SnapWriter::new();
        pt.snapshot_into(&mut w);
        let payload = w.into_payload();
        for wrong in [
            PtMode::Unlimited,
            PtMode::Constrained {
                slots: 64,
                stages: 4,
            },
            PtMode::Constrained {
                slots: 32,
                stages: 2,
            },
        ] {
            let mut tracker = PacketTracker::new(wrong);
            assert!(
                matches!(
                    tracker.restore_from(&mut crate::snapshot::SnapReader::new(&payload)),
                    Err(crate::snapshot::SnapshotError::Mismatch(_))
                ),
                "{wrong:?} must be refused"
            );
        }
    }

    #[test]
    fn eviction_preserves_record_contents() {
        let mut pt = PacketTracker::new(PtMode::Constrained {
            slots: 1,
            stages: 1,
        });
        let mut r = rec(7, 777, 42);
        r.trips = 3;
        pt.insert_recirculated(r, None);
        match pt.insert_new(&flow(8), sig(8), SeqNum(1), 50) {
            PtInsert::StoredEvicting(old) => {
                assert_eq!(old, r); // trips and ts intact
            }
            other => panic!("{other:?}"),
        }
    }
}
