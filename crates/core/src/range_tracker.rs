//! The Range Tracker (RT) table: per-flow measurement ranges.
//!
//! The RT decides, for every data packet, whether it can produce an
//! unambiguous RTT sample (paper §3.1), and re-validates evicted Packet
//! Tracker records during recirculation (§3.2). Two modes exist:
//!
//! * **Unlimited** — fully associative, unbounded, keyed by the exact
//!   4-tuple. This is the `tcptrace_const` idealization of §6.1.
//! * **Constrained** — a one-way associative register array indexed by a
//!   hash of the 32-bit flow signature, exactly one slot per flow, with
//!   hash collisions resolved by favoring the incumbent unless its range
//!   has collapsed (a collapsed entry "can be safely deleted or
//!   overwritten", §3.1).

use crate::config::RtMode;
use crate::range::{AckVerdict, MeasurementRange, SeqVerdict};
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use dart_packet::{FlowKey, FlowSignature, SeqNum, SignatureWidth};
use dart_switch::{HashUnit, RegisterArray};
use std::collections::HashMap;

/// Outcome of offering a data packet to the RT.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtSeqOutcome {
    /// A fresh entry was created for this flow; track the packet.
    Created,
    /// The existing range ruled (Fig. 4); track iff `SeqVerdict::track()`.
    Ruled(SeqVerdict),
    /// The slot is held by a different live flow; the packet is not
    /// tracked (older flows are favored, §7).
    Collision,
    /// Sketch backend only: a fresh entry was created by overwriting the
    /// least-recently-touched *live* occupant of a full way set. The packet
    /// is tracked; the victim's in-flight measurements are silently lost
    /// (counted as `sketch_overwritten`). The exact tracker never returns
    /// this.
    CreatedEvicting,
}

impl RtSeqOutcome {
    /// Should the packet be inserted into the Packet Tracker?
    pub fn track(self) -> bool {
        match self {
            RtSeqOutcome::Created | RtSeqOutcome::CreatedEvicting => true,
            RtSeqOutcome::Ruled(v) => v.track(),
            RtSeqOutcome::Collision => false,
        }
    }
}

/// Outcome of offering an ACK to the RT.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtAckOutcome {
    /// The range ruled on the ACK.
    Ruled(AckVerdict),
    /// No entry for this flow (never created, overwritten, or signature
    /// mismatch); the ACK is ignored.
    NoFlow,
}

impl RtAckOutcome {
    /// Should the Packet Tracker be consulted for a sample?
    pub fn match_pt(self) -> bool {
        matches!(self, RtAckOutcome::Ruled(AckVerdict::Advance))
    }
}

/// One constrained-mode RT record. `gen` is the epoch generation the entry
/// was last touched in: RT entries carry no timestamps in the data plane,
/// so epoch rotation judges staleness by activity generations instead (an
/// entry untouched for a full epoch is swept).
#[derive(Clone, Copy, Debug)]
struct RtEntry {
    sig: FlowSignature,
    range: MeasurementRange,
    gen: u32,
}

/// Unlimited-mode record: the range plus the same activity generation.
#[derive(Clone, Copy, Debug)]
struct RtMapEntry {
    range: MeasurementRange,
    gen: u32,
}

/// A pre-resolved RT location for one flow: the data-plane signature plus
/// the slot it hashes to (0 in unlimited mode, which looks up by exact
/// key). The batch pipeline computes these for a whole block up front,
/// prefetches the slots, and the per-packet helpers consume them via
/// [`RangeTracker::on_seq_at`] / [`RangeTracker::on_ack_at`] — sparing the
/// scalar path's second signature computation per role.
#[derive(Clone, Copy, Debug)]
pub struct RtSlot {
    sig: FlowSignature,
    idx: usize,
}

impl RtSlot {
    /// The flow's signature under the tracker's configured width.
    #[inline]
    pub fn sig(&self) -> FlowSignature {
        self.sig
    }

    /// Assemble a location (backend implementations in this crate; the
    /// sketch tracker packs two way indices into `idx`).
    #[inline]
    pub(crate) fn from_parts(sig: FlowSignature, idx: usize) -> RtSlot {
        RtSlot { sig, idx }
    }

    /// The raw packed index (backend implementations in this crate).
    #[inline]
    pub(crate) fn idx(&self) -> usize {
        self.idx
    }
}

impl Default for RtSlot {
    fn default() -> RtSlot {
        RtSlot {
            sig: FlowSignature(0),
            idx: 0,
        }
    }
}

enum RtStore {
    Unlimited(HashMap<FlowKey, RtMapEntry>),
    Constrained {
        slots: RegisterArray<RtEntry>,
        hasher: HashUnit,
    },
}

/// The Range Tracker table.
pub struct RangeTracker {
    store: RtStore,
    sig_width: SignatureWidth,
    /// Current epoch generation; entries are stamped with it on every
    /// touch and [`RangeTracker::rotate`] sweeps entries left behind.
    epoch: u32,
}

impl RangeTracker {
    /// Build a tracker in the given mode. `RtMode::Sketch` belongs to
    /// [`crate::SketchRangeTracker`]; handed one anyway, this exact tracker
    /// degrades it to a same-budget one-way `Constrained` table.
    pub fn new(mode: RtMode, sig_width: SignatureWidth) -> RangeTracker {
        let store = match mode {
            RtMode::Unlimited => RtStore::Unlimited(HashMap::new()),
            RtMode::Constrained { slots } | RtMode::Sketch { slots, .. } => RtStore::Constrained {
                slots: RegisterArray::new("range_tracker", slots),
                hasher: HashUnit::new(0xA0, 32),
            },
        };
        RangeTracker {
            store,
            sig_width,
            epoch: 0,
        }
    }

    /// The data-plane signature of a flow under this tracker's width.
    pub fn sig(&self, flow: &FlowKey) -> FlowSignature {
        flow.signature(self.sig_width)
    }

    fn index(hasher: &HashUnit, size: usize, sig: FlowSignature) -> usize {
        hasher.index(&sig.raw().to_le_bytes(), size)
    }

    /// Resolve where `flow` lives: its signature plus its slot index. Pure
    /// (no table access), so the batch decode pass can pre-hash a whole
    /// block before any slot is touched.
    #[inline]
    pub fn locate(&self, flow: &FlowKey) -> RtSlot {
        let sig = flow.signature(self.sig_width);
        let idx = match &self.store {
            RtStore::Unlimited(_) => 0,
            RtStore::Constrained { slots, hasher } => Self::index(hasher, slots.size(), sig),
        };
        RtSlot { sig, idx }
    }

    /// Warm a located slot into cache (no register access; unlimited mode
    /// is a no-op since it has no slot array to warm).
    #[inline]
    pub fn prefetch(&self, at: &RtSlot) {
        if let RtStore::Constrained { slots, .. } = &self.store {
            slots.prefetch(at.idx);
        }
    }

    /// Offer a data packet occupying `[seq, eack)` on `flow`.
    pub fn on_seq(&mut self, flow: &FlowKey, seq: SeqNum, eack: SeqNum) -> RtSeqOutcome {
        let at = self.locate(flow);
        self.on_seq_at(flow, &at, seq, eack)
    }

    /// [`RangeTracker::on_seq`] with a pre-resolved location (batch path).
    /// `at` must come from `locate(flow)` on this tracker.
    pub fn on_seq_at(
        &mut self,
        flow: &FlowKey,
        at: &RtSlot,
        seq: SeqNum,
        eack: SeqNum,
    ) -> RtSeqOutcome {
        let gen = self.epoch;
        match &mut self.store {
            RtStore::Unlimited(map) => match map.get_mut(flow) {
                Some(e) => {
                    e.gen = gen;
                    RtSeqOutcome::Ruled(e.range.on_seq(seq, eack))
                }
                None => {
                    map.insert(
                        *flow,
                        RtMapEntry {
                            range: MeasurementRange::open(seq, eack),
                            gen,
                        },
                    );
                    RtSeqOutcome::Created
                }
            },
            RtStore::Constrained { slots, .. } => {
                let sig = at.sig;
                let idx = at.idx;
                slots.rmw(idx, |old| match old {
                    Some(mut e) if e.sig == sig => {
                        let v = e.range.on_seq(seq, eack);
                        e.gen = gen;
                        (Some(e), RtSeqOutcome::Ruled(v))
                    }
                    Some(e) if !e.range.is_collapsed() => {
                        // Different live flow holds the slot: favor it. The
                        // interloper's packet does not refresh the
                        // incumbent's generation.
                        (Some(e), RtSeqOutcome::Collision)
                    }
                    _ => {
                        // Empty, or a collapsed entry we may overwrite.
                        let e = RtEntry {
                            sig,
                            range: MeasurementRange::open(seq, eack),
                            gen,
                        };
                        (Some(e), RtSeqOutcome::Created)
                    }
                })
            }
        }
    }

    /// Offer an ACK numbered `ack` for the data-direction `flow`; `pure`
    /// marks a payload-free ACK (required for duplicate-ACK inference).
    pub fn on_ack(&mut self, flow: &FlowKey, ack: SeqNum, pure: bool) -> RtAckOutcome {
        let at = self.locate(flow);
        self.on_ack_at(flow, &at, ack, pure)
    }

    /// [`RangeTracker::on_ack`] with a pre-resolved location (batch path).
    /// `at` must come from `locate(flow)` on this tracker.
    pub fn on_ack_at(
        &mut self,
        flow: &FlowKey,
        at: &RtSlot,
        ack: SeqNum,
        pure: bool,
    ) -> RtAckOutcome {
        let gen = self.epoch;
        match &mut self.store {
            RtStore::Unlimited(map) => match map.get_mut(flow) {
                Some(e) => {
                    e.gen = gen;
                    RtAckOutcome::Ruled(e.range.on_ack(ack, pure))
                }
                None => RtAckOutcome::NoFlow,
            },
            RtStore::Constrained { slots, .. } => {
                let sig = at.sig;
                let idx = at.idx;
                slots.rmw(idx, |old| match old {
                    Some(mut e) if e.sig == sig => {
                        let v = e.range.on_ack(ack, pure);
                        e.gen = gen;
                        (Some(e), RtAckOutcome::Ruled(v))
                    }
                    other => (other, RtAckOutcome::NoFlow),
                })
            }
        }
    }

    /// Re-validate an evicted Packet Tracker record during recirculation
    /// (§3.2): is `eack` still inside the flow's measurement range
    /// `(left, right]`? A recirculated record carries only its flow
    /// signature, so that is all this check may use. Unlimited mode never
    /// evicts, hence never recirculates; it conservatively answers `false`.
    pub fn revalidate(&mut self, sig: FlowSignature, eack: SeqNum) -> bool {
        match &mut self.store {
            RtStore::Unlimited(_) => false,
            RtStore::Constrained { slots, hasher } => {
                let idx = Self::index(hasher, slots.size(), sig);
                match slots.read(idx) {
                    Some(e) if e.sig == sig => eack.in_range(e.range.left, e.range.right),
                    _ => false,
                }
            }
        }
    }

    /// Current number of live entries (control-plane visibility; drives the
    /// Fig. 10 memory-saving report).
    pub fn occupancy(&self) -> usize {
        match &self.store {
            RtStore::Unlimited(map) => map.len(),
            RtStore::Constrained { slots, .. } => slots.occupancy(),
        }
    }

    /// Epoch rotation (control-plane): sweep every entry not touched since
    /// the previous rotation, then open a new generation. Returns
    /// `(carried, dropped)` flow counts.
    ///
    /// RT entries carry no timestamps — the data plane spends its SALU
    /// budget on the range bounds — so unlike the Packet Tracker (which
    /// judges records by their stored send timestamp against a cutoff) the
    /// exact RT uses activity generations: a flow survives a rotation iff
    /// it saw at least one packet during the epoch that just closed.
    /// Without any rotation, behavior is identical to the unrotated
    /// tracker.
    pub fn rotate(&mut self) -> (u64, u64) {
        let gen = self.epoch;
        let counts = match &mut self.store {
            RtStore::Unlimited(map) => {
                let before = map.len() as u64;
                map.retain(|_, e| e.gen == gen);
                let kept = map.len() as u64;
                (kept, before - kept)
            }
            RtStore::Constrained { slots, .. } => slots.sweep(|e| e.gen == gen),
        };
        self.epoch = self.epoch.wrapping_add(1);
        counts
    }

    /// Read a flow's current range, if present (tests / control plane).
    pub fn peek(&mut self, flow: &FlowKey) -> Option<MeasurementRange> {
        match &mut self.store {
            RtStore::Unlimited(map) => map.get(flow).map(|e| e.range),
            RtStore::Constrained { slots, hasher } => {
                let sig = flow.signature(self.sig_width);
                let idx = Self::index(hasher, slots.size(), sig);
                match slots.read(idx) {
                    Some(e) if e.sig == sig => Some(e.range),
                    _ => None,
                }
            }
        }
    }

    /// Serialize the epoch generation and every live entry into `w`
    /// (control plane: the checkpoint writer walking the table).
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_u32(self.epoch);
        match &self.store {
            RtStore::Unlimited(map) => {
                w.put_u8(0);
                w.put_usize(map.len());
                // Sorted by wire key: HashMap iteration order would make
                // two snapshots of identical state byte-different.
                let mut entries: Vec<_> = map.iter().collect();
                entries.sort_unstable_by_key(|(flow, _)| flow.to_bytes());
                for (flow, e) in entries {
                    w.put_bytes(&flow.to_bytes());
                    w.put_u32(e.range.left.raw());
                    w.put_u32(e.range.right.raw());
                    w.put_u32(e.gen);
                }
            }
            RtStore::Constrained { slots, .. } => {
                w.put_u8(1);
                w.put_usize(slots.size());
                w.put_usize(slots.occupancy());
                for (idx, e) in slots.iter() {
                    w.put_usize(idx);
                    w.put_u64(e.sig.raw());
                    w.put_u32(e.range.left.raw());
                    w.put_u32(e.range.right.raw());
                    w.put_u32(e.gen);
                }
            }
        }
    }

    /// Replace this tracker's contents with a checkpointed state written by
    /// [`RangeTracker::snapshot_into`]. The store kind and geometry must
    /// match the snapshot's (a mismatch means the snapshot was taken under
    /// a different configuration and every slot index would be wrong).
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let epoch = r.get_u32()?;
        let tag = r.get_u8()?;
        match (&mut self.store, tag) {
            (RtStore::Unlimited(map), 0) => {
                let count = r.get_usize()?;
                map.clear();
                for _ in 0..count {
                    let kb = r.get_bytes(12)?;
                    let flow = flow_key_from_wire(kb);
                    let left = SeqNum(r.get_u32()?);
                    let right = SeqNum(r.get_u32()?);
                    let gen = r.get_u32()?;
                    map.insert(
                        flow,
                        RtMapEntry {
                            range: MeasurementRange { left, right },
                            gen,
                        },
                    );
                }
            }
            (RtStore::Constrained { slots, .. }, 1) => {
                let size = r.get_usize()?;
                if size != slots.size() {
                    return Err(SnapshotError::Mismatch(format!(
                        "RT snapshot has {size} slots, this tracker has {}",
                        slots.size()
                    )));
                }
                let count = r.get_usize()?;
                slots.sweep(|_| false);
                for _ in 0..count {
                    let idx = r.get_usize()?;
                    if idx >= size {
                        return Err(SnapshotError::Corrupt(format!(
                            "RT entry index {idx} out of bounds ({size} slots)"
                        )));
                    }
                    let sig = FlowSignature(r.get_u64()?);
                    let left = SeqNum(r.get_u32()?);
                    let right = SeqNum(r.get_u32()?);
                    let gen = r.get_u32()?;
                    slots.load(
                        idx,
                        RtEntry {
                            sig,
                            range: MeasurementRange { left, right },
                            gen,
                        },
                    );
                }
            }
            (_, other) => {
                return Err(SnapshotError::Mismatch(format!(
                    "RT snapshot store kind {other} does not match this tracker"
                )));
            }
        }
        self.epoch = epoch;
        Ok(())
    }
}

/// Rebuild a [`FlowKey`] from the 12-byte wire representation produced by
/// [`FlowKey::to_bytes`] (big-endian src ip, dst ip, src port, dst port).
pub(crate) fn flow_key_from_wire(b: &[u8]) -> FlowKey {
    FlowKey::new(
        std::net::Ipv4Addr::new(b[0], b[1], b[2], b[3]),
        u16::from_be_bytes([b[8], b[9]]),
        std::net::Ipv4Addr::new(b[4], b[5], b[6], b[7]),
        u16::from_be_bytes([b[10], b[11]]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(n: u32) -> FlowKey {
        FlowKey::from_raw(0x0a00_0000 + n, 40000 + (n as u16 % 1000), 0x0808_0808, 443)
    }

    fn rt_unlimited() -> RangeTracker {
        RangeTracker::new(RtMode::Unlimited, SignatureWidth::W32)
    }

    fn rt_small(slots: usize) -> RangeTracker {
        RangeTracker::new(RtMode::Constrained { slots }, SignatureWidth::W32)
    }

    #[test]
    fn creates_then_rules() {
        for mut rt in [rt_unlimited(), rt_small(64)] {
            let f = flow(1);
            assert_eq!(rt.on_seq(&f, SeqNum(0), SeqNum(100)), RtSeqOutcome::Created);
            assert_eq!(
                rt.on_seq(&f, SeqNum(100), SeqNum(200)),
                RtSeqOutcome::Ruled(SeqVerdict::Extend)
            );
            assert_eq!(
                rt.on_ack(&f, SeqNum(100), true),
                RtAckOutcome::Ruled(AckVerdict::Advance)
            );
            assert_eq!(rt.occupancy(), 1);
        }
    }

    #[test]
    fn ack_without_flow_is_ignored() {
        for mut rt in [rt_unlimited(), rt_small(64)] {
            assert_eq!(rt.on_ack(&flow(2), SeqNum(10), true), RtAckOutcome::NoFlow);
            assert!(!rt.on_ack(&flow(2), SeqNum(10), true).match_pt());
        }
    }

    #[test]
    fn revalidate_tracks_range_movement() {
        let mut rt = rt_small(64);
        let f = flow(3);
        let sig = rt.sig(&f);
        rt.on_seq(&f, SeqNum(0), SeqNum(100));
        rt.on_seq(&f, SeqNum(100), SeqNum(200));
        assert!(rt.revalidate(sig, SeqNum(100)));
        assert!(rt.revalidate(sig, SeqNum(200)));
        // ACK 150 moves the left edge past eACK 100.
        rt.on_ack(&f, SeqNum(150), true);
        assert!(!rt.revalidate(sig, SeqNum(100)));
        assert!(rt.revalidate(sig, SeqNum(200)));
        // Unknown flow is never valid.
        let gsig = rt.sig(&flow(4));
        assert!(!rt.revalidate(gsig, SeqNum(100)));
    }

    #[test]
    fn revalidate_false_after_collapse() {
        let mut rt = rt_small(64);
        let f = flow(5);
        let sig = rt.sig(&f);
        rt.on_seq(&f, SeqNum(0), SeqNum(100));
        rt.on_seq(&f, SeqNum(100), SeqNum(200));
        assert!(rt.revalidate(sig, SeqNum(200)));
        // Duplicate ACK collapses the range; everything becomes stale.
        rt.on_ack(&f, SeqNum(0), true);
        assert!(!rt.revalidate(sig, SeqNum(200)));
    }

    #[test]
    fn collision_favors_live_incumbent() {
        // Two flows forced into the same slot of a 1-slot table.
        let mut rt = rt_small(1);
        let a = flow(10);
        let b = flow(11);
        assert_eq!(rt.on_seq(&a, SeqNum(0), SeqNum(100)), RtSeqOutcome::Created);
        assert_eq!(
            rt.on_seq(&b, SeqNum(0), SeqNum(100)),
            RtSeqOutcome::Collision
        );
        assert!(!rt.on_seq(&b, SeqNum(100), SeqNum(200)).track());
        // ACKs for the interloper miss too (signature mismatch).
        assert_eq!(rt.on_ack(&b, SeqNum(100), true), RtAckOutcome::NoFlow);
    }

    #[test]
    fn collapsed_incumbent_is_overwritten() {
        let mut rt = rt_small(1);
        let a = flow(10);
        let b = flow(11);
        rt.on_seq(&a, SeqNum(0), SeqNum(100));
        // Retransmission collapses a's range.
        rt.on_seq(&a, SeqNum(0), SeqNum(100));
        assert!(rt.peek(&a).unwrap().is_collapsed());
        // b may now claim the slot.
        assert_eq!(rt.on_seq(&b, SeqNum(0), SeqNum(50)), RtSeqOutcome::Created);
        assert!(rt.peek(&b).is_some());
        assert!(rt.peek(&a).is_none());
    }

    #[test]
    fn unlimited_never_collides() {
        let mut rt = rt_unlimited();
        for n in 0..1000 {
            assert_eq!(
                rt.on_seq(&flow(n), SeqNum(0), SeqNum(100)),
                RtSeqOutcome::Created
            );
        }
        assert_eq!(rt.occupancy(), 1000);
    }

    /// The located (`_at`) entry points must behave identically to the
    /// self-locating ones — the batch path rides on this.
    #[test]
    fn located_paths_match_plain_paths() {
        for (mut plain, mut located) in
            [(rt_unlimited(), rt_unlimited()), (rt_small(8), rt_small(8))]
        {
            for step in 0..200u32 {
                let f = flow(step % 13);
                let at = located.locate(&f);
                assert_eq!(at.sig(), located.sig(&f));
                located.prefetch(&at);
                if step % 3 == 2 {
                    let ack = SeqNum(step * 40);
                    assert_eq!(
                        plain.on_ack(&f, ack, true),
                        located.on_ack_at(&f, &at, ack, true),
                        "ack step {step}"
                    );
                } else {
                    let (seq, eack) = (SeqNum(step * 100), SeqNum(step * 100 + 100));
                    assert_eq!(
                        plain.on_seq(&f, seq, eack),
                        located.on_seq_at(&f, &at, seq, eack),
                        "seq step {step}"
                    );
                }
            }
            assert_eq!(plain.occupancy(), located.occupancy());
        }
    }

    /// A flow survives a rotation iff it was touched during the epoch that
    /// just closed; two idle rotations clear everything.
    #[test]
    fn rotation_sweeps_idle_flows() {
        for mut rt in [rt_unlimited(), rt_small(64)] {
            let (a, b) = (flow(1), flow(2));
            rt.on_seq(&a, SeqNum(0), SeqNum(100));
            rt.on_seq(&b, SeqNum(0), SeqNum(100));
            assert_eq!(rt.rotate(), (2, 0), "both touched this epoch");
            // Only `a` stays active in the new epoch (an ACK counts).
            rt.on_ack(&a, SeqNum(100), true);
            assert_eq!(rt.rotate(), (1, 1));
            assert!(rt.peek(&a).is_some());
            assert!(rt.peek(&b).is_none());
            // Fully idle epoch: everything is swept.
            assert_eq!(rt.rotate(), (0, 1));
            assert_eq!(rt.occupancy(), 0);
            // The table remains usable after rotation.
            assert_eq!(rt.on_seq(&b, SeqNum(0), SeqNum(50)), RtSeqOutcome::Created);
        }
    }

    /// An interloper's collision must not refresh the incumbent's
    /// generation: the incumbent is swept once it goes idle even if the
    /// colliding flow keeps hammering the slot.
    #[test]
    fn collision_does_not_refresh_incumbent_generation() {
        let mut rt = rt_small(1);
        let (a, b) = (flow(10), flow(11));
        rt.on_seq(&a, SeqNum(0), SeqNum(100));
        rt.rotate();
        // New epoch: only b (the interloper) sends; a is idle.
        assert_eq!(
            rt.on_seq(&b, SeqNum(0), SeqNum(100)),
            RtSeqOutcome::Collision
        );
        assert_eq!(rt.rotate(), (0, 1), "idle incumbent swept");
        // b can now claim the freed slot.
        assert_eq!(rt.on_seq(&b, SeqNum(0), SeqNum(100)), RtSeqOutcome::Created);
    }

    /// Snapshot then restore into a fresh tracker: identical behaviour on
    /// both store kinds, including the epoch generation (a restored flow is
    /// swept on the same rotation it would have been swept on originally).
    #[test]
    fn snapshot_restore_round_trips() {
        for (mut rt, mode) in [
            (rt_unlimited(), RtMode::Unlimited),
            (rt_small(64), RtMode::Constrained { slots: 64 }),
        ] {
            rt.on_seq(&flow(1), SeqNum(0), SeqNum(100));
            rt.on_seq(&flow(2), SeqNum(50), SeqNum(150));
            rt.rotate(); // epoch 1; both entries now stale-unless-touched
            rt.on_ack(&flow(1), SeqNum(100), true); // refresh flow 1 only
            let mut w = SnapWriter::new();
            rt.snapshot_into(&mut w);
            let payload = w.into_payload();

            let mut fresh = RangeTracker::new(mode, SignatureWidth::W32);
            let mut r = SnapReader::new(&payload);
            fresh.restore_from(&mut r).unwrap();
            assert_eq!(r.remaining(), 0);
            assert_eq!(fresh.occupancy(), 2);
            assert_eq!(fresh.peek(&flow(1)), rt.peek(&flow(1)));
            assert_eq!(fresh.peek(&flow(2)), rt.peek(&flow(2)));
            // Generations survived: the untouched flow is swept, the
            // refreshed one carried — exactly as in the original.
            assert_eq!(fresh.rotate(), rt.rotate());
            assert!(fresh.peek(&flow(1)).is_some());
            assert!(fresh.peek(&flow(2)).is_none());
        }
    }

    #[test]
    fn restore_rejects_mismatched_geometry() {
        let mut rt = rt_small(64);
        rt.on_seq(&flow(1), SeqNum(0), SeqNum(100));
        let mut w = SnapWriter::new();
        rt.snapshot_into(&mut w);
        let payload = w.into_payload();

        let mut wrong_size = rt_small(32);
        assert!(matches!(
            wrong_size.restore_from(&mut SnapReader::new(&payload)),
            Err(SnapshotError::Mismatch(_))
        ));
        let mut wrong_kind = rt_unlimited();
        assert!(matches!(
            wrong_kind.restore_from(&mut SnapReader::new(&payload)),
            Err(SnapshotError::Mismatch(_))
        ));
    }

    #[test]
    fn flow_key_wire_round_trip() {
        let k = flow(77);
        assert_eq!(flow_key_from_wire(&k.to_bytes()), k);
    }

    #[test]
    fn outcome_track_matrix() {
        assert!(RtSeqOutcome::Created.track());
        assert!(RtSeqOutcome::Ruled(SeqVerdict::Extend).track());
        assert!(RtSeqOutcome::Ruled(SeqVerdict::HoleReset).track());
        assert!(!RtSeqOutcome::Ruled(SeqVerdict::Retransmission).track());
        assert!(!RtSeqOutcome::Ruled(SeqVerdict::Wraparound).track());
        assert!(!RtSeqOutcome::Collision.track());
    }
}
