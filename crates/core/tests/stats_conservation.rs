//! Property suite: `EngineStats` conservation laws.
//!
//! Every packet offered to the engine lands in exactly one disposition
//! bucket, so the counters must always satisfy
//!
//! ```text
//! packets == syn_skipped + filtered_flows + no_role
//!          + (seq_tracked + seq_retransmission + seq_wraparound + seq_rt_collision)
//!          + (ack_advanced + ack_duplicate + ack_stale + ack_optimistic + ack_no_flow)
//!          - dual_role_recirc
//! ```
//!
//! The SEQ group partitions `handle_seq` calls (`seq_hole_reset` is a
//! refinement of `seq_tracked`, not a separate bucket) and the ACK group
//! partitions `handle_ack` calls; `dual_role_recirc` corrects for packets
//! that fired both roles (possible only in `Leg::Both`). On top of that,
//! every sample comes from a Packet Tracker match (`samples == pt_matched`)
//! and, with the `telemetry` feature, the RTT histogram observes each match
//! exactly once (`histogram count == pt_matched`).

use dart_core::{run_monitor_slice, DartConfig, DartEngine, EngineStats, Leg};
use dart_packet::{Direction, FlowKey, PacketBuilder, PacketMeta};
use proptest::prelude::*;

fn check_conservation(stats: &EngineStats) {
    let seq_fired = stats.seq_tracked
        + stats.seq_retransmission
        + stats.seq_wraparound
        + stats.seq_rt_collision;
    let ack_fired = stats.ack_advanced
        + stats.ack_duplicate
        + stats.ack_stale
        + stats.ack_optimistic
        + stats.ack_no_flow;
    assert_eq!(
        stats.packets,
        stats.syn_skipped + stats.filtered_flows + stats.no_role + seq_fired + ack_fired
            - stats.dual_role_recirc,
        "disposition counters do not partition the packet count: {stats:?}"
    );
    assert_eq!(
        stats.samples, stats.pt_matched,
        "every sample must come from a PT match: {stats:?}"
    );
    assert!(
        stats.seq_hole_reset <= stats.seq_tracked,
        "hole resets refine seq_tracked: {stats:?}"
    );
}

/// One generated packet: enough degrees of freedom to reach every
/// disposition bucket (SYNs, pure ACKs, piggybacked data+ACK, stale and
/// optimistic ACK values, retransmitted left edges, both directions).
fn arb_packet(flows: u32) -> impl Strategy<Value = (u32, bool, bool, bool, u32, u32, u32)> {
    (
        0..flows,      // flow index
        any::<bool>(), // outbound?
        any::<bool>(), // carries data?
        any::<bool>(), // syn flag
        0u32..1 << 16, // seq
        0u32..1 << 17, // ack (range beyond seq: stale + optimistic)
        1u32..1500,    // payload length when data
    )
}

fn build_trace(raw: &[(u32, bool, bool, bool, u32, u32, u32)]) -> Vec<PacketMeta> {
    raw.iter()
        .enumerate()
        .map(|(i, &(flow, outbound, data, syn, seq, ack, len))| {
            let f = FlowKey::from_raw(0x0a00_0001 + flow, 40000, 0x5db8_d822, 443);
            let (f, dir) = if outbound {
                (f, Direction::Outbound)
            } else {
                (f.reverse(), Direction::Inbound)
            };
            let mut b = PacketBuilder::new(f, i as u64 * 1_000).ack(ack).dir(dir);
            if data {
                b = b.seq(seq).payload(len);
            }
            if syn {
                b = b.syn();
            }
            b.build()
        })
        .collect()
}

fn run_with(cfg: DartConfig, packets: &[PacketMeta]) -> EngineStats {
    let mut engine = DartEngine::new(cfg);
    let (samples, stats) = run_monitor_slice(&mut engine, packets);
    assert_eq!(samples.len() as u64, stats.samples);
    stats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conservation_default_config(raw in proptest::collection::vec(arb_packet(6), 0..400)) {
        let packets = build_trace(&raw);
        check_conservation(&run_with(DartConfig::default(), &packets));
    }

    #[test]
    fn conservation_under_pressure(raw in proptest::collection::vec(arb_packet(8), 0..400)) {
        // Tiny tables + recirculation + victim cache: the lossy paths.
        let cfg = DartConfig::default()
            .with_rt(8)
            .with_pt(4, 1)
            .with_max_recirc(2)
            .with_victim_cache(2);
        let packets = build_trace(&raw);
        check_conservation(&run_with(cfg, &packets));
    }

    #[test]
    fn conservation_both_legs(raw in proptest::collection::vec(arb_packet(6), 0..400)) {
        // Leg::Both is the only mode where a packet can fire both roles,
        // exercising the dual_role_recirc correction term.
        let cfg = DartConfig::default().with_leg(Leg::Both);
        let packets = build_trace(&raw);
        let stats = run_with(cfg, &packets);
        check_conservation(&stats);
    }
}

mod degraded {
    use super::*;
    use dart_core::{FailurePolicy, PacketHook, ShardedConfig, ShardedMonitor};
    use std::sync::Arc;

    /// Silence the backtraces of injected panics (payloads starting with
    /// `"chaos:"`) so the property run's output stays readable; everything
    /// else still reaches the previous hook.
    fn quiet_injected_panics() {
        use std::sync::Once;
        static QUIET: Once = Once::new();
        QUIET.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.starts_with("chaos:"))
                    || info
                        .payload()
                        .downcast_ref::<&str>()
                        .is_some_and(|s| s.starts_with("chaos:"));
                if !injected {
                    previous(info);
                }
            }));
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// A seeded mid-run shard panic under any [`FailurePolicy`] never
        /// aborts, the runtime's books balance
        /// (`fed == packets + monitor_miss`), and the per-engine
        /// disposition partition still holds on the merged degraded
        /// counters (the supervised counters live *outside* the
        /// partition).
        #[test]
        fn degraded_runs_conserve_counters(
            raw in proptest::collection::vec(arb_packet(6), 20..300),
            policy_idx in 0usize..3,
            panic_frac in 0.0f64..1.0,
        ) {
            quiet_injected_panics();
            let policy = [
                FailurePolicy::FailFast,
                FailurePolicy::RestartShard,
                FailurePolicy::ShedLoad,
            ][policy_idx];
            let packets = build_trace(&raw);
            let target = (packets.len() as f64 * panic_frac) as u64;
            let hook: PacketHook = Arc::new(move |idx, _shard| {
                if idx == target {
                    panic!("chaos: property panic at packet {target}");
                }
            });
            let cfg = ShardedConfig::new(DartConfig::default(), 3)
                .with_batch_size(4)
                .with_policy(policy);
            let mut monitor = ShardedMonitor::with_packet_hook(cfg, hook);
            for p in &packets {
                monitor.feed(p);
            }
            let run = match monitor.try_into_run() {
                Ok(run) => run,
                Err(err) => err.into_partial(),
            };
            prop_assert!(!run.failures.is_empty(), "the injected panic must be recorded");
            prop_assert_eq!(
                run.stats.packets + run.stats.monitor_miss,
                packets.len() as u64,
                "runtime books must balance: {:?}", run.stats
            );
            check_conservation(&run.stats);
        }
    }
}

#[cfg(feature = "telemetry")]
mod telemetry_laws {
    use super::*;
    use dart_core::EngineTelemetry;
    use dart_telemetry::MetricRegistry;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn rtt_histogram_count_equals_pt_matched(
            raw in proptest::collection::vec(arb_packet(6), 0..400)
        ) {
            let packets = build_trace(&raw);
            let registry = MetricRegistry::new();
            let mut engine = DartEngine::new(DartConfig::default());
            engine.attach_telemetry(EngineTelemetry::register(&registry, 0));
            let (_, stats) = run_monitor_slice(&mut engine, &packets);
            check_conservation(&stats);
            let hist = registry.histogram("dart_rtt_ns", &[("shard", "0")], "");
            prop_assert_eq!(hist.count(), stats.pt_matched);
        }
    }
}
