//! Tests for the §4/§7 engine extensions: flow-selection rules, the victim
//! cache, and the RT-copy recirculation-avoidance approximation.

use dart_core::{DartConfig, DartEngine, FlowFilter, FlowRule, RttSample};
use dart_packet::{Direction, FlowKey, Nanos, PacketBuilder, PacketMeta, MILLISECOND};
use std::net::Ipv4Addr;

fn flow(n: u32) -> FlowKey {
    FlowKey::from_raw(0x0a08_0000 + n, 40000 + (n % 1000) as u16, 0x5db8_d822, 443)
}

fn exchange(f: FlowKey, seq: u32, len: u32, t: Nanos, rtt: Nanos) -> [PacketMeta; 2] {
    [
        PacketBuilder::new(f, t)
            .seq(seq)
            .payload(len)
            .dir(Direction::Outbound)
            .build(),
        PacketBuilder::new(f.reverse(), t + rtt)
            .ack(seq + len)
            .dir(Direction::Inbound)
            .build(),
    ]
}

#[test]
fn flow_filter_restricts_tracking() {
    let mut engine = DartEngine::new(DartConfig::unlimited());
    // Only flows to the 93.184.216.0/24 prefix are monitored.
    engine.set_flow_filter(FlowFilter::new([FlowRule::to_prefix(
        Ipv4Addr::new(93, 184, 216, 0),
        24,
    )]));
    let tracked = FlowKey::new(
        Ipv4Addr::new(10, 8, 0, 1),
        40001,
        Ipv4Addr::new(93, 184, 216, 34),
        443,
    );
    // Note: `flow()`'s default destination IS inside the monitored /24, so
    // pick a destination clearly outside it.
    let ignored = FlowKey::new(
        Ipv4Addr::new(10, 8, 0, 2),
        40002,
        Ipv4Addr::new(8, 8, 8, 8),
        443,
    );

    let mut samples: Vec<RttSample> = Vec::new();
    for p in exchange(tracked, 0, 100, 0, 10 * MILLISECOND) {
        engine.process(&p, &mut samples);
    }
    for p in exchange(ignored, 0, 100, 1_000_000, 10 * MILLISECOND) {
        engine.process(&p, &mut samples);
    }
    assert_eq!(samples.len(), 1);
    assert_eq!(samples[0].flow, tracked);
    assert_eq!(engine.stats().filtered_flows, 2);
    assert_eq!(engine.rt_occupancy(), 1);

    // Clearing the rules resumes full tracking at runtime.
    engine.set_flow_filter(FlowFilter::all());
    for p in exchange(ignored, 100, 100, 2_000_000, 10 * MILLISECOND) {
        engine.process(&p, &mut samples);
    }
    assert_eq!(samples.len(), 2);
}

#[test]
fn victim_cache_rescues_evicted_records() {
    // 1-slot PT: flow B displaces flow A's record. Without the cache the
    // eviction costs a recirculation (and the sample is at risk); with the
    // cache, A's ACK matches from the cache with zero recirculations.
    let base = DartConfig::default().with_rt(1 << 12).with_pt(1, 1);
    let mk_trace = || {
        let a = flow(10);
        let b = flow(11);
        vec![
            PacketBuilder::new(a, 0)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            PacketBuilder::new(b, 1_000_000)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
            PacketBuilder::new(a.reverse(), 30_000_000)
                .ack(100u32)
                .dir(Direction::Inbound)
                .build(),
            PacketBuilder::new(b.reverse(), 31_000_000)
                .ack(100u32)
                .dir(Direction::Inbound)
                .build(),
        ]
    };

    let (plain, plain_stats) = dart_core::run_trace(base, &mk_trace());
    let (cached, cached_stats) = dart_core::run_trace(base.with_victim_cache(16), &mk_trace());

    assert_eq!(cached.len(), 2, "both samples collected with the cache");
    assert_eq!(cached_stats.victim_cache_hits, 1);
    assert_eq!(cached_stats.recirc_issued, 0);
    assert!(plain_stats.recirc_issued >= 1);
    assert!(plain.len() <= cached.len());
}

#[test]
fn victim_cache_spills_oldest_to_recirculation() {
    // Cache of 1: a second eviction spills the first record onward.
    let cfg = DartConfig::default()
        .with_rt(1 << 12)
        .with_pt(1, 1)
        .with_victim_cache(1)
        .with_max_recirc(2);
    let pkts: Vec<PacketMeta> = (0..3u32)
        .map(|i| {
            PacketBuilder::new(flow(20 + i), i as Nanos * 1_000_000)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build()
        })
        .collect();
    let (_, stats) = dart_core::run_trace(cfg, &pkts);
    assert_eq!(stats.victim_cached, 2);
    // The spilled record went to the normal recirculation path.
    assert!(stats.recirc_issued >= 1);
}

#[test]
fn rt_copy_avoids_recirculation_entirely() {
    // Same displacement scenario as above, but with the RT-copy check: the
    // evicted (still valid) record is reinserted at the end of the pipeline
    // with no recirculation at all.
    let cfg = DartConfig::default()
        .with_rt(1 << 12)
        .with_pt(4, 2)
        .with_max_recirc(4)
        .with_rt_copy(100_000); // 100 µs sync lag
    let mut pkts = Vec::new();
    for i in 0..8u32 {
        pkts.extend(exchange(
            flow(30 + i),
            0,
            100,
            i as Nanos * 300_000,
            40 * MILLISECOND,
        ));
    }
    pkts.sort_by_key(|p| p.ts);
    let (_, stats) = dart_core::run_trace(cfg, &pkts);
    assert_eq!(stats.recirc_issued, 0, "rt-copy replaces recirculation");
    assert!(stats.rt_copy_reinserted + stats.rt_copy_dropped > 0);
}

#[test]
fn rt_copy_staleness_can_drop_valid_records() {
    // The copy lags: a record evicted immediately after its flow is created
    // is judged against a shadow that hasn't heard of the flow yet → drop.
    // This is the documented accuracy cost of the approximation.
    let cfg = DartConfig::default()
        .with_rt(1 << 12)
        .with_pt(1, 1)
        .with_rt_copy(10_000_000_000); // absurd 10 s lag
    let a = flow(40);
    let b = flow(41);
    let pkts = vec![
        PacketBuilder::new(a, 0)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build(),
        PacketBuilder::new(b, 1_000)
            .seq(0u32)
            .payload(100)
            .dir(Direction::Outbound)
            .build(),
        PacketBuilder::new(a.reverse(), 20_000_000)
            .ack(100u32)
            .dir(Direction::Inbound)
            .build(),
    ];
    let (samples, stats) = dart_core::run_trace(cfg, &pkts);
    assert_eq!(stats.rt_copy_dropped, 1);
    assert!(samples.is_empty(), "the lagging copy sacrificed the sample");
}

#[test]
fn features_compose_with_full_workload() {
    // All three features on at once over a busy synthetic pattern: engine
    // stays consistent.
    let cfg = DartConfig::default()
        .with_rt(1 << 10)
        .with_pt(1 << 6, 2)
        .with_victim_cache(8)
        .with_rt_copy(50_000)
        .with_max_recirc(3);
    let mut engine = DartEngine::new(cfg);
    engine.set_flow_filter(FlowFilter::new([FlowRule::to_port(443)]));
    let mut samples: Vec<RttSample> = Vec::new();
    let mut t = 0;
    for round in 0..200u32 {
        let f = flow(round % 50);
        for p in exchange(f, round * 200, 200, t, 15 * MILLISECOND) {
            engine.process(&p, &mut samples);
        }
        t += 700_000;
    }
    engine.flush();
    let s = engine.stats();
    assert!(!samples.is_empty());
    assert_eq!(s.samples as usize, samples.len());
    assert_eq!(
        s.recirc_issued,
        s.recirc_stale_dropped + s.recirc_reinserted + s.recirc_cycles_broken
    );
}
