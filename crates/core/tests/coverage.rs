//! Additional engine coverage: both-legs mode on realistic traffic, and
//! narrow flow signatures producing measurable false-match behavior.

use dart_core::{run_trace, DartConfig, Leg};
use dart_packet::SignatureWidth;
use dart_sim::scenario::{campus, CampusConfig};

fn trace() -> dart_sim::scenario::GeneratedTrace {
    campus(CampusConfig {
        connections: 400,
        duration: 8 * dart_packet::SECOND,
        ..CampusConfig::default()
    })
}

#[test]
fn both_legs_collects_superset_of_each_leg() {
    let t = trace();
    let (ext, _) = run_trace(DartConfig::unlimited(), &t.packets);
    let (int, _) = run_trace(DartConfig::unlimited().with_leg(Leg::Internal), &t.packets);
    let (both, stats) = run_trace(DartConfig::unlimited().with_leg(Leg::Both), &t.packets);
    // Both-legs sees (approximately) the union of work: at least as many as
    // the larger single leg, near the sum (minor interactions possible on
    // piggybacked packets).
    assert!(both.len() >= ext.len().max(int.len()));
    assert!(both.len() as f64 >= (ext.len() + int.len()) as f64 * 0.9);
    // Dual-role packets cost recirculations only in Both mode (§5).
    assert!(stats.dual_role_recirc > 0);
    let (_, ext_stats) = run_trace(DartConfig::unlimited(), &t.packets);
    assert_eq!(ext_stats.dual_role_recirc, 0);
}

#[test]
fn narrow_signatures_still_work_but_collide_more() {
    let t = trace();
    let mk = |w: SignatureWidth| {
        let mut cfg = DartConfig::default().with_rt(1 << 14).with_pt(1 << 12, 1);
        cfg.sig_width = w;
        run_trace(cfg, &t.packets)
    };
    let (s16, stats16) = mk(SignatureWidth::W16);
    let (s32, stats32) = mk(SignatureWidth::W32);
    let (s64, stats64) = mk(SignatureWidth::W64);
    // All widths collect a similar volume (the paper: collisions are "not
    // significant"), but 16-bit signatures must show more RT collisions —
    // two different flows agreeing on a 16-bit tag share an RT slot lineage.
    assert!(!s16.is_empty() && !s32.is_empty() && !s64.is_empty());
    let frac16 = s16.len() as f64 / s64.len() as f64;
    assert!(
        frac16 > 0.85,
        "16-bit width collapsed sample volume: {frac16}"
    );
    assert!(
        stats16.seq_rt_collision >= stats32.seq_rt_collision,
        "narrower signature cannot collide less: {} vs {}",
        stats16.seq_rt_collision,
        stats32.seq_rt_collision
    );
    let _ = stats64;
}

#[test]
fn rt_collision_stat_fires_when_rt_is_tiny() {
    let t = trace();
    // A 64-slot RT for hundreds of flows: collisions guaranteed; the engine
    // must degrade gracefully (fewer samples, no panic, consistent stats).
    let cfg = DartConfig::default().with_rt(64).with_pt(1 << 12, 1);
    let (samples, stats) = run_trace(cfg, &t.packets);
    assert!(stats.seq_rt_collision > 0);
    assert!(!samples.is_empty());
    assert_eq!(stats.samples as usize, samples.len());
}

#[test]
fn zero_recirc_engine_still_functions() {
    let t = trace();
    let cfg = DartConfig::default()
        .with_rt(1 << 12)
        .with_pt(1 << 6, 1)
        .with_max_recirc(0);
    let (samples, stats) = run_trace(cfg, &t.packets);
    assert_eq!(stats.recirc_issued, 0);
    assert!(
        stats.recirc_cap_dropped > 0,
        "evictions all dropped at cap 0"
    );
    assert!(!samples.is_empty());
}
