//! Regression coverage for the ±1 sample divergence across shard counts
//! first seen in `BENCH_throughput.json` (14644 samples at 1–2 shards,
//! 14645 at 4–8).
//!
//! The per-shard telemetry counters localize it: sharding splits flows
//! over N engines that each own a full-size Packet Tracker, so PT hash
//! collisions drop as the shard count grows (`pt_displaced` fell 1010 →
//! 259 between 2 and 8 shards on the benchmark trace) and a displaced
//! record that died under recirculation pressure at a low shard count
//! survives to match its ACK at a higher one (`pt_matched` +1). That is
//! expected behavior — per-shard tables change collision pressure, not a
//! merge bug — and this test pins the mechanism with a minimal two-flow
//! reproduction.

use dart_core::{run_trace, run_trace_sharded, shard_of, DartConfig};
use dart_packet::{Direction, FlowKey, PacketBuilder, PacketMeta, MILLISECOND};

/// Two flows that land on different shards at 2 shards.
fn flows_on_distinct_shards() -> (FlowKey, FlowKey) {
    let fa = FlowKey::from_raw(0x0a00_0001, 40000, 0x5db8_d822, 443);
    let want = 1 - shard_of(&fa, 2);
    for n in 2..1000u32 {
        let fb = FlowKey::from_raw(0x0a00_0000 + n, 40000, 0x5db8_d822, 443);
        if shard_of(&fb, 2) == want {
            return (fa, fb);
        }
    }
    unreachable!("the symmetric hash spreads 1000 flows over 2 shards");
}

/// Interleaved single-exchange flows: SEQ a, SEQ b, ACK a, ACK b.
fn colliding_trace(fa: FlowKey, fb: FlowKey) -> Vec<PacketMeta> {
    let mut pkts = Vec::new();
    for (i, &f) in [fa, fb].iter().enumerate() {
        pkts.push(
            PacketBuilder::new(f, i as u64 * 1_000)
                .seq(0u32)
                .payload(100)
                .dir(Direction::Outbound)
                .build(),
        );
    }
    for (i, &f) in [fa, fb].iter().enumerate() {
        pkts.push(
            PacketBuilder::new(f.reverse(), 20 * MILLISECOND + i as u64 * 1_000)
                .ack(100u32)
                .dir(Direction::Inbound)
                .build(),
        );
    }
    pkts
}

#[test]
fn per_shard_tables_relax_pt_collision_pressure() {
    let (fa, fb) = flows_on_distinct_shards();
    let pkts = colliding_trace(fa, fb);
    // One PT slot and no recirculation budget: in the serial engine the
    // second SEQ displaces the first flow's record, which self-destructs.
    let cfg = DartConfig::default().with_pt(1, 1).with_max_recirc(0);

    let (serial_samples, serial) = run_trace(cfg, &pkts);
    assert_eq!(
        serial_samples.len(),
        1,
        "serial: one record lost to the collision"
    );
    assert_eq!(serial.pt_displaced, 1);
    assert_eq!(serial.recirc_cap_dropped, 1);
    assert_eq!(serial.ack_advanced, 2, "both ACKs advanced the range");
    assert_eq!(serial.pt_matched, 1, "only the surviving record matched");

    // Sharded over 2: each flow gets its own engine (and its own PT slot),
    // so the collision never happens and both samples survive.
    let (sharded_samples, sharded) = run_trace_sharded(cfg, 2, &pkts);
    assert_eq!(sharded_samples.len(), 2, "sharded: no collision, no loss");
    assert_eq!(sharded.pt_displaced, 0);
    assert_eq!(sharded.recirc_cap_dropped, 0);
    assert_eq!(sharded.pt_matched, 2);

    // The divergence is exactly the collision-pressure delta the counters
    // admit to — the BENCH_throughput ±1 in miniature.
    assert_eq!(
        sharded_samples.len() - serial_samples.len(),
        (serial.pt_displaced - sharded.pt_displaced) as usize
    );
}

#[test]
fn identical_shard_counts_stay_deterministic() {
    // The divergence exists only *across* shard counts; repeated runs at
    // one count are byte-identical (the testkit depends on this).
    let (fa, fb) = flows_on_distinct_shards();
    let pkts = colliding_trace(fa, fb);
    let cfg = DartConfig::default().with_pt(1, 1).with_max_recirc(0);
    for shards in [2, 4] {
        let a = run_trace_sharded(cfg, shards, &pkts);
        let b = run_trace_sharded(cfg, shards, &pkts);
        assert_eq!(a.0, b.0, "shards={shards}: nondeterministic samples");
        assert_eq!(a.1, b.1, "shards={shards}: nondeterministic stats");
    }
}
