//! Register arrays: stateful per-stage memory with the Tofino's access
//! discipline.
//!
//! A register array lives in exactly one pipeline stage and a packet may
//! perform **one** read-modify-write on **one** slot as it traverses that
//! stage (paper §4, "Accessing memory sequentially"). Revisiting a register
//! requires recirculating the packet. The [`RegisterArray::rmw`] access is
//! the only pattern the hardware supports; accesses are counted for the
//! benchmark harness, and the per-access compute constraints live in
//! [`crate::salu`].

use std::fmt;

/// A fixed-size register array holding `T` per slot.
pub struct RegisterArray<T> {
    name: &'static str,
    slots: Vec<Option<T>>,
    /// One bit per slot, set iff the slot is occupied. Control-plane walks
    /// (checkpoint serialization, epoch sweeps) scan this instead of the
    /// slot vector, so their cost scales with occupancy — a sparse 2^20
    /// table walk touches 16 KiB of words, not tens of megabytes of slots.
    bitmap: Vec<u64>,
    occupied: usize,
    reads: u64,
    writes: u64,
}

impl<T: Clone> RegisterArray<T> {
    /// Allocate an array of `size` empty slots.
    pub fn new(name: &'static str, size: usize) -> Self {
        assert!(size > 0, "register array must have at least one slot");
        RegisterArray {
            name,
            slots: vec![None; size],
            bitmap: vec![0; size.div_ceil(64)],
            occupied: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Array name (for resource reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of slots.
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// Read the slot at `idx`.
    pub fn read(&mut self, idx: usize) -> Option<&T> {
        self.reads += 1;
        self.slots[idx].as_ref()
    }

    /// Warm the slot at `idx` into cache without performing a register
    /// access: the batch pipeline issues these for a whole block before its
    /// match loop so the table probes overlap in the memory system. Not
    /// counted as a read — hardware prefetch is not a register port access,
    /// and resource reports must stay identical between the per-packet and
    /// batch paths. (`black_box` forces the load; the crate forbids unsafe,
    /// so an explicit prefetch intrinsic is not available.)
    #[inline]
    pub fn prefetch(&self, idx: usize) {
        std::hint::black_box(self.slots[idx].is_some());
    }

    /// Overwrite the slot at `idx`, returning the previous occupant.
    pub fn write(&mut self, idx: usize, value: T) -> Option<T> {
        self.writes += 1;
        let prev = self.slots[idx].replace(value);
        self.occupied += usize::from(prev.is_none());
        self.bitmap[idx / 64] |= 1u64 << (idx % 64);
        prev
    }

    /// Clear the slot at `idx`, returning the previous occupant.
    pub fn clear(&mut self, idx: usize) -> Option<T> {
        self.writes += 1;
        let prev = self.slots[idx].take();
        self.occupied -= usize::from(prev.is_some());
        self.bitmap[idx / 64] &= !(1u64 << (idx % 64));
        prev
    }

    /// Single-traversal read-modify-write: the only pattern the hardware
    /// supports. `f` observes the current occupant and returns the new slot
    /// contents plus a result forwarded to the caller.
    pub fn rmw<R>(&mut self, idx: usize, f: impl FnOnce(Option<T>) -> (Option<T>, R)) -> R {
        self.reads += 1;
        self.writes += 1;
        let old = self.slots[idx].take();
        self.occupied -= usize::from(old.is_some());
        let (new, result) = f(old);
        if new.is_some() {
            self.occupied += 1;
            self.bitmap[idx / 64] |= 1u64 << (idx % 64);
        } else {
            self.bitmap[idx / 64] &= !(1u64 << (idx % 64));
        }
        self.slots[idx] = new;
        result
    }

    /// Number of occupied slots (control-plane visibility only; a real
    /// data plane cannot scan its registers). O(1): tracked across every
    /// mutation so checkpoint serialization never needs a counting scan
    /// of a multi-megabyte array on top of its entry walk.
    pub fn occupancy(&self) -> usize {
        self.occupied
    }

    /// Control-plane sweep: clear every occupied slot `keep` rejects,
    /// returning `(kept, cleared)`. Like [`RegisterArray::occupancy`] this
    /// is a control-plane scan — the switch CPU walking the array between
    /// epochs, not a data-plane register access — so it is deliberately
    /// **not** counted in [`RegisterArray::reads`]/[`RegisterArray::writes`]:
    /// resource reports must reflect per-packet access costs only.
    pub fn sweep(&mut self, mut keep: impl FnMut(&T) -> bool) -> (u64, u64) {
        let (mut kept, mut cleared) = (0u64, 0u64);
        for word_idx in 0..self.bitmap.len() {
            let mut word = self.bitmap[word_idx];
            while word != 0 {
                let bit = word.trailing_zeros();
                word &= word - 1;
                let idx = word_idx * 64 + bit as usize;
                match &self.slots[idx] {
                    Some(v) if keep(v) => kept += 1,
                    Some(_) => {
                        self.slots[idx] = None;
                        self.bitmap[word_idx] &= !(1u64 << bit);
                        cleared += 1;
                    }
                    None => {}
                }
            }
        }
        self.occupied -= cleared as usize;
        (kept, cleared)
    }

    /// Total reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Iterate occupied slots (control-plane only). Walks the occupancy
    /// bitmap, so the cost is proportional to `size / 64` plus the number
    /// of occupied slots — not to the full slot vector.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.bitmap
            .iter()
            .enumerate()
            .flat_map(|(word_idx, &bits)| {
                let mut word = bits;
                std::iter::from_fn(move || {
                    if word == 0 {
                        return None;
                    }
                    let bit = word.trailing_zeros();
                    word &= word - 1;
                    Some(word_idx * 64 + bit as usize)
                })
            })
            .filter_map(|idx| self.slots[idx].as_ref().map(|v| (idx, v)))
    }

    /// Control-plane slot load: place `value` at `idx` without counting a
    /// register access. This is the restore half of [`RegisterArray::iter`]
    /// — the switch CPU repopulating a table from a checkpoint, not a packet
    /// traversing the stage — so like [`RegisterArray::sweep`] it is
    /// deliberately uncounted: resource reports must reflect per-packet
    /// access costs only.
    pub fn load(&mut self, idx: usize, value: T) {
        self.occupied += usize::from(self.slots[idx].replace(value).is_none());
        self.bitmap[idx / 64] |= 1u64 << (idx % 64);
    }
}

impl<T> fmt::Debug for RegisterArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegisterArray")
            .field("name", &self.name)
            .field("size", &self.slots.len())
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_clear() {
        let mut r: RegisterArray<u32> = RegisterArray::new("t", 4);
        assert_eq!(r.read(0), None);
        assert_eq!(r.write(0, 42), None);
        assert_eq!(r.read(0), Some(&42));
        assert_eq!(r.write(0, 43), Some(42));
        assert_eq!(r.clear(0), Some(43));
        assert_eq!(r.read(0), None);
    }

    #[test]
    fn rmw_replaces_and_returns() {
        let mut r: RegisterArray<u32> = RegisterArray::new("t", 2);
        r.write(1, 7);
        let evicted = r.rmw(1, |old| (Some(9), old));
        assert_eq!(evicted, Some(7));
        assert_eq!(r.read(1), Some(&9));
    }

    #[test]
    fn occupancy_counts() {
        let mut r: RegisterArray<u8> = RegisterArray::new("t", 8);
        r.write(1, 1);
        r.write(5, 2);
        assert_eq!(r.occupancy(), 2);
        r.clear(1);
        assert_eq!(r.occupancy(), 1);
    }

    #[test]
    fn prefetch_counts_no_access() {
        let mut r: RegisterArray<u8> = RegisterArray::new("t", 4);
        r.write(1, 7);
        r.prefetch(0);
        r.prefetch(1);
        assert_eq!(r.reads(), 0);
        assert_eq!(r.writes(), 1);
    }

    #[test]
    fn sweep_clears_rejected_without_counting_accesses() {
        let mut r: RegisterArray<u8> = RegisterArray::new("t", 8);
        r.write(0, 10);
        r.write(3, 20);
        r.write(5, 30);
        let (reads0, writes0) = (r.reads(), r.writes());
        let (kept, cleared) = r.sweep(|v| *v >= 20);
        assert_eq!((kept, cleared), (2, 1));
        assert_eq!(r.occupancy(), 2);
        assert_eq!(r.read(0), None);
        assert_eq!(r.writes(), writes0, "sweep must not count as writes");
        assert_eq!(r.reads(), reads0 + 1, "only the assertion read counts");
    }

    #[test]
    fn access_counters_track() {
        let mut r: RegisterArray<u8> = RegisterArray::new("t", 2);
        r.read(0);
        r.write(0, 1);
        r.rmw(0, |o| (o, ()));
        assert_eq!(r.reads(), 2);
        assert_eq!(r.writes(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let mut r: RegisterArray<u8> = RegisterArray::new("t", 2);
        r.read(2);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_size_rejected() {
        let _ = RegisterArray::<u8>::new("t", 0);
    }
}
