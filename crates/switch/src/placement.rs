//! Stage placement: assign a program's logical tables to physical
//! match-action stages, honoring the constraints the paper's §4 grapples
//! with — sequential dependencies ("memory once accessed cannot be
//! revisited without recirculation") and per-stage capacity.
//!
//! The placer is a greedy first-fit over a dependency-ordered table list:
//! each table goes in the earliest stage at or after its dependencies'
//! stages with room left. Dart's RT and PT "spread across 3 component
//! tables, and therefore 3 stages" (§4) falls out of the chained
//! dependencies between their components.

use crate::profile::TargetProfile;
use crate::program::ProgramSpec;
use std::collections::HashMap;

/// Per-stage capacity limits used by the placer.
#[derive(Clone, Copy, Debug)]
pub struct StageLimits {
    /// SRAM bits per stage.
    pub sram_bits: u64,
    /// TCAM bits per stage.
    pub tcam_bits: u64,
    /// Hash units per stage.
    pub hash_units: u32,
    /// Logical table IDs per stage.
    pub logical_tables: u32,
}

impl StageLimits {
    /// Derive per-stage limits from a target profile (even split).
    pub fn from_profile(p: &TargetProfile) -> StageLimits {
        StageLimits {
            sram_bits: p.sram_bits / p.stages as u64,
            tcam_bits: p.tcam_bits / p.stages as u64,
            // The calibrated profiles count hash capacity in coarse blocks
            // (see `TargetProfile` docs); physically each stage offers at
            // least four 52-bit slices.
            hash_units: (p.hash_units / p.stages).max(4),
            logical_tables: (p.logical_tables / p.stages).max(1),
        }
    }
}

/// A sequential dependency: table `after` may only be placed in a stage
/// strictly later than table `before` (it consumes the other's result).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dependency {
    /// Producing table name.
    pub before: String,
    /// Consuming table name.
    pub after: String,
}

/// The result of placing a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// `stage[i]` lists the table names placed in physical stage `i`.
    pub stages: Vec<Vec<String>>,
}

impl Placement {
    /// Number of stages actually used.
    pub fn stages_used(&self) -> usize {
        self.stages.len()
    }

    /// The stage index a table landed in.
    pub fn stage_of(&self, table: &str) -> Option<usize> {
        self.stages
            .iter()
            .position(|s| s.iter().any(|t| t == table))
    }
}

/// Placement failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// The program needs more stages than the target offers.
    OutOfStages {
        /// Stages required.
        needed: usize,
        /// Stages available.
        available: u32,
    },
    /// A single table exceeds a stage's capacity outright.
    TableTooLarge {
        /// The offending table.
        table: String,
    },
    /// A dependency names an unknown table.
    UnknownTable {
        /// The missing name.
        table: String,
    },
}

#[derive(Default, Clone, Copy)]
struct StageUse {
    sram: u64,
    tcam: u64,
    hash: u32,
    tables: u32,
}

/// Greedy first-fit placement of `prog` onto `target` with the given
/// sequential `deps`.
pub fn place(
    prog: &ProgramSpec,
    target: &TargetProfile,
    deps: &[Dependency],
) -> Result<Placement, PlacementError> {
    let limits = StageLimits::from_profile(target);
    // Validate dependency names.
    for d in deps {
        for name in [&d.before, &d.after] {
            if !prog.tables.iter().any(|t| &t.name == name) {
                return Err(PlacementError::UnknownTable {
                    table: name.clone(),
                });
            }
        }
    }
    let mut stage_of: HashMap<&str, usize> = HashMap::new();
    let mut usage: Vec<StageUse> = Vec::new();
    let fits = |u: &StageUse, t: &crate::program::TableSpec, l: &StageLimits| {
        let (sram, tcam) = (t.sram_bits(), t.tcam_bits());
        u.sram + sram <= l.sram_bits
            && u.tcam + tcam <= l.tcam_bits
            && u.hash + t.hash_units <= l.hash_units
            && u.tables < l.logical_tables
    };
    for t in &prog.tables {
        // Earliest admissible stage: strictly after every dependency.
        let min_stage = deps
            .iter()
            .filter(|d| d.after == t.name)
            .filter_map(|d| stage_of.get(d.before.as_str()).map(|s| s + 1))
            .max()
            .unwrap_or(0);
        // Single-table feasibility.
        if !fits(&StageUse::default(), t, &limits) {
            return Err(PlacementError::TableTooLarge {
                table: t.name.clone(),
            });
        }
        let mut s = min_stage;
        loop {
            if s >= usage.len() {
                usage.resize(s + 1, StageUse::default());
            }
            if fits(&usage[s], t, &limits) {
                usage[s].sram += t.sram_bits();
                usage[s].tcam += t.tcam_bits();
                usage[s].hash += t.hash_units;
                usage[s].tables += 1;
                stage_of.insert(&t.name, s);
                break;
            }
            s += 1;
        }
    }
    let used = usage.len();
    if used > target.stages as usize {
        return Err(PlacementError::OutOfStages {
            needed: used,
            available: target.stages,
        });
    }
    let mut stages = vec![Vec::new(); used];
    for t in &prog.tables {
        stages[stage_of[t.name.as_str()]].push(t.name.clone());
    }
    Ok(Placement { stages })
}

/// The sequential dependencies of the Dart program (§4): RT components
/// chain (signature check → left edge → right edge), PT components chain
/// and follow the RT, the analytics registers follow the PT.
pub fn dart_dependencies(prog: &ProgramSpec) -> Vec<Dependency> {
    let mut deps = Vec::new();
    let dep = |a: &str, b: &str| Dependency {
        before: a.into(),
        after: b.into(),
    };
    let has = |n: &str| prog.tables.iter().any(|t| t.name == n);
    if has("rt_left") {
        deps.push(dep("rt_sig", "rt_left"));
        deps.push(dep("rt_left", "rt_right"));
    }
    // Each PT stage chains internally and after the RT's last component.
    for s in 0.. {
        let sig = format!("pt_sig_{s}");
        if !has(&sig) {
            break;
        }
        deps.push(dep("rt_right", &sig));
        deps.push(dep(&sig, &format!("pt_ts_{s}")));
        deps.push(dep(&format!("pt_ts_{s}"), &format!("pt_valid_{s}")));
        if s > 0 {
            deps.push(dep(&format!("pt_valid_{}", s - 1), &format!("pt_sig_{s}")));
        }
    }
    // Analytics follows the PT.
    if has("an_min_rtt") && has("pt_valid_0") {
        deps.push(dep("pt_valid_0", "an_min_rtt"));
        deps.push(dep("an_min_rtt", "an_window"));
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{dart_program, DartProgramParams, TableSpec};

    #[test]
    fn dart_program_places_on_tofino1() {
        let prog = dart_program(DartProgramParams {
            spans_egress: true,
            ..DartProgramParams::default()
        });
        let deps = dart_dependencies(&prog);
        let placement = place(&prog, &TargetProfile::tofino1(), &deps).expect("fits");
        assert!(placement.stages_used() <= 12);
        // §4: RT and PT each spread across 3 stages.
        let rt_sig = placement.stage_of("rt_sig").unwrap();
        let rt_left = placement.stage_of("rt_left").unwrap();
        let rt_right = placement.stage_of("rt_right").unwrap();
        assert!(rt_sig < rt_left && rt_left < rt_right);
        let pt_sig = placement.stage_of("pt_sig_0").unwrap();
        assert!(pt_sig > rt_right, "PT must follow the RT");
        assert!(placement.stage_of("pt_valid_0").unwrap() > placement.stage_of("pt_ts_0").unwrap());
    }

    #[test]
    fn multi_stage_pt_extends_the_chain() {
        let prog = dart_program(DartProgramParams {
            pt_entries: 1 << 12,
            pt_stages: 3,
            ..DartProgramParams::default()
        });
        let deps = dart_dependencies(&prog);
        let placement = place(&prog, &TargetProfile::tofino2(), &deps).expect("fits");
        // Each added PT stage costs 3 more pipeline stages in this layout.
        let first = placement.stage_of("pt_sig_0").unwrap();
        let last = placement.stage_of("pt_valid_2").unwrap();
        assert!(last >= first + 8);
    }

    #[test]
    fn dependency_on_unknown_table_errors() {
        let prog = ProgramSpec::new("x").with(TableSpec::action("a"));
        let deps = vec![Dependency {
            before: "a".into(),
            after: "ghost".into(),
        }];
        assert_eq!(
            place(&prog, &TargetProfile::tofino1(), &deps),
            Err(PlacementError::UnknownTable {
                table: "ghost".into()
            })
        );
    }

    #[test]
    fn oversized_chain_runs_out_of_stages() {
        // A chain of 15 dependent actions cannot fit 12 stages.
        let mut prog = ProgramSpec::new("chain");
        for i in 0..15 {
            prog = prog.with(TableSpec::action(&format!("t{i}")));
        }
        let deps: Vec<Dependency> = (1..15)
            .map(|i| Dependency {
                before: format!("t{}", i - 1),
                after: format!("t{i}"),
            })
            .collect();
        match place(&prog, &TargetProfile::tofino1(), &deps) {
            Err(PlacementError::OutOfStages { needed, available }) => {
                assert_eq!(needed, 15);
                assert_eq!(available, 12);
            }
            other => panic!("expected OutOfStages, got {other:?}"),
        }
    }

    #[test]
    fn giant_table_rejected_outright() {
        let prog = ProgramSpec::new("big").with(TableSpec::register("huge", 1 << 26, 104, 32));
        match place(&prog, &TargetProfile::tofino1(), &[]) {
            Err(PlacementError::TableTooLarge { table }) => assert_eq!(table, "huge"),
            other => panic!("expected TableTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn independent_tables_pack_into_one_stage() {
        let mut prog = ProgramSpec::new("flat");
        for i in 0..5 {
            prog = prog.with(TableSpec::action(&format!("a{i}")));
        }
        let placement = place(&prog, &TargetProfile::tofino1(), &[]).unwrap();
        assert_eq!(placement.stages_used(), 1);
    }
}
