//! P4-program layout description: the logical tables a program instantiates,
//! used by the resource estimator to regenerate Table 1.

/// How a logical table is matched/stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableKind {
    /// Exact-match SRAM table.
    Exact,
    /// Ternary TCAM table (prefix/range matching, e.g. the operator's
    /// flow-selection rules, paper §4 "Specifying target flows").
    Ternary,
    /// Stateful register array (SRAM + one hash unit per indexing).
    Register,
    /// Keyless action/gateway table (conditionals, header rewrites).
    Action,
}

/// One logical table in the program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Matching/storage discipline.
    pub kind: TableKind,
    /// Number of entries (slots for registers, rules for match tables).
    pub entries: u64,
    /// Match-key width in bits.
    pub key_bits: u32,
    /// Stored value width in bits (action data or register value).
    pub value_bits: u32,
    /// Independent hash computations this table needs.
    pub hash_units: u32,
}

impl TableSpec {
    /// A stateful register array of `entries` slots of `value_bits` each,
    /// indexed by hashing a `key_bits` input. The key is *hashed*, not
    /// stored, so SRAM is charged for values only; hashing charges one
    /// 52-bit hash slice per 52 key bits.
    pub fn register(name: &str, entries: u64, key_bits: u32, value_bits: u32) -> TableSpec {
        TableSpec {
            name: name.into(),
            kind: TableKind::Register,
            entries,
            key_bits,
            value_bits,
            hash_units: key_bits.div_ceil(52).max(1),
        }
    }

    /// An exact-match table (stores key + value in SRAM).
    pub fn exact(name: &str, entries: u64, key_bits: u32, value_bits: u32) -> TableSpec {
        TableSpec {
            name: name.into(),
            kind: TableKind::Exact,
            entries,
            key_bits,
            value_bits,
            hash_units: key_bits.div_ceil(52).max(1),
        }
    }

    /// A ternary (TCAM) table.
    pub fn ternary(name: &str, entries: u64, key_bits: u32, value_bits: u32) -> TableSpec {
        TableSpec {
            name: name.into(),
            kind: TableKind::Ternary,
            entries,
            key_bits,
            value_bits,
            hash_units: 0,
        }
    }

    /// A keyless action/gateway table.
    pub fn action(name: &str) -> TableSpec {
        TableSpec {
            name: name.into(),
            kind: TableKind::Action,
            entries: 1,
            key_bits: 0,
            value_bits: 0,
            hash_units: 0,
        }
    }

    /// SRAM bits this table consumes (with a 20% word/ECC overhead), zero
    /// for TCAM tables. Register arrays store only their values — the key
    /// exists only as a hash index.
    pub fn sram_bits(&self) -> u64 {
        match self.kind {
            TableKind::Ternary => 0,
            TableKind::Action => 0,
            TableKind::Exact => {
                let word = (self.key_bits + self.value_bits) as u64;
                self.entries * word * 12 / 10
            }
            TableKind::Register => self.entries * self.value_bits as u64 * 12 / 10,
        }
    }

    /// TCAM bits this table consumes.
    pub fn tcam_bits(&self) -> u64 {
        match self.kind {
            TableKind::Ternary => self.entries * self.key_bits as u64,
            _ => 0,
        }
    }

    /// Input-crossbar bytes (match key bytes presented to the stage;
    /// registers pay twice — once on the hash crossbar, once on the match
    /// crossbar for signature comparison).
    pub fn crossbar_bytes(&self) -> u64 {
        let base = (self.key_bits as u64).div_ceil(8);
        if self.kind == TableKind::Register {
            base * 2
        } else {
            base
        }
    }
}

/// A full program layout: the logical tables placed on one target.
#[derive(Clone, Debug, Default)]
pub struct ProgramSpec {
    /// Program name.
    pub name: String,
    /// All logical tables.
    pub tables: Vec<TableSpec>,
}

impl ProgramSpec {
    /// Start an empty program.
    pub fn new(name: &str) -> ProgramSpec {
        ProgramSpec {
            name: name.into(),
            tables: Vec::new(),
        }
    }

    /// Add a table.
    pub fn with(mut self, t: TableSpec) -> ProgramSpec {
        self.tables.push(t);
        self
    }

    /// Add `n` copies of small action/gateway tables named `prefix_i`.
    pub fn with_actions(mut self, prefix: &str, n: usize) -> ProgramSpec {
        for i in 0..n {
            self.tables
                .push(TableSpec::action(&format!("{prefix}_{i}")));
        }
        self
    }

    /// Total logical tables.
    pub fn logical_tables(&self) -> u32 {
        self.tables.len() as u32
    }

    /// Total hash units used.
    pub fn hash_units(&self) -> u32 {
        self.tables.iter().map(|t| t.hash_units).sum()
    }
}

/// Parameters of the Dart data-plane program, mirroring the knobs of the
/// open-source P4 prototype.
#[derive(Clone, Copy, Debug)]
pub struct DartProgramParams {
    /// Range Tracker slots.
    pub rt_entries: u64,
    /// Packet Tracker slots (total across stages).
    pub pt_entries: u64,
    /// Packet Tracker stages.
    pub pt_stages: u32,
    /// Whether the build spans ingress + egress (Tofino 1 layout) or fits in
    /// ingress alone (Tofino 2 layout, paper §4).
    pub spans_egress: bool,
}

impl Default for DartProgramParams {
    fn default() -> Self {
        DartProgramParams {
            rt_entries: 1 << 16,
            pt_entries: 1 << 17,
            pt_stages: 1,
            spans_egress: false,
        }
    }
}

/// Build the Dart program layout for the given parameters.
///
/// The structure follows §4: the RT and PT are each spread across 3
/// component tables (sequential edge updates), flow signatures are 32-bit,
/// the payload-size lookup table replaces arithmetic, a ternary table holds
/// the operator's flow-selection rules, and a crowd of small action tables
/// implements parsing decisions, direction checks, eACK computation, cycle
/// detection, and recirculation control. The ingress+egress (Tofino 1)
/// layout duplicates bridging/analytics machinery, costing extra logical
/// tables and SRAM.
pub fn dart_program(p: DartProgramParams) -> ProgramSpec {
    let mut prog = ProgramSpec::new(if p.spans_egress {
        "dart-tofino1"
    } else {
        "dart-tofino2"
    });

    // Range Tracker: 3 component registers (signature, left edge, right edge),
    // each indexed by an independent hash of the 4-tuple.
    for part in ["rt_sig", "rt_left", "rt_right"] {
        prog = prog.with(TableSpec::register(part, p.rt_entries, 104, 32));
    }
    // Packet Tracker: 3 component registers (signature+eACK, timestamp,
    // validity) per stage.
    let per_stage = p.pt_entries / p.pt_stages.max(1) as u64;
    for s in 0..p.pt_stages {
        for part in ["pt_sig", "pt_ts", "pt_valid"] {
            prog = prog.with(TableSpec::register(
                &format!("{part}_{s}"),
                per_stage,
                136,
                32,
            ));
        }
    }
    // Payload-size lookup table (paper §4): exact match on
    // (total_len, data_offset).
    prog = prog.with(TableSpec::exact("payload_size_lut", 15851, 26, 16));
    // Operator flow-selection rules: ternary over the 4-tuple.
    prog = prog.with(TableSpec::ternary("flow_select", 2048, 104, 16));
    // Analytics: per-prefix min-RTT register + window id register.
    prog = prog.with(TableSpec::register("an_min_rtt", 4096, 32, 32));
    prog = prog.with(TableSpec::register("an_window", 4096, 32, 32));
    // Small action/gateway tables: parse/validate, direction, eACK compute,
    // range compare ladder, collapse logic, PT insert/evict mux, cycle
    // detect, recirc header handling...
    prog = prog.with_actions("ig_ctl", 38);
    if p.spans_egress {
        // Tofino 1: bridge metadata to egress, duplicate header handling,
        // egress-side report generation, and mirror/recirc session tables.
        prog = prog.with_actions("eg_ctl", 30);
        prog = prog.with(TableSpec::exact("mirror_sessions", 256, 16, 32));
        prog = prog.with(TableSpec::ternary("eg_report_filter", 1024, 104, 8));
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dart_program_has_rt_and_pt() {
        let p = dart_program(DartProgramParams::default());
        assert!(p.tables.iter().any(|t| t.name == "rt_sig"));
        assert!(p.tables.iter().any(|t| t.name == "pt_ts_0"));
        assert!(p.tables.iter().any(|t| t.name == "payload_size_lut"));
    }

    #[test]
    fn multi_stage_pt_splits_entries() {
        let p = dart_program(DartProgramParams {
            pt_entries: 1 << 17,
            pt_stages: 8,
            ..DartProgramParams::default()
        });
        let pt_sigs: Vec<_> = p
            .tables
            .iter()
            .filter(|t| t.name.starts_with("pt_sig"))
            .collect();
        assert_eq!(pt_sigs.len(), 8);
        assert_eq!(pt_sigs[0].entries, (1 << 17) / 8);
    }

    #[test]
    fn egress_span_costs_more_tables() {
        let t2 = dart_program(DartProgramParams::default());
        let t1 = dart_program(DartProgramParams {
            spans_egress: true,
            ..DartProgramParams::default()
        });
        assert!(t1.logical_tables() > t2.logical_tables());
    }

    #[test]
    fn sram_and_tcam_accounting() {
        let reg = TableSpec::register("r", 1024, 104, 32);
        assert_eq!(reg.sram_bits(), 1024 * 32 * 12 / 10);
        assert_eq!(reg.hash_units, 2);
        assert_eq!(reg.crossbar_bytes(), 26);
        assert_eq!(reg.tcam_bits(), 0);
        let ter = TableSpec::ternary("t", 512, 104, 16);
        assert_eq!(ter.tcam_bits(), 512 * 104);
        assert_eq!(ter.sram_bits(), 0);
        let act = TableSpec::action("a");
        assert_eq!(act.sram_bits(), 0);
        assert_eq!(act.crossbar_bytes(), 0);
    }
}
