//! The recirculation port: bounded-bandwidth re-entry into the pipeline.
//!
//! Dart's lazy-eviction mechanism sends evicted Packet Tracker records back
//! through the ingress pipeline (paper §3.2). Recirculation bandwidth on a
//! real switch is a scarce fraction of forwarding bandwidth, so the paper's
//! headline overhead metric is *recirculations incurred per packet*. This
//! model queues recirculated records, enforces a per-record recirculation
//! cap, and accounts totals for that metric.

use std::collections::VecDeque;

#[cfg(feature = "telemetry")]
use dart_telemetry::{Gauge, Histogram};

/// A record traveling through the recirculation port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recirculated<T> {
    /// The payload being recirculated.
    pub record: T,
    /// How many times this record has recirculated so far (including the
    /// trip it is currently on).
    pub trips: u32,
}

/// Statistics exposed by the recirculation port.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecircStats {
    /// Total records accepted for recirculation.
    pub accepted: u64,
    /// Records refused because they reached the per-record trip cap.
    pub refused_cap: u64,
    /// High-water mark of the queue depth.
    pub max_queue_depth: usize,
}

/// The recirculation port model.
#[derive(Debug)]
pub struct RecircPort<T> {
    queue: VecDeque<Recirculated<T>>,
    max_trips: u32,
    stats: RecircStats,
    /// Live queue-depth gauge plus at-submission depth histogram
    /// (`telemetry` feature).
    #[cfg(feature = "telemetry")]
    telemetry: Option<(Gauge, Histogram)>,
}

impl<T> RecircPort<T> {
    /// Create a port allowing each record at most `max_trips` passes.
    /// `max_trips == 0` disables recirculation entirely.
    pub fn new(max_trips: u32) -> Self {
        RecircPort {
            queue: VecDeque::new(),
            max_trips,
            stats: RecircStats::default(),
            #[cfg(feature = "telemetry")]
            telemetry: None,
        }
    }

    /// Attach a live queue-depth gauge and an at-submission depth
    /// histogram. The gauge tracks [`RecircPort::in_flight`] exactly (set
    /// on every submit and pop); the histogram records the depth each
    /// accepted submission found.
    #[cfg(feature = "telemetry")]
    pub fn set_telemetry(&mut self, depth: Gauge, depth_dist: Histogram) {
        depth.set(self.queue.len() as i64);
        self.telemetry = Some((depth, depth_dist));
    }

    #[cfg(feature = "telemetry")]
    fn publish_depth(&self, observe: bool) {
        if let Some((gauge, dist)) = &self.telemetry {
            gauge.set(self.queue.len() as i64);
            if observe {
                dist.observe(self.queue.len() as u64);
            }
        }
    }

    /// The per-record trip cap.
    pub fn max_trips(&self) -> u32 {
        self.max_trips
    }

    /// Submit `record` for another pass through the pipeline. `prior_trips`
    /// is how many passes it has already made. Returns `Err(record)` when
    /// the cap is exhausted — the caller must let the record self-destruct
    /// (paper §3.2, "we also set a limit \[on\] the number of recirculations
    /// per SEQ packet").
    pub fn submit(&mut self, record: T, prior_trips: u32) -> Result<(), T> {
        if prior_trips >= self.max_trips {
            self.stats.refused_cap += 1;
            return Err(record);
        }
        self.queue.push_back(Recirculated {
            record,
            trips: prior_trips + 1,
        });
        self.stats.accepted += 1;
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
        #[cfg(feature = "telemetry")]
        self.publish_depth(true);
        Ok(())
    }

    /// Take the next record re-entering the ingress pipeline, if any.
    pub fn pop(&mut self) -> Option<Recirculated<T>> {
        let popped = self.queue.pop_front();
        #[cfg(feature = "telemetry")]
        if popped.is_some() {
            self.publish_depth(false);
        }
        popped
    }

    /// Inspect the next record without removing it.
    pub fn peek(&self) -> Option<&Recirculated<T>> {
        self.queue.front()
    }

    /// Records currently in flight around the loop.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> RecircStats {
        self.stats
    }

    /// Iterate the queued records front-to-back (control plane: the
    /// checkpoint writer walking the loop, not a data-plane pop).
    pub fn iter(&self) -> impl Iterator<Item = &Recirculated<T>> {
        self.queue.iter()
    }

    /// Control-plane restore: replace the queue contents and accumulated
    /// statistics with a checkpointed state. Entries keep their recorded
    /// trip counts; nothing here counts toward the accepted/refused books
    /// beyond what the restored `stats` already carries.
    pub fn restore(&mut self, entries: Vec<Recirculated<T>>, stats: RecircStats) {
        self.queue = entries.into();
        self.stats = stats;
        #[cfg(feature = "telemetry")]
        self.publish_depth(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_and_pop_fifo() {
        let mut port: RecircPort<u32> = RecircPort::new(4);
        port.submit(1, 0).unwrap();
        port.submit(2, 0).unwrap();
        assert_eq!(port.in_flight(), 2);
        assert_eq!(port.pop().unwrap().record, 1);
        assert_eq!(port.pop().unwrap().record, 2);
        assert!(port.pop().is_none());
    }

    #[test]
    fn trips_increment() {
        let mut port: RecircPort<&str> = RecircPort::new(8);
        port.submit("x", 2).unwrap();
        assert_eq!(port.pop().unwrap().trips, 3);
    }

    #[test]
    fn cap_refuses_and_returns_record() {
        let mut port: RecircPort<String> = RecircPort::new(2);
        assert!(port.submit("a".into(), 1).is_ok());
        let back = port.submit("b".into(), 2).unwrap_err();
        assert_eq!(back, "b");
        assert_eq!(port.stats().refused_cap, 1);
        assert_eq!(port.stats().accepted, 1);
    }

    #[test]
    fn zero_cap_disables_recirculation() {
        let mut port: RecircPort<u8> = RecircPort::new(0);
        assert!(port.submit(9, 0).is_err());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_tracks_live_depth() {
        let mut port: RecircPort<u8> = RecircPort::new(10);
        let gauge = dart_telemetry::Gauge::new();
        let dist = dart_telemetry::Histogram::new();
        port.submit(1, 0).unwrap();
        port.set_telemetry(gauge.clone(), dist.clone());
        assert_eq!(gauge.get(), 1, "attach publishes the current depth");
        port.submit(2, 0).unwrap();
        port.submit(3, 0).unwrap();
        assert_eq!(gauge.get(), 3);
        assert_eq!(dist.count(), 2, "only post-attach submissions observed");
        port.pop();
        assert_eq!(gauge.get(), 2);
        // A cap refusal leaves the depth untouched.
        let _ = port.submit(4, 10);
        assert_eq!(gauge.get(), 2);
        assert_eq!(dist.count(), 2);
    }

    #[test]
    fn queue_high_water_mark() {
        let mut port: RecircPort<u8> = RecircPort::new(10);
        for i in 0..5 {
            port.submit(i, 0).unwrap();
        }
        port.pop();
        port.pop();
        port.submit(9, 0).unwrap();
        assert_eq!(port.stats().max_queue_depth, 5);
    }
}
