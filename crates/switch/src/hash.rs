//! Hash units: CRC-based hash function generators, modeling the Tofino's
//! hash engines.
//!
//! Match-action pipelines index register arrays with CRC hashes computed by
//! dedicated hash units; a P4 program declares one unit per independent hash
//! it needs (Dart's Table 1 reports "Hash Units" usage). Each [`HashUnit`]
//! here is a reflected CRC-32 with a seed, so distinct units produce
//! independent indexings of the same key — which is what gives a multi-stage
//! Packet Tracker its k "ways".

/// Byte-indexed lookup table for the reflected IEEE polynomial. A real hash
/// unit computes the whole CRC in one cycle of dedicated XOR trees; the
/// software analogue is one table lookup per byte instead of eight
/// shift-and-conditional-XOR steps, which matters because every RT/PT probe
/// hashes an 8–12 byte key.
const CRC32_TABLE: [u32; 256] = build_crc32_table();

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE, reflected) over `data`, starting from `seed`.
#[inline]
pub fn crc32(seed: u32, data: &[u8]) -> u32 {
    let mut crc = !seed;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// One hardware hash unit: a seeded CRC-32 plus an output bit-width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HashUnit {
    seed: u32,
    bits: u32,
}

impl HashUnit {
    /// Create a unit producing `bits`-wide outputs (1..=32). Units with
    /// different `id`s hash independently.
    pub fn new(id: u32, bits: u32) -> HashUnit {
        assert!((1..=32).contains(&bits), "hash output width must be 1..=32");
        // Derive a well-mixed seed from the unit id.
        let seed = (id.wrapping_mul(0x9E37_79B9)) ^ 0xDEAD_BEEF;
        HashUnit { seed, bits }
    }

    /// Output width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Hash `data` to a `bits`-wide value.
    #[inline]
    pub fn hash(&self, data: &[u8]) -> u32 {
        let h = crc32(self.seed, data);
        if self.bits == 32 {
            h
        } else {
            h & ((1u32 << self.bits) - 1)
        }
    }

    /// Hash `data` to an index in `0..size`. `size` need not be a power of
    /// two; non-power-of-two sizes use a multiply-shift range reduction.
    #[inline]
    pub fn index(&self, data: &[u8], size: usize) -> usize {
        debug_assert!(size > 0);
        if size.is_power_of_two() {
            (crc32(self.seed, data) as usize) & (size - 1)
        } else {
            ((crc32(self.seed, data) as u64 * size as u64) >> 32) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_reference_vector() {
        // Standard CRC-32 of "123456789" with zero seed is 0xCBF43926.
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
    }

    /// The table-driven implementation must be bit-identical to the
    /// original bit-serial loop for arbitrary seeds and lengths — every
    /// stored table index in the repo depends on it.
    #[test]
    fn crc32_table_matches_bit_serial() {
        fn crc32_bitwise(seed: u32, data: &[u8]) -> u32 {
            let mut crc = !seed;
            for &b in data {
                crc ^= b as u32;
                for _ in 0..8 {
                    let mask = (crc & 1).wrapping_neg();
                    crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
                }
            }
            !crc
        }
        let mut data = Vec::new();
        for i in 0u32..64 {
            data.push((i.wrapping_mul(0x9E37_79B9) >> 24) as u8);
            let seed = i.wrapping_mul(0x0123_4567);
            assert_eq!(crc32(seed, &data), crc32_bitwise(seed, &data), "len {i}");
        }
    }

    #[test]
    fn units_with_different_ids_differ() {
        let a = HashUnit::new(0, 32);
        let b = HashUnit::new(1, 32);
        assert_ne!(a.hash(b"hello"), b.hash(b"hello"));
    }

    #[test]
    fn width_masks_output() {
        let u = HashUnit::new(3, 10);
        for i in 0u32..100 {
            assert!(u.hash(&i.to_le_bytes()) < 1024);
        }
    }

    #[test]
    fn index_stays_in_bounds_any_size() {
        let u = HashUnit::new(7, 32);
        for size in [1usize, 2, 3, 1000, 1024, 131072] {
            for i in 0u32..200 {
                assert!(u.index(&i.to_le_bytes(), size) < size);
            }
        }
    }

    #[test]
    fn index_distribution_is_roughly_uniform() {
        let u = HashUnit::new(11, 32);
        let size = 64;
        let mut counts = vec![0u32; size];
        let n = 64_000u32;
        for i in 0..n {
            counts[u.index(&i.to_le_bytes(), size)] += 1;
        }
        let expected = n / size as u32;
        for (slot, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < expected as u64 / 2,
                "slot {slot} count {c} far from expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "hash output width")]
    fn zero_width_rejected() {
        HashUnit::new(0, 0);
    }
}
