//! # dart-switch
//!
//! A behavioural model of the programmable-switch substrate Dart runs on:
//! seeded CRC hash units, stateful register arrays with the one-access-per-
//! traversal discipline, a bounded recirculation port, and a resource
//! estimator that compiles a program layout against Tofino-like target
//! profiles (regenerating the paper's Table 1).
//!
//! The Dart engine (`dart-core`) builds its Range Tracker and Packet Tracker
//! on [`RegisterArray`] + [`HashUnit`] and routes evicted records through
//! [`RecircPort`], so the hardware constraints the paper grapples with —
//! one-way associativity, no revisiting memory, bounded recirculation — are
//! enforced by construction rather than assumed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hash;
pub mod placement;
pub mod profile;
pub mod program;
pub mod recirc;
pub mod register;
pub mod resources;
pub mod salu;

pub use hash::{crc32, HashUnit};
pub use placement::{dart_dependencies, place, Dependency, Placement, PlacementError, StageLimits};
pub use profile::TargetProfile;
pub use program::{dart_program, DartProgramParams, ProgramSpec, TableKind, TableSpec};
pub use recirc::{RecircPort, RecircStats, Recirculated};
pub use register::RegisterArray;
pub use resources::{estimate, ResourceReport};
pub use salu::{Cmp, Condition, Guard, Operand, OutputSel, SaluProgram, SaluResult, Update};
