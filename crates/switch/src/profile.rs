//! Switch target profiles: the resource capacities a program is compiled
//! against.
//!
//! Exact Tofino capacities are under NDA; these profiles are *calibrated
//! models* — stage counts and per-stage block structure follow the public
//! literature (12 stages on Tofino 1, 20 on Tofino 2; 80×128 Kb SRAM blocks
//! and 24×44 b×512 TCAM blocks per stage; 8 hash ways per stage; 16 logical
//! table IDs per stage), which is enough to reproduce the *relative* usage
//! percentages of Table 1. See EXPERIMENTS.md for paper-vs-model numbers.

/// Resource capacities of one switch pipeline.
///
/// Hash-unit and logical-table granularity differs between the two Tofino
/// generations (Tofino 2 exposes fewer, wider programmable hash blocks to a
/// single program); those two capacities are calibrated per generation so
/// that the published Dart utilization (Table 1) is reproduced from the
/// program layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TargetProfile {
    /// Human-readable target name.
    pub name: &'static str,
    /// Match-action stages available to one program.
    pub stages: u32,
    /// Total SRAM bits across all stages.
    pub sram_bits: u64,
    /// Total TCAM bits across all stages.
    pub tcam_bits: u64,
    /// Total hash units (ways) across all stages.
    pub hash_units: u32,
    /// Total logical table IDs across all stages.
    pub logical_tables: u32,
    /// Total input-crossbar bytes across all stages (per-stage match input
    /// width × stages).
    pub crossbar_bytes: u64,
}

impl TargetProfile {
    /// Tofino 1 model: 12 stages, 8 hash slices and 14 logical table IDs
    /// per stage.
    pub fn tofino1() -> TargetProfile {
        let stages = 12u32;
        TargetProfile {
            name: "Tofino 1",
            stages,
            sram_bits: stages as u64 * 80 * 128 * 1024,
            tcam_bits: stages as u64 * 24 * 44 * 512,
            hash_units: stages * 8,
            logical_tables: stages * 14,
            crossbar_bytes: stages as u64 * 128,
        }
    }

    /// Tofino 2 model: 20 stages; fewer, wider hash blocks and logical
    /// table IDs visible to one program (calibrated — see type docs).
    pub fn tofino2() -> TargetProfile {
        let stages = 20u32;
        TargetProfile {
            name: "Tofino 2",
            stages,
            sram_bits: stages as u64 * 80 * 128 * 1024,
            tcam_bits: stages as u64 * 24 * 44 * 512,
            hash_units: 42,
            logical_tables: 130,
            crossbar_bytes: stages as u64 * 92,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tofino2_has_more_of_everything() {
        let t1 = TargetProfile::tofino1();
        let t2 = TargetProfile::tofino2();
        assert!(t2.stages > t1.stages);
        assert!(t2.sram_bits > t1.sram_bits);
        // Calibrated: hash/logical capacities visible to one program are
        // coarser-grained on Tofino 2 (see type docs).
        assert!(t2.hash_units < t1.hash_units);
    }

    #[test]
    fn capacities_are_plausible() {
        let t1 = TargetProfile::tofino1();
        // ~120 Mb SRAM, ~6.5 Mb TCAM on 12 stages.
        assert_eq!(t1.sram_bits, 125_829_120);
        assert_eq!(t1.tcam_bits, 6_488_064);
    }
}
