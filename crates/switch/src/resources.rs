//! Resource-usage estimation: program layout × target profile → the
//! percentage report of Table 1.

use crate::profile::TargetProfile;
use crate::program::{ProgramSpec, TableKind};
use std::fmt;

/// Percentage usage of each resource class, as Table 1 reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResourceReport {
    /// TCAM bits used / available.
    pub tcam_pct: f64,
    /// SRAM bits used / available.
    pub sram_pct: f64,
    /// Hash units used / available.
    pub hash_units_pct: f64,
    /// Logical table IDs used / available.
    pub logical_tables_pct: f64,
    /// Input-crossbar bytes used / available.
    pub crossbar_pct: f64,
}

impl ResourceReport {
    /// True when every resource fits on the target.
    pub fn fits(&self) -> bool {
        [
            self.tcam_pct,
            self.sram_pct,
            self.hash_units_pct,
            self.logical_tables_pct,
            self.crossbar_pct,
        ]
        .iter()
        .all(|&p| p <= 100.0)
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TCAM            {:5.1}%", self.tcam_pct)?;
        writeln!(f, "SRAM            {:5.1}%", self.sram_pct)?;
        writeln!(f, "Hash Units      {:5.1}%", self.hash_units_pct)?;
        writeln!(f, "Logical Tables  {:5.1}%", self.logical_tables_pct)?;
        write!(f, "Input Crossbars {:5.1}%", self.crossbar_pct)
    }
}

/// Estimate resource usage of `prog` on `target`.
pub fn estimate(prog: &ProgramSpec, target: &TargetProfile) -> ResourceReport {
    let sram: u64 = prog.tables.iter().map(|t| t.sram_bits()).sum();
    let tcam: u64 = prog.tables.iter().map(|t| t.tcam_bits()).sum();
    let hash: u32 = prog.hash_units();
    let logical: u32 = prog.logical_tables();
    // Crossbar: match keys must be presented to the stage's input crossbar.
    // Register pairs sharing a key still pay per table (conservative).
    let crossbar: u64 = prog
        .tables
        .iter()
        .filter(|t| t.kind != TableKind::Action)
        .map(|t| t.crossbar_bytes())
        .sum();
    let pct = |used: f64, avail: f64| {
        if avail == 0.0 {
            0.0
        } else {
            used / avail * 100.0
        }
    };
    ResourceReport {
        tcam_pct: pct(tcam as f64, target.tcam_bits as f64),
        sram_pct: pct(sram as f64, target.sram_bits as f64),
        hash_units_pct: pct(hash as f64, target.hash_units as f64),
        logical_tables_pct: pct(logical as f64, target.logical_tables as f64),
        crossbar_pct: pct(crossbar as f64, target.crossbar_bytes as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{dart_program, DartProgramParams, TableSpec};

    #[test]
    fn empty_program_uses_nothing() {
        let r = estimate(&ProgramSpec::new("empty"), &TargetProfile::tofino1());
        assert_eq!(r.tcam_pct, 0.0);
        assert_eq!(r.sram_pct, 0.0);
        assert!(r.fits());
    }

    #[test]
    fn dart_fits_both_targets() {
        let t1 = estimate(
            &dart_program(DartProgramParams {
                spans_egress: true,
                ..DartProgramParams::default()
            }),
            &TargetProfile::tofino1(),
        );
        assert!(t1.fits(), "tofino1 report: {t1}");
        let t2 = estimate(
            &dart_program(DartProgramParams::default()),
            &TargetProfile::tofino2(),
        );
        assert!(t2.fits(), "tofino2 report: {t2}");
    }

    #[test]
    fn tofino1_uses_relatively_more_than_tofino2() {
        // Table 1's qualitative shape: the Tofino 1 build is more resource
        // hungry in SRAM/TCAM/logical tables than the Tofino 2 build.
        let t1 = estimate(
            &dart_program(DartProgramParams {
                spans_egress: true,
                ..DartProgramParams::default()
            }),
            &TargetProfile::tofino1(),
        );
        let t2 = estimate(
            &dart_program(DartProgramParams::default()),
            &TargetProfile::tofino2(),
        );
        assert!(t1.sram_pct > t2.sram_pct);
        assert!(t1.tcam_pct > t2.tcam_pct);
        assert!(t1.logical_tables_pct > t2.logical_tables_pct);
    }

    #[test]
    fn oversized_program_does_not_fit() {
        let prog = ProgramSpec::new("huge").with(TableSpec::register("r", 1 << 26, 104, 32));
        let r = estimate(&prog, &TargetProfile::tofino1());
        assert!(!r.fits());
        assert!(r.sram_pct > 100.0);
    }

    #[test]
    fn report_displays_all_rows() {
        let r = estimate(
            &dart_program(DartProgramParams::default()),
            &TargetProfile::tofino2(),
        );
        let s = r.to_string();
        for label in [
            "TCAM",
            "SRAM",
            "Hash Units",
            "Logical Tables",
            "Input Crossbars",
        ] {
            assert!(s.contains(label));
        }
    }
}
