//! A stateful-ALU model: the per-stage register compute unit of a
//! Tofino-like pipeline, with its real constraints.
//!
//! One register access gets exactly:
//!
//! * **two condition units**, each one comparison between {register value,
//!   packet value, constant} — circular (wrapping-signed) or exact;
//! * **predicated updates** for the register value, each guarded by a
//!   truth table over the two condition bits (the hardware's 4-entry
//!   predicate vector), first matching guard wins, no guard = keep;
//! * **one output** forwarded to later stages: the old value, the new
//!   value, or the condition bits.
//!
//! `dart-core` proves (by property test) that the Range Tracker's Fig. 4
//! state machine decomposes into a chain of these units — the §4 claim
//! "we spread the RT ... across 3 component tables, and therefore 3
//! stages" made executable.

/// An operand available to a SALU instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// The register's stored value (before update).
    Reg,
    /// The first packet/metadata input.
    Phv0,
    /// The second packet/metadata input.
    Phv1,
    /// An immediate.
    Const(u32),
}

/// Comparison performed by a condition unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// Exact equality.
    Eq,
    /// Circular (wrapping-signed) `a > b` — the TCP sequence comparison.
    CircGt,
    /// Circular `a >= b`.
    CircGeq,
    /// Unsigned `a < b` (raw compare — wraparound detection needs this).
    RawLt,
}

/// One condition unit: `cmp(a, b)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Condition {
    /// Left operand.
    pub a: Operand,
    /// Right operand.
    pub b: Operand,
    /// Comparison.
    pub cmp: Cmp,
}

/// A guard over the two condition bits: a 4-entry truth table indexed by
/// `(c1 as usize) << 1 | (c0 as usize)` — exactly the hardware predicate
/// vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Guard(pub [bool; 4]);

impl Guard {
    /// Always true.
    pub const ALWAYS: Guard = Guard([true; 4]);

    /// True exactly when condition 0 holds.
    pub fn c0() -> Guard {
        Guard([false, true, false, true])
    }

    /// True exactly when condition 0 fails.
    pub fn not_c0() -> Guard {
        Guard([true, false, true, false])
    }

    /// True exactly when condition 1 holds.
    pub fn c1() -> Guard {
        Guard([false, false, true, true])
    }

    /// True when both conditions hold.
    pub fn c0_and_c1() -> Guard {
        Guard([false, false, false, true])
    }

    /// True when c0 fails and c1 holds.
    pub fn c1_and_not_c0() -> Guard {
        Guard([false, false, true, false])
    }

    /// Evaluate against the two condition bits.
    pub fn eval(&self, c0: bool, c1: bool) -> bool {
        self.0[((c1 as usize) << 1) | c0 as usize]
    }
}

/// One predicated update: when `guard` holds, the register takes `value`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Update {
    /// Truth-table guard.
    pub guard: Guard,
    /// New value operand.
    pub value: Operand,
}

/// What the SALU forwards to later stages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputSel {
    /// The register value before the update.
    OldReg,
    /// The register value after the update.
    NewReg,
    /// The two condition bits, packed as `c1<<1 | c0`.
    Conditions,
}

/// A complete SALU instruction (one register access).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SaluProgram {
    /// Condition unit 0 (`None` = false).
    pub cond0: Option<Condition>,
    /// Condition unit 1 (`None` = false).
    pub cond1: Option<Condition>,
    /// Predicated updates (hardware allows two; first matching wins).
    pub updates: [Option<Update>; 2],
    /// Output selection.
    pub output: OutputSel,
}

/// Result of executing a SALU program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SaluResult {
    /// The selected output.
    pub output: u32,
    /// Condition bit 0.
    pub c0: bool,
    /// Condition bit 1.
    pub c1: bool,
    /// The register value after the access.
    pub new_reg: u32,
}

impl SaluProgram {
    fn operand(reg: u32, phv: [u32; 2], op: Operand) -> u32 {
        match op {
            Operand::Reg => reg,
            Operand::Phv0 => phv[0],
            Operand::Phv1 => phv[1],
            Operand::Const(c) => c,
        }
    }

    fn cond(reg: u32, phv: [u32; 2], c: Option<Condition>) -> bool {
        let Some(c) = c else { return false };
        let a = Self::operand(reg, phv, c.a);
        let b = Self::operand(reg, phv, c.b);
        match c.cmp {
            Cmp::Eq => a == b,
            Cmp::CircGt => (a.wrapping_sub(b) as i32) > 0,
            Cmp::CircGeq => (a.wrapping_sub(b) as i32) >= 0,
            Cmp::RawLt => a < b,
        }
    }

    /// Execute one access against `reg` with packet inputs `phv`.
    pub fn execute(&self, reg: &mut u32, phv: [u32; 2]) -> SaluResult {
        let old = *reg;
        let c0 = Self::cond(old, phv, self.cond0);
        let c1 = Self::cond(old, phv, self.cond1);
        for u in self.updates.iter().flatten() {
            if u.guard.eval(c0, c1) {
                *reg = Self::operand(old, phv, u.value);
                break;
            }
        }
        let output = match self.output {
            OutputSel::OldReg => old,
            OutputSel::NewReg => *reg,
            OutputSel::Conditions => ((c1 as u32) << 1) | c0 as u32,
        };
        SaluResult {
            output,
            c0,
            c1,
            new_reg: *reg,
        }
    }

    /// A read-only program: no conditions, no updates, outputs the value.
    pub fn read() -> SaluProgram {
        SaluProgram {
            cond0: None,
            cond1: None,
            updates: [None, None],
            output: OutputSel::OldReg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_program_changes_nothing() {
        let mut reg = 42;
        let r = SaluProgram::read().execute(&mut reg, [7, 9]);
        assert_eq!(r.output, 42);
        assert_eq!(reg, 42);
        assert!(!r.c0 && !r.c1);
    }

    #[test]
    fn max_register_in_one_access() {
        // The classic "right edge = max(right, eack)" update.
        let max_prog = SaluProgram {
            cond0: Some(Condition {
                a: Operand::Phv0,
                b: Operand::Reg,
                cmp: Cmp::CircGt,
            }),
            cond1: None,
            updates: [
                Some(Update {
                    guard: Guard::c0(),
                    value: Operand::Phv0,
                }),
                None,
            ],
            output: OutputSel::OldReg,
        };
        let mut reg = 100;
        let r = max_prog.execute(&mut reg, [150, 0]);
        assert_eq!(reg, 150);
        assert_eq!(r.output, 100, "old value still observable");
        let r = max_prog.execute(&mut reg, [120, 0]);
        assert_eq!(reg, 150);
        assert!(!r.c0);
        // Circular: a value "beyond" the wrap still wins.
        let mut reg = u32::MAX - 10;
        max_prog.execute(&mut reg, [5, 0]);
        assert_eq!(reg, 5);
    }

    #[test]
    fn first_matching_update_wins() {
        let prog = SaluProgram {
            cond0: Some(Condition {
                a: Operand::Phv0,
                b: Operand::Const(10),
                cmp: Cmp::CircGt,
            }),
            cond1: None,
            updates: [
                Some(Update {
                    guard: Guard::c0(),
                    value: Operand::Const(111),
                }),
                Some(Update {
                    guard: Guard::ALWAYS,
                    value: Operand::Const(222),
                }),
            ],
            output: OutputSel::NewReg,
        };
        let mut reg = 0;
        assert_eq!(prog.execute(&mut reg, [50, 0]).output, 111);
        assert_eq!(prog.execute(&mut reg, [5, 0]).output, 222);
    }

    #[test]
    fn guards_cover_all_condition_combinations() {
        assert!(Guard::ALWAYS.eval(false, false));
        assert!(Guard::c0().eval(true, false));
        assert!(!Guard::c0().eval(false, true));
        assert!(Guard::not_c0().eval(false, true));
        assert!(Guard::c1().eval(false, true));
        assert!(Guard::c0_and_c1().eval(true, true));
        assert!(!Guard::c0_and_c1().eval(true, false));
        assert!(Guard::c1_and_not_c0().eval(false, true));
        assert!(!Guard::c1_and_not_c0().eval(true, true));
    }

    #[test]
    fn conditions_output_packs_bits() {
        let prog = SaluProgram {
            cond0: Some(Condition {
                a: Operand::Phv0,
                b: Operand::Const(0),
                cmp: Cmp::Eq,
            }),
            cond1: Some(Condition {
                a: Operand::Phv1,
                b: Operand::Const(0),
                cmp: Cmp::Eq,
            }),
            updates: [None, None],
            output: OutputSel::Conditions,
        };
        let mut reg = 0;
        assert_eq!(prog.execute(&mut reg, [0, 1]).output, 0b01);
        assert_eq!(prog.execute(&mut reg, [1, 0]).output, 0b10);
        assert_eq!(prog.execute(&mut reg, [0, 0]).output, 0b11);
    }

    #[test]
    fn raw_lt_detects_wraparound() {
        // eack.raw < seq.raw ⇔ the segment crosses zero.
        let wrap = SaluProgram {
            cond0: Some(Condition {
                a: Operand::Phv1, // eack
                b: Operand::Phv0, // seq
                cmp: Cmp::RawLt,
            }),
            cond1: None,
            updates: [None, None],
            output: OutputSel::Conditions,
        };
        let mut reg = 0;
        assert_eq!(wrap.execute(&mut reg, [u32::MAX - 10, 100]).output, 1);
        assert_eq!(wrap.execute(&mut reg, [100, 200]).output, 0);
    }
}
