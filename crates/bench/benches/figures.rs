//! One Criterion bench per paper artifact: times the regeneration of each
//! table/figure at small scale, so `cargo bench` exercises the entire
//! evaluation pipeline end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use dart_analytics::{ChangeDetector, ChangeDetectorConfig, RttDistribution, Verdict};
use dart_bench::{
    run_fig9_variant, run_point, standard_trace, sweep_config, tcptrace_const, Fig9Variant,
    TraceScale,
};
use dart_core::{run_trace, DartConfig, Leg};
use dart_sim::scenario::{interception, AttackConfig};
use dart_switch::{dart_program, estimate, DartProgramParams, TargetProfile};

fn figures(c: &mut Criterion) {
    let scale = TraceScale::Small;
    let trace = standard_trace(scale);
    let (baseline, _) = tcptrace_const(&trace.packets);
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("table1_resources", |b| {
        b.iter(|| {
            let prog = dart_program(DartProgramParams {
                spans_egress: true,
                ..DartProgramParams::default()
            });
            estimate(&prog, &TargetProfile::tofino1()).fits()
        });
    });

    g.bench_function("fig6_internal_leg", |b| {
        b.iter(|| {
            let cfg = DartConfig::default()
                .with_leg(Leg::Internal)
                .with_rt(scale.rt_large())
                .with_pt(scale.pt_fixed() * 8, 1);
            run_trace(cfg, &trace.packets).0.len()
        });
    });

    g.bench_function("fig8_attack_detection", |b| {
        let attack = interception(AttackConfig {
            rounds: 60,
            attack_at: 6_000_000_000,
            ..AttackConfig::default()
        });
        b.iter(|| {
            let (samples, _) = run_trace(DartConfig::default(), &attack.packets);
            let mut det = ChangeDetector::new(ChangeDetectorConfig::default());
            samples
                .iter()
                .filter(|s| matches!(det.offer(s.rtt, s.ts), Verdict::Confirmed { .. }))
                .count()
        });
    });

    g.bench_function("fig9_four_way", |b| {
        b.iter(|| {
            let d = run_fig9_variant(Fig9Variant::DartMinusSyn, &trace.packets);
            let t = run_fig9_variant(Fig9Variant::TcptraceMinusSyn, &trace.packets);
            let mut dist = RttDistribution::from_samples(d.iter().map(|s| s.rtt));
            (t.len(), dist.percentile(99.0))
        });
    });

    g.bench_function("fig11_pt_size_point", |b| {
        b.iter(|| {
            run_point(
                sweep_config(scale, scale.pt_fixed(), 1, 1),
                &trace.packets,
                &baseline,
            )
            .fraction_collected
        });
    });

    g.bench_function("fig12_stage_point", |b| {
        b.iter(|| {
            run_point(
                sweep_config(scale, scale.pt_fixed(), 8, 1),
                &trace.packets,
                &baseline,
            )
            .fraction_collected
        });
    });

    g.bench_function("fig13_recirc_point", |b| {
        b.iter(|| {
            run_point(
                sweep_config(scale, scale.pt_fixed(), 8, 8),
                &trace.packets,
                &baseline,
            )
            .fraction_collected
        });
    });

    g.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
