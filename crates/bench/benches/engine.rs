//! Engine throughput: packets/second through the Dart pipeline in its
//! hardware-shaped and idealized configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dart_bench::{standard_trace, TraceScale};
use dart_core::{run_trace_sharded, DartConfig, DartEngine, RttSample};
use dart_packet::SECOND;
use dart_sim::scenario::{campus, CampusConfig};

fn engine_throughput(c: &mut Criterion) {
    let trace = standard_trace(TraceScale::Small);
    let mut g = c.benchmark_group("engine_throughput");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);

    let configs: Vec<(&str, DartConfig)> = vec![
        ("unlimited", DartConfig::unlimited()),
        (
            "constrained_pt12",
            DartConfig::default().with_rt(1 << 13).with_pt(1 << 12, 1),
        ),
        (
            "constrained_pt8",
            DartConfig::default().with_rt(1 << 13).with_pt(1 << 8, 1),
        ),
        (
            "constrained_8stage",
            DartConfig::default()
                .with_rt(1 << 13)
                .with_pt(1 << 12, 8)
                .with_max_recirc(4),
        ),
    ];
    for (name, cfg) in configs {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut engine = DartEngine::new(*cfg);
                let mut sink: Vec<RttSample> = Vec::new();
                engine.process_trace(trace.packets.iter(), &mut sink);
                sink.len()
            });
        });
    }
    g.finish();
}

/// Sharded vs serial replay. Under `cargo bench` this uses a ~10⁶-packet
/// campus trace (the size where hand-off overhead is amortized and the
/// shard comparison is meaningful); under `cargo test`'s `--test` sweep it
/// drops to the small trace so test runs stay fast.
fn sharded_vs_serial(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let trace = if test_mode {
        standard_trace(TraceScale::Small)
    } else {
        let t = campus(CampusConfig {
            connections: 3_200,
            duration: 60 * SECOND,
            ..CampusConfig::default()
        });
        eprintln!("sharded_vs_serial trace: {} packets", t.len());
        t
    };
    let cfg = DartConfig::default();
    let mut g = c.benchmark_group("sharded_vs_serial");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(5);

    g.bench_function("serial", |b| {
        b.iter(|| {
            let mut engine = DartEngine::new(cfg);
            let mut sink: Vec<RttSample> = Vec::new();
            engine.process_trace(trace.packets.iter(), &mut sink);
            sink.len()
        });
    });
    for shards in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &shards,
            |b, &shards| {
                b.iter(|| run_trace_sharded(cfg, shards, &trace.packets).0.len());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, engine_throughput, sharded_vs_serial);
criterion_main!(benches);
