//! Engine throughput: packets/second through the Dart pipeline in its
//! hardware-shaped and idealized configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dart_bench::{standard_trace, TraceScale};
use dart_core::{DartConfig, DartEngine, RttSample};

fn engine_throughput(c: &mut Criterion) {
    let trace = standard_trace(TraceScale::Small);
    let mut g = c.benchmark_group("engine_throughput");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);

    let configs: Vec<(&str, DartConfig)> = vec![
        ("unlimited", DartConfig::unlimited()),
        (
            "constrained_pt12",
            DartConfig::default().with_rt(1 << 13).with_pt(1 << 12, 1),
        ),
        (
            "constrained_pt8",
            DartConfig::default().with_rt(1 << 13).with_pt(1 << 8, 1),
        ),
        (
            "constrained_8stage",
            DartConfig::default()
                .with_rt(1 << 13)
                .with_pt(1 << 12, 8)
                .with_max_recirc(4),
        ),
    ];
    for (name, cfg) in configs {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut engine = DartEngine::new(*cfg);
                let mut sink: Vec<RttSample> = Vec::new();
                engine.process_trace(trace.packets.iter(), &mut sink);
                sink.len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
