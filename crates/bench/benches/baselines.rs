//! Side-by-side processing cost of Dart and every baseline on the same
//! trace — the software-performance context for §1's "RTT monitoring in
//! software is computationally expensive".

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dart_baselines::{Fridge, FridgeConfig, Strawman, StrawmanConfig, TcpTrace, TcpTraceConfig};
use dart_bench::{standard_trace, TraceScale};
use dart_core::{run_monitor_slice, DartConfig, DartEngine, RttSample};

fn baseline_costs(c: &mut Criterion) {
    let trace = standard_trace(TraceScale::Small);
    let mut g = c.benchmark_group("baselines");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);

    g.bench_function("dart_constrained", |b| {
        b.iter(|| {
            let mut engine =
                DartEngine::new(DartConfig::default().with_rt(1 << 13).with_pt(1 << 12, 1));
            let mut sink: Vec<RttSample> = Vec::new();
            engine.process_trace(trace.packets.iter(), &mut sink);
            sink.len()
        });
    });

    g.bench_function("tcptrace", |b| {
        b.iter(|| {
            let mut tt = TcpTrace::new(TcpTraceConfig::default());
            run_monitor_slice(&mut tt, &trace.packets).0.len()
        });
    });

    g.bench_function("strawman", |b| {
        b.iter(|| {
            let mut sm = Strawman::new(StrawmanConfig {
                slots: 1 << 12,
                ..StrawmanConfig::default()
            });
            run_monitor_slice(&mut sm, &trace.packets).0.len()
        });
    });

    g.bench_function("fridge", |b| {
        b.iter(|| {
            let mut fr = Fridge::new(FridgeConfig {
                slots: 1 << 12,
                ..FridgeConfig::default()
            });
            run_monitor_slice(&mut fr, &trace.packets).0.len()
        });
    });

    g.finish();
}

criterion_group!(benches, baseline_costs);
criterion_main!(benches);
