//! Telemetry overhead: the same serial replay bare vs. with the full
//! `EngineTelemetry` hooks attached (per-shard counters, RTT histogram,
//! recirculation gauges). The <3% overhead budget in DESIGN.md §5d is the
//! `instrumented` / `bare` ratio here.
//!
//! The `staged` row adds the daemon driver's per-stage timing
//! (`StageTimers` around decode/match/flush, exactly as `dartmon serve`
//! runs the loop) on top of the attached hooks — the clock is in the
//! driver, once per *block*, so the row must stay inside the same <3%
//! budget.
//!
//! The `bare` row compiled with `--no-default-features` is the true
//! feature-off baseline; compiled with default features it still measures
//! the engine without hooks attached (the `telemetry` field is `None`, so
//! the hot path pays one untaken branch per sync interval). Run both to
//! separate "feature compiled in" from "hooks attached":
//!
//! ```text
//! cargo bench -p dart-bench --bench telemetry_overhead
//! cargo bench -p dart-bench --bench telemetry_overhead --no-default-features
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dart_bench::{standard_trace, TraceScale};
use dart_core::{run_monitor_slice, DartConfig, DartEngine};

fn telemetry_overhead(c: &mut Criterion) {
    let trace = standard_trace(TraceScale::Small);
    let cfg = DartConfig::default();
    let mut g = c.benchmark_group("telemetry_overhead");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(20);

    g.bench_function("bare", |b| {
        b.iter(|| {
            let mut engine = DartEngine::new(cfg);
            run_monitor_slice(&mut engine, &trace.packets).0.len()
        });
    });

    #[cfg(feature = "telemetry")]
    g.bench_function("instrumented", |b| {
        use dart_core::EngineTelemetry;
        use dart_telemetry::MetricRegistry;
        let registry = MetricRegistry::new();
        b.iter(|| {
            let mut engine = DartEngine::new(cfg);
            engine.attach_telemetry(EngineTelemetry::register(&registry, 0));
            run_monitor_slice(&mut engine, &trace.packets).0.len()
        });
    });

    #[cfg(feature = "telemetry")]
    g.bench_function("staged", |b| {
        use dart_core::{EngineTelemetry, RttMonitor, RttSample, Stage, StageTimers};
        use dart_telemetry::MetricRegistry;
        let registry = MetricRegistry::new();
        let stage = StageTimers::register(&registry);
        b.iter(|| {
            let mut engine = DartEngine::new(cfg);
            engine.attach_telemetry(EngineTelemetry::register(&registry, 0));
            let mut sink: Vec<RttSample> = Vec::new();
            // The same zero-copy block loop `run_monitor` drives (and the
            // daemon mirrors), with the stage clock as the only addition.
            let mut blocks = trace.packets.chunks(dart_core::DEFAULT_BLOCK_PKTS);
            while let Some(block) = stage.time(Stage::Decode, || blocks.next()) {
                stage.time(Stage::Match, || engine.on_batch(block, &mut sink));
            }
            stage.time(Stage::Flush, || RttMonitor::flush(&mut engine, &mut sink));
            sink.len()
        });
    });

    g.finish();
}

criterion_group!(benches, telemetry_overhead);
criterion_main!(benches);
