//! Batch pipeline vs. per-packet hot path: the same serial replay driven
//! packet-by-packet (`DartEngine::process`) and through the SoA batch
//! pipeline (`process_batch`) at block sizes 32, 256, and 1024. The
//! speedup targeted by DESIGN.md §5f is the `batch/*` / `per_packet`
//! ratio here; `BENCH_throughput.json` records the full-trace numbers.
//!
//! ```text
//! cargo bench -p dart-bench --bench batch_pipeline
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dart_bench::{standard_trace, TraceScale};
use dart_core::{DartConfig, DartEngine, RttSample};

const BLOCK_SIZES: [usize; 3] = [32, 256, 1024];

fn batch_pipeline(c: &mut Criterion) {
    let trace = standard_trace(TraceScale::Small);
    let cfg = DartConfig::default();
    let mut g = c.benchmark_group("batch_pipeline");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(20);

    g.bench_function("per_packet", |b| {
        b.iter(|| {
            let mut engine = DartEngine::new(cfg);
            let mut samples: Vec<RttSample> = Vec::new();
            for pkt in &trace.packets {
                engine.process(pkt, &mut samples);
            }
            engine.flush();
            samples.len()
        });
    });

    for bs in BLOCK_SIZES {
        g.bench_function(BenchmarkId::new("batch", bs), |b| {
            b.iter(|| {
                let mut engine = DartEngine::new(cfg);
                let mut samples: Vec<RttSample> = Vec::new();
                for chunk in trace.packets.chunks(bs) {
                    engine.process_batch(chunk, &mut samples);
                }
                engine.flush();
                samples.len()
            });
        });
    }

    g.finish();
}

criterion_group!(benches, batch_pipeline);
criterion_main!(benches);
