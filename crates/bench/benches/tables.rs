//! Micro-benchmarks of the two core data structures: Range Tracker updates
//! and Packet Tracker insert/match, per operation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dart_core::{PacketTracker, PtMode, RangeTracker, RtMode};
use dart_packet::{FlowKey, SeqNum, SignatureWidth};

fn flows(n: u32) -> Vec<FlowKey> {
    (0..n)
        .map(|i| {
            FlowKey::from_raw(
                0x0a00_0000 + i,
                40_000 + (i % 20_000) as u16,
                0x5db8_d822,
                443,
            )
        })
        .collect()
}

fn rt_ops(c: &mut Criterion) {
    let fl = flows(4096);
    let mut g = c.benchmark_group("range_tracker");
    g.throughput(Throughput::Elements(fl.len() as u64 * 3));
    for (name, mode) in [
        ("constrained_64k", RtMode::Constrained { slots: 1 << 16 }),
        ("unlimited", RtMode::Unlimited),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut rt = RangeTracker::new(mode, SignatureWidth::W32);
                let mut acc = 0u64;
                for (i, f) in fl.iter().enumerate() {
                    let s = (i as u32) * 1000;
                    acc += rt.on_seq(f, SeqNum(s), SeqNum(s + 500)).track() as u64;
                    acc += rt.on_seq(f, SeqNum(s + 500), SeqNum(s + 1000)).track() as u64;
                    acc += rt.on_ack(f, SeqNum(s + 500), true).match_pt() as u64;
                }
                acc
            });
        });
    }
    g.finish();
}

fn pt_ops(c: &mut Criterion) {
    let fl = flows(4096);
    let sigs: Vec<_> = fl
        .iter()
        .map(|f| f.signature(SignatureWidth::W32))
        .collect();
    let mut g = c.benchmark_group("packet_tracker");
    g.throughput(Throughput::Elements(fl.len() as u64 * 2));
    for (name, mode) in [
        (
            "constrained_1stage",
            PtMode::Constrained {
                slots: 1 << 14,
                stages: 1,
            },
        ),
        (
            "constrained_8stage",
            PtMode::Constrained {
                slots: 1 << 14,
                stages: 8,
            },
        ),
        ("unlimited", PtMode::Unlimited),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut pt = PacketTracker::new(mode);
                let mut hits = 0u64;
                for ((f, sig), i) in fl.iter().zip(&sigs).zip(0u64..) {
                    pt.insert_new(f, *sig, SeqNum(1000), i);
                }
                for (f, sig) in fl.iter().zip(&sigs) {
                    hits += pt.match_ack(f, *sig, SeqNum(1000)).is_some() as u64;
                }
                hits
            });
        });
    }
    g.finish();
}

criterion_group!(benches, rt_ops, pt_ops);
criterion_main!(benches);
