//! Ablation benches for the design choices DESIGN.md calls out: each
//! compares sample yield/accuracy with a mechanism enabled vs disabled,
//! reporting via Criterion timing plus eprintln'd quality metrics on the
//! first iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use dart_analytics::min_discard_pair;
use dart_baselines::{Strawman, StrawmanConfig};
use dart_bench::{standard_trace, tcptrace_const, AccuracyReport, TraceScale};
use dart_core::{run_monitor_slice, DartConfig, DartEngine, SynPolicy};
use dart_packet::{SignatureWidth, MILLISECOND, SECOND};
use std::sync::Once;

fn quality_once(label: &str, once: &Once, f: impl FnOnce() -> String) {
    let msg = f();
    once.call_once(|| eprintln!("[ablation:{label}] {msg}"));
}

/// Lazy eviction + recirculation (Dart) vs timeout / evict-on-collision
/// (strawman policies) at the same table size.
fn ablation_eviction(c: &mut Criterion) {
    let trace = standard_trace(TraceScale::Small);
    let (baseline, _) = tcptrace_const(&trace.packets);
    let slots = 1 << 8;
    let mut g = c.benchmark_group("ablation_eviction");
    g.sample_size(10);

    static ONCE_A: Once = Once::new();
    g.bench_function("dart_lazy_recirc", |b| {
        b.iter(|| {
            let cfg = DartConfig::default()
                .with_rt(1 << 13)
                .with_pt(slots, 1)
                .with_max_recirc(4);
            let (samples, stats) = dart_core::run_trace(cfg, &trace.packets);
            quality_once("eviction", &ONCE_A, || {
                AccuracyReport::compare(&baseline, &samples, &stats).row("dart")
            });
            samples.len()
        });
    });

    for (name, timeout, evict) in [
        ("strawman_timeout", Some(250 * MILLISECOND), false),
        ("strawman_evict", None, true),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut sm = Strawman::new(StrawmanConfig {
                    slots,
                    timeout,
                    evict_on_collision: evict,
                    ..StrawmanConfig::default()
                });
                run_monitor_slice(&mut sm, &trace.packets).0.len()
            });
        });
    }
    g.finish();
}

/// The Range Tracker's contribution: Dart with the RT in front vs the
/// strawman tracking everything (ambiguous samples included).
fn ablation_rt(c: &mut Criterion) {
    let trace = standard_trace(TraceScale::Small);
    let mut g = c.benchmark_group("ablation_range_tracker");
    g.sample_size(10);
    g.bench_function("with_rt", |b| {
        b.iter(|| {
            let cfg = DartConfig::default().with_rt(1 << 13).with_pt(1 << 12, 1);
            dart_core::run_trace(cfg, &trace.packets).0.len()
        });
    });
    g.bench_function("without_rt_strawman", |b| {
        b.iter(|| {
            let mut sm = Strawman::new(StrawmanConfig {
                slots: 1 << 12,
                timeout: None,
                ..StrawmanConfig::default()
            });
            run_monitor_slice(&mut sm, &trace.packets).0.len()
        });
    });
    g.finish();
}

/// Preemptive discard (§3.3): min-filter-aware recirculation vs
/// recirculate-everything, recirculation volume compared.
fn ablation_discard(c: &mut Criterion) {
    let trace = standard_trace(TraceScale::Small);
    let mut g = c.benchmark_group("ablation_discard");
    g.sample_size(10);
    static ONCE_D: Once = Once::new();
    g.bench_function("discard_filter", |b| {
        b.iter(|| {
            let cfg = DartConfig::default()
                .with_rt(1 << 13)
                .with_pt(1 << 7, 1)
                .with_max_recirc(4);
            let (sink, filter) = min_discard_pair(SECOND, Vec::new());
            let mut engine = DartEngine::with_filter(cfg, Box::new(filter));
            let mut sink = sink;
            for p in &trace.packets {
                engine.process(p, &mut sink);
            }
            engine.flush();
            quality_once("discard", &ONCE_D, || {
                format!(
                    "filtered={} issued={}",
                    engine.stats().recirc_filtered,
                    engine.stats().recirc_issued
                )
            });
            engine.stats().recirc_issued
        });
    });
    g.bench_function("recirculate_all", |b| {
        b.iter(|| {
            let cfg = DartConfig::default()
                .with_rt(1 << 13)
                .with_pt(1 << 7, 1)
                .with_max_recirc(4);
            let (_, stats) = dart_core::run_trace(cfg, &trace.packets);
            stats.recirc_issued
        });
    });
    g.finish();
}

/// Flow-signature width (§4): shorter signatures risk false matches,
/// longer ones spend SRAM; compare sample counts across widths.
fn ablation_sig_width(c: &mut Criterion) {
    let trace = standard_trace(TraceScale::Small);
    let mut g = c.benchmark_group("ablation_sig_width");
    g.sample_size(10);
    for (name, width) in [
        ("w16", SignatureWidth::W16),
        ("w32", SignatureWidth::W32),
        ("w64", SignatureWidth::W64),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = DartConfig::default().with_rt(1 << 13).with_pt(1 << 12, 1);
                cfg.sig_width = width;
                dart_core::run_trace(cfg, &trace.packets).0.len()
            });
        });
    }
    g.finish();
}

/// SYN policy (Fig. 10 in bench form).
fn ablation_syn(c: &mut Criterion) {
    let trace = standard_trace(TraceScale::Small);
    let mut g = c.benchmark_group("ablation_syn_policy");
    g.sample_size(10);
    for (name, policy) in [("skip", SynPolicy::Skip), ("include", SynPolicy::Include)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = DartConfig::unlimited().with_syn(policy);
                dart_core::run_trace(cfg, &trace.packets).0.len()
            });
        });
    }
    g.finish();
}

/// §7 victim cache: recirculations saved vs samples gained per cache size.
fn ablation_victim_cache(c: &mut Criterion) {
    let trace = standard_trace(TraceScale::Small);
    let (baseline, _) = tcptrace_const(&trace.packets);
    let mut g = c.benchmark_group("ablation_victim_cache");
    g.sample_size(10);
    static ONCE_V: Once = Once::new();
    for cache in [0usize, 16, 64, 256] {
        g.bench_function(format!("cache_{cache}"), |b| {
            b.iter(|| {
                let cfg = DartConfig::default()
                    .with_rt(1 << 13)
                    .with_pt(1 << 7, 1)
                    .with_victim_cache(cache)
                    .with_max_recirc(2);
                let (samples, stats) = dart_core::run_trace(cfg, &trace.packets);
                if cache == 256 {
                    quality_once("victim_cache", &ONCE_V, || {
                        format!(
                            "cache=256: {} | hits={} recirc={}",
                            AccuracyReport::compare(&baseline, &samples, &stats).row("vc256"),
                            stats.victim_cache_hits,
                            stats.recirc_issued
                        )
                    });
                }
                samples.len()
            });
        });
    }
    g.finish();
}

/// §7 RT copy: recirculation-free operation vs the accuracy cost of the
/// copy's sync lag.
fn ablation_rt_copy(c: &mut Criterion) {
    let trace = standard_trace(TraceScale::Small);
    let (baseline, _) = tcptrace_const(&trace.packets);
    let mut g = c.benchmark_group("ablation_rt_copy");
    g.sample_size(10);
    static ONCE_RC: Once = Once::new();
    let base_cfg = || {
        DartConfig::default()
            .with_rt(1 << 13)
            .with_pt(1 << 7, 1)
            .with_max_recirc(2)
    };
    g.bench_function("recirculation", |b| {
        b.iter(|| dart_core::run_trace(base_cfg(), &trace.packets).0.len());
    });
    for sync_us in [10u64, 1000, 100_000] {
        g.bench_function(format!("rt_copy_{sync_us}us"), |b| {
            b.iter(|| {
                let cfg = base_cfg().with_rt_copy(sync_us * 1_000);
                let (samples, stats) = dart_core::run_trace(cfg, &trace.packets);
                if sync_us == 100_000 {
                    quality_once("rt_copy", &ONCE_RC, || {
                        format!(
                            "sync=100ms: {} | reinserted={} dropped={} recirc={}",
                            AccuracyReport::compare(&baseline, &samples, &stats).row("copy"),
                            stats.rt_copy_reinserted,
                            stats.rt_copy_dropped,
                            stats.recirc_issued
                        )
                    });
                }
                samples.len()
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_eviction,
    ablation_rt,
    ablation_discard,
    ablation_sig_width,
    ablation_syn,
    ablation_victim_cache,
    ablation_rt_copy
);
criterion_main!(benches);
