//! Supervision overhead: what the fault-tolerant sharded runtime costs on
//! the healthy path. Every row replays the same trace with zero injected
//! faults, so the differences are pure supervision machinery — the
//! per-batch `catch_unwind`, the watchdog's `try_send` loop, the health
//! bookkeeping — plus, for the `hooked` row, one dynamic call per packet
//! through an installed no-op [`PacketHook`] (the chaos-injection seam).
//!
//! The `serial` row is the un-sharded engine; `sharded4/*` rows run four
//! shards under each [`FailurePolicy`]. Policies only diverge *after* a
//! failure, so on this healthy trace they should be within noise of each
//! other — a spread here means the policy dispatch leaked onto the hot
//! path.
//!
//! ```text
//! cargo bench -p dart-bench --bench supervision
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dart_bench::{standard_trace, TraceScale};
use dart_core::{
    run_monitor_slice, DartConfig, DartEngine, FailurePolicy, PacketHook, ShardedConfig,
    ShardedMonitor,
};
use std::sync::Arc;

fn run_sharded(
    cfg: ShardedConfig,
    hook: Option<PacketHook>,
    packets: &[dart_packet::PacketMeta],
) -> usize {
    let mut monitor = match hook {
        Some(hook) => ShardedMonitor::with_packet_hook(cfg, hook),
        None => ShardedMonitor::new(cfg),
    };
    for p in packets {
        monitor.feed(p);
    }
    monitor.into_run().samples.len()
}

fn supervision_overhead(c: &mut Criterion) {
    let trace = standard_trace(TraceScale::Small);
    let cfg = DartConfig::default();
    let mut g = c.benchmark_group("supervision_overhead");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(20);

    g.bench_function("serial", |b| {
        b.iter(|| {
            let mut engine = DartEngine::new(cfg);
            run_monitor_slice(&mut engine, &trace.packets).0.len()
        });
    });

    for policy in [
        FailurePolicy::FailFast,
        FailurePolicy::RestartShard,
        FailurePolicy::ShedLoad,
    ] {
        g.bench_function(format!("sharded4/{policy}"), |b| {
            b.iter(|| {
                let sharded = ShardedConfig::new(cfg, 4).with_policy(policy);
                run_sharded(sharded, None, &trace.packets)
            });
        });
    }

    g.bench_function("sharded4/hooked", |b| {
        b.iter(|| {
            let sharded = ShardedConfig::new(cfg, 4).with_policy(FailurePolicy::FailFast);
            let noop: PacketHook = Arc::new(|_, _| {});
            run_sharded(sharded, Some(noop), &trace.packets)
        });
    });

    g.finish();
}

criterion_group!(benches, supervision_overhead);
criterion_main!(benches);
