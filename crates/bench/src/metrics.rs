//! The §6.2 evaluation metrics: RTT collection error at key percentiles,
//! fraction of RTT samples collected, and recirculations per packet.

use dart_analytics::RttDistribution;
use dart_core::{EngineStats, RttSample};

/// One configuration's accuracy + overhead, as plotted in Figs. 11–13.
#[derive(Clone, Copy, Debug)]
pub struct AccuracyReport {
    /// Error at the 50th percentile (positive = Dart underestimates).
    pub err_p50: f64,
    /// Error at the 95th percentile.
    pub err_p95: f64,
    /// Error at the 99th percentile.
    pub err_p99: f64,
    /// Signed worst-case error over percentiles 5..=95.
    pub err_max_5_95: f64,
    /// Dart's sample count as a fraction of the baseline's (0..=1+).
    pub fraction_collected: f64,
    /// Recirculations incurred per packet processed.
    pub recirc_per_packet: f64,
    /// Raw Dart sample count.
    pub dart_samples: u64,
    /// Raw baseline sample count.
    pub baseline_samples: u64,
}

impl AccuracyReport {
    /// Compare Dart's output against a baseline sample set.
    pub fn compare(
        baseline: &[RttSample],
        dart: &[RttSample],
        stats: &EngineStats,
    ) -> AccuracyReport {
        let mut base = RttDistribution::from_samples(baseline.iter().map(|s| s.rtt));
        let mut d = RttDistribution::from_samples(dart.iter().map(|s| s.rtt));
        let err = |p: f64, base: &mut RttDistribution, d: &mut RttDistribution| {
            dart_analytics::collection_error_at(base, d, p).unwrap_or(0.0)
        };
        AccuracyReport {
            err_p50: err(50.0, &mut base, &mut d),
            err_p95: err(95.0, &mut base, &mut d),
            err_p99: err(99.0, &mut base, &mut d),
            err_max_5_95: dart_analytics::max_error_5_to_95(&mut base, &mut d).unwrap_or(0.0),
            fraction_collected: if baseline.is_empty() {
                0.0
            } else {
                dart.len() as f64 / baseline.len() as f64
            },
            recirc_per_packet: stats.recirc_per_packet(),
            dart_samples: dart.len() as u64,
            baseline_samples: baseline.len() as u64,
        }
    }

    /// Format as a fixed-width row: `label err50 err95 err99 errMax frac recirc`.
    pub fn row(&self, label: &str) -> String {
        format!(
            "{label:>12} | {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}% | {:>7.2}% | {:>6.3}",
            self.err_p50 * 100.0,
            self.err_p95 * 100.0,
            self.err_p99 * 100.0,
            self.err_max_5_95 * 100.0,
            self.fraction_collected * 100.0,
            self.recirc_per_packet,
        )
    }

    /// Header matching [`AccuracyReport::row`].
    pub fn header() -> String {
        format!(
            "{:>12} | {:>8} {:>8} {:>8} {:>8} | {:>8} | {:>6}",
            "config", "err p50", "err p95", "err p99", "err max", "frac", "rec/pkt"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{FlowKey, SeqNum};

    fn samples(rtts: &[u64]) -> Vec<RttSample> {
        rtts.iter()
            .map(|&r| RttSample::new(FlowKey::from_raw(1, 2, 3, 4), SeqNum(1), r, 0))
            .collect()
    }

    #[test]
    fn identical_sets_score_perfectly() {
        let base = samples(&[10, 20, 30, 40]);
        let stats = EngineStats::default();
        let r = AccuracyReport::compare(&base, &base, &stats);
        assert_eq!(r.err_p50, 0.0);
        assert_eq!(r.fraction_collected, 1.0);
        assert_eq!(r.recirc_per_packet, 0.0);
    }

    #[test]
    fn missing_samples_lower_fraction() {
        let base = samples(&[10, 20, 30, 40]);
        let dart = samples(&[10, 20]);
        let r = AccuracyReport::compare(&base, &dart, &EngineStats::default());
        assert!((r.fraction_collected - 0.5).abs() < 1e-12);
    }

    #[test]
    fn row_and_header_align() {
        let base = samples(&[10, 20]);
        let r = AccuracyReport::compare(&base, &base, &EngineStats::default());
        // Both contain the same number of column separators.
        assert_eq!(
            r.row("x").matches('|').count(),
            AccuracyReport::header().matches('|').count()
        );
    }
}
