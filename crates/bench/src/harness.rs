//! Shared experiment plumbing: standard traces, standard runs, and the
//! scaled sweep grids.
//!
//! The paper's trace is 135.78M packets over 15 minutes; the default
//! harness trace is ~50–100× smaller (set `DART_SCALE` or use
//! [`TraceScale`]), so table-size sweeps are shifted left by a matching
//! number of doublings. EXPERIMENTS.md records the mapping per figure.

use crate::metrics::AccuracyReport;
use dart_baselines::EngineRegistry;
use dart_core::{run_monitor_slice, DartConfig, EngineStats, RttSample, SynPolicy};
use dart_packet::{PacketMeta, SECOND};
use dart_sim::scenario::{campus, CampusConfig, GeneratedTrace};

/// Harness trace sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceScale {
    /// ~50k packets: unit-test sized, seconds per sweep.
    Small,
    /// ~0.9M packets: the default for figure regeneration.
    Default,
    /// ~2.3M packets: closer-to-paper pressure, minutes per sweep.
    Large,
}

impl TraceScale {
    /// Read from the `DART_SCALE` environment variable
    /// (`small`/`default`/`large`).
    pub fn from_env() -> TraceScale {
        match std::env::var("DART_SCALE").as_deref() {
            Ok("small") => TraceScale::Small,
            Ok("large") => TraceScale::Large,
            _ => TraceScale::Default,
        }
    }

    /// Connection count for this scale.
    pub fn connections(self) -> usize {
        match self {
            TraceScale::Small => 500,
            TraceScale::Default => 8_000,
            TraceScale::Large => 20_000,
        }
    }

    /// Trace duration for this scale.
    pub fn duration(self) -> u64 {
        match self {
            TraceScale::Small => 10 * SECOND,
            TraceScale::Default => 60 * SECOND,
            TraceScale::Large => 120 * SECOND,
        }
    }

    /// The PT-size sweep grid (log2 sizes), shifted to where this scale's
    /// pressure lives (the paper sweeps 2^10..2^20 on a 135M-packet trace).
    pub fn pt_sweep_log2(self) -> std::ops::RangeInclusive<u32> {
        match self {
            TraceScale::Small => 4..=12,
            TraceScale::Default => 6..=16,
            TraceScale::Large => 8..=18,
        }
    }

    /// The fixed PT size used by the stage/recirculation sweeps,
    /// corresponding to the paper's 2^17 choice.
    pub fn pt_fixed(self) -> usize {
        match self {
            TraceScale::Small => 1 << 6,
            TraceScale::Default => 1 << 9,
            TraceScale::Large => 1 << 11,
        }
    }

    /// An RT size comfortably larger than the flow count ("large enough to
    /// accommodate all flows", §6.2).
    pub fn rt_large(self) -> usize {
        (self.connections() * 4).next_power_of_two()
    }
}

/// Parse one shard-count value. `source` names where the value came from
/// (`--shards` or `DART_SHARDS`) so both paths report identical,
/// attributable errors.
fn parse_shard_count(source: &str, v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Err(_) => Err(format!(
            "{source}: cannot parse {v:?} (want an integer ≥ 1)"
        )),
        Ok(0) => Err(format!("{source}: shard count must be at least 1")),
        Ok(n) => Ok(n),
    }
}

/// Shard count from the `DART_SHARDS` environment variable alone; unset
/// means 1 (the serial engine).
pub fn shards_from_env_var() -> Result<usize, String> {
    match std::env::var("DART_SHARDS") {
        Ok(v) => parse_shard_count("DART_SHARDS", &v),
        Err(_) => Ok(1),
    }
}

/// Shard count for sharded replays: `--shards N` in `args` wins, then the
/// `DART_SHARDS` environment variable, then 1 (the serial engine).
pub fn shards_from(args: &[String]) -> Result<usize, String> {
    if let Some(i) = args.iter().position(|a| a == "--shards") {
        let v = args
            .get(i + 1)
            .ok_or_else(|| "--shards needs a value".to_string())?;
        return parse_shard_count("--shards", v);
    }
    shards_from_env_var()
}

/// Shard count from the process's own arguments and environment.
pub fn shards_from_env() -> Result<usize, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    shards_from(&args)
}

/// Generate the standard campus trace for a scale (deterministic).
pub fn standard_trace(scale: TraceScale) -> GeneratedTrace {
    campus(CampusConfig {
        connections: scale.connections(),
        duration: scale.duration(),
        ..CampusConfig::default()
    })
}

/// Resolve `name` from the standard [`EngineRegistry`] and stream `packets`
/// through it. Every harness run goes through this one path, so a newly
/// registered engine is immediately sweepable. Panics on an unknown name —
/// harness callers pass literals or validated CLI input.
pub fn run_engine(
    name: &str,
    cfg: DartConfig,
    packets: &[PacketMeta],
) -> (Vec<RttSample>, EngineStats) {
    let mut built = EngineRegistry::standard()
        .build(name, &cfg)
        .unwrap_or_else(|e| panic!("harness: {e}"));
    run_monitor_slice(built.monitor.as_mut(), packets)
}

/// The §6.2 baseline: `tcptrace_const` = Dart with unlimited, fully
/// associative tables and `-SYN`.
pub fn tcptrace_const(packets: &[PacketMeta]) -> (Vec<RttSample>, EngineStats) {
    run_engine("dart", DartConfig::unlimited(), packets)
}

/// A hardware-shaped Dart config for sweeps: large RT, constrained PT.
pub fn sweep_config(
    scale: TraceScale,
    pt_slots: usize,
    stages: usize,
    max_recirc: u32,
) -> DartConfig {
    DartConfig::default()
        .with_rt(scale.rt_large())
        .with_pt(pt_slots, stages)
        .with_max_recirc(max_recirc)
}

/// Run one sweep point and score it against the baseline.
///
/// Honors the `DART_SHARDS` environment knob (like `DART_SCALE` for trace
/// sizing), so every figure runner can replay sharded; unset means the
/// serial engine. Panics on an unparseable value — a misconfigured sweep
/// should stop, not silently fall back to serial.
pub fn run_point(
    cfg: DartConfig,
    packets: &[PacketMeta],
    baseline: &[RttSample],
) -> AccuracyReport {
    let shards = shards_from_env_var().unwrap_or_else(|e| panic!("{e}"));
    run_point_sharded(cfg, shards, packets, baseline)
}

/// [`run_point`] through the flow-sharded engine (`shards == 1` is the
/// serial engine; see `dart_core::sharded` for the fidelity contract).
pub fn run_point_sharded(
    cfg: DartConfig,
    shards: usize,
    packets: &[PacketMeta],
    baseline: &[RttSample],
) -> AccuracyReport {
    let name = if shards <= 1 {
        "dart".to_string()
    } else {
        format!("dart-sharded-{shards}")
    };
    let (samples, stats) = run_engine(&name, cfg, packets);
    AccuracyReport::compare(baseline, &samples, &stats)
}

/// Variants of Fig. 9's four-way comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig9Variant {
    /// tcptrace with handshake RTTs.
    TcptracePlusSyn,
    /// tcptrace without handshake RTTs.
    TcptraceMinusSyn,
    /// Dart (unlimited memory) with handshake RTTs.
    DartPlusSyn,
    /// Dart (unlimited memory) without handshake RTTs.
    DartMinusSyn,
}

/// Run one Fig. 9 variant over a trace. The tcptrace variants resolve the
/// registry's `tcptrace-quirk` entry, matching real tcptrace's quadrant
/// double-sample behaviour; the Dart variants are `dart` with unlimited
/// tables.
pub fn run_fig9_variant(v: Fig9Variant, packets: &[PacketMeta]) -> Vec<RttSample> {
    let (name, syn) = match v {
        Fig9Variant::DartPlusSyn => ("dart", SynPolicy::Include),
        Fig9Variant::DartMinusSyn => ("dart", SynPolicy::Skip),
        Fig9Variant::TcptracePlusSyn => ("tcptrace-quirk", SynPolicy::Include),
        Fig9Variant::TcptraceMinusSyn => ("tcptrace-quirk", SynPolicy::Skip),
    };
    run_engine(name, DartConfig::unlimited().with_syn(syn), packets).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(TraceScale::Small.connections() < TraceScale::Default.connections());
        assert!(TraceScale::Default.connections() < TraceScale::Large.connections());
        assert!(TraceScale::Small.pt_fixed() < TraceScale::Large.pt_fixed());
    }

    #[test]
    fn small_trace_pipeline_runs() {
        let t = standard_trace(TraceScale::Small);
        assert!(t.len() > 10_000);
        let (baseline, _) = tcptrace_const(&t.packets);
        assert!(!baseline.is_empty());
        let cfg = sweep_config(TraceScale::Small, 1 << 10, 1, 1);
        let rep = run_point(cfg, &t.packets, &baseline);
        assert!(rep.fraction_collected > 0.3);
        assert!(rep.fraction_collected <= 1.05);
    }

    #[test]
    fn shards_flag_wins_over_default() {
        let args: Vec<String> = vec!["--shards".into(), "4".into()];
        assert_eq!(shards_from(&args).unwrap(), 4);
        assert!(shards_from(&["--shards".to_string()]).is_err());
        assert!(shards_from(&["--shards".to_string(), "0".to_string()]).is_err());
        assert!(shards_from(&["--shards".to_string(), "x".to_string()]).is_err());
        // No flag and no env (this test does not set DART_SHARDS): serial.
        if std::env::var("DART_SHARDS").is_err() {
            assert_eq!(shards_from(&[]).unwrap(), 1);
            assert_eq!(shards_from_env_var().unwrap(), 1);
        }
    }

    #[test]
    fn shard_count_errors_are_uniform_and_attributed() {
        // Both the flag and env paths go through the same parser, so the
        // wording differs only in the attributed source.
        let flag_err = parse_shard_count("--shards", "abc").unwrap_err();
        let env_err = parse_shard_count("DART_SHARDS", "abc").unwrap_err();
        assert_eq!(
            flag_err,
            "--shards: cannot parse \"abc\" (want an integer ≥ 1)"
        );
        assert_eq!(
            env_err,
            "DART_SHARDS: cannot parse \"abc\" (want an integer ≥ 1)"
        );
        assert_eq!(
            parse_shard_count("--shards", "0").unwrap_err(),
            "--shards: shard count must be at least 1"
        );
        assert_eq!(
            parse_shard_count("DART_SHARDS", "0").unwrap_err(),
            "DART_SHARDS: shard count must be at least 1"
        );
        assert_eq!(parse_shard_count("--shards", "8").unwrap(), 8);
    }

    #[test]
    fn sharded_point_matches_serial_point() {
        let t = standard_trace(TraceScale::Small);
        let (baseline, _) = tcptrace_const(&t.packets);
        let cfg = sweep_config(TraceScale::Small, 1 << 10, 1, 1);
        let serial = run_point(cfg, &t.packets, &baseline);
        let sharded = run_point_sharded(cfg, 4, &t.packets, &baseline);
        // Cross-flow collision patterns differ with shard count, but the
        // overall accuracy must stay in the same regime.
        assert!((serial.fraction_collected - sharded.fraction_collected).abs() < 0.1);
    }

    #[test]
    fn fig9_variants_are_distinct() {
        let t = standard_trace(TraceScale::Small);
        let tc_plus = run_fig9_variant(Fig9Variant::TcptracePlusSyn, &t.packets);
        let tc_minus = run_fig9_variant(Fig9Variant::TcptraceMinusSyn, &t.packets);
        let dart_plus = run_fig9_variant(Fig9Variant::DartPlusSyn, &t.packets);
        let dart_minus = run_fig9_variant(Fig9Variant::DartMinusSyn, &t.packets);
        // +SYN collects handshake samples on top of -SYN.
        assert!(tc_plus.len() > tc_minus.len());
        assert!(dart_plus.len() > dart_minus.len());
        // tcptrace collects at least as many samples as Dart (Fig. 9a).
        assert!(tc_plus.len() >= dart_plus.len());
        assert!(tc_minus.len() >= dart_minus.len());
    }
}
