//! Shared experiment plumbing: standard traces, standard runs, and the
//! scaled sweep grids.
//!
//! The paper's trace is 135.78M packets over 15 minutes; the default
//! harness trace is ~50–100× smaller (set `DART_SCALE` or use
//! [`TraceScale`]), so table-size sweeps are shifted left by a matching
//! number of doublings. EXPERIMENTS.md records the mapping per figure.

use crate::metrics::AccuracyReport;
use dart_core::{run_trace, DartConfig, EngineStats, Leg, RttSample, SynPolicy};
use dart_packet::{PacketMeta, SECOND};
use dart_sim::scenario::{campus, CampusConfig, GeneratedTrace};

/// Harness trace sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceScale {
    /// ~50k packets: unit-test sized, seconds per sweep.
    Small,
    /// ~0.9M packets: the default for figure regeneration.
    Default,
    /// ~2.3M packets: closer-to-paper pressure, minutes per sweep.
    Large,
}

impl TraceScale {
    /// Read from the `DART_SCALE` environment variable
    /// (`small`/`default`/`large`).
    pub fn from_env() -> TraceScale {
        match std::env::var("DART_SCALE").as_deref() {
            Ok("small") => TraceScale::Small,
            Ok("large") => TraceScale::Large,
            _ => TraceScale::Default,
        }
    }

    /// Connection count for this scale.
    pub fn connections(self) -> usize {
        match self {
            TraceScale::Small => 500,
            TraceScale::Default => 8_000,
            TraceScale::Large => 20_000,
        }
    }

    /// Trace duration for this scale.
    pub fn duration(self) -> u64 {
        match self {
            TraceScale::Small => 10 * SECOND,
            TraceScale::Default => 60 * SECOND,
            TraceScale::Large => 120 * SECOND,
        }
    }

    /// The PT-size sweep grid (log2 sizes), shifted to where this scale's
    /// pressure lives (the paper sweeps 2^10..2^20 on a 135M-packet trace).
    pub fn pt_sweep_log2(self) -> std::ops::RangeInclusive<u32> {
        match self {
            TraceScale::Small => 4..=12,
            TraceScale::Default => 6..=16,
            TraceScale::Large => 8..=18,
        }
    }

    /// The fixed PT size used by the stage/recirculation sweeps,
    /// corresponding to the paper's 2^17 choice.
    pub fn pt_fixed(self) -> usize {
        match self {
            TraceScale::Small => 1 << 6,
            TraceScale::Default => 1 << 9,
            TraceScale::Large => 1 << 11,
        }
    }

    /// An RT size comfortably larger than the flow count ("large enough to
    /// accommodate all flows", §6.2).
    pub fn rt_large(self) -> usize {
        (self.connections() * 4).next_power_of_two()
    }
}

/// Generate the standard campus trace for a scale (deterministic).
pub fn standard_trace(scale: TraceScale) -> GeneratedTrace {
    campus(CampusConfig {
        connections: scale.connections(),
        duration: scale.duration(),
        ..CampusConfig::default()
    })
}

/// The §6.2 baseline: `tcptrace_const` = Dart with unlimited, fully
/// associative tables and `-SYN`.
pub fn tcptrace_const(packets: &[PacketMeta]) -> (Vec<RttSample>, EngineStats) {
    run_trace(DartConfig::unlimited(), packets)
}

/// A hardware-shaped Dart config for sweeps: large RT, constrained PT.
pub fn sweep_config(
    scale: TraceScale,
    pt_slots: usize,
    stages: usize,
    max_recirc: u32,
) -> DartConfig {
    DartConfig::default()
        .with_rt(scale.rt_large())
        .with_pt(pt_slots, stages)
        .with_max_recirc(max_recirc)
}

/// Run one sweep point and score it against the baseline.
pub fn run_point(
    cfg: DartConfig,
    packets: &[PacketMeta],
    baseline: &[RttSample],
) -> AccuracyReport {
    let (samples, stats) = run_trace(cfg, packets);
    AccuracyReport::compare(baseline, &samples, &stats)
}

/// Variants of Fig. 9's four-way comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig9Variant {
    /// tcptrace with handshake RTTs.
    TcptracePlusSyn,
    /// tcptrace without handshake RTTs.
    TcptraceMinusSyn,
    /// Dart (unlimited memory) with handshake RTTs.
    DartPlusSyn,
    /// Dart (unlimited memory) without handshake RTTs.
    DartMinusSyn,
}

/// Run one Fig. 9 variant over a trace.
pub fn run_fig9_variant(v: Fig9Variant, packets: &[PacketMeta]) -> Vec<RttSample> {
    match v {
        Fig9Variant::DartPlusSyn => {
            run_trace(
                DartConfig::unlimited().with_syn(SynPolicy::Include),
                packets,
            )
            .0
        }
        Fig9Variant::DartMinusSyn => run_trace(DartConfig::unlimited(), packets).0,
        Fig9Variant::TcptracePlusSyn | Fig9Variant::TcptraceMinusSyn => {
            let cfg = dart_baselines::TcpTraceConfig {
                syn_policy: if v == Fig9Variant::TcptracePlusSyn {
                    SynPolicy::Include
                } else {
                    SynPolicy::Skip
                },
                leg: Leg::External,
                quadrant_quirk: true,
            };
            dart_baselines::run_tcptrace(cfg, packets).0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(TraceScale::Small.connections() < TraceScale::Default.connections());
        assert!(TraceScale::Default.connections() < TraceScale::Large.connections());
        assert!(TraceScale::Small.pt_fixed() < TraceScale::Large.pt_fixed());
    }

    #[test]
    fn small_trace_pipeline_runs() {
        let t = standard_trace(TraceScale::Small);
        assert!(t.len() > 10_000);
        let (baseline, _) = tcptrace_const(&t.packets);
        assert!(!baseline.is_empty());
        let cfg = sweep_config(TraceScale::Small, 1 << 10, 1, 1);
        let rep = run_point(cfg, &t.packets, &baseline);
        assert!(rep.fraction_collected > 0.3);
        assert!(rep.fraction_collected <= 1.05);
    }

    #[test]
    fn fig9_variants_are_distinct() {
        let t = standard_trace(TraceScale::Small);
        let tc_plus = run_fig9_variant(Fig9Variant::TcptracePlusSyn, &t.packets);
        let tc_minus = run_fig9_variant(Fig9Variant::TcptraceMinusSyn, &t.packets);
        let dart_plus = run_fig9_variant(Fig9Variant::DartPlusSyn, &t.packets);
        let dart_minus = run_fig9_variant(Fig9Variant::DartMinusSyn, &t.packets);
        // +SYN collects handshake samples on top of -SYN.
        assert!(tc_plus.len() > tc_minus.len());
        assert!(dart_plus.len() > dart_minus.len());
        // tcptrace collects at least as many samples as Dart (Fig. 9a).
        assert!(tc_plus.len() >= dart_plus.len());
        assert!(tc_minus.len() >= dart_minus.len());
    }
}
