//! # dart-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation against the synthetic campus substrate. Each `bin/`
//! target prints one table/figure's data; `bin/all` runs the full suite and
//! rewrites EXPERIMENTS.md. Criterion micro-benches live under `benches/`.
//!
//! | paper artifact | binary |
//! |---|---|
//! | Table 1 (resource usage) | `table1` |
//! | Fig. 6 (wired vs wireless CDF) | `fig6` |
//! | Fig. 8 (interception detection) | `fig8` |
//! | Fig. 9 (tcptrace vs Dart) | `fig9` |
//! | Fig. 10 (handshake memory/sample tradeoff) | `fig10` |
//! | Fig. 11 (PT size sweep) | `fig11` |
//! | Fig. 12 (PT stage sweep) | `fig12` |
//! | Fig. 13 (recirculation sweep) | `fig13` |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod metrics;

pub use harness::{
    run_fig9_variant, run_point, run_point_sharded, shards_from, shards_from_env,
    shards_from_env_var, standard_trace, sweep_config, tcptrace_const, Fig9Variant, TraceScale,
};
pub use metrics::AccuracyReport;
