//! Trace-replay throughput of the flow-sharded engine: packets/second and
//! samples/second for a range of shard counts on the standard campus trace,
//! written to `BENCH_throughput.json`.
//!
//! Flags (all optional):
//!
//! * `--shards 1,2,4,8` — shard counts to measure (default `1,2,4,8`;
//!   `DART_SHARDS` selects a single count when the flag is absent);
//! * `--iters N` — timed replays per shard count, best-of reported
//!   (default 3);
//! * `--out PATH` — output path (default `BENCH_throughput.json`);
//! * `--metrics-out PATH` — telemetry sidecar JSONL, one snapshot per
//!   shard count from the instrumented warm-up replay
//!   (default `BENCH_throughput_metrics.jsonl`; `telemetry` feature only);
//! * `DART_SCALE` — trace sizing; by default the runner builds a campus
//!   trace of ≥10⁶ packets regardless of scale.
//!
//! Speedup from sharding requires hardware parallelism: the report records
//! `available_parallelism` per row and flags rows with more shards than
//! cores as `"degraded": true` — those rows measure oversubscription, not
//! speedup.

use dart_bench::TraceScale;
#[cfg(feature = "telemetry")]
use dart_core::{run_monitor_slice, DartEngine, EngineTelemetry, ShardedConfig, ShardedMonitor};
use dart_core::{run_trace_sharded, DartConfig};
use dart_packet::SECOND;
use dart_sim::scenario::{campus, CampusConfig};
#[cfg(feature = "telemetry")]
use dart_telemetry::MetricRegistry;
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    shards: usize,
    elapsed_secs: f64,
    pkts_per_sec: f64,
    samples_per_sec: f64,
    samples: usize,
    /// Host cores observed for this row; shard counts beyond this are
    /// oversubscribed and the row is flagged `degraded`.
    parallelism: usize,
}

impl Measurement {
    fn degraded(&self) -> bool {
        self.shards > self.parallelism
    }
}

fn parse_args() -> Result<(Vec<usize>, usize, String, String), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shard_list: Option<Vec<usize>> = None;
    let mut iters = 3usize;
    let mut out = "BENCH_throughput.json".to_string();
    let mut metrics_out = "BENCH_throughput_metrics.jsonl".to_string();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("flag {} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--shards" => {
                let v = need_value(i)?;
                let list: Result<Vec<usize>, _> =
                    v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                let list = list.map_err(|_| format!("--shards: cannot parse {v:?}"))?;
                if list.is_empty() || list.contains(&0) {
                    return Err("--shards: counts must be ≥ 1".to_string());
                }
                shard_list = Some(list);
                i += 2;
            }
            "--iters" => {
                iters = need_value(i)?
                    .parse()
                    .map_err(|_| "--iters: cannot parse".to_string())?;
                i += 2;
            }
            "--out" => {
                out = need_value(i)?;
                i += 2;
            }
            "--metrics-out" => {
                metrics_out = need_value(i)?;
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let shard_list = match shard_list {
        Some(l) => l,
        None => match std::env::var("DART_SHARDS") {
            Ok(v) => vec![v
                .parse()
                .map_err(|_| format!("DART_SHARDS: cannot parse {v:?}"))?],
            Err(_) => vec![1, 2, 4, 8],
        },
    };
    Ok((shard_list, iters.max(1), out, metrics_out))
}

/// The warm-up replay doubling as the telemetry sidecar capture: an
/// instrumented run whose scrape is appended to the sidecar JSONL, one
/// line per shard count. Returns the merged samples (the timed replays
/// assert against their count).
#[cfg(feature = "telemetry")]
fn instrumented_warmup(
    cfg: DartConfig,
    shards: usize,
    packets: &[dart_packet::PacketMeta],
    sidecar: &mut String,
) -> Vec<dart_core::RttSample> {
    let metrics = MetricRegistry::new();
    let samples = if shards <= 1 {
        // Match run_trace_sharded: one shard is the serial engine.
        let mut engine = DartEngine::new(cfg);
        engine.attach_telemetry(EngineTelemetry::register(&metrics, 0));
        run_monitor_slice(&mut engine, packets).0
    } else {
        let mut monitor = ShardedMonitor::with_telemetry(ShardedConfig::new(cfg, shards), &metrics);
        run_monitor_slice(&mut monitor, packets).0
    };
    sidecar.push_str(&metrics.scrape().jsonl_line(&[
        ("shards", shards as u64),
        ("packets", packets.len() as u64),
        ("samples", samples.len() as u64),
    ]));
    sidecar.push('\n');
    samples
}

/// The measured trace: ≥10⁶ packets at default scale, or the standard
/// trace when `DART_SCALE` is set explicitly.
fn throughput_trace() -> (String, Vec<dart_packet::PacketMeta>) {
    match std::env::var("DART_SCALE").as_deref() {
        Ok(s @ ("small" | "large")) => {
            let scale = TraceScale::from_env();
            (s.to_string(), dart_bench::standard_trace(scale).packets)
        }
        _ => {
            // ~10⁶-packet campus trace: the default-figure trace's shape at
            // a connection count sized for the million-packet mark.
            let t = campus(CampusConfig {
                connections: 3_200,
                duration: 60 * SECOND,
                ..CampusConfig::default()
            });
            ("default-1M".to_string(), t.packets)
        }
    }
}

fn main() {
    let (shard_list, iters, out_path, metrics_out) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("throughput: {e}");
            std::process::exit(2);
        }
    };
    #[cfg(not(feature = "telemetry"))]
    let _ = &metrics_out;

    eprintln!("generating campus trace...");
    let (scale_name, packets) = throughput_trace();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "trace: {} packets ({scale_name}); host parallelism: {parallelism}",
        packets.len()
    );

    let cfg = DartConfig::default();
    let mut results: Vec<Measurement> = Vec::new();
    #[cfg(feature = "telemetry")]
    let mut sidecar = String::new();
    for &shards in &shard_list {
        // Warm-up replay (instrumented when the telemetry feature is on —
        // it doubles as the sidecar capture), then best-of-N timed replays.
        #[cfg(feature = "telemetry")]
        let samples = instrumented_warmup(cfg, shards, &packets, &mut sidecar);
        #[cfg(not(feature = "telemetry"))]
        let (samples, _) = run_trace_sharded(cfg, shards, &packets);
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let start = Instant::now();
            let (s, _) = run_trace_sharded(cfg, shards, &packets);
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(s.len(), samples.len(), "nondeterministic sample count");
            best = best.min(elapsed);
        }
        let m = Measurement {
            shards,
            elapsed_secs: best,
            pkts_per_sec: packets.len() as f64 / best,
            samples_per_sec: samples.len() as f64 / best,
            samples: samples.len(),
            parallelism,
        };
        eprintln!(
            "shards={:<2} {:>8.3} s   {:>10.0} pkts/s   {:>9.0} samples/s{}",
            m.shards,
            m.elapsed_secs,
            m.pkts_per_sec,
            m.samples_per_sec,
            if m.degraded() { "   [degraded]" } else { "" }
        );
        if m.degraded() {
            eprintln!(
                "warning: shards={} exceeds available_parallelism={}; \
                 this row measures oversubscription, not speedup",
                m.shards, m.parallelism
            );
        }
        results.push(m);
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"scenario\": \"campus\",").unwrap();
    writeln!(json, "  \"scale\": \"{scale_name}\",").unwrap();
    writeln!(json, "  \"packets\": {},", packets.len()).unwrap();
    writeln!(json, "  \"iters\": {iters},").unwrap();
    writeln!(json, "  \"available_parallelism\": {parallelism},").unwrap();
    writeln!(
        json,
        "  \"note\": \"best-of-{iters} wall-clock replays; sharded speedup requires \
         available_parallelism > 1\","
    )
    .unwrap();
    writeln!(json, "  \"results\": [").unwrap();
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"shards\": {}, \"elapsed_secs\": {:.6}, \"pkts_per_sec\": {:.1}, \
             \"samples_per_sec\": {:.1}, \"samples\": {}, \
             \"available_parallelism\": {}, \"degraded\": {}}}{comma}",
            m.shards,
            m.elapsed_secs,
            m.pkts_per_sec,
            m.samples_per_sec,
            m.samples,
            m.parallelism,
            m.degraded()
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("throughput: write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    #[cfg(feature = "telemetry")]
    match std::fs::write(&metrics_out, &sidecar) {
        Ok(()) => eprintln!("wrote telemetry sidecar {metrics_out}"),
        Err(e) => {
            eprintln!("throughput: write {metrics_out}: {e}");
            std::process::exit(1);
        }
    }
}
