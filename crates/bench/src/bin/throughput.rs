//! Trace-replay throughput on the standard campus trace, written to
//! `BENCH_throughput.json`: the serial per-packet path, the batch pipeline
//! at a sweep of block sizes, and the flow-sharded engine for a range of
//! shard counts. Every batch row is asserted byte-identical to the serial
//! sample stream before it is timed, so the reported speedup is for the
//! exact same work.
//!
//! Flags (all optional):
//!
//! * `--shards 1,2,4,8` — shard counts to measure (default `1,2,4,8`;
//!   `DART_SHARDS` selects a single count when the flag is absent);
//! * `--batch-size 64,256,1024` — block sizes for the batch-path sweep
//!   (default `64,256,1024`);
//! * `--iters N` — timed replays per row, best-of reported (default 3);
//! * `--out PATH` — output path (default `BENCH_throughput.json`);
//! * `--metrics-out PATH` — telemetry sidecar JSONL, one snapshot per
//!   shard count from the instrumented warm-up replay
//!   (default `BENCH_throughput_metrics.jsonl`; `telemetry` feature only);
//! * `DART_SCALE` — trace sizing; by default the runner builds a campus
//!   trace of ≥10⁶ packets regardless of scale.
//!
//! Speedup from sharding requires hardware parallelism: the report records
//! `available_parallelism` per row and flags rows with more shards than
//! cores as `"degraded": true` — those rows measure oversubscription, not
//! speedup.

use dart_bench::TraceScale;
#[cfg(feature = "telemetry")]
use dart_core::{run_monitor_slice, EngineTelemetry, ShardedConfig, ShardedMonitor};
use dart_core::{run_trace, run_trace_sharded, DartConfig, DartEngine, EngineStats, RttSample};
use dart_packet::SECOND;
use dart_sim::scenario::{campus, CampusConfig};
#[cfg(feature = "telemetry")]
use dart_telemetry::MetricRegistry;
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    /// Which hot path this row measures: `serial` (per-packet),
    /// `batch` (SoA pipeline), or `sharded`.
    path: &'static str,
    shards: usize,
    /// Block size for `batch` rows; `None` elsewhere.
    batch_size: Option<usize>,
    elapsed_secs: f64,
    pkts_per_sec: f64,
    samples_per_sec: f64,
    samples: usize,
    /// Host cores observed for this row; shard counts beyond this are
    /// oversubscribed and the row is flagged `degraded`.
    parallelism: usize,
}

impl Measurement {
    fn degraded(&self) -> bool {
        self.shards > self.parallelism
    }
}

type Args = (Vec<usize>, Vec<usize>, usize, String, String);

fn parse_args() -> Result<Args, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shard_list: Option<Vec<usize>> = None;
    let mut batch_sizes: Vec<usize> = vec![64, 256, 1024];
    let mut iters = 3usize;
    let mut out = "BENCH_throughput.json".to_string();
    let mut metrics_out = "BENCH_throughput_metrics.jsonl".to_string();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("flag {} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--shards" => {
                let v = need_value(i)?;
                let list: Result<Vec<usize>, _> =
                    v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                let list = list.map_err(|_| format!("--shards: cannot parse {v:?}"))?;
                if list.is_empty() || list.contains(&0) {
                    return Err("--shards: counts must be ≥ 1".to_string());
                }
                shard_list = Some(list);
                i += 2;
            }
            "--batch-size" => {
                let v = need_value(i)?;
                let list: Result<Vec<usize>, _> =
                    v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                let list = list.map_err(|_| format!("--batch-size: cannot parse {v:?}"))?;
                if list.is_empty() || list.contains(&0) {
                    return Err("--batch-size: sizes must be ≥ 1".to_string());
                }
                batch_sizes = list;
                i += 2;
            }
            "--iters" => {
                iters = need_value(i)?
                    .parse()
                    .map_err(|_| "--iters: cannot parse".to_string())?;
                i += 2;
            }
            "--out" => {
                out = need_value(i)?;
                i += 2;
            }
            "--metrics-out" => {
                metrics_out = need_value(i)?;
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let shard_list = match shard_list {
        Some(l) => l,
        None => match std::env::var("DART_SHARDS") {
            Ok(v) => vec![v
                .parse()
                .map_err(|_| format!("DART_SHARDS: cannot parse {v:?}"))?],
            Err(_) => vec![1, 2, 4, 8],
        },
    };
    Ok((shard_list, batch_sizes, iters.max(1), out, metrics_out))
}

/// One replay through the batch pipeline at block size `bs`.
fn run_batch(
    cfg: DartConfig,
    packets: &[dart_packet::PacketMeta],
    bs: usize,
) -> (Vec<RttSample>, EngineStats) {
    let mut engine = DartEngine::new(cfg);
    let mut samples = Vec::new();
    for chunk in packets.chunks(bs) {
        engine.process_batch(chunk, &mut samples);
    }
    engine.flush();
    (samples, *engine.stats())
}

/// `cmd args...` stdout (trimmed), or `"unknown"`: provenance fields must
/// never fail the benchmark.
fn provenance(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The warm-up replay doubling as the telemetry sidecar capture: an
/// instrumented run whose scrape is appended to the sidecar JSONL, one
/// line per shard count. Returns the merged samples (the timed replays
/// assert against their count).
#[cfg(feature = "telemetry")]
fn instrumented_warmup(
    cfg: DartConfig,
    shards: usize,
    packets: &[dart_packet::PacketMeta],
    sidecar: &mut String,
) -> Vec<dart_core::RttSample> {
    let metrics = MetricRegistry::new();
    let samples = if shards <= 1 {
        // Match run_trace_sharded: one shard is the serial engine.
        let mut engine = DartEngine::new(cfg);
        engine.attach_telemetry(EngineTelemetry::register(&metrics, 0));
        run_monitor_slice(&mut engine, packets).0
    } else {
        let mut monitor = ShardedMonitor::with_telemetry(ShardedConfig::new(cfg, shards), &metrics);
        run_monitor_slice(&mut monitor, packets).0
    };
    sidecar.push_str(&metrics.scrape().jsonl_line(&[
        ("shards", shards as u64),
        ("packets", packets.len() as u64),
        ("samples", samples.len() as u64),
    ]));
    sidecar.push('\n');
    samples
}

/// The measured trace: ≥10⁶ packets at default scale, or the standard
/// trace when `DART_SCALE` is set explicitly.
fn throughput_trace() -> (String, Vec<dart_packet::PacketMeta>) {
    match std::env::var("DART_SCALE").as_deref() {
        Ok(s @ ("small" | "large")) => {
            let scale = TraceScale::from_env();
            (s.to_string(), dart_bench::standard_trace(scale).packets)
        }
        _ => {
            // ~10⁶-packet campus trace: the default-figure trace's shape
            // at a connection count sized for the million-packet mark —
            // the same trace every prior BENCH_throughput.json measured,
            // keeping rows comparable across revisions. `DART_CONNS`
            // overrides the concurrent-flow count to probe other regimes
            // (more flows → colder tables, lower flow-memo hit rates).
            let conns: usize = std::env::var("DART_CONNS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(3_200);
            let duration = (192_000 / conns).max(1) as u64 * SECOND;
            let t = campus(CampusConfig {
                connections: conns,
                duration,
                ..CampusConfig::default()
            });
            (format!("default-1M/{conns}conns"), t.packets)
        }
    }
}

fn main() {
    let (shard_list, batch_sizes, iters, out_path, metrics_out) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("throughput: {e}");
            std::process::exit(2);
        }
    };
    #[cfg(not(feature = "telemetry"))]
    let _ = &metrics_out;

    eprintln!("generating campus trace...");
    let (scale_name, packets) = throughput_trace();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "trace: {} packets ({scale_name}); host parallelism: {parallelism}",
        packets.len()
    );

    // Cap shard counts at the host's parallelism: a row with more shards
    // than cores measures oversubscription, not speedup, so it is clamped
    // (with a warning) instead of silently reported as a scaling point.
    let mut shard_list: Vec<usize> = shard_list
        .into_iter()
        .map(|s| {
            if s > parallelism {
                eprintln!(
                    "warning: --shards {s} exceeds available_parallelism={parallelism}; \
                     capping to {parallelism}"
                );
                parallelism
            } else {
                s
            }
        })
        .collect();
    shard_list.dedup();

    let cfg = DartConfig::default();
    let mut results: Vec<Measurement> = Vec::new();
    #[cfg(feature = "telemetry")]
    let mut sidecar = String::new();

    // --- Serial vs. batch, interleaved ----------------------------------
    // One warm-up replay fixes the reference sample stream; every batch
    // row's warm-up doubles as the parity check (samples and stats must be
    // byte-identical to the per-packet reference, otherwise the speedup
    // would be measuring different work). The timed replays then cycle
    // serial and every batch size round-robin, so slow time-scale host
    // noise (shared cores, frequency steps) biases all rows equally
    // instead of whichever row ran in the quiet minute.
    let (serial_samples, serial_stats) = run_trace(cfg, &packets);
    for &bs in &batch_sizes {
        let (batch_samples, batch_stats) = run_batch(cfg, &packets, bs);
        assert_eq!(
            batch_samples, serial_samples,
            "batch path (batch_size={bs}) sample stream diverges from serial"
        );
        assert_eq!(
            batch_stats, serial_stats,
            "batch path (batch_size={bs}) stats diverge from serial"
        );
    }
    eprintln!(
        "batch-path parity with serial: OK ({} samples, identical stats)",
        serial_samples.len()
    );
    // bests[0] = serial, bests[1..] = batch_sizes in order. The starting
    // row rotates each iteration: on throttled hosts that slow down over a
    // process's lifetime, a fixed order would systematically favor
    // whichever row always ran first.
    let mut bests = vec![f64::INFINITY; 1 + batch_sizes.len()];
    for it in 0..iters {
        for j in 0..bests.len() {
            let row = (it + j) % bests.len();
            let start = Instant::now();
            let s = match row {
                0 => run_trace(cfg, &packets).0,
                _ => run_batch(cfg, &packets, batch_sizes[row - 1]).0,
            };
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(
                s.len(),
                serial_samples.len(),
                "nondeterministic sample count"
            );
            bests[row] = bests[row].min(elapsed);
        }
    }
    let serial_pps = packets.len() as f64 / bests[0];
    for (row, &best) in bests.iter().enumerate() {
        let m = Measurement {
            path: if row == 0 { "serial" } else { "batch" },
            shards: 1,
            batch_size: (row > 0).then(|| batch_sizes[row - 1]),
            elapsed_secs: best,
            pkts_per_sec: packets.len() as f64 / best,
            samples_per_sec: serial_samples.len() as f64 / best,
            samples: serial_samples.len(),
            parallelism,
        };
        match m.batch_size {
            None => eprintln!(
                "serial      {:>8.3} s   {:>10.0} pkts/s   {:>9.0} samples/s",
                m.elapsed_secs, m.pkts_per_sec, m.samples_per_sec
            ),
            Some(bs) => eprintln!(
                "batch={:<5} {:>8.3} s   {:>10.0} pkts/s   {:>9.0} samples/s   ({:.2}x serial)",
                bs,
                m.elapsed_secs,
                m.pkts_per_sec,
                m.samples_per_sec,
                m.pkts_per_sec / serial_pps
            ),
        }
        results.push(m);
    }

    // --- Sharded sweep ---------------------------------------------------
    for &shards in &shard_list {
        // Warm-up replay (instrumented when the telemetry feature is on —
        // it doubles as the sidecar capture), then best-of-N timed replays.
        #[cfg(feature = "telemetry")]
        let samples = instrumented_warmup(cfg, shards, &packets, &mut sidecar);
        #[cfg(not(feature = "telemetry"))]
        let (samples, _) = run_trace_sharded(cfg, shards, &packets);
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let start = Instant::now();
            let (s, _) = run_trace_sharded(cfg, shards, &packets);
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(s.len(), samples.len(), "nondeterministic sample count");
            best = best.min(elapsed);
        }
        let m = Measurement {
            path: "sharded",
            shards,
            batch_size: None,
            elapsed_secs: best,
            pkts_per_sec: packets.len() as f64 / best,
            samples_per_sec: samples.len() as f64 / best,
            samples: samples.len(),
            parallelism,
        };
        eprintln!(
            "shards={:<2} {:>8.3} s   {:>10.0} pkts/s   {:>9.0} samples/s{}",
            m.shards,
            m.elapsed_secs,
            m.pkts_per_sec,
            m.samples_per_sec,
            if m.degraded() { "   [degraded]" } else { "" }
        );
        if m.degraded() {
            eprintln!(
                "warning: shards={} exceeds available_parallelism={}; \
                 this row measures oversubscription, not speedup",
                m.shards, m.parallelism
            );
        }
        results.push(m);
    }

    let git_rev = provenance("git", &["rev-parse", "--short=12", "HEAD"]);
    let rustc = provenance("rustc", &["--version"]);

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"scenario\": \"campus\",").unwrap();
    writeln!(json, "  \"scale\": \"{scale_name}\",").unwrap();
    writeln!(json, "  \"packets\": {},", packets.len()).unwrap();
    writeln!(json, "  \"iters\": {iters},").unwrap();
    writeln!(json, "  \"available_parallelism\": {parallelism},").unwrap();
    writeln!(json, "  \"git_rev\": \"{git_rev}\",").unwrap();
    writeln!(json, "  \"rustc\": \"{rustc}\",").unwrap();
    writeln!(
        json,
        "  \"note\": \"best-of-{iters} wall-clock replays; batch rows asserted \
         byte-identical to serial; sharded speedup requires \
         available_parallelism > 1\","
    )
    .unwrap();
    writeln!(json, "  \"results\": [").unwrap();
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let batch_size = match m.batch_size {
            Some(bs) => bs.to_string(),
            None => "null".to_string(),
        };
        writeln!(
            json,
            "    {{\"path\": \"{}\", \"shards\": {}, \"batch_size\": {}, \
             \"elapsed_secs\": {:.6}, \"pkts_per_sec\": {:.1}, \
             \"samples_per_sec\": {:.1}, \"samples\": {}, \
             \"available_parallelism\": {}, \"degraded\": {}}}{comma}",
            m.path,
            m.shards,
            batch_size,
            m.elapsed_secs,
            m.pkts_per_sec,
            m.samples_per_sec,
            m.samples,
            m.parallelism,
            m.degraded()
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("throughput: write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    #[cfg(feature = "telemetry")]
    match std::fs::write(&metrics_out, &sidecar) {
        Ok(()) => eprintln!("wrote telemetry sidecar {metrics_out}"),
        Err(e) => {
            eprintln!("throughput: write {metrics_out}: {e}");
            std::process::exit(1);
        }
    }
}
