//! Trace-replay throughput of the flow-sharded engine: packets/second and
//! samples/second for a range of shard counts on the standard campus trace,
//! written to `BENCH_throughput.json`.
//!
//! Flags (all optional):
//!
//! * `--shards 1,2,4,8` — shard counts to measure (default `1,2,4,8`;
//!   `DART_SHARDS` selects a single count when the flag is absent);
//! * `--iters N` — timed replays per shard count, best-of reported
//!   (default 3);
//! * `--out PATH` — output path (default `BENCH_throughput.json`);
//! * `DART_SCALE` — trace sizing; by default the runner builds a campus
//!   trace of ≥10⁶ packets regardless of scale.
//!
//! Speedup from sharding requires hardware parallelism: the report records
//! `available_parallelism` so a single-core container's flat numbers read
//! as what they are.

use dart_bench::TraceScale;
use dart_core::{run_trace_sharded, DartConfig};
use dart_packet::SECOND;
use dart_sim::scenario::{campus, CampusConfig};
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    shards: usize,
    elapsed_secs: f64,
    pkts_per_sec: f64,
    samples_per_sec: f64,
    samples: usize,
}

fn parse_args() -> Result<(Vec<usize>, usize, String), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shard_list: Option<Vec<usize>> = None;
    let mut iters = 3usize;
    let mut out = "BENCH_throughput.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("flag {} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--shards" => {
                let v = need_value(i)?;
                let list: Result<Vec<usize>, _> =
                    v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                let list = list.map_err(|_| format!("--shards: cannot parse {v:?}"))?;
                if list.is_empty() || list.contains(&0) {
                    return Err("--shards: counts must be ≥ 1".to_string());
                }
                shard_list = Some(list);
                i += 2;
            }
            "--iters" => {
                iters = need_value(i)?
                    .parse()
                    .map_err(|_| "--iters: cannot parse".to_string())?;
                i += 2;
            }
            "--out" => {
                out = need_value(i)?;
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let shard_list = match shard_list {
        Some(l) => l,
        None => match std::env::var("DART_SHARDS") {
            Ok(v) => vec![v
                .parse()
                .map_err(|_| format!("DART_SHARDS: cannot parse {v:?}"))?],
            Err(_) => vec![1, 2, 4, 8],
        },
    };
    Ok((shard_list, iters.max(1), out))
}

/// The measured trace: ≥10⁶ packets at default scale, or the standard
/// trace when `DART_SCALE` is set explicitly.
fn throughput_trace() -> (String, Vec<dart_packet::PacketMeta>) {
    match std::env::var("DART_SCALE").as_deref() {
        Ok(s @ ("small" | "large")) => {
            let scale = TraceScale::from_env();
            (s.to_string(), dart_bench::standard_trace(scale).packets)
        }
        _ => {
            // ~10⁶-packet campus trace: the default-figure trace's shape at
            // a connection count sized for the million-packet mark.
            let t = campus(CampusConfig {
                connections: 3_200,
                duration: 60 * SECOND,
                ..CampusConfig::default()
            });
            ("default-1M".to_string(), t.packets)
        }
    }
}

fn main() {
    let (shard_list, iters, out_path) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("throughput: {e}");
            std::process::exit(2);
        }
    };

    eprintln!("generating campus trace...");
    let (scale_name, packets) = throughput_trace();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "trace: {} packets ({scale_name}); host parallelism: {parallelism}",
        packets.len()
    );

    let cfg = DartConfig::default();
    let mut results: Vec<Measurement> = Vec::new();
    for &shards in &shard_list {
        // Warm-up replay, then best-of-N timed replays.
        let (samples, _) = run_trace_sharded(cfg, shards, &packets);
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let start = Instant::now();
            let (s, _) = run_trace_sharded(cfg, shards, &packets);
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(s.len(), samples.len(), "nondeterministic sample count");
            best = best.min(elapsed);
        }
        let m = Measurement {
            shards,
            elapsed_secs: best,
            pkts_per_sec: packets.len() as f64 / best,
            samples_per_sec: samples.len() as f64 / best,
            samples: samples.len(),
        };
        eprintln!(
            "shards={:<2} {:>8.3} s   {:>10.0} pkts/s   {:>9.0} samples/s",
            m.shards, m.elapsed_secs, m.pkts_per_sec, m.samples_per_sec
        );
        results.push(m);
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"scenario\": \"campus\",").unwrap();
    writeln!(json, "  \"scale\": \"{scale_name}\",").unwrap();
    writeln!(json, "  \"packets\": {},", packets.len()).unwrap();
    writeln!(json, "  \"iters\": {iters},").unwrap();
    writeln!(json, "  \"available_parallelism\": {parallelism},").unwrap();
    writeln!(
        json,
        "  \"note\": \"best-of-{iters} wall-clock replays; sharded speedup requires \
         available_parallelism > 1\","
    )
    .unwrap();
    writeln!(json, "  \"results\": [").unwrap();
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"shards\": {}, \"elapsed_secs\": {:.6}, \"pkts_per_sec\": {:.1}, \
             \"samples_per_sec\": {:.1}, \"samples\": {}}}{comma}",
            m.shards, m.elapsed_secs, m.pkts_per_sec, m.samples_per_sec, m.samples
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("throughput: write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
