//! Fig. 11: performance of Dart with a large RT table and varying PT size
//! (one stage, one recirculation allowed).
//!
//! Paper (135M-packet trace, PT 2^10..2^20): error falls with PT size; more
//! than 90% of samples already at 2^13; recirculations/packet fall from
//! 0.16 to 0.06. This harness sweeps a grid shifted to the synthetic
//! trace's scale (see `TraceScale::pt_sweep_log2` and EXPERIMENTS.md).

use dart_bench::{
    run_point, standard_trace, sweep_config, tcptrace_const, AccuracyReport, TraceScale,
};

fn main() {
    let scale = TraceScale::from_env();
    let trace = standard_trace(scale);
    eprintln!("trace: {} packets", trace.len());
    let (baseline, _) = tcptrace_const(&trace.packets);
    eprintln!("baseline (tcptrace_const) samples: {}", baseline.len());

    println!("Fig 11: PT size sweep (1 stage, max 1 recirculation)");
    println!();
    println!("{}", AccuracyReport::header());
    for log2 in scale.pt_sweep_log2() {
        let cfg = sweep_config(scale, 1 << log2, 1, 1);
        let rep = run_point(cfg, &trace.packets, &baseline);
        println!("{}", rep.row(&format!("PT=2^{log2}")));
    }
    println!();
    println!(
        "(paper shape: errors -> 0 and fraction -> 100% as PT grows; recirc/pkt\n\
         falls from ~0.16 to ~0.06; >90% of samples at modest PT sizes)"
    );
}
