//! The accuracy-vs-memory frontier across flow-state backends, written to
//! `BENCH_memory_frontier.json`: every backend replayed at the *same* SRAM
//! budget while the concurrent flow population scales in multiples of a
//! base load, with per-point throughput (batch path), oracle recall
//! (sample yield), and p50/p99 relative RTT error against the testkit
//! oracle's valid set.
//!
//! The question the sweep answers is the tentpole's: at a fixed SRAM
//! fraction, how far past the exact tables' designed population can the
//! sketch (recency-aged) and precision (admission-gated) backends keep
//! monitoring? A backend "sustains" a population multiple while its
//! recall holds within 5% of the exact backend's recall at the base
//! population (the design point standing in for the paper's 1.38M flows);
//! the `frontier` block reports each backend's largest sustained multiple.
//!
//! Flags (all optional):
//!
//! * `--backends exact,sketch,precision` — backends to sweep (default all);
//! * `--fraction F` — SRAM fraction of the Tofino 1 budget given to the
//!   tables, split PT:RT as 1:8 slots via `backend_sweep` (default 6e-4);
//! * `--multiples 1,3,10,30,100` — flow-population multiples (default);
//! * `--base-conns N` — base connection count (default 192);
//! * `--duration-secs N` — connection-arrival window (default 4: a churny
//!   window long enough that exact slots leak to lossy-tail corpses);
//! * `--mean-loss F` — mean per-direction loss probability (default 0.02);
//! * `--iters N` — timed replays per row, best-of reported (default 2);
//! * `--out PATH` — output path (default `BENCH_memory_frontier.json`).
//!
//! Every row replays through the batch pipeline (block size 1024, the
//! best row of `BENCH_throughput.json`), so samples/sec here is directly
//! comparable to the throughput benchmark; split-invariance of all
//! backends is pinned by `tests/backend_conformance.rs`.

use dart_core::{Backend, DartConfig, DartEngine, EngineStats, PtMode, RtMode, RttSample};
use dart_packet::{FlowKey, PacketMeta, SECOND};
use dart_sim::scenario::{campus, CampusConfig};
use dart_switch::TargetProfile;
use dart_testkit::{backend_sweep, run_oracle, OracleConfig, OracleReport};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Batch block size: the best-throughput row of `BENCH_throughput.json`.
const BLOCK: usize = 1024;

/// The sustain floor is this fraction of the exact backend's base-load
/// recall: "sustaining" a population multiple means still delivering
/// (sound, zero-median-error) coverage within 5% of what the exact tables
/// deliver at the population they were provisioned for.
const SUSTAIN_FRAC: f64 = 0.95;

struct Row {
    backend: Backend,
    multiple: usize,
    conns: usize,
    packets: usize,
    elapsed_secs: f64,
    pkts_per_sec: f64,
    samples_per_sec: f64,
    samples: usize,
    oracle_valid: u64,
    valid_matched: u64,
    recall: f64,
    /// Relative RTT error of emitted samples whose `(flow, eack)` the
    /// oracle also sampled — p50/p99 over `matched_pairs` pairs.
    rel_err_p50: f64,
    rel_err_p99: f64,
    matched_pairs: usize,
    sketch_overwritten: u64,
    recirc_admission_denied: u64,
}

fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::Exact => "exact",
        Backend::Sketch => "sketch",
        Backend::Precision => "precision",
    }
}

struct Args {
    backends: Vec<Backend>,
    fraction: f64,
    multiples: Vec<usize>,
    base_conns: usize,
    duration_secs: u64,
    mean_loss: f64,
    iters: usize,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut backends = vec![Backend::Exact, Backend::Sketch, Backend::Precision];
    let mut fraction = 6e-4f64;
    let mut multiples: Vec<usize> = vec![1, 3, 10, 30, 100];
    let mut base_conns = 192usize;
    let mut duration_secs = 4u64;
    let mut mean_loss = 0.02f64;
    let mut iters = 2usize;
    let mut out = "BENCH_memory_frontier.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("flag {} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--backends" => {
                let v = need_value(i)?;
                let list: Result<Vec<Backend>, _> =
                    v.split(',').map(|s| s.trim().parse::<Backend>()).collect();
                backends = list?;
                if backends.is_empty() {
                    return Err("--backends: need at least one".to_string());
                }
                i += 2;
            }
            "--fraction" => {
                fraction = need_value(i)?
                    .parse()
                    .map_err(|_| "--fraction: cannot parse".to_string())?;
                if !(fraction > 0.0 && fraction <= 1.0) {
                    return Err("--fraction: must be in (0, 1]".to_string());
                }
                i += 2;
            }
            "--multiples" => {
                let v = need_value(i)?;
                let list: Result<Vec<usize>, _> =
                    v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                multiples = list.map_err(|_| format!("--multiples: cannot parse {v:?}"))?;
                if multiples.is_empty() || multiples.contains(&0) {
                    return Err("--multiples: must be ≥ 1".to_string());
                }
                i += 2;
            }
            "--base-conns" => {
                base_conns = need_value(i)?
                    .parse()
                    .map_err(|_| "--base-conns: cannot parse".to_string())?;
                if base_conns == 0 {
                    return Err("--base-conns: must be ≥ 1".to_string());
                }
                i += 2;
            }
            "--duration-secs" => {
                duration_secs = need_value(i)?
                    .parse()
                    .map_err(|_| "--duration-secs: cannot parse".to_string())?;
                if duration_secs == 0 {
                    return Err("--duration-secs: must be ≥ 1".to_string());
                }
                i += 2;
            }
            "--mean-loss" => {
                mean_loss = need_value(i)?
                    .parse()
                    .map_err(|_| "--mean-loss: cannot parse".to_string())?;
                if !(0.0..1.0).contains(&mean_loss) {
                    return Err("--mean-loss: must be in [0, 1)".to_string());
                }
                i += 2;
            }
            "--iters" => {
                iters = need_value(i)?
                    .parse()
                    .map_err(|_| "--iters: cannot parse".to_string())?;
                i += 2;
            }
            "--out" => {
                out = need_value(i)?;
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    multiples.sort_unstable();
    multiples.dedup();
    Ok(Args {
        backends,
        fraction,
        multiples,
        base_conns,
        duration_secs,
        mean_loss,
        iters: iters.max(1),
        out,
    })
}

/// One replay through the batch pipeline.
fn run_batch(cfg: DartConfig, packets: &[PacketMeta]) -> (Vec<RttSample>, EngineStats) {
    let mut engine = DartEngine::new(cfg);
    let mut samples = Vec::new();
    for chunk in packets.chunks(BLOCK) {
        engine.process_batch(chunk, &mut samples);
    }
    engine.flush();
    (samples, *engine.stats())
}

/// Relative RTT error per emitted sample whose `(flow, eack)` the oracle
/// sampled too. Exact-class samples contribute 0; ambiguous matches (the
/// sound-but-excluded kind pressure produces) contribute their deviation.
fn rel_errors(valid: &[RttSample], emitted: &[RttSample]) -> Vec<f64> {
    let truth: HashMap<(FlowKey, u32), u64> = valid
        .iter()
        .map(|s| ((s.flow, s.eack.raw()), s.rtt))
        .collect();
    let mut errs: Vec<f64> = emitted
        .iter()
        .filter_map(|s| {
            truth.get(&(s.flow, s.eack.raw())).map(|&t| {
                if t == 0 {
                    0.0
                } else {
                    (s.rtt as f64 - t as f64).abs() / t as f64
                }
            })
        })
        .collect();
    errs.sort_unstable_by(|a, b| a.total_cmp(b));
    errs
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn table_slots(cfg: &DartConfig) -> (usize, usize) {
    let rt = match cfg.rt {
        RtMode::Unlimited => 0,
        RtMode::Constrained { slots } | RtMode::Sketch { slots, .. } => slots,
    };
    let pt = match cfg.pt {
        PtMode::Unlimited => 0,
        PtMode::Constrained { slots, .. } | PtMode::Sketch { slots, .. } => slots,
    };
    (rt, pt)
}

/// `cmd args...` stdout (trimmed), or `"unknown"`: provenance fields must
/// never fail the benchmark.
fn provenance(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn measure(
    cfg: DartConfig,
    backend: Backend,
    multiple: usize,
    conns: usize,
    pkts: &[PacketMeta],
    oracle: &OracleReport,
    iters: usize,
) -> Row {
    let (samples, stats) = run_batch(cfg, pkts);
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let (s, _) = run_batch(cfg, pkts);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(s.len(), samples.len(), "nondeterministic sample count");
        best = best.min(elapsed);
    }
    let card = oracle.score(&samples);
    assert_eq!(
        card.impossible, 0,
        "{backend:?} fabricated samples at multiple {multiple}"
    );
    let errs = rel_errors(&oracle.valid, &samples);
    Row {
        backend,
        multiple,
        conns,
        packets: pkts.len(),
        elapsed_secs: best,
        pkts_per_sec: pkts.len() as f64 / best,
        samples_per_sec: samples.len() as f64 / best,
        samples: samples.len(),
        oracle_valid: card.valid_total,
        valid_matched: card.valid_matched,
        recall: card.recall(),
        rel_err_p50: percentile(&errs, 0.50),
        rel_err_p99: percentile(&errs, 0.99),
        matched_pairs: errs.len(),
        sketch_overwritten: stats.sketch_overwritten,
        recirc_admission_denied: stats.recirc_admission_denied,
    }
}

/// Largest multiple at which `rows` (one backend, ascending multiples)
/// holds recall ≥ `floor`. Returns 0 when even the first multiple misses
/// the floor.
fn max_sustained(rows: &[&Row], floor: f64) -> usize {
    rows.iter()
        .take_while(|r| r.recall >= floor)
        .last()
        .map_or(0, |r| r.multiple)
}

fn main() {
    let Args {
        backends,
        fraction,
        multiples,
        base_conns,
        duration_secs,
        mean_loss,
        iters,
        out: out_path,
    } = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("memory_frontier: {e}");
            std::process::exit(2);
        }
    };

    let profile = TargetProfile::tofino1();
    let configs: Vec<(Backend, DartConfig)> = backends
        .iter()
        .map(|&b| (b, backend_sweep(&profile, &[fraction], b)[0]))
        .collect();
    let budget_bits = (profile.sram_bits as f64 * fraction) as u64;
    eprintln!(
        "SRAM budget: {budget_bits} bits ({fraction:.2e} of {}):",
        profile.name
    );
    for (b, cfg) in &configs {
        let (rt, pt) = table_slots(cfg);
        eprintln!("  {:<9} rt={rt} slots, pt={pt} slots", backend_name(*b));
    }

    let mut rows: Vec<Row> = Vec::new();
    for &m in &multiples {
        let conns = base_conns * m;
        // Arrivals spread over a multi-second window: continuous
        // monitoring means churn, and churn is where the backends differ —
        // exact slots leak to flows that ended with unacked bytes (their
        // ranges never collapse), while the sketch recency-ages those
        // corpses out.
        let pkts = campus(CampusConfig {
            connections: conns,
            duration: duration_secs * SECOND,
            seed: 0xF40_0000 + m as u64,
            mean_loss,
            reorder: 0.01,
            ..CampusConfig::default()
        })
        .packets;
        // All sweep configs share the default role policies, so one oracle
        // run serves every backend at this population.
        for (_, cfg) in &configs {
            assert_eq!(cfg.syn_policy, OracleConfig::default().syn_policy);
            assert_eq!(cfg.leg, OracleConfig::default().leg);
        }
        let oracle = run_oracle(OracleConfig::default(), &pkts);
        eprintln!(
            "multiple {m}x: {conns} conns, {} packets, {} oracle-valid samples",
            pkts.len(),
            oracle.valid_count()
        );
        for &(backend, cfg) in &configs {
            let row = measure(cfg, backend, m, conns, &pkts, &oracle, iters);
            eprintln!(
                "  {:<9} {:>10.0} pkts/s   recall {:>6.3}   err p50/p99 {:.4}/{:.4}   ({} samples)",
                backend_name(backend),
                row.pkts_per_sec,
                row.recall,
                row.rel_err_p50,
                row.rel_err_p99,
                row.samples,
            );
            rows.push(row);
        }
    }

    // --- Frontier summary ------------------------------------------------
    // The floor is anchored at the exact backend's recall at the base
    // population (the stand-in for the paper's 1.38M-flow design point):
    // a backend sustains a multiple while it still delivers that quality
    // (less 5%). When the sweep excludes the exact backend, the first
    // backend's base-load recall anchors instead.
    let per_backend: Vec<(Backend, Vec<&Row>)> = backends
        .iter()
        .map(|&b| (b, rows.iter().filter(|r| r.backend == b).collect()))
        .collect();
    let anchor = per_backend
        .iter()
        .find(|(b, _)| *b == Backend::Exact)
        .or(per_backend.first())
        .and_then(|(_, rs)| rs.first().map(|r| r.recall))
        .unwrap_or(0.0);
    let floor = SUSTAIN_FRAC * anchor;
    let sustained: Vec<(Backend, usize)> = per_backend
        .iter()
        .map(|(b, rs)| (*b, max_sustained(rs, floor)))
        .collect();
    eprintln!(
        "sustain floor: recall ≥ {floor:.3} ({SUSTAIN_FRAC} x exact base recall {anchor:.3})"
    );
    for &(b, max_m) in &sustained {
        eprintln!("{:<9} sustains through {max_m}x", backend_name(b));
    }
    let frontier_crossed = sustained
        .iter()
        .any(|&(b, max_m)| b != Backend::Exact && max_m >= 10);
    if frontier_crossed {
        eprintln!(
            "frontier: a non-exact backend sustains ≥10x the exact tables' \
             designed flow population at equal SRAM"
        );
    }

    let git_rev = provenance("git", &["rev-parse", "--short=12", "HEAD"]);
    let rustc = provenance("rustc", &["--version"]);

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"scenario\": \"campus\",").unwrap();
    writeln!(json, "  \"profile\": \"{}\",", profile.name).unwrap();
    writeln!(json, "  \"sram_fraction\": {fraction:e},").unwrap();
    writeln!(json, "  \"sram_budget_bits\": {budget_bits},").unwrap();
    writeln!(json, "  \"base_conns\": {base_conns},").unwrap();
    writeln!(json, "  \"duration_secs\": {duration_secs},").unwrap();
    writeln!(json, "  \"mean_loss\": {mean_loss},").unwrap();
    writeln!(json, "  \"batch_size\": {BLOCK},").unwrap();
    writeln!(json, "  \"iters\": {iters},").unwrap();
    writeln!(json, "  \"git_rev\": \"{git_rev}\",").unwrap();
    writeln!(json, "  \"rustc\": \"{rustc}\",").unwrap();
    writeln!(
        json,
        "  \"note\": \"equal SRAM budget per backend; recall = fraction of the \
         oracle's valid sample set recovered; rel_err percentiles are over \
         emitted samples whose (flow, eack) the oracle also sampled (0 = \
         every matched sample has the oracle's RTT); a multiple is \
         sustained while recall >= {SUSTAIN_FRAC} x the exact backend's \
         base-load recall; every row asserted free of oracle-impossible \
         samples\","
    )
    .unwrap();
    writeln!(json, "  \"tables\": [").unwrap();
    for (i, (b, cfg)) in configs.iter().enumerate() {
        let comma = if i + 1 < configs.len() { "," } else { "" };
        let (rt, pt) = table_slots(cfg);
        writeln!(
            json,
            "    {{\"backend\": \"{}\", \"rt_slots\": {rt}, \"pt_slots\": {pt}}}{comma}",
            backend_name(*b)
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"results\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"backend\": \"{}\", \"multiple\": {}, \"conns\": {}, \
             \"packets\": {}, \"elapsed_secs\": {:.6}, \"pkts_per_sec\": {:.1}, \
             \"samples_per_sec\": {:.1}, \"samples\": {}, \"oracle_valid\": {}, \
             \"valid_matched\": {}, \"recall\": {:.6}, \"rel_err_p50\": {:.6}, \
             \"rel_err_p99\": {:.6}, \"matched_pairs\": {}, \
             \"sketch_overwritten\": {}, \"recirc_admission_denied\": {}}}{comma}",
            backend_name(r.backend),
            r.multiple,
            r.conns,
            r.packets,
            r.elapsed_secs,
            r.pkts_per_sec,
            r.samples_per_sec,
            r.samples,
            r.oracle_valid,
            r.valid_matched,
            r.recall,
            r.rel_err_p50,
            r.rel_err_p99,
            r.matched_pairs,
            r.sketch_overwritten,
            r.recirc_admission_denied,
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"frontier\": {{").unwrap();
    writeln!(json, "    \"sustain_fraction\": {SUSTAIN_FRAC},").unwrap();
    writeln!(json, "    \"exact_base_recall\": {anchor:.6},").unwrap();
    writeln!(json, "    \"recall_floor\": {floor:.6},").unwrap();
    writeln!(
        json,
        "    \"nonexact_sustains_10x_base_population\": {frontier_crossed},"
    )
    .unwrap();
    writeln!(json, "    \"backends\": [").unwrap();
    for (i, &(b, max_m)) in sustained.iter().enumerate() {
        let comma = if i + 1 < sustained.len() { "," } else { "" };
        writeln!(
            json,
            "      {{\"backend\": \"{}\", \"max_sustained_multiple\": {max_m}}}{comma}",
            backend_name(b)
        )
        .unwrap();
    }
    writeln!(json, "    ]").unwrap();
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();

    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("memory_frontier: write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
