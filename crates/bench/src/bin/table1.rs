//! Table 1: data-plane resource usage of the Dart program on Tofino 1
//! (ingress+egress layout) and Tofino 2 (ingress-only layout).

use dart_switch::{
    dart_dependencies, dart_program, estimate, place, DartProgramParams, TargetProfile,
};

fn main() {
    let t1_prog = dart_program(DartProgramParams {
        rt_entries: 1 << 16,
        pt_entries: 1 << 17,
        pt_stages: 1,
        spans_egress: true,
    });
    let t2_prog = dart_program(DartProgramParams {
        rt_entries: 1 << 14,
        pt_entries: 1 << 14,
        pt_stages: 1,
        spans_egress: false,
    });
    let t1 = estimate(&t1_prog, &TargetProfile::tofino1());
    let t2 = estimate(&t2_prog, &TargetProfile::tofino2());

    println!("Table 1: Data Plane Resource Usage (model) vs paper");
    println!();
    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>12}",
        "Resource Type", "Tofino1", "Tofino2", "paper T1", "paper T2"
    );
    let rows = [
        ("TCAM", t1.tcam_pct, t2.tcam_pct, 4.9, 2.9),
        ("SRAM", t1.sram_pct, t2.sram_pct, 13.9, 1.4),
        (
            "Hash Units",
            t1.hash_units_pct,
            t2.hash_units_pct,
            16.7,
            35.8,
        ),
        (
            "Logical Tables",
            t1.logical_tables_pct,
            t2.logical_tables_pct,
            47.9,
            36.9,
        ),
        (
            "Input Crossbars",
            t1.crossbar_pct,
            t2.crossbar_pct,
            15.4,
            10.1,
        ),
    ];
    for (name, m1, m2, p1, p2) in rows {
        println!("{name:<18} {m1:>9.1}% {m2:>9.1}% {p1:>11.1}% {p2:>11.1}%");
    }
    println!();
    println!("fits: tofino1={} tofino2={}", t1.fits(), t2.fits());
    for (name, prog, profile) in [
        ("tofino1", &t1_prog, TargetProfile::tofino1()),
        ("tofino2", &t2_prog, TargetProfile::tofino2()),
    ] {
        match place(prog, &profile, &dart_dependencies(prog)) {
            Ok(p) => println!(
                "stage placement ({name}): {} of {} stages used",
                p.stages_used(),
                profile.stages
            ),
            Err(e) => println!("stage placement ({name}): FAILED: {e:?}"),
        }
    }
    println!(
        "(model calibrated from public per-stage block structure; paper-vs-model\n\
         agreement is qualitative — both builds fit with headroom, the T1 layout\n\
         is hungrier in SRAM/TCAM/logical tables — see EXPERIMENTS.md)"
    );
}
