//! Fig. 12: performance of Dart with a fixed-size PT split across 1–8
//! stages, still allowing only 1 recirculation.
//!
//! Paper: splitting the same memory into more one-way stages *hurts* —
//! the sample fraction drops, the median is overestimated (negative error),
//! and recirculations jump — because later-stage records are never
//! displaced ("older records are preferred") while the shrunken first stage
//! thrashes.

use dart_bench::{
    run_point, standard_trace, sweep_config, tcptrace_const, AccuracyReport, TraceScale,
};

fn main() {
    let scale = TraceScale::from_env();
    let trace = standard_trace(scale);
    eprintln!("trace: {} packets", trace.len());
    let (baseline, _) = tcptrace_const(&trace.packets);
    eprintln!("baseline samples: {}", baseline.len());

    let pt = scale.pt_fixed();
    println!("Fig 12: PT stage sweep (PT = {pt} slots total, max 1 recirculation)");
    println!();
    println!("{}", AccuracyReport::header());
    for stages in 1..=8usize {
        let cfg = sweep_config(scale, pt, stages, 1);
        let rep = run_point(cfg, &trace.packets, &baseline);
        println!("{}", rep.row(&format!("{stages} stage(s)")));
    }
    println!();
    println!(
        "(paper shape: 1 stage is best; >=2 stages lose samples, overestimate\n\
         the median (negative error), and recirculate more)"
    );
}
