//! Fig. 10: skipping handshake (SYN) packets — Range Tracker memory saved
//! vs RTT samples foregone.
//!
//! Paper: 72.5% of connections (1M of 1.38M) never complete a handshake, so
//! skipping SYNs saves their RT entries entirely while losing only 4.2% of
//! samples (0.32M of 7.53M).

use dart_bench::{run_fig9_variant, standard_trace, Fig9Variant, TraceScale};

fn main() {
    let scale = TraceScale::from_env();
    let trace = standard_trace(scale);
    eprintln!("trace: {} packets", trace.len());

    let total = trace.conns.len();
    let incomplete = trace.conns.iter().filter(|c| !c.complete).count();

    let dart_plus = run_fig9_variant(Fig9Variant::DartPlusSyn, &trace.packets);
    let dart_minus = run_fig9_variant(Fig9Variant::DartMinusSyn, &trace.packets);
    let lost = dart_plus.len().saturating_sub(dart_minus.len());

    println!("Fig 10: the handshake-skipping tradeoff");
    println!();
    println!("connections total            : {total}");
    println!(
        "incomplete handshakes        : {incomplete} ({:.1}%)   (paper: 72.5%)",
        incomplete as f64 / total as f64 * 100.0
    );
    println!();
    println!(
        "RT entries saved by -SYN     : {incomplete} ({:.1}% of connections)",
        incomplete as f64 / total as f64 * 100.0
    );
    println!("samples with +SYN            : {}", dart_plus.len());
    println!("samples with -SYN            : {}", dart_minus.len());
    println!(
        "samples foregone             : {lost} ({:.1}%)   (paper: 4.2%)",
        lost as f64 / dart_plus.len().max(1) as f64 * 100.0
    );
    println!();
    println!(
        "memory saved per 1% of samples foregone: {:.1}% of connections",
        (incomplete as f64 / total as f64 * 100.0)
            / (lost as f64 / dart_plus.len().max(1) as f64 * 100.0).max(0.01)
    );
}
