//! Fig. 13: performance of an 8-stage PT as the per-record recirculation
//! cap grows from 1 to 8.
//!
//! Paper: with ≥4 recirculations allowed, the 8-stage PT recovers —
//! errors near zero, ≥99% of samples — while recirculations/packet stay
//! ≤0.16: multi-stage memory *plus* recirculation headroom works.

use dart_bench::{
    run_point, standard_trace, sweep_config, tcptrace_const, AccuracyReport, TraceScale,
};

fn main() {
    let scale = TraceScale::from_env();
    let trace = standard_trace(scale);
    eprintln!("trace: {} packets", trace.len());
    let (baseline, _) = tcptrace_const(&trace.packets);
    eprintln!("baseline samples: {}", baseline.len());

    let pt = scale.pt_fixed();
    println!("Fig 13: recirculation sweep (PT = {pt} slots across 8 stages)");
    println!();
    println!("{}", AccuracyReport::header());
    for max_recirc in 1..=8u32 {
        let cfg = sweep_config(scale, pt, 8, max_recirc);
        let rep = run_point(cfg, &trace.packets, &baseline);
        println!("{}", rep.row(&format!("recirc<={max_recirc}")));
    }
    println!();
    println!(
        "(paper shape: accuracy recovers by ~4 allowed recirculations while\n\
         recirc/pkt stays bounded)"
    );
}
