//! Fig. 8: detecting a traffic-interception attack from the min-RTT of
//! 8-sample windows — suspect on an abrupt rise, confirm when it sustains.
//!
//! Paper: attack takes effect at t≈36 s (RTT 25 → 120 ms); suspected almost
//! immediately, confirmed one window later, 63 packets / 2.58 s after the
//! attack takes effect.

use dart_analytics::{ChangeDetector, ChangeDetectorConfig, Verdict};
use dart_core::{run_trace, DartConfig};
use dart_packet::SECOND;
use dart_sim::scenario::{interception, AttackConfig};

fn main() {
    let cfg = AttackConfig::default();
    let trace = interception(cfg);
    eprintln!("attack trace: {} packets", trace.len());

    let (samples, _) = run_trace(DartConfig::default(), &trace.packets);
    eprintln!("samples: {}", samples.len());

    let mut det = ChangeDetector::new(ChangeDetectorConfig::default());
    let mut suspected_at = None;
    let mut confirmed_at = None;
    for s in &samples {
        match det.offer(s.rtt, s.ts) {
            Verdict::Suspected { baseline, observed } if suspected_at.is_none() => {
                suspected_at = Some((s.ts, baseline, observed));
            }
            Verdict::Confirmed {
                baseline,
                observed,
                samples_to_confirm,
            } if confirmed_at.is_none() => {
                confirmed_at = Some((s.ts, baseline, observed, samples_to_confirm));
            }
            _ => {}
        }
    }

    println!("Fig 8: interception-attack detection");
    println!();
    println!(
        "attack takes effect at t = {:.2} s (RTT {} -> {} ms)",
        cfg.attack_at as f64 / 1e9,
        cfg.normal_rtt / 1_000_000,
        cfg.attacked_rtt / 1_000_000
    );
    match suspected_at {
        Some((ts, base, obs)) => println!(
            "suspected  at t = {:.2} s (window min {:.1} -> {:.1} ms)",
            ts as f64 / 1e9,
            base as f64 / 1e6,
            obs as f64 / 1e6
        ),
        None => println!("suspected  : NEVER"),
    }
    match confirmed_at {
        Some((ts, base, obs, n)) => {
            // Count packet exchanges between attack effect and confirmation
            // — the paper's headline "63 packets".
            let pkts_between = trace
                .packets
                .iter()
                .filter(|p| p.ts >= cfg.attack_at && p.ts <= ts)
                .count();
            println!(
                "confirmed  at t = {:.2} s (window min {:.1} -> {:.1} ms, {n} samples)",
                ts as f64 / 1e9,
                base as f64 / 1e6,
                obs as f64 / 1e6
            );
            println!();
            println!("packets between attack effect and confirmation : {pkts_between} (paper: 63)");
            println!(
                "time    between attack effect and confirmation : {:.2} s (paper: 2.58 s)",
                (ts - cfg.attack_at) as f64 / 1e9
            );
            let within = ts - cfg.attack_at < 10 * SECOND;
            println!("confirmed within 10 s of effect: {within}");
        }
        None => println!("confirmed  : NEVER"),
    }
}
