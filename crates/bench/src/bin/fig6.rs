//! Fig. 6: CDF of internal-leg RTTs, wired vs wireless campus subnets.
//!
//! Paper: >80% of wired internal RTTs below 1 ms; <40% of wireless below
//! 1 ms; >20% of wireless above 20 ms.

use dart_analytics::RttDistribution;
use dart_bench::{standard_trace, TraceScale};
use dart_core::{run_trace, DartConfig, Leg};
use dart_packet::MILLISECOND;
use dart_sim::flowgen::is_wireless;

fn main() {
    let scale = TraceScale::from_env();
    let trace = standard_trace(scale);
    eprintln!(
        "trace: {} packets, {} conns",
        trace.len(),
        trace.conns.len()
    );

    // Internal leg: data inbound (server → client), ACKs outbound.
    let cfg = DartConfig::default()
        .with_leg(Leg::Internal)
        .with_rt(scale.rt_large())
        .with_pt(scale.pt_fixed() * 4, 1);
    let (samples, stats) = run_trace(cfg, &trace.packets);
    eprintln!(
        "internal-leg samples: {} ({} tracked)",
        samples.len(),
        stats.seq_tracked
    );

    // For the internal leg the data direction is server → campus client, so
    // the sample's flow.dst_ip is the campus client address.
    let mut wired = RttDistribution::new();
    let mut wireless = RttDistribution::new();
    for s in &samples {
        if is_wireless(s.flow.dst_ip) {
            wireless.push(s.rtt);
        } else {
            wired.push(s.rtt);
        }
    }

    println!("Fig 6: internal-leg RTT CDF by subnet (model vs paper)");
    println!();
    println!("samples: wired={} wireless={}", wired.len(), wireless.len());
    println!();
    println!("{:<14} {:>12} {:>12}", "CDF at", "wired", "wireless");
    for us in [500u64, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000] {
        println!(
            "{:<14} {:>11.1}% {:>11.1}%",
            format!("{} ms", us as f64 / 1000.0),
            wired.cdf_at(us * 1_000) * 100.0,
            wireless.cdf_at(us * 1_000) * 100.0
        );
    }
    println!();
    let w1 = wired.cdf_at(MILLISECOND) * 100.0;
    let wl1 = wireless.cdf_at(MILLISECOND) * 100.0;
    let wl20 = (1.0 - wireless.cdf_at(20 * MILLISECOND)) * 100.0;
    println!("paper: wired <1ms > 80%        | measured: {w1:.1}%");
    println!("paper: wireless <1ms < 40%     | measured: {wl1:.1}%");
    println!("paper: wireless >20ms > 20%    | measured: {wl20:.1}%");
}
