//! Fig. 9: Dart (unlimited memory) vs the tcptrace baseline — sample counts
//! (±SYN), RTT CDF, and the large-RTT CCDF tail.
//!
//! Paper: Dart(+SYN) 7.53M vs tcptrace(+SYN) 9.12M (82.6%); Dart(-SYN)
//! 7.21M vs tcptrace(-SYN) 8.66M (83.3%); medians 13–15 ms; p99 ≈ 215 ms
//! for both; tails converge out to 100 s.

use dart_analytics::RttDistribution;
use dart_bench::{run_fig9_variant, standard_trace, Fig9Variant, TraceScale};
use dart_packet::{MILLISECOND, SECOND};

fn main() {
    let scale = TraceScale::from_env();
    let trace = standard_trace(scale);
    eprintln!("trace: {} packets", trace.len());

    let tc_plus = run_fig9_variant(Fig9Variant::TcptracePlusSyn, &trace.packets);
    let tc_minus = run_fig9_variant(Fig9Variant::TcptraceMinusSyn, &trace.packets);
    let dart_plus = run_fig9_variant(Fig9Variant::DartPlusSyn, &trace.packets);
    let dart_minus = run_fig9_variant(Fig9Variant::DartMinusSyn, &trace.packets);

    println!("Fig 9a: RTT sample counts");
    println!();
    println!(
        "{:<18} {:>10} {:>10} {:>10}",
        "variant", "tcptrace", "Dart", "ratio"
    );
    println!(
        "{:<18} {:>10} {:>10} {:>9.1}%   (paper: 82.6%)",
        "+SYN",
        tc_plus.len(),
        dart_plus.len(),
        dart_plus.len() as f64 / tc_plus.len() as f64 * 100.0
    );
    println!(
        "{:<18} {:>10} {:>10} {:>9.1}%   (paper: 83.3%)",
        "-SYN",
        tc_minus.len(),
        dart_minus.len(),
        dart_minus.len() as f64 / tc_minus.len() as f64 * 100.0
    );

    let mut dists: Vec<(&str, RttDistribution)> = vec![
        (
            "tcptrace(+SYN)",
            RttDistribution::from_samples(tc_plus.iter().map(|s| s.rtt)),
        ),
        (
            "Dart(+SYN)",
            RttDistribution::from_samples(dart_plus.iter().map(|s| s.rtt)),
        ),
        (
            "tcptrace(-SYN)",
            RttDistribution::from_samples(tc_minus.iter().map(|s| s.rtt)),
        ),
        (
            "Dart(-SYN)",
            RttDistribution::from_samples(dart_minus.iter().map(|s| s.rtt)),
        ),
    ];

    println!();
    println!("Fig 9b: percentiles (ms)");
    println!();
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8}",
        "variant", "p50", "p90", "p95", "p99"
    );
    for (name, d) in dists.iter_mut() {
        let p = |d: &mut RttDistribution, q: f64| {
            d.percentile(q).map(|v| v as f64 / 1e6).unwrap_or(f64::NAN)
        };
        println!(
            "{name:<18} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            p(d, 50.0),
            p(d, 90.0),
            p(d, 95.0),
            p(d, 99.0)
        );
    }
    println!("(paper: medians 13-15 ms; p95 39-62 ms; p99 ~215 ms)");

    println!();
    println!("Fig 9b: CDF checkpoints");
    println!();
    print!("{:<18}", "variant");
    let checkpoints = [5u64, 10, 25, 50, 75, 100, 125];
    for c in checkpoints {
        print!(" {:>7}", format!("{c}ms"));
    }
    println!();
    for (name, d) in dists.iter_mut() {
        print!("{name:<18}");
        for c in checkpoints {
            print!(" {:>6.1}%", d.cdf_at(c * MILLISECOND) * 100.0);
        }
        println!();
    }

    println!();
    println!("Fig 9c: CCDF of large RTTs");
    println!();
    print!("{:<18}", "variant");
    let tails = [
        (100 * MILLISECOND, "100ms"),
        (250 * MILLISECOND, "250ms"),
        (SECOND, "1s"),
        (5 * SECOND, "5s"),
        (10 * SECOND, "10s"),
    ];
    for (_, label) in tails {
        print!(" {:>9}", label);
    }
    println!();
    for (name, d) in dists.iter_mut() {
        print!("{name:<18}");
        for (t, _) in tails {
            print!(" {:>8.3}%", d.ccdf_at(t) * 100.0);
        }
        println!();
    }
    println!("(paper: tails converge; multi-second keep-alive RTTs present in both tools)");
}
