//! Bufferbloat detection from continuous RTT streams (paper §7,
//! "Identifying bufferbloat").
//!
//! Bufferbloat manifests as sustained RTT inflation far above the path's
//! propagation delay while traffic flows. The detector keeps a long-horizon
//! baseline minimum (the propagation estimate) and flags windows whose
//! *median-ish* RTT (we use the window minimum, robust to outliers) exceeds
//! `inflation × baseline` for several consecutive windows.

use crate::minfilter::{MinFilter, Window};
use dart_packet::Nanos;

/// Detector configuration.
#[derive(Clone, Copy, Debug)]
pub struct BufferbloatConfig {
    /// Windowing for the local minimum (time-based is typical).
    pub window: Window,
    /// Inflation ratio over the baseline minimum that marks a bloated
    /// window (e.g. 5.0 — bufferbloat inflates RTTs by multiples).
    pub inflation: f64,
    /// Consecutive bloated windows required to raise an event.
    pub sustain: u32,
}

impl Default for BufferbloatConfig {
    fn default() -> Self {
        BufferbloatConfig {
            window: Window::Time(dart_packet::SECOND),
            inflation: 5.0,
            sustain: 3,
        }
    }
}

/// A detected bufferbloat episode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BloatEvent {
    /// Baseline (propagation) RTT estimate.
    pub baseline: Nanos,
    /// Minimum RTT of the confirming window — the sustained floor of the
    /// bloated period.
    pub inflated_min: Nanos,
    /// Timestamp at which the episode was confirmed.
    pub ts: Nanos,
}

/// Streaming bufferbloat detector.
#[derive(Clone, Debug)]
pub struct BufferbloatDetector {
    cfg: BufferbloatConfig,
    filter: MinFilter,
    baseline: Option<Nanos>,
    bloated_streak: u32,
    in_episode: bool,
}

impl BufferbloatDetector {
    /// Build a detector.
    pub fn new(cfg: BufferbloatConfig) -> BufferbloatDetector {
        BufferbloatDetector {
            filter: MinFilter::new(cfg.window),
            cfg,
            baseline: None,
            bloated_streak: 0,
            in_episode: false,
        }
    }

    /// The current propagation-delay estimate.
    pub fn baseline(&self) -> Option<Nanos> {
        self.baseline
    }

    /// True while inside a detected episode.
    pub fn in_episode(&self) -> bool {
        self.in_episode
    }

    /// Offer a raw RTT sample; returns an event when an episode is
    /// confirmed (once per episode).
    pub fn offer(&mut self, rtt: Nanos, ts: Nanos) -> Option<BloatEvent> {
        // The baseline tracks the global minimum: propagation delay.
        self.baseline = Some(self.baseline.map_or(rtt, |b| b.min(rtt)));
        let w = self.filter.offer(rtt, ts)?;
        let base = self.baseline.expect("baseline set above");
        let bloated = w.min_rtt as f64 > base as f64 * self.cfg.inflation;
        if bloated {
            self.bloated_streak += 1;
            if self.bloated_streak >= self.cfg.sustain && !self.in_episode {
                self.in_episode = true;
                return Some(BloatEvent {
                    baseline: base,
                    inflated_min: w.min_rtt,
                    ts: w.end_ts,
                });
            }
        } else {
            self.bloated_streak = 0;
            self.in_episode = false;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::MILLISECOND;

    fn det() -> BufferbloatDetector {
        BufferbloatDetector::new(BufferbloatConfig {
            window: Window::Count(4),
            inflation: 5.0,
            sustain: 2,
        })
    }

    #[test]
    fn steady_path_never_flags() {
        let mut d = det();
        for i in 0..100u64 {
            assert!(d.offer(20 * MILLISECOND, i).is_none());
        }
        assert_eq!(d.baseline(), Some(20 * MILLISECOND));
        assert!(!d.in_episode());
    }

    #[test]
    fn sustained_inflation_flags_once() {
        let mut d = det();
        for i in 0..8u64 {
            d.offer(20 * MILLISECOND, i); // establish 20 ms baseline
        }
        let mut events = 0;
        for i in 8..32u64 {
            if d.offer(200 * MILLISECOND, i).is_some() {
                events += 1;
            }
        }
        assert_eq!(events, 1, "one event per episode");
        assert!(d.in_episode());
    }

    #[test]
    fn transient_spike_does_not_flag() {
        let mut d = det();
        for i in 0..8u64 {
            d.offer(20 * MILLISECOND, i);
        }
        // One bloated window (4 samples), then recovery.
        for i in 8..12u64 {
            assert!(d.offer(300 * MILLISECOND, i).is_none());
        }
        for i in 12..24u64 {
            assert!(d.offer(20 * MILLISECOND, i).is_none());
        }
        assert!(!d.in_episode());
    }

    #[test]
    fn recovery_then_relapse_flags_again() {
        let mut d = det();
        for i in 0..8u64 {
            d.offer(20 * MILLISECOND, i);
        }
        let mut events = 0;
        for i in 8..24u64 {
            events += d.offer(200 * MILLISECOND, i).is_some() as u32;
        }
        for i in 24..32u64 {
            d.offer(20 * MILLISECOND, i); // recover
        }
        for i in 32..48u64 {
            events += d.offer(200 * MILLISECOND, i).is_some() as u32;
        }
        assert_eq!(events, 2);
    }
}
