//! Preemptive discard of useless samples (paper §3.3).
//!
//! When the analytics module only needs the *minimum* RTT per time window,
//! an evicted Packet Tracker record whose age already exceeds the window's
//! current minimum can never improve the result — recirculating it wastes
//! bandwidth. This module wires a shared windowed-minimum between a
//! [`SampleSink`] (updated by the engine's output) and a
//! [`dart_core::RecircFilter`] (consulted before each recirculation).

use dart_core::{PtRecord, RecircFilter, RttSample, SampleSink};
use dart_packet::Nanos;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug)]
struct MinWindow {
    window: Nanos,
    start: Nanos,
    min: Option<Nanos>,
}

impl MinWindow {
    fn roll(&mut self, now: Nanos) {
        if now.saturating_sub(self.start) >= self.window {
            self.start = now;
            self.min = None;
        }
    }

    fn observe(&mut self, rtt: Nanos, now: Nanos) {
        self.roll(now);
        self.min = Some(self.min.map_or(rtt, |m| m.min(rtt)));
    }
}

/// Updates the shared window minimum from the engine's sample stream.
/// Forwards every sample to an inner sink.
pub struct MinTrackingSink<S> {
    shared: Rc<RefCell<MinWindow>>,
    inner: S,
}

impl<S: SampleSink> SampleSink for MinTrackingSink<S> {
    fn on_sample(&mut self, sample: RttSample) {
        self.shared.borrow_mut().observe(sample.rtt, sample.ts);
        self.inner.on_sample(sample);
    }
}

impl<S> MinTrackingSink<S> {
    /// The wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Current window minimum (None right after a window rolled).
    pub fn current_min(&self) -> Option<Nanos> {
        self.shared.borrow().min
    }
}

/// The [`RecircFilter`]: drop evicted records that cannot beat the current
/// window minimum.
pub struct PreemptiveDiscard {
    shared: Rc<RefCell<MinWindow>>,
    dropped: u64,
}

impl RecircFilter for PreemptiveDiscard {
    fn should_recirculate(&mut self, rec: &PtRecord, now: Nanos) -> bool {
        let mut w = self.shared.borrow_mut();
        w.roll(now);
        match w.min {
            // The record's eventual sample is at least its current age; if
            // that already exceeds the window minimum it is useless.
            Some(m) => {
                let useful = now.saturating_sub(rec.ts) < m;
                if !useful {
                    self.dropped += 1;
                }
                useful
            }
            None => true,
        }
    }
}

/// Create a linked (sink, filter) pair sharing one windowed minimum of
/// `window` nanoseconds. Wrap your sample sink with the returned
/// [`MinTrackingSink`] and hand the [`PreemptiveDiscard`] to
/// [`dart_core::DartEngine::with_filter`].
pub fn min_discard_pair<S: SampleSink>(
    window: Nanos,
    inner: S,
) -> (MinTrackingSink<S>, PreemptiveDiscard) {
    let shared = Rc::new(RefCell::new(MinWindow {
        window,
        start: 0,
        min: None,
    }));
    (
        MinTrackingSink {
            shared: shared.clone(),
            inner,
        },
        PreemptiveDiscard { shared, dropped: 0 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{FlowKey, SeqNum, SignatureWidth};

    fn sample(rtt: Nanos, ts: Nanos) -> RttSample {
        RttSample::new(FlowKey::from_raw(1, 2, 3, 4), SeqNum(1), rtt, ts)
    }

    fn rec(ts: Nanos) -> PtRecord {
        PtRecord {
            sig: FlowKey::from_raw(1, 2, 3, 4).signature(SignatureWidth::W32),
            eack: SeqNum(1),
            ts,
            trips: 0,
        }
    }

    #[test]
    fn no_min_yet_recirculates_everything() {
        let (_sink, mut filter) = min_discard_pair(1_000_000, Vec::new());
        assert!(filter.should_recirculate(&rec(0), 999));
    }

    #[test]
    fn old_records_dropped_once_min_known() {
        let (mut sink, mut filter) = min_discard_pair(1_000_000_000, Vec::new());
        sink.on_sample(sample(10_000, 100)); // window min = 10 µs
                                             // Record aged 50 µs can only yield ≥ 50 µs: useless.
        assert!(!filter.should_recirculate(&rec(0), 50_000));
        // Record aged 5 µs could still beat 10 µs: keep it.
        assert!(filter.should_recirculate(&rec(46_000), 51_000));
    }

    #[test]
    fn window_roll_resets_min() {
        let (mut sink, mut filter) = min_discard_pair(1_000, Vec::new());
        sink.on_sample(sample(10, 0));
        // Far beyond the window: the min no longer applies.
        assert!(filter.should_recirculate(&rec(0), 1_000_000));
    }

    #[test]
    fn sink_forwards_samples() {
        let (mut sink, _f) = min_discard_pair(1_000, Vec::new());
        sink.on_sample(sample(5, 1));
        sink.on_sample(sample(7, 2));
        assert_eq!(sink.current_min(), Some(5));
        assert_eq!(sink.into_inner().len(), 2);
    }
}
