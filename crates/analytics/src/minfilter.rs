//! Windowed min-filtering of RTT samples (paper §3.3).
//!
//! Tracking the minimum RTT over a window separates propagation delay from
//! transient queueing and end-host delays (delayed ACKs, §7). The filter can
//! window either by **sample count** (Fig. 8 uses windows of 8 consecutive
//! samples) or by **time**.

use dart_packet::Nanos;

/// How a window closes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Window {
    /// Close after `n` samples.
    Count(u32),
    /// Close when a sample arrives `d` nanoseconds or more after the
    /// window opened.
    Time(Nanos),
}

/// A closed window's summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowMin {
    /// Minimum RTT observed in the window.
    pub min_rtt: Nanos,
    /// Samples in the window.
    pub count: u32,
    /// Timestamp of the first sample in the window.
    pub start_ts: Nanos,
    /// Timestamp of the last sample in the window.
    pub end_ts: Nanos,
}

/// Streaming windowed-minimum filter.
#[derive(Clone, Debug)]
pub struct MinFilter {
    window: Window,
    current_min: Nanos,
    count: u32,
    start_ts: Nanos,
    last_ts: Nanos,
}

impl MinFilter {
    /// Create a filter with the given windowing policy.
    pub fn new(window: Window) -> MinFilter {
        if let Window::Count(n) = window {
            assert!(n > 0, "count window must be positive");
        }
        MinFilter {
            window,
            current_min: Nanos::MAX,
            count: 0,
            start_ts: 0,
            last_ts: 0,
        }
    }

    /// The running minimum of the *open* window (`None` when empty).
    pub fn current_min(&self) -> Option<Nanos> {
        (self.count > 0).then_some(self.current_min)
    }

    /// Samples in the open window.
    pub fn current_count(&self) -> u32 {
        self.count
    }

    /// Offer a sample; returns the closed window's summary when this sample
    /// completes (count mode) or begins a new window (time mode).
    pub fn offer(&mut self, rtt: Nanos, ts: Nanos) -> Option<WindowMin> {
        match self.window {
            Window::Count(n) => {
                if self.count == 0 {
                    self.start_ts = ts;
                    self.current_min = Nanos::MAX;
                }
                self.current_min = self.current_min.min(rtt);
                self.count += 1;
                self.last_ts = ts;
                if self.count >= n {
                    let out = WindowMin {
                        min_rtt: self.current_min,
                        count: self.count,
                        start_ts: self.start_ts,
                        end_ts: ts,
                    };
                    self.count = 0;
                    Some(out)
                } else {
                    None
                }
            }
            Window::Time(d) => {
                let mut closed = None;
                if self.count > 0 && ts.saturating_sub(self.start_ts) >= d {
                    closed = Some(WindowMin {
                        min_rtt: self.current_min,
                        count: self.count,
                        start_ts: self.start_ts,
                        end_ts: self.last_ts,
                    });
                    self.count = 0;
                }
                if self.count == 0 {
                    self.start_ts = ts;
                    self.current_min = Nanos::MAX;
                }
                self.current_min = self.current_min.min(rtt);
                self.count += 1;
                self.last_ts = ts;
                closed
            }
        }
    }

    /// Close and return the open window, if any (end of stream).
    pub fn flush(&mut self) -> Option<WindowMin> {
        if self.count == 0 {
            return None;
        }
        let out = WindowMin {
            min_rtt: self.current_min,
            count: self.count,
            start_ts: self.start_ts,
            end_ts: self.last_ts,
        };
        self.count = 0;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_window_closes_on_nth_sample() {
        let mut f = MinFilter::new(Window::Count(3));
        assert!(f.offer(30, 1).is_none());
        assert!(f.offer(10, 2).is_none());
        let w = f.offer(20, 3).unwrap();
        assert_eq!(w.min_rtt, 10);
        assert_eq!(w.count, 3);
        assert_eq!(w.start_ts, 1);
        assert_eq!(w.end_ts, 3);
        // Next window starts fresh.
        assert!(f.offer(99, 4).is_none());
        assert_eq!(f.current_min(), Some(99));
    }

    #[test]
    fn time_window_closes_on_elapsed() {
        let mut f = MinFilter::new(Window::Time(100));
        assert!(f.offer(50, 0).is_none());
        assert!(f.offer(40, 60).is_none());
        // 150 - 0 >= 100: previous window closes, this sample opens the next.
        let w = f.offer(70, 150).unwrap();
        assert_eq!(w.min_rtt, 40);
        assert_eq!(w.count, 2);
        assert_eq!(f.current_min(), Some(70));
    }

    #[test]
    fn flush_returns_partial_window() {
        let mut f = MinFilter::new(Window::Count(8));
        f.offer(25, 1);
        f.offer(15, 2);
        let w = f.flush().unwrap();
        assert_eq!(w.min_rtt, 15);
        assert_eq!(w.count, 2);
        assert!(f.flush().is_none());
    }

    #[test]
    fn empty_filter_has_no_min() {
        let f = MinFilter::new(Window::Count(8));
        assert_eq!(f.current_min(), None);
        assert_eq!(f.current_count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_count_window_rejected() {
        MinFilter::new(Window::Count(0));
    }
}
