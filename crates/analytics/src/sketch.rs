//! A P²-style streaming quantile sketch: constant-memory percentile
//! estimation suitable for control planes that cannot afford to buffer the
//! full RTT sample stream (the paper's operators want p50/p95/p99 per
//! prefix — millions of flows, bounded memory).
//!
//! Implements the Jain–Chlamtac P² algorithm: five markers whose heights
//! approximate the quantile via piecewise-parabolic interpolation. Error is
//! typically well under a few percent on unimodal distributions; the exact
//! [`crate::dist::RttDistribution`] remains the ground truth in tests.

use dart_packet::Nanos;

// Frequency sketches live in `dart_core::sketch` (the flow-state backends
// use them on the hot path); analytics re-exports them so control-plane
// code has a single home for every sketch and no second implementation.
pub use dart_core::sketch::{CountMinSketch, HeavyHitters};

/// Streaming estimator of a single quantile `q` in (0, 1).
#[derive(Clone, Debug)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (the sample-value estimates).
    heights: [f64; 5],
    /// Marker positions (1-based sample ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Samples seen so far.
    count: u64,
    /// Initialization buffer (first five samples).
    init: Vec<f64>,
}

impl P2Quantile {
    /// Track quantile `q` (e.g. 0.5, 0.95, 0.99).
    pub fn new(q: f64) -> P2Quantile {
        assert!((0.0..1.0).contains(&q) && q > 0.0, "q must be in (0, 1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// The tracked quantile.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Offer one observation.
    pub fn offer(&mut self, value: Nanos) {
        let x = value as f64;
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init.sort_by(|a, b| a.partial_cmp(b).unwrap());
                for (i, v) in self.init.iter().enumerate() {
                    self.heights[i] = *v;
                }
            }
            return;
        }

        // Find the cell k containing x and clamp extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust the three middle markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (qm, qi, qp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, ni, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        qi + d / (np - nm)
            * ((ni - nm + d) * (qp - qi) / (np - ni) + (np - ni - d) * (qi - qm) / (ni - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate (`None` before five samples).
    pub fn estimate(&self) -> Option<Nanos> {
        if self.init.len() < 5 {
            if self.init.is_empty() {
                return None;
            }
            // Small-sample fallback: nearest rank over the buffer.
            let mut v = self.init.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let rank = ((self.q * v.len() as f64).ceil() as usize).clamp(1, v.len());
            return Some(v[rank - 1] as Nanos);
        }
        Some(self.heights[2].max(0.0) as Nanos)
    }
}

/// A bundle of the operator's standard quantiles (p50/p95/p99) in fixed
/// memory.
#[derive(Clone, Debug)]
pub struct RttQuantiles {
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl RttQuantiles {
    /// Fresh estimator bundle.
    pub fn new() -> RttQuantiles {
        RttQuantiles {
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Offer one RTT sample.
    pub fn offer(&mut self, rtt: Nanos) {
        self.p50.offer(rtt);
        self.p95.offer(rtt);
        self.p99.offer(rtt);
    }

    /// Current `(p50, p95, p99)` estimates.
    pub fn estimates(&self) -> (Option<Nanos>, Option<Nanos>, Option<Nanos>) {
        (
            self.p50.estimate(),
            self.p95.estimate(),
            self.p99.estimate(),
        )
    }
}

impl Default for RttQuantiles {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::RttDistribution;

    fn lcg(n: usize, f: impl Fn(u64) -> Nanos) -> Vec<Nanos> {
        let mut x = 0x2545F4914F6CDD1Du64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                f(x)
            })
            .collect()
    }

    #[test]
    fn tracks_exact_quantiles_within_tolerance() {
        // Unimodal skewed stream: sum of two uniforms plus a soft tail —
        // the regime where P² is accurate.
        let stream = lcg(50_000, |x| {
            5_000_000 + (x % 30_000_000) + ((x >> 17) % 30_000_000)
        });
        let mut sketch = RttQuantiles::new();
        let mut exact = RttDistribution::new();
        for &v in &stream {
            sketch.offer(v);
            exact.push(v);
        }
        let (p50, p95, p99) = sketch.estimates();
        for (est, pct) in [(p50, 50.0), (p95, 95.0), (p99, 99.0)] {
            let e = est.unwrap() as f64;
            let x = exact.percentile(pct).unwrap() as f64;
            let rel = (e - x).abs() / x;
            assert!(rel < 0.05, "p{pct}: sketch {e} vs exact {x} ({rel:.3})");
        }
    }

    #[test]
    fn bimodal_cliff_is_bracketed_not_exact() {
        // A mass spike at ~1% (keep-alive giants) puts p99 on a cliff; P²
        // interpolates across it. Document the limitation: the estimate
        // still lands between the exact p95 and the exact maximum.
        let stream = lcg(50_000, |x| {
            let base = 5_000_000 + (x % 45_000_000);
            if x % 97 == 0 {
                base + 200_000_000
            } else {
                base
            }
        });
        let mut sketch = P2Quantile::new(0.99);
        let mut exact = RttDistribution::new();
        for &v in &stream {
            sketch.offer(v);
            exact.push(v);
        }
        let est = sketch.estimate().unwrap();
        assert!(est > exact.percentile(95.0).unwrap());
        assert!(est < exact.percentile(100.0).unwrap());
    }

    #[test]
    fn small_sample_fallback_is_exact() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), None);
        for v in [30, 10, 20] {
            q.offer(v);
        }
        assert_eq!(q.estimate(), Some(20));
    }

    #[test]
    fn monotone_input_converges() {
        let mut q = P2Quantile::new(0.9);
        for v in 1..=10_000u64 {
            q.offer(v);
        }
        let est = q.estimate().unwrap() as f64;
        assert!((est - 9_000.0).abs() < 300.0, "estimate {est}");
    }

    #[test]
    fn constant_input_is_exact() {
        let mut q = P2Quantile::new(0.95);
        for _ in 0..1000 {
            q.offer(777);
        }
        assert_eq!(q.estimate(), Some(777));
    }

    #[test]
    #[should_panic(expected = "q must be in")]
    fn zero_quantile_rejected() {
        P2Quantile::new(0.0);
    }

    #[test]
    fn count_tracks_offers() {
        let mut q = P2Quantile::new(0.5);
        for v in 0..7u64 {
            q.offer(v);
        }
        assert_eq!(q.count(), 7);
    }
}
