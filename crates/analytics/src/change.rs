//! Threshold-based change detection over windowed minimum RTTs — the
//! interception-attack detector of paper §5.2 / Fig. 8.
//!
//! The detector computes the minimum RTT over windows of consecutive raw
//! samples. An attack is **suspected** when the window minimum rises
//! abruptly relative to the previous window, and **confirmed** only when the
//! rise sustains for one more window.

use crate::minfilter::{MinFilter, Window};
use dart_packet::Nanos;

/// Detector configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChangeDetectorConfig {
    /// Samples per window (the paper uses 8).
    pub window: u32,
    /// Multiplicative rise that triggers suspicion: a window min above
    /// `ratio × baseline` is abnormal (e.g. 2.0 = doubling).
    pub ratio: f64,
    /// Additive guard: the rise must also exceed this many nanoseconds
    /// (suppresses alarms on tiny baselines).
    pub min_rise: Nanos,
}

impl Default for ChangeDetectorConfig {
    fn default() -> Self {
        ChangeDetectorConfig {
            window: 8,
            ratio: 2.0,
            min_rise: 5 * dart_packet::MILLISECOND,
        }
    }
}

/// Detector state/output per offered sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Nothing notable.
    Normal,
    /// A window closed with an abrupt min-RTT rise: attack suspected
    /// (the orange star in Fig. 8).
    Suspected {
        /// Baseline (previous window's) min RTT.
        baseline: Nanos,
        /// The abnormal window's min RTT.
        observed: Nanos,
    },
    /// The rise sustained for a second window: attack confirmed
    /// (the red star in Fig. 8).
    Confirmed {
        /// Baseline min RTT before the rise.
        baseline: Nanos,
        /// The confirming window's min RTT.
        observed: Nanos,
        /// Raw samples observed between the first abnormal sample and
        /// confirmation — the paper's "63 packets" headline metric counts
        /// packet exchanges; samples are the detector's view of it.
        samples_to_confirm: u64,
    },
}

/// The windowed min-RTT change detector.
#[derive(Clone, Debug)]
pub struct ChangeDetector {
    cfg: ChangeDetectorConfig,
    filter: MinFilter,
    baseline: Option<Nanos>,
    suspect: Option<Nanos>, // baseline at suspicion time
    samples_seen: u64,
    suspect_sample_idx: u64,
}

impl ChangeDetector {
    /// Build a detector.
    pub fn new(cfg: ChangeDetectorConfig) -> ChangeDetector {
        ChangeDetector {
            filter: MinFilter::new(Window::Count(cfg.window)),
            cfg,
            baseline: None,
            suspect: None,
            samples_seen: 0,
            suspect_sample_idx: 0,
        }
    }

    /// Raw samples offered so far.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Current baseline window minimum, if established.
    pub fn baseline(&self) -> Option<Nanos> {
        self.baseline
    }

    fn abnormal(&self, baseline: Nanos, observed: Nanos) -> bool {
        observed as f64 > baseline as f64 * self.cfg.ratio
            && observed.saturating_sub(baseline) >= self.cfg.min_rise
    }

    /// Offer one raw RTT sample.
    pub fn offer(&mut self, rtt: Nanos, ts: Nanos) -> Verdict {
        self.samples_seen += 1;
        let Some(w) = self.filter.offer(rtt, ts) else {
            return Verdict::Normal;
        };
        match (self.baseline, self.suspect) {
            (None, _) => {
                self.baseline = Some(w.min_rtt);
                Verdict::Normal
            }
            (Some(base), None) => {
                if self.abnormal(base, w.min_rtt) {
                    self.suspect = Some(base);
                    self.suspect_sample_idx =
                        self.samples_seen.saturating_sub(self.cfg.window as u64);
                    Verdict::Suspected {
                        baseline: base,
                        observed: w.min_rtt,
                    }
                } else {
                    self.baseline = Some(w.min_rtt);
                    Verdict::Normal
                }
            }
            (Some(_), Some(suspect_base)) => {
                if self.abnormal(suspect_base, w.min_rtt) {
                    // Sustained: confirm, and adopt the new level as the
                    // baseline so a return to normal can be detected too.
                    self.suspect = None;
                    self.baseline = Some(w.min_rtt);
                    Verdict::Confirmed {
                        baseline: suspect_base,
                        observed: w.min_rtt,
                        samples_to_confirm: self.samples_seen - self.suspect_sample_idx,
                    }
                } else {
                    // A transient outlier window: rescind suspicion.
                    self.suspect = None;
                    self.baseline = Some(w.min_rtt);
                    Verdict::Normal
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::MILLISECOND;

    fn det() -> ChangeDetector {
        ChangeDetector::new(ChangeDetectorConfig {
            window: 4,
            ratio: 2.0,
            min_rise: MILLISECOND,
        })
    }

    fn feed(d: &mut ChangeDetector, rtt_ms: u64, n: u32) -> Vec<Verdict> {
        (0..n)
            .map(|i| d.offer(rtt_ms * MILLISECOND, i as u64))
            .collect()
    }

    #[test]
    fn steady_rtt_never_alarms() {
        let mut d = det();
        for v in feed(&mut d, 25, 40) {
            assert_eq!(v, Verdict::Normal);
        }
    }

    #[test]
    fn step_change_suspected_then_confirmed() {
        let mut d = det();
        feed(&mut d, 25, 8); // two baseline windows
        let verdicts = feed(&mut d, 120, 8); // attack takes effect
        let suspected = verdicts
            .iter()
            .filter(|v| matches!(v, Verdict::Suspected { .. }))
            .count();
        let confirmed: Vec<_> = verdicts
            .iter()
            .filter_map(|v| match v {
                Verdict::Confirmed {
                    baseline,
                    observed,
                    samples_to_confirm,
                } => Some((*baseline, *observed, *samples_to_confirm)),
                _ => None,
            })
            .collect();
        assert_eq!(suspected, 1);
        assert_eq!(confirmed.len(), 1);
        let (base, obs, n) = confirmed[0];
        assert_eq!(base, 25 * MILLISECOND);
        assert_eq!(obs, 120 * MILLISECOND);
        // Suspected after one window, confirmed after the next: 8 samples.
        assert_eq!(n, 8);
    }

    #[test]
    fn single_outlier_window_rescinds() {
        let mut d = det();
        feed(&mut d, 25, 8);
        feed(&mut d, 120, 4); // one bad window → suspected
        let verdicts = feed(&mut d, 25, 8); // back to normal
        assert!(verdicts
            .iter()
            .all(|v| !matches!(v, Verdict::Confirmed { .. })));
    }

    #[test]
    fn small_rises_below_guard_ignored() {
        let mut d = ChangeDetector::new(ChangeDetectorConfig {
            window: 4,
            ratio: 1.1,
            min_rise: 50 * MILLISECOND,
        });
        feed(&mut d, 10, 8);
        // 10 → 15 ms rise: above ratio but below the 50 ms guard.
        for v in feed(&mut d, 15, 8) {
            assert_eq!(v, Verdict::Normal);
        }
    }

    #[test]
    fn baseline_tracks_downward_shifts() {
        let mut d = det();
        feed(&mut d, 100, 8);
        feed(&mut d, 20, 8); // improvement: no alarm, baseline follows
        assert_eq!(d.baseline(), Some(20 * MILLISECOND));
        // A later rise is judged against the NEW baseline.
        let verdicts = feed(&mut d, 100, 8);
        assert!(verdicts
            .iter()
            .any(|v| matches!(v, Verdict::Suspected { .. })));
    }
}
