//! # dart-analytics
//!
//! The analytics module of the Dart architecture (paper Fig. 3, §3.3):
//! consumers of the engine's RTT sample stream.
//!
//! * [`minfilter`] — windowed minimum RTT (propagation-delay tracking);
//! * [`change`] — the suspect/confirm interception-attack detector (Fig. 8);
//! * [`congestion`] — collapse-frequency congestion monitoring (§3.1) and
//!   optimistic-ACK reporting (§7) over the engine's event stream;
//! * [`prefix`] — per-remote-prefix aggregation (§3.1/§3.3);
//! * [`discard`] — the preemptive useless-sample discard hook wired into the
//!   engine's recirculation path (§3.3);
//! * [`bufferbloat`] — sustained-inflation detection (§7);
//! * [`dist`] — percentiles, CDF/CCDF tables, and the §6.2 RTT-collection-
//!   error metrics the benchmark harness reports;
//! * [`sketch`] — constant-memory P² quantile estimation for
//!   control planes that cannot buffer the full sample stream.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bufferbloat;
pub mod change;
pub mod congestion;
pub mod discard;
pub mod dist;
pub mod minfilter;
pub mod prefix;
pub mod sketch;

pub use bufferbloat::{BloatEvent, BufferbloatConfig, BufferbloatDetector};
pub use change::{ChangeDetector, ChangeDetectorConfig, Verdict};
pub use congestion::{CongestionAlert, CongestionConfig, CongestionMonitor, OptimisticAckReporter};
pub use discard::{min_discard_pair, MinTrackingSink, PreemptiveDiscard};
pub use dist::{collection_error_at, max_error_5_to_95, RttDistribution};
pub use minfilter::{MinFilter, Window, WindowMin};
pub use prefix::{Prefix, PrefixAggregator};
pub use sketch::{CountMinSketch, HeavyHitters, P2Quantile, RttQuantiles};
