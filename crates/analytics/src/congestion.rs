//! Congestion and misbehavior monitors over the engine's event stream
//! (paper §3.1: collapse frequency as a congestion indicator; §7:
//! optimistic-ACK detection).

use dart_core::EngineEvent;
use dart_packet::{FlowKey, Nanos};
use std::collections::HashMap;

/// Configuration of the collapse-frequency congestion monitor.
#[derive(Clone, Copy, Debug)]
pub struct CongestionConfig {
    /// Sliding window length.
    pub window: Nanos,
    /// Collapses within one window that flag a flow as congested.
    pub collapse_threshold: u32,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        CongestionConfig {
            window: dart_packet::SECOND,
            collapse_threshold: 4,
        }
    }
}

/// A flagged congestion episode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CongestionAlert {
    /// The congested flow.
    pub flow: FlowKey,
    /// Collapses observed in the window.
    pub collapses: u32,
    /// When the threshold was crossed.
    pub ts: Nanos,
}

#[derive(Default)]
struct FlowWindow {
    events: std::collections::VecDeque<Nanos>,
    alerted_in_window: bool,
}

/// Tracks range-collapse frequency per flow (the §3.1 congestion signal).
pub struct CongestionMonitor {
    cfg: CongestionConfig,
    flows: HashMap<FlowKey, FlowWindow>,
    total_collapses: u64,
}

impl CongestionMonitor {
    /// Build a monitor.
    pub fn new(cfg: CongestionConfig) -> CongestionMonitor {
        CongestionMonitor {
            cfg,
            flows: HashMap::new(),
            total_collapses: 0,
        }
    }

    /// Total collapses observed.
    pub fn total_collapses(&self) -> u64 {
        self.total_collapses
    }

    /// Offer an engine event; returns an alert when a flow crosses the
    /// threshold (once per window).
    pub fn offer(&mut self, ev: &EngineEvent) -> Option<CongestionAlert> {
        let EngineEvent::RangeCollapse { flow, ts, .. } = ev else {
            return None;
        };
        self.total_collapses += 1;
        let fw = self.flows.entry(flow.canonical()).or_default();
        fw.events.push_back(*ts);
        let horizon = ts.saturating_sub(self.cfg.window);
        while fw.events.front().is_some_and(|t| *t < horizon) {
            fw.events.pop_front();
            fw.alerted_in_window = false;
        }
        if fw.events.len() as u32 >= self.cfg.collapse_threshold && !fw.alerted_in_window {
            fw.alerted_in_window = true;
            return Some(CongestionAlert {
                flow: *flow,
                collapses: fw.events.len() as u32,
                ts: *ts,
            });
        }
        None
    }

    /// Collapse count currently inside each flow's window.
    pub fn snapshot(&self) -> Vec<(FlowKey, u32)> {
        let mut v: Vec<_> = self
            .flows
            .iter()
            .map(|(f, w)| (*f, w.events.len() as u32))
            .collect();
        v.sort_by_key(|(f, _)| *f);
        v
    }
}

/// Flags flows sending optimistic ACKs (§7: misbehaving receivers
/// manipulating the sender; one ACK beyond the edge can be a glitch, a
/// pattern is an attack).
pub struct OptimisticAckReporter {
    threshold: u32,
    counts: HashMap<FlowKey, u32>,
}

impl OptimisticAckReporter {
    /// Flag a flow after `threshold` optimistic ACKs.
    pub fn new(threshold: u32) -> OptimisticAckReporter {
        assert!(threshold > 0);
        OptimisticAckReporter {
            threshold,
            counts: HashMap::new(),
        }
    }

    /// Offer an engine event; returns the flow when it crosses the
    /// threshold (exactly once).
    pub fn offer(&mut self, ev: &EngineEvent) -> Option<FlowKey> {
        let EngineEvent::OptimisticAck { flow, .. } = ev else {
            return None;
        };
        let c = self.counts.entry(flow.canonical()).or_insert(0);
        *c += 1;
        (*c == self.threshold).then_some(*flow)
    }

    /// All flows and their optimistic-ACK counts.
    pub fn counts(&self) -> Vec<(FlowKey, u32)> {
        let mut v: Vec<_> = self.counts.iter().map(|(f, c)| (*f, *c)).collect();
        v.sort_by_key(|(f, _)| *f);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{MILLISECOND, SECOND};

    fn flow() -> FlowKey {
        FlowKey::from_raw(0x0a08_0001, 40400, 0x5db8_d822, 443)
    }

    fn collapse(ts: Nanos) -> EngineEvent {
        EngineEvent::RangeCollapse {
            flow: flow(),
            ts,
            from_retransmission: true,
        }
    }

    #[test]
    fn threshold_crossing_alerts_once_per_window() {
        let mut m = CongestionMonitor::new(CongestionConfig {
            window: SECOND,
            collapse_threshold: 3,
        });
        assert!(m.offer(&collapse(0)).is_none());
        assert!(m.offer(&collapse(100 * MILLISECOND)).is_none());
        let alert = m.offer(&collapse(200 * MILLISECOND)).expect("alert");
        assert_eq!(alert.collapses, 3);
        // Further collapses in the same window stay quiet.
        assert!(m.offer(&collapse(300 * MILLISECOND)).is_none());
        assert_eq!(m.total_collapses(), 4);
    }

    #[test]
    fn window_expiry_rearms_the_alert() {
        let mut m = CongestionMonitor::new(CongestionConfig {
            window: SECOND,
            collapse_threshold: 2,
        });
        m.offer(&collapse(0));
        assert!(m.offer(&collapse(1)).is_some());
        // Two seconds later: old events expired; a fresh burst alerts again.
        assert!(m.offer(&collapse(2 * SECOND)).is_none());
        assert!(m.offer(&collapse(2 * SECOND + 1)).is_some());
    }

    #[test]
    fn both_collapse_causes_count() {
        let mut m = CongestionMonitor::new(CongestionConfig {
            window: SECOND,
            collapse_threshold: 2,
        });
        m.offer(&EngineEvent::RangeCollapse {
            flow: flow(),
            ts: 0,
            from_retransmission: false,
        });
        assert!(m.offer(&collapse(1)).is_some());
    }

    #[test]
    fn optimistic_reporter_flags_exactly_once() {
        let mut r = OptimisticAckReporter::new(3);
        let ev = EngineEvent::OptimisticAck {
            flow: flow(),
            ts: 0,
        };
        assert!(r.offer(&ev).is_none());
        assert!(r.offer(&ev).is_none());
        assert_eq!(r.offer(&ev), Some(flow()));
        assert!(r.offer(&ev).is_none(), "flag only once");
        assert_eq!(r.counts()[0].1, 4);
    }

    #[test]
    fn non_matching_events_ignored() {
        let mut m = CongestionMonitor::new(CongestionConfig::default());
        let mut r = OptimisticAckReporter::new(1);
        let opt = EngineEvent::OptimisticAck {
            flow: flow(),
            ts: 0,
        };
        assert!(m.offer(&opt).is_none());
        assert!(r.offer(&collapse(0)).is_none());
    }
}
