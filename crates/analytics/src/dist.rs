//! Distribution utilities: percentiles, CDF/CCDF tables, and the paper's
//! RTT-collection-error metric (§6.2).

use dart_packet::Nanos;

/// A collected set of RTT samples with percentile/CDF queries.
///
/// Sorting is deferred and cached; pushes invalidate the cache.
#[derive(Clone, Debug, Default)]
pub struct RttDistribution {
    samples: Vec<Nanos>,
    sorted: bool,
}

impl RttDistribution {
    /// Empty distribution.
    pub fn new() -> RttDistribution {
        RttDistribution::default()
    }

    /// Build from raw samples.
    pub fn from_samples(samples: impl IntoIterator<Item = Nanos>) -> RttDistribution {
        let mut d = RttDistribution {
            samples: samples.into_iter().collect(),
            sorted: false,
        };
        d.ensure_sorted();
        d
    }

    /// Add one sample.
    pub fn push(&mut self, rtt: Nanos) {
        self.samples.push(rtt);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (0 < p ≤ 100), nearest-rank method.
    pub fn percentile(&mut self, p: f64) -> Option<Nanos> {
        if self.samples.is_empty() {
            return None;
        }
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<Nanos> {
        self.percentile(50.0)
    }

    /// Fraction of samples ≤ `x` (the empirical CDF).
    pub fn cdf_at(&mut self, x: Nanos) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// Fraction of samples > `x` (the CCDF, Fig. 9c's tail view).
    pub fn ccdf_at(&mut self, x: Nanos) -> f64 {
        1.0 - self.cdf_at(x)
    }

    /// Evenly spaced CDF table over `[lo, hi]` with `points` rows — the
    /// series a Fig. 6/9b plot draws.
    pub fn cdf_table(&mut self, lo: Nanos, hi: Nanos, points: usize) -> Vec<(Nanos, f64)> {
        assert!(points >= 2 && hi > lo);
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) / (points as u64 - 1) * i as u64;
                (x, self.cdf_at(x))
            })
            .collect()
    }
}

/// The paper's **RTT collection error** at percentile `p` (§6.2): the
/// difference between the baseline's and Dart's `p`-th percentile RTT,
/// normalized by the baseline's. Positive = Dart underestimates.
pub fn collection_error_at(
    baseline: &mut RttDistribution,
    dart: &mut RttDistribution,
    p: f64,
) -> Option<f64> {
    let b = baseline.percentile(p)? as f64;
    let d = dart.percentile(p)? as f64;
    if b == 0.0 {
        return Some(0.0);
    }
    Some((b - d) / b)
}

/// The paper's worst-case accuracy metric: the maximum |error| over integer
/// percentiles 5..=95, returned signed (the signed error whose magnitude is
/// largest).
pub fn max_error_5_to_95(
    baseline: &mut RttDistribution,
    dart: &mut RttDistribution,
) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for p in 5..=95 {
        let e = collection_error_at(baseline, dart, p as f64)?;
        if worst.is_none_or(|w| e.abs() > w.abs()) {
            worst = Some(e);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(vals: &[u64]) -> RttDistribution {
        RttDistribution::from_samples(vals.iter().copied())
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut d = dist(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(d.percentile(50.0), Some(50));
        assert_eq!(d.percentile(95.0), Some(100));
        assert_eq!(d.percentile(10.0), Some(10));
        assert_eq!(d.percentile(100.0), Some(100));
    }

    #[test]
    fn empty_distribution_answers_none() {
        let mut d = RttDistribution::new();
        assert_eq!(d.percentile(50.0), None);
        assert_eq!(d.cdf_at(100), 0.0);
        assert!(d.is_empty());
    }

    #[test]
    fn cdf_and_ccdf_complement() {
        let mut d = dist(&[1, 2, 3, 4]);
        assert!((d.cdf_at(2) - 0.5).abs() < 1e-12);
        assert!((d.ccdf_at(2) - 0.5).abs() < 1e-12);
        assert_eq!(d.cdf_at(0), 0.0);
        assert_eq!(d.cdf_at(4), 1.0);
    }

    #[test]
    fn push_invalidates_sort_cache() {
        let mut d = dist(&[5, 1]);
        assert_eq!(d.median(), Some(1));
        d.push(0);
        assert_eq!(d.percentile(100.0 / 3.0), Some(0));
    }

    #[test]
    fn cdf_table_spans_range() {
        let mut d = dist(&[10, 20, 30]);
        let t = d.cdf_table(0, 30, 4);
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], (0, 0.0));
        assert_eq!(t[3].0, 30);
        assert!((t[3].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collection_error_signs() {
        // Dart underestimating → positive error.
        let mut base = dist(&[100; 10]);
        let mut dart = dist(&[80; 10]);
        let e = collection_error_at(&mut base, &mut dart, 50.0).unwrap();
        assert!((e - 0.2).abs() < 1e-12);
        // Dart overestimating → negative error (Fig. 12a's regime).
        let mut dart_over = dist(&[130; 10]);
        let e2 = collection_error_at(&mut base, &mut dart_over, 50.0).unwrap();
        assert!((e2 + 0.3).abs() < 1e-12);
    }

    #[test]
    fn max_error_finds_worst_percentile() {
        let mut base = dist(&(1..=100).collect::<Vec<_>>());
        // Perfect except the tail is clipped at 60.
        let mut dart = dist(&(1..=100).map(|v| v.min(60)).collect::<Vec<_>>());
        let worst = max_error_5_to_95(&mut base, &mut dart).unwrap();
        // At p=95: (95-60)/95 ≈ 0.368.
        assert!(worst > 0.3, "worst error {worst}");
    }

    #[test]
    fn identical_distributions_zero_error() {
        let mut a = dist(&[5, 10, 15, 20]);
        let mut b = dist(&[5, 10, 15, 20]);
        assert_eq!(max_error_5_to_95(&mut a, &mut b), Some(0.0));
    }
}
