//! Per-prefix RTT aggregation (paper §3.1/§3.3): grouping samples by the
//! remote /24 (or any prefix length) gives a more complete view of a target
//! subnet's congestion than any single flow, and is the granularity the
//! min-filtering use case monitors.

use crate::minfilter::{MinFilter, Window, WindowMin};
use dart_core::RttSample;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// An IPv4 prefix (network address + length).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Prefix {
    /// Network address with host bits zeroed.
    pub net: u32,
    /// Prefix length in bits.
    pub len: u8,
}

impl Prefix {
    /// The prefix of `addr` at length `len`.
    pub fn of(addr: Ipv4Addr, len: u8) -> Prefix {
        assert!(len <= 32);
        let mask = if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        };
        Prefix {
            net: u32::from(addr) & mask,
            len,
        }
    }

    /// True when `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        Prefix::of(addr, self.len).net == self.net
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", Ipv4Addr::from(self.net), self.len)
    }
}

/// Aggregates RTT samples into per-remote-prefix windowed minima.
pub struct PrefixAggregator {
    prefix_len: u8,
    window: Window,
    filters: HashMap<Prefix, MinFilter>,
    counts: HashMap<Prefix, u64>,
}

impl PrefixAggregator {
    /// Aggregate at `prefix_len` with the given windowing policy.
    pub fn new(prefix_len: u8, window: Window) -> PrefixAggregator {
        assert!(prefix_len <= 32);
        PrefixAggregator {
            prefix_len,
            window,
            filters: HashMap::new(),
            counts: HashMap::new(),
        }
    }

    /// Offer a sample; the remote side is the sample flow's destination
    /// (the data packet's receiver). Returns a closed window for the
    /// sample's prefix, if one completed.
    pub fn offer(&mut self, sample: &RttSample) -> Option<(Prefix, WindowMin)> {
        let prefix = Prefix::of(sample.flow.dst_ip, self.prefix_len);
        *self.counts.entry(prefix).or_insert(0) += 1;
        let filter = self
            .filters
            .entry(prefix)
            .or_insert_with(|| MinFilter::new(self.window));
        filter.offer(sample.rtt, sample.ts).map(|w| (prefix, w))
    }

    /// Samples seen per prefix.
    pub fn count(&self, prefix: &Prefix) -> u64 {
        self.counts.get(prefix).copied().unwrap_or(0)
    }

    /// Number of distinct prefixes observed.
    pub fn prefixes(&self) -> usize {
        self.filters.len()
    }

    /// Current open-window minimum per prefix (control-plane snapshot).
    pub fn snapshot(&self) -> Vec<(Prefix, Option<u64>)> {
        let mut v: Vec<_> = self
            .filters
            .iter()
            .map(|(p, f)| (*p, f.current_min()))
            .collect();
        v.sort_by_key(|(p, _)| *p);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_packet::{FlowKey, SeqNum};

    fn sample(dst: Ipv4Addr, rtt: u64, ts: u64) -> RttSample {
        RttSample::new(
            FlowKey::new(Ipv4Addr::new(10, 0, 0, 1), 40000, dst, 443),
            SeqNum(1),
            rtt,
            ts,
        )
    }

    #[test]
    fn prefix_of_masks_host_bits() {
        let p = Prefix::of(Ipv4Addr::new(93, 184, 216, 34), 24);
        assert_eq!(p.to_string(), "93.184.216.0/24");
        assert!(p.contains(Ipv4Addr::new(93, 184, 216, 99)));
        assert!(!p.contains(Ipv4Addr::new(93, 184, 217, 34)));
    }

    #[test]
    fn zero_length_prefix_contains_everything() {
        let p = Prefix::of(Ipv4Addr::new(1, 2, 3, 4), 0);
        assert!(p.contains(Ipv4Addr::new(255, 255, 255, 255)));
    }

    #[test]
    fn samples_group_by_remote_prefix() {
        let mut agg = PrefixAggregator::new(24, Window::Count(2));
        let a1 = Ipv4Addr::new(93, 184, 216, 10);
        let a2 = Ipv4Addr::new(93, 184, 216, 20); // same /24
        let b = Ipv4Addr::new(8, 8, 8, 8);
        assert!(agg.offer(&sample(a1, 30, 1)).is_none());
        assert!(agg.offer(&sample(b, 99, 2)).is_none());
        let (p, w) = agg.offer(&sample(a2, 20, 3)).expect("window closes");
        assert_eq!(p, Prefix::of(a1, 24));
        assert_eq!(w.min_rtt, 20);
        assert_eq!(agg.prefixes(), 2);
        assert_eq!(agg.count(&Prefix::of(b, 24)), 1);
    }

    #[test]
    fn snapshot_lists_open_windows() {
        let mut agg = PrefixAggregator::new(16, Window::Count(10));
        agg.offer(&sample(Ipv4Addr::new(1, 1, 1, 1), 42, 1));
        let snap = agg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1, Some(42));
    }
}
