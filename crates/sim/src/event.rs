//! The discrete-event queue driving the network simulator.
//!
//! A classic time-ordered priority queue with a monotonically increasing
//! tiebreaker so same-timestamp events are processed in insertion order —
//! keeping simulations deterministic.

use dart_packet::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue over payloads of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_id: u64,
    now: Nanos,
}

#[derive(Debug)]
struct Entry<E> {
    at: Nanos,
    id: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_id: 0,
            now: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// bug in the caller.
    pub fn schedule(&mut self, at: Nanos, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let id = self.next_id;
        self.next_id += 1;
        self.heap.push(Entry { at, id, event });
    }

    /// Pop the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Events pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 100);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        assert_eq!(q.len(), 1);
    }
}
